"""Sort-as-a-service: admission control, backpressure, quotas, drain.

The robustness contract under test, end to end:

* **deterministic load shedding** — with a queue bound of Q, submitting
  Q + k distinct jobs sheds *exactly* k (reason ``queue_full``), and no
  admitted job is ever lost: each one completes, fails structurally,
  is cancelled on request, or survives a drain in the journal;
* **coalescing** — identical in-flight submissions share one execution
  (job id = spec fingerprint) and warm specs are served from the cache;
* **quotas** — ``burst`` new executions per tenant with ``rate=0`` is
  exact: the (burst+1)-th distinct submission is rejected with reason
  ``quota`` while coalesced/cached submissions stay free;
* **graceful drain + resume** — SIGTERM-shaped drain leaves queued jobs
  ``admitted`` in the journal; a fresh incarnation with ``--resume``
  completes them;
* **chaos drills** — a seeded transient fault plan plus retries yields
  payloads bit-identical to the fault-free serial run.
"""

import json

import pytest

from repro.cli import main
from repro.exec import JobRunner, ParallelRunner, RunSpec, payload_digest
from repro.obs import Observation
from repro.resilience import FaultPlan, SweepJournal
from repro.serve import (
    JOB_SCHEMA,
    REJECT_SCHEMA,
    SERVE_SCHEMA,
    SERVE_STATS_SCHEMA,
    FairShareScheduler,
    ServeClient,
    SortService,
    TokenBucket,
    serve_in_thread,
)


def cell(n, h=16):
    return {"n": n, "h": h}


SPEC = RunSpec("hierarchy_sort", cell(256))

# Deterministic transient: attempt 0 of every cell fails, retry succeeds.
TRANSIENT = '{"seed": 0, "rules": [{"site": "exec.task", "at": [0]}]}' 


# ------------------------------------------------------------------ units


class TestTokenBucket:
    def test_burst_exact_with_zero_rate(self):
        b = TokenBucket(burst=3, rate=0.0)
        takes = [b.take(now=0.0) for _ in range(5)]
        assert [ok for ok, _ in takes] == [True, True, True, False, False]
        # rate=0 never refills: no retry hint, still rejected much later
        assert takes[3][1] is None
        assert b.take(now=1e9) == (False, None)

    def test_rate_refills_and_hints_retry(self):
        b = TokenBucket(burst=1, rate=2.0)
        assert b.take(now=0.0) == (True, None)
        ok, retry = b.take(now=0.0)
        assert not ok and retry == pytest.approx(0.5)
        ok, _ = b.take(now=0.6)  # 1.2 tokens accrued
        assert ok

    def test_refill_clamps_to_burst(self):
        b = TokenBucket(burst=2, rate=100.0)
        b.take(now=0.0)
        assert b.take(now=10.0) == (True, None)
        assert b.tokens <= b.burst

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(burst=0)
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(burst=1, rate=-1.0)


class TestFairShareScheduler:
    class _J:
        def __init__(self, seq, tenant):
            self.seq = seq
            self.meta = {"tenant": tenant}

    def test_round_robin_across_tenants(self):
        sched = FairShareScheduler()
        ready = [self._J(0, "a"), self._J(1, "a"), self._J(2, "b")]
        picks = []
        for _ in range(3):
            job = sched(ready)
            picks.append((job.meta["tenant"], job.seq))
            ready.remove(job)
        # b's single job does not wait behind a's backlog
        assert picks == [("a", 0), ("b", 2), ("a", 1)]

    def test_fifo_within_tenant(self):
        sched = FairShareScheduler()
        j0, j1 = self._J(0, "t"), self._J(1, "t")
        assert sched([j0, j1]).seq == 0

    def test_unannotated_jobs_share_anon_lane(self):
        sched = FairShareScheduler()
        j = self._J(0, "x")
        j.meta = None
        assert sched([j]) is j


# -------------------------------------------------------------- JobRunner


class TestJobRunner:
    def test_submit_wait_done_then_cached(self):
        runner = JobRunner(jobs=0)
        runner.start()
        try:
            job, disposition = runner.submit(SPEC)
            assert disposition == "new" and job.key == SPEC.fingerprint()
            done = runner.wait(job.key, timeout=60)
            assert done.status == "done"
            assert done.payload["result"]["parallel_steps"] > 0
            again, disposition2 = runner.submit(SPEC)
            assert disposition2 == "cached" and again.status == "done"
            assert runner.stats["cache_hits"] == 1
        finally:
            runner.close()

    def test_coalescing_shares_one_execution(self):
        runner = JobRunner(jobs=0)  # driver not started: job stays queued
        j1, d1 = runner.submit(SPEC)
        j2, d2 = runner.submit(SPEC)
        assert (d1, d2) == ("new", "coalesced")
        assert j1 is j2
        assert runner.stats["coalesced"] == 1
        runner.close()

    def test_deterministic_shedding_exact_excess(self):
        runner = JobRunner(jobs=0)
        outcomes = [
            runner.submit(RunSpec("hierarchy_sort", cell(256 + 64 * i)),
                          limit=3)[1]
            for i in range(5)
        ]
        assert outcomes == ["new", "new", "new", "shed", "shed"]
        assert runner.stats["shed"] == 2
        # ...and the admitted three all complete once the driver starts
        runner.start()
        runner.wait_idle(timeout=120)
        stats = runner.stats
        assert stats["completed"] == 3 and stats["failed"] == 0
        runner.close()

    def test_cancel_queued_job(self):
        runner = JobRunner(jobs=0)
        job, _ = runner.submit(SPEC)
        cancelled = runner.cancel(job.key)
        assert cancelled.status == "cancelled"
        assert runner.stats["cancelled"] == 1
        runner.close()

    def test_failed_job_carries_failure_record(self):
        plan = FaultPlan.load(
            '{"seed": 0, "rules": [{"site": "exec.task", '
            '"mode": "permanent", "at": [0]}]}'
        )
        runner = JobRunner(jobs=0, retries=1, backoff=0.0, fault_plan=plan)
        runner.start()
        try:
            job, _ = runner.submit(SPEC)
            done = runner.wait(job.key, timeout=60)
            assert done.status == "failed"
            assert done.payload["schema"] == "repro.failures/1"
            assert done.errors[-1]["type"] == "InjectedIOError"
        finally:
            runner.close()

    def test_close_leaves_queued_jobs_admitted_in_journal(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        runner = JobRunner(jobs=0, journal=j, cache_dir=j.cells_dir)
        runner.submit(SPEC, meta={"tenant": "t"})
        runner.close()
        pending = SweepJournal(str(tmp_path / "j")).pending_jobs()
        assert [p["key"] for p in pending] == [SPEC.fingerprint()]
        assert pending[0]["meta"] == {"tenant": "t"}

    def test_chaos_payload_bit_identical(self):
        clean = JobRunner(jobs=0)
        clean.start()
        chaotic = JobRunner(
            jobs=0, retries=3, backoff=0.0, fault_plan=FaultPlan.load(TRANSIENT)
        )
        chaotic.start()
        try:
            k1 = clean.submit(SPEC)[0].key
            k2 = chaotic.submit(SPEC)[0].key
            p1 = clean.wait(k1, timeout=60).payload
            p2 = chaotic.wait(k2, timeout=60).payload
            assert chaotic.stats["retried"] >= 1
            assert payload_digest(p1) == payload_digest(p2)
        finally:
            clean.close()
            chaotic.close()


# ---------------------------------------------------------------- service


def service(runner=None, **kw):
    if runner is None:
        runner = JobRunner(jobs=0)
    return SortService(runner, **kw)


class TestServiceEndToEnd:
    def test_submit_wait_then_cache_hit(self):
        svc = service()
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port) as c:
                resp = c.submit("hierarchy_sort", cell(256), wait=True, timeout=60)
                assert resp["schema"] == SERVE_SCHEMA and resp["ok"]
                job = resp["job"]
                assert job["schema"] == JOB_SCHEMA
                assert job["status"] == "done" and job["disposition"] == "new"
                assert job["result"]["parallel_steps"] > 0
                again = c.submit("hierarchy_sort", cell(256), wait=True)
                assert again["job"]["disposition"] == "cached"
                health = c.healthz()["health"]
                assert health["ok"] and health["counters"]["completed"] >= 1
                ready = c.readyz()
                assert ready["ready"] and ready["reason"] == "ok"
                stats = c.stats()["stats"]
                assert stats["schema"] == SERVE_STATS_SCHEMA
                assert stats["serve"]["admitted"] == 1
                assert stats["serve"]["cache_hits"] == 1
                assert stats["tenants"]["anon"]["submitted"] == 2
        finally:
            thread.stop()

    def test_bad_requests_are_rejected_not_fatal(self):
        svc = service()
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port) as c:
                r = c.submit("no_such_task", {})
                assert r["schema"] == REJECT_SCHEMA and r["reason"] == "bad_request"
                r = c.request({"op": "poll", "id": "deadbeef"})
                assert r["reason"] == "unknown_job"
                r = c.request({"op": "frobnicate"})
                assert r["reason"] == "bad_request"
                # a non-JSON line gets a reject, and the conn survives
                c._fh.write("not json\n")
                c._fh.flush()
                assert json.loads(c._fh.readline())["reason"] == "bad_request"
                assert c.healthz()["health"]["ok"]
        finally:
            thread.stop()

    def test_deterministic_shedding_exactly_the_excess(self):
        # hold=True: driver never starts, so the queue cannot drain
        # between submissions — shedding is exact, not racy.
        svc = service(queue_limit=3, hold=True)
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port) as c:
                outcomes = []
                for i in range(5):
                    r = c.submit("hierarchy_sort", cell(256 + 64 * i))
                    outcomes.append(
                        "shed" if r.get("reason") == "queue_full"
                        else r["job"]["disposition"]
                    )
                assert outcomes == ["new", "new", "new", "shed", "shed"]
                shed = [r for r in (c.submit("hierarchy_sort", cell(999)),)
                        if r.get("schema") == REJECT_SCHEMA]
                assert shed and shed[0]["retry_after"] > 0
                stats = c.stats()["stats"]["serve"]
                assert stats["admitted"] == 3 and stats["shed"] == 3
                # no admitted job is lost: start the driver, all complete
                svc.runner.start()
                svc.runner.wait_idle(timeout=120)
                assert svc.runner.stats["completed"] == 3
        finally:
            thread.stop()

    def test_quota_burst_exact_and_coalesced_free(self):
        svc = service(quota_burst=2, quota_rate=0.0, hold=True)
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port, tenant="hog") as hog:
                assert hog.submit("hierarchy_sort", cell(256))["ok"]
                # duplicate of an in-flight job is free (coalesced)
                dup = hog.submit("hierarchy_sort", cell(256))
                assert dup["job"]["disposition"] == "coalesced"
                assert hog.submit("hierarchy_sort", cell(320))["ok"]
                third = hog.submit("hierarchy_sort", cell(384))
                assert third["schema"] == REJECT_SCHEMA
                assert third["reason"] == "quota"
            with ServeClient(port=thread.port, tenant="polite") as polite:
                # quotas are per tenant: another tenant still has burst
                assert polite.submit("hierarchy_sort", cell(448))["ok"]
            stats = svc.stats()
            assert stats["serve"]["quota_rejected"] == 1
            assert stats["tenants"]["hog"]["quota_rejected"] == 1
            assert stats["tenants"]["polite"]["new"] == 1
        finally:
            thread.stop()

    def test_cancel_and_journal_record(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        runner = JobRunner(jobs=0, journal=j, cache_dir=j.cells_dir)
        svc = service(runner, hold=True, journal=j)
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port) as c:
                job_id = c.submit("hierarchy_sort", cell(256))["job"]["id"]
                r = c.cancel(job_id)
                assert r["ok"] and r["job"]["status"] == "cancelled"
                assert c.stats()["stats"]["serve"]["cancelled"] == 1
        finally:
            thread.stop()
        statuses = [
            rec.get("status") for rec in SweepJournal(str(tmp_path / "j")).read()
            if rec.get("ev") == "job"
        ]
        assert statuses == ["admitted", "cancelled"]

    def test_readyz_reflects_hold_and_drain(self):
        svc = service(hold=True, drain_grace=1.5)
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port) as c:
                ready = c.readyz()
                assert not ready["ready"] and ready["reason"] == "held"
                # a held job keeps the grace window open so the
                # draining-reject path is observable on this connection
                assert c.submit("hierarchy_sort", cell(256))["ok"]
                r = c.drain()
                assert r["ok"] and r["draining"]
                rej = c.submit("hierarchy_sort", cell(320))
                assert rej["schema"] == REJECT_SCHEMA
                assert rej["reason"] == "draining"
                ready = c.readyz()
                assert not ready["ready"] and ready["reason"] == "draining"
            thread.join(timeout=10)
        finally:
            thread.stop()

    def test_drain_restart_resume_completes_admitted_jobs(self, tmp_path):
        jdir = str(tmp_path / "j")
        j1 = SweepJournal(jdir)
        runner1 = JobRunner(jobs=0, journal=j1, cache_dir=j1.cells_dir)
        svc1 = service(runner1, hold=True, journal=j1, drain_grace=0.1)
        thread1 = serve_in_thread(svc1)
        keys = []
        try:
            with ServeClient(port=thread1.port, tenant="t") as c:
                for n in (256, 320):
                    keys.append(c.submit("hierarchy_sort", cell(n))["job"]["id"])
            thread1.drain()
            thread1.join(timeout=10)
        finally:
            runner1.close()
        pending = SweepJournal(jdir).pending_jobs()
        assert sorted(p["key"] for p in pending) == sorted(keys)

        # next incarnation: same journal + cache, driver live, --resume
        j2 = SweepJournal(jdir)
        runner2 = JobRunner(jobs=0, journal=j2, cache_dir=j2.cells_dir)
        svc2 = service(runner2, journal=j2, resume=True)
        thread2 = serve_in_thread(svc2)
        try:
            assert svc2.resumed == 2
            with ServeClient(port=thread2.port) as c:
                for key in keys:
                    r = c.wait(key, timeout=120)
                    assert r["ok"] and r["job"]["status"] == "done"
                stats = c.stats()["stats"]
                assert stats["serve"]["resumed"] == 2
                assert stats["runner"]["completed"] == 2
        finally:
            thread2.stop()
        assert not SweepJournal(jdir).pending_jobs()

    def test_serve_spans_and_log_shape(self, tmp_path):
        log_path = str(tmp_path / "serve.log.jsonl")
        obs = Observation()
        svc = service(obs=obs, log_path=log_path)
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port) as c:
                c.submit("hierarchy_sort", cell(256), wait=True, timeout=60)
        finally:
            thread.stop()
        names = [e["name"] for e in obs.tracer.events]
        assert "serve.job" in names
        events = [json.loads(line) for line in open(log_path)]
        assert all(e["src"] == "serve" for e in events)
        evs = [e["ev"] for e in events]
        assert evs[0] == "serve_start" and evs[-1] == "serve_stop"
        assert "admit" in evs and "job_finish" in evs
        counters = obs.registry.export()["serve"]["counters"]
        assert counters["admitted"] == 1 and counters["completed"] == 1


class TestServeChaosDrill:
    """The service-grade chaos-determinism gate (fast single-cell here;
    the full grid drill runs in CI, nightly under ``-m chaos``)."""

    def test_transient_faults_bit_identical_payload(self):
        baseline = ParallelRunner(jobs=0).map([SPEC])[0].payload
        runner = JobRunner(
            jobs=0, retries=3, backoff=0.0,
            fault_plan=FaultPlan.load(TRANSIENT),
        )
        svc = service(runner)
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port) as c:
                resp = c.submit(
                    "hierarchy_sort", cell(256), wait=True, include="payload",
                    timeout=120,
                )
                assert resp["job"]["status"] == "done"
                assert runner.stats["retried"] >= 1
                assert payload_digest(resp["job"]["payload"]) == \
                    payload_digest(baseline)
        finally:
            thread.stop()

    @pytest.mark.chaos
    def test_live_drill_grid_under_faults_and_quota(self, tmp_path):
        """Nightly drill: a quota'd, fault-injected service serving a
        grid of jobs still produces payloads bit-identical to the
        fault-free serial baseline, while shedding and quota pressure
        reject deterministically and lose nothing."""
        specs = [RunSpec("hierarchy_sort", cell(n)) for n in
                 (256, 320, 384, 448)]
        baseline = {
            s.fingerprint(): out.payload
            for s, out in zip(specs, ParallelRunner(jobs=0).map(specs))
        }
        plan = FaultPlan.load(
            '{"seed": 33, "rules": ['
            '{"site": "exec.task", "rate": 0.5, "seed": 3}, '
            '{"site": "store.read", "at": [3], "seed": 4}]}'
        )
        j = SweepJournal(str(tmp_path / "j"))
        runner = JobRunner(
            jobs=0, retries=4, backoff=0.0, fault_plan=plan,
            journal=j, cache_dir=j.cells_dir,
            scheduler=FairShareScheduler(),
        )
        svc = service(runner, quota_burst=3, quota_rate=50.0, queue_limit=2)
        thread = serve_in_thread(svc)
        try:
            with ServeClient(port=thread.port, tenant="drill") as c:
                ids = []
                for s in specs:
                    resp = c.submit_admitted(
                        s.task, dict(s.params), retries=200, max_sleep=0.2
                    )
                    ids.append(resp["job"]["id"])
                for s, job_id in zip(specs, ids):
                    r = c.wait(job_id, timeout=120, include="payload")
                    assert r["job"]["status"] == "done"
                    assert payload_digest(r["job"]["payload"]) == \
                        payload_digest(baseline[job_id])
                stats = c.stats()["stats"]
            assert stats["runner"]["retried"] >= 1
            assert stats["runner"]["failed"] == 0
            # every admission is accounted for: nothing lost
            serve = stats["serve"]
            assert serve["admitted"] == len(specs)
            assert serve["completed"] == len(specs)
        finally:
            thread.stop()


# -------------------------------------------------------------------- CLI


class TestServeCLI:
    def test_fault_plan_parse_error_exits_two(self, capsys):
        rc = main(["serve", "--fault-plan", '{"seed": "nope"'])
        assert rc == 2
        assert "fault" in capsys.readouterr().err.lower()

    def test_resume_requires_journal(self, capsys):
        rc = main(["serve", "--resume"])
        assert rc == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_submit_unreachable_service_exits_two(self, capsys):
        rc = main(["submit", "--port", "1", "--task", "hierarchy",
                   "--n", "256", "--h", "16"])
        assert rc == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_submit_against_live_service_matches_sweep(
        self, tmp_path, capsys
    ):
        """The canary gate in miniature: ``repro submit`` output diffs
        clean at threshold 0 against ``repro sweep`` of the same grid."""
        sweep_json = str(tmp_path / "sweep.json")
        submit_json = str(tmp_path / "submit.json")
        grid = ["--task", "hierarchy", "--n", "256,320", "--h", "16"]
        assert main(["sweep", *grid, "--emit-json", sweep_json]) == 0

        svc = service()
        thread = serve_in_thread(svc)
        try:
            rc = main([
                "submit", "--port", str(thread.port), *grid,
                "--emit-json", submit_json,
                "--stats-json", str(tmp_path / "stats.json"),
            ])
            cap = capsys.readouterr()
            assert rc == 0
            assert "jobs=2 new=2" in cap.err
            rc = main([
                "diff", submit_json, sweep_json, "--threshold", "0",
                "--strict", "--ignore", "command", "--ignore", "*.cached",
            ])
            assert rc == 0, capsys.readouterr().out
            stats = json.load(open(tmp_path / "stats.json"))
            assert stats["schema"] == "repro.submit_stats/1"
            assert stats["client"]["dispositions"]["new"] == 2
            assert stats["serve"]["serve"]["completed"] == 2
        finally:
            thread.stop()

    def test_submit_no_wait_enqueues_only(self, tmp_path, capsys):
        svc = service(hold=True)
        thread = serve_in_thread(svc)
        try:
            rc = main([
                "submit", "--port", str(thread.port), "--task", "hierarchy",
                "--n", "256", "--h", "16", "--no-wait",
            ])
            cap = capsys.readouterr()
            assert rc == 0
            assert "not waiting" in cap.err
            assert svc.runner.active_count() == 1
        finally:
            thread.stop()
