"""Failure-injection tests: the simulators must reject illegal schedules.

The lower bounds the paper builds on are only meaningful if the machine
models are airtight — an algorithm that silently moved two blocks through
one disk, over-filled memory, or made an EREW machine do concurrent writes
would 'beat' the bound by cheating.  These tests drive every forbidden
transition and assert the machines refuse.
"""

import numpy as np
import pytest

from repro import workloads
from repro.core.balance import BalanceEngine
from repro.core.matching import MatchingInstance, greedy_match
from repro.core.matrices import BalanceMatrices
from repro.exceptions import (
    AddressError,
    CapacityError,
    ConcurrencyViolation,
    DiskContentionError,
    InvariantViolation,
    ParameterError,
    TopologyError,
)
from repro.hierarchies import HMM, UMH, ParallelHierarchies, VirtualHierarchies
from repro.hypercube import Hypercube
from repro.pdm import BlockAddress, ParallelDiskMachine, VirtualDisks
from repro.pram import PRAM
from repro.records import make_records


def block(machine, value=1):
    return make_records(np.full(machine.B, value, dtype=np.uint64))


class TestDiskDiscipline:
    def test_two_blocks_one_disk_read(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        m.mem_acquire(8)
        m.write_blocks([(BlockAddress(0, 0), block(m))])
        m.mem_acquire(0)
        m.write_blocks([(BlockAddress(0, 1), block(m))])
        with pytest.raises(DiskContentionError):
            m.read_blocks([BlockAddress(0, 0), BlockAddress(0, 1)])

    def test_memory_hard_ceiling_on_read_path(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        m.mem_acquire(4)
        m.write_blocks([(BlockAddress(0, 0), block(m))])
        m.mem_acquire(m.M - 3)  # leave 3 records of room < B
        with pytest.raises(CapacityError):
            m.read_blocks([BlockAddress(0, 0)])

    def test_cannot_fabricate_memory(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        with pytest.raises(CapacityError):
            m.mem_release(1)

    def test_virtual_disks_propagate_contention(self):
        m = ParallelDiskMachine(memory=64, block=2, disks=8)
        v = VirtualDisks(m, 4)
        d = make_records(np.arange(4, dtype=np.uint64))
        with pytest.raises(DiskContentionError):
            v.parallel_write([(1, d), (1, d)])

    def test_block_size_is_exact(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        short = make_records(np.arange(3, dtype=np.uint64))
        m.mem_acquire(3)
        with pytest.raises(AddressError):
            m.write_blocks([(BlockAddress(0, 0), short)])


class TestPRAMDiscipline:
    def test_erew_rejects_concurrent_ops(self):
        m = PRAM(4, variant="EREW")
        with pytest.raises(ConcurrencyViolation):
            m.require_concurrent_write("radix sort")

    def test_monotone_route_rejects_duplicate_targets(self):
        from repro.pram.routing import monotone_route

        m = PRAM(4, variant="EREW")
        with pytest.raises(ValueError):
            monotone_route(m, np.arange(8), np.array([0, 1]), np.array([3, 3]))


class TestHypercubeDiscipline:
    def test_non_adjacent_send(self):
        net = Hypercube(16)
        with pytest.raises(TopologyError):
            net.send(0, 5, "x")

    def test_exchange_shape_enforced(self):
        net = Hypercube(8)
        with pytest.raises(TopologyError):
            net.exchange_dim(np.arange(4), 0)

    def test_dimension_range(self):
        net = Hypercube(8)
        with pytest.raises(TopologyError):
            net.exchange_dim(np.arange(8), 3)


class TestHierarchyDiscipline:
    def test_unwritten_read(self):
        h = HMM()
        with pytest.raises(AddressError):
            h.read(np.array([5]))

    def test_virtual_hierarchy_contention(self):
        ph = ParallelHierarchies(8)
        vh = VirtualHierarchies(ph, 2)
        d = make_records(np.arange(4, dtype=np.uint64))
        with pytest.raises(DiskContentionError):
            vh.parallel_read(
                [a for a in vh.parallel_write([(0, d)]) for _ in range(2)]
            )

    def test_umh_frame_bounds(self):
        u = UMH(rho=2, alpha=2, levels=3)
        with pytest.raises(CapacityError):
            u.put_block(0, 99, make_records(np.arange(1, dtype=np.uint64)))

    def test_umh_empty_transfer(self):
        u = UMH(rho=2, alpha=2, levels=3)
        with pytest.raises(AddressError):
            u.transfer(0, 0, 0, 0, direction="down")


class TestEngineDiscipline:
    def test_corrupted_histogram_detected(self):
        m = BalanceMatrices(2, 4)
        m.X[0, 0] = 5  # x exceeds median by > 2: impossible under the protocol
        with pytest.raises(InvariantViolation):
            m.refresh_aux()

    def test_matching_on_broken_degrees_detected(self):
        adj = np.zeros((2, 4), dtype=bool)
        adj[0, 0] = True
        adj[1, 0] = True  # both want the only channel: degree 1 < ⌈4/2⌉
        inst = MatchingInstance((0, 1), (0, 1), adj, 4)
        with pytest.raises(InvariantViolation):
            inst.check_degree_invariant()
        with pytest.raises(InvariantViolation):
            greedy_match(inst)

    def test_engine_rejects_double_finish(self):
        m = ParallelDiskMachine(memory=64, block=2, disks=4)
        storage = VirtualDisks(m, 2)
        engine = BalanceEngine(storage, np.array([10], dtype=np.uint64))
        engine.flush()
        with pytest.raises(ParameterError):
            engine.flush()

    def test_invariant_checks_catch_tampering_mid_run(self):
        m = ParallelDiskMachine(memory=8192, block=2, disks=4)
        storage = VirtualDisks(m, 2)
        data = workloads.uniform(400, seed=160)
        from repro.records import composite_keys

        ck = np.sort(composite_keys(data))
        engine = BalanceEngine(storage, ck[[100, 200, 300]], check_invariants=True)
        m.mem_acquire(200)
        engine.feed(data[:200])
        engine.run_rounds()
        # tamper with the histogram behind the engine's back
        engine.matrices.X[0, 0] += 3
        m.mem_acquire(200)
        engine.feed(data[200:])
        with pytest.raises(InvariantViolation):
            engine.run_rounds()
