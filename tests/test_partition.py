"""Tests for partition-element selection (Algorithm 2 and the [ViSa] method)."""

import numpy as np
import pytest

from repro import workloads
from repro.core.partition import (
    paper_floor_log2,
    pdm_partition_elements,
    validate_bucket_sizes,
)
from repro.core.streams import load_ordered_run
from repro.exceptions import ParameterError
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys


def setup(M=1024, B=4, D=8, hp=4):
    machine = ParallelDiskMachine(memory=M, block=B, disks=D)
    return machine, VirtualDisks(machine, hp)


def bucket_counts(records, pivots, s):
    return np.bincount(
        np.searchsorted(pivots, composite_keys(records), side="right"), minlength=s
    )


class TestPaperFloorLog2:
    def test_values(self):
        assert paper_floor_log2(1) == 1
        assert paper_floor_log2(2) == 1
        assert paper_floor_log2(1024) == 10
        assert paper_floor_log2(1025) == 10


class TestPDMPartitionElements:
    @pytest.mark.parametrize(
        "workload", ["uniform", "zipf", "few_distinct", "sorted", "adversarial_bucket_skew"]
    )
    @pytest.mark.parametrize("s", [3, 5, 8])
    def test_bucket_bound_2n_over_s(self, workload, s):
        machine, storage = setup()
        data = workloads.by_name(workload, 4000, seed=11)
        run = load_ordered_run(storage, data)
        pivots = pdm_partition_elements(machine, storage, run, s, memoryload=512)
        counts = bucket_counts(data, pivots, s)
        assert counts.sum() == 4000
        ratio = validate_bucket_sizes(counts, 4000, s)
        assert ratio <= 1.0, f"bucket exceeded 2N/S: ratio {ratio}"
        assert machine.memory_in_use == 0  # sampling pass leaves memory clean

    def test_pivot_count_and_order(self):
        machine, storage = setup()
        data = workloads.uniform(2000, seed=12)
        run = load_ordered_run(storage, data)
        pivots = pdm_partition_elements(machine, storage, run, 6, memoryload=512)
        assert pivots.shape == (5,)
        assert np.all(pivots[:-1] < pivots[1:])  # composite keys are distinct

    def test_sampling_costs_one_streaming_pass(self):
        machine, storage = setup()
        data = workloads.uniform(2000, seed=13)
        run = load_ordered_run(storage, data)
        pdm_partition_elements(machine, storage, run, 4, memoryload=512)
        # 2000 records / (DB=32 per I/O) = 63 reads, no writes
        assert machine.stats.write_ios == 0
        assert machine.stats.read_ios == -(-2000 // 32)

    def test_rejects_tiny_memoryload(self):
        machine, storage = setup()
        data = workloads.uniform(100, seed=0)
        run = load_ordered_run(storage, data)
        with pytest.raises(ParameterError):
            pdm_partition_elements(machine, storage, run, 8, memoryload=16)

    def test_rejects_one_bucket(self):
        machine, storage = setup()
        data = workloads.uniform(100, seed=0)
        run = load_ordered_run(storage, data)
        with pytest.raises(ParameterError):
            pdm_partition_elements(machine, storage, run, 1, memoryload=512)

    def test_cpu_work_charged_for_internal_sorts(self):
        machine, storage = setup()
        data = workloads.uniform(2000, seed=14)
        run = load_ordered_run(storage, data)
        pdm_partition_elements(machine, storage, run, 4, memoryload=512)
        assert machine.cpu.work > 2000  # at least n log n scale charges


class TestValidateBucketSizes:
    def test_ratio(self):
        assert validate_bucket_sizes(np.array([10, 10]), 20, 2) == 0.5

    def test_sum_mismatch_raises(self):
        with pytest.raises(ParameterError):
            validate_bucket_sizes(np.array([5]), 20, 2)

    def test_empty(self):
        assert validate_bucket_sizes(np.array([0, 0]), 0, 2) == 0.0
