"""Tests for the hierarchy-striped merge sort baseline (E12's comparator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ParallelHierarchies, workloads
from repro.baselines import hierarchy_merge_sort
from repro.core.streams import peek_run
from repro.exceptions import ParameterError
from repro.hierarchies import LogCost, PowerCost
from repro.util import assert_is_permutation, assert_sorted


class TestCorrectness:
    @pytest.mark.parametrize(
        "workload", ["uniform", "sorted", "reverse", "few_distinct", "zipf"]
    )
    def test_sorts_workloads(self, workload):
        m = ParallelHierarchies(64)
        data = workloads.by_name(workload, 3000, seed=110)
        res = hierarchy_merge_sort(m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out, workload)
        assert_is_permutation(out, data, workload)

    def test_empty_and_tiny(self):
        for n in (0, 1, 7):
            m = ParallelHierarchies(16)
            data = workloads.uniform(n, seed=111)
            res = hierarchy_merge_sort(m, data)
            out = peek_run(res.storage, res.output)
            assert out.shape[0] == n
            assert_sorted(out)

    def test_single_run_input(self):
        # fits in one 3H load: no merge passes at all
        m = ParallelHierarchies(64)
        data = workloads.uniform(150, seed=112)
        res = hierarchy_merge_sort(m, data)
        assert res.merge_passes == 0
        assert_sorted(peek_run(res.storage, res.output))

    @pytest.mark.parametrize("fan_in", [2, 3, 8])
    def test_fan_in_variants(self, fan_in):
        m = ParallelHierarchies(32)
        data = workloads.uniform(2000, seed=113)
        res = hierarchy_merge_sort(m, data, fan_in=fan_in)
        assert_sorted(peek_run(res.storage, res.output))
        assert res.fan_in == fan_in

    def test_bad_fan_in(self):
        m = ParallelHierarchies(8)
        with pytest.raises(ParameterError):
            hierarchy_merge_sort(m, workloads.uniform(10, seed=0), fan_in=1)

    def test_requires_exactly_one_input(self):
        m = ParallelHierarchies(8)
        with pytest.raises(ParameterError):
            hierarchy_merge_sort(m)

    @given(st.integers(0, 10**6), st.integers(0, 2000))
    @settings(max_examples=10, deadline=None)
    def test_property_random_sizes(self, seed, n):
        m = ParallelHierarchies(16)
        data = workloads.uniform(n, seed=seed)
        res = hierarchy_merge_sort(m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)


class TestCostShape:
    def test_pass_count_is_logarithmic(self):
        m = ParallelHierarchies(64)
        n = 12_000
        res = hierarchy_merge_sort(m, workloads.uniform(n, seed=114))
        import math

        expected = math.ceil(math.log2(max(1, n / (3 * 64))))
        assert abs(res.merge_passes - expected) <= 1

    def test_each_pass_streams_everything(self):
        # doubling N with fixed passes-structure: time superlinear in N
        t = []
        for n in [4000, 16000]:
            m = ParallelHierarchies(64, cost_fn=PowerCost(alpha=1.0))
            t.append(hierarchy_merge_sort(m, workloads.uniform(n, seed=115)).total_time)
        assert t[1] > 8 * t[0]  # ~quadratic-ish for f=x^1 plus log passes

    def test_higher_fan_in_fewer_passes(self):
        m2 = ParallelHierarchies(64)
        m8 = ParallelHierarchies(64)
        data = workloads.uniform(8000, seed=116)
        r2 = hierarchy_merge_sort(m2, data, fan_in=2)
        r8 = hierarchy_merge_sort(m8, data, fan_in=8)
        assert r8.merge_passes < r2.merge_passes
