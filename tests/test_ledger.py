"""Tests for the perf-trajectory ledger and the normalized host capture.

The ledger is the append-only ``repro.bench_series/1`` series CI records
into and gates against: host-keyed points, torn-tail-forgiving reads,
and a :func:`~repro.obs.ledger.compare_entries` gate that reuses the
``diff_runs`` relative-threshold semantics (only increases regress;
cross-series/host/grid comparisons are refused).
"""

import json

import pytest

from repro.obs import SERIES_SCHEMA, BenchLedger, compare_entries, make_entry
from repro.util import capture_host, host_key, usable_cores


def _entry(series="e1", seconds=2.0, records=4000, host_key_="h" * 12,
           grid="abcd", **kw):
    host = {"key": host_key_, "system": "Linux", "machine": "x86_64",
            "python": "3.12.1", "usable_cores": 4, "platform": "Linux-x"}
    return make_entry(series, seconds, records, grid=grid, cells=2,
                      host=host, when=1000.0, **kw)


class TestCaptureHost:
    def test_shape_and_key(self):
        host = capture_host()
        assert set(host) == {"key", "system", "machine", "python",
                             "usable_cores", "platform"}
        assert host["key"] == host_key(host)
        assert host["usable_cores"] == usable_cores() >= 1

    def test_key_ignores_platform_string_and_python_patch(self):
        base = {"system": "Linux", "machine": "x86_64",
                "python": "3.12.1", "usable_cores": 4}
        patched = dict(base, python="3.12.9",
                       platform="Linux-6.18.5-v21-x86_64")
        assert host_key(base) == host_key(patched)

    def test_key_tracks_what_moves_perf(self):
        base = {"system": "Linux", "machine": "x86_64",
                "python": "3.12.1", "usable_cores": 4}
        assert host_key(base) != host_key(dict(base, usable_cores=8))
        assert host_key(base) != host_key(dict(base, python="3.13.0"))
        assert host_key(base) != host_key(dict(base, machine="aarch64"))

    def test_default_key_matches_capture(self):
        assert host_key() == capture_host()["key"]


class TestMakeEntry:
    def test_fields_and_derived_rates(self):
        entry = _entry(seconds=2.0, records=4000)
        assert entry["schema"] == SERIES_SCHEMA
        assert entry["series"] == "e1"
        assert entry["ts"] == 1000.0
        assert entry["host_key"] == "h" * 12
        assert entry["seconds"] == 2.0
        assert entry["records_per_sec"] == 2000.0
        assert entry["us_per_record"] == 500.0
        assert "cache" not in entry and "notes" not in entry

    def test_cache_subset_and_notes(self):
        entry = _entry(cache={"hits": 3, "misses": 1, "stores": 1,
                              "corrupt": 0, "directory": "/tmp/x"},
                       notes="smoke")
        assert entry["cache"] == {"hits": 3, "misses": 1, "stores": 1,
                                  "corrupt": 0}
        assert entry["notes"] == "smoke"

    def test_zero_guards(self):
        entry = _entry(seconds=0.0, records=0)
        assert entry["records_per_sec"] is None
        assert entry["us_per_record"] is None

    def test_default_host_is_captured(self):
        entry = make_entry("s", 1.0, 100, when=0.0)
        assert entry["host_key"] == capture_host()["key"]

    def test_methodology_stamp(self):
        assert _entry()["min_of"] == 1
        assert _entry(min_of=3)["min_of"] == 3
        assert _entry(min_of=0)["min_of"] == 1  # clamped to a real pass


class TestBenchLedger:
    def test_append_read_round_trip(self, tmp_path):
        ledger = BenchLedger(str(tmp_path / "ledger.jsonl"))
        assert ledger.read() == []
        a = ledger.append(_entry(seconds=2.0))
        b = ledger.append(_entry(seconds=2.5))
        assert ledger.read() == [a, b]
        assert ledger.stats["points"] == 2
        assert ledger.stats["series"] == {"e1": 2}

    def test_append_rejects_foreign_docs(self, tmp_path):
        ledger = BenchLedger(str(tmp_path / "ledger.jsonl"))
        with pytest.raises(ValueError, match="schema"):
            ledger.append({"schema": "repro.bench_point/1", "series": "x"})
        entry = dict(_entry(), series="")
        with pytest.raises(ValueError, match="series"):
            ledger.append(entry)

    def test_torn_tail_forgiven_mid_file_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = BenchLedger(str(path))
        ledger.append(_entry())
        with open(path, "a") as fh:
            fh.write('{"schema": "repro.bench_ser')  # killed mid-append
        assert len(ledger.read()) == 1
        # But corruption that is NOT the final line is a real error.
        with open(path, "a") as fh:
            fh.write("\n" + json.dumps(_entry()) + "\n")
        with pytest.raises(ValueError, match="bad ledger line"):
            ledger.read()

    def test_series_and_host_filters(self, tmp_path):
        ledger = BenchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(_entry(series="e1", host_key_="a" * 12, seconds=1.0))
        ledger.append(_entry(series="e1", host_key_="b" * 12, seconds=9.0))
        ledger.append(_entry(series="e3", host_key_="a" * 12, seconds=3.0))
        ledger.append(_entry(series="e1", host_key_="a" * 12, seconds=1.1))
        assert len(ledger.entries("e1")) == 3
        assert len(ledger.entries("e1", "a" * 12)) == 2
        assert ledger.latest("e1", "a" * 12)["seconds"] == 1.1
        # Baseline = predecessor within the same host class: the other
        # host's 9.0 s point must never become the baseline.
        assert ledger.baseline("e1", "a" * 12)["seconds"] == 1.0
        assert ledger.baseline("e3", "a" * 12) is None
        assert ledger.latest("nope") is None

    def test_baseline_is_methodology_aware(self, tmp_path):
        """min_of filtering: a min-of-3 point gates against the previous
        min-of-3 point, skipping interleaved single-pass points."""
        ledger = BenchLedger(str(tmp_path / "ledger.jsonl"))
        key = "a" * 12
        ledger.append(_entry(host_key_=key, seconds=5.0, min_of=3))
        ledger.append(_entry(host_key_=key, seconds=1.0))
        ledger.append(_entry(host_key_=key, seconds=4.0, min_of=3))
        assert ledger.baseline("e1", key)["seconds"] == 1.0
        assert ledger.baseline("e1", key, min_of=3)["seconds"] == 5.0
        assert ledger.baseline("e1", key, min_of=1) is None


class TestCompareEntries:
    def test_within_window_is_ok(self):
        verdict = compare_entries(_entry(seconds=2.0), _entry(seconds=2.5))
        assert verdict.ok

    def test_faster_never_regresses(self):
        verdict = compare_entries(_entry(seconds=2.0), _entry(seconds=0.1))
        assert verdict.ok

    def test_past_3x_window_regresses(self):
        verdict = compare_entries(_entry(seconds=2.0), _entry(seconds=9.0))
        assert not verdict.ok
        paths = {e.path for e in verdict.regressions}
        assert "seconds" in paths and "us_per_record" in paths

    def test_custom_threshold(self):
        baseline, candidate = _entry(seconds=2.0), _entry(seconds=2.5)
        assert compare_entries(baseline, candidate, threshold=0.5).ok
        assert not compare_entries(baseline, candidate, threshold=0.1).ok

    def test_refuses_cross_series_host_grid(self):
        base = _entry()
        for other in (
            _entry(series="e3"),
            _entry(host_key_="x" * 12),
            _entry(grid="ffff"),
        ):
            with pytest.raises(ValueError, match="cannot gate across"):
                compare_entries(base, other)

    def test_refuses_cross_methodology(self):
        """A min-of-3 point never gates against a single-pass baseline."""
        with pytest.raises(ValueError, match="cannot gate across min_of"):
            compare_entries(_entry(), _entry(min_of=3))
        # Points written before the field existed count as single-pass.
        legacy = _entry()
        del legacy["min_of"]
        assert compare_entries(legacy, _entry(seconds=2.1)).ok
        with pytest.raises(ValueError, match="cannot gate across min_of"):
            compare_entries(legacy, _entry(min_of=2))


class TestCliBench:
    GRID = ["--n", "1000,2000", "--disks", "4"]

    def test_record_then_compare_ok(self, capsys, tmp_path):
        from repro.cli import main

        ledger_path = str(tmp_path / "ledger.jsonl")
        for _ in range(2):
            rc = main(["bench", "record", "--series", "smoke",
                       "--ledger", ledger_path, "--commit", "abc123",
                       *self.GRID])
            captured = capsys.readouterr()
            assert rc == 0
            assert "smoke" in captured.out
        points = BenchLedger(ledger_path).read()
        assert len(points) == 2
        assert points[0]["commit"] == "abc123"
        assert points[0]["records"] == 3000
        assert points[0]["cells"] == 2
        assert points[0]["grid"] == points[1]["grid"]
        rc = main(["bench", "compare", "--series", "smoke",
                   "--ledger", ledger_path])
        captured = capsys.readouterr()
        assert rc == 0
        assert "bench compare: OK" in captured.out

    def test_record_min_of_stamps_methodology(self, capsys, tmp_path):
        from repro.cli import main

        ledger_path = str(tmp_path / "ledger.jsonl")
        rc = main(["bench", "record", "--series", "smoke", "--min-of", "2",
                   "--ledger", ledger_path, "--commit", "abc123",
                   *self.GRID])
        capsys.readouterr()
        assert rc == 0
        (point,) = BenchLedger(ledger_path).read()
        assert point["min_of"] == 2

    def test_compare_flags_regression(self, capsys, tmp_path):
        from repro.cli import main

        ledger_path = str(tmp_path / "ledger.jsonl")
        ledger = BenchLedger(ledger_path)
        key = capture_host()["key"]
        ledger.append(_entry(seconds=1.0, host_key_=key))
        ledger.append(_entry(seconds=9.0, host_key_=key))
        # _entry hard-codes its own host dict; rewrite host_key via host=.
        rc = main(["bench", "compare", "--series", "e1",
                   "--ledger", ledger_path, "--host-key", key])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.out

    def test_compare_with_too_few_points_is_a_no_op(self, capsys, tmp_path):
        from repro.cli import main

        ledger_path = str(tmp_path / "ledger.jsonl")
        rc = main(["bench", "compare", "--series", "smoke",
                   "--ledger", ledger_path])
        captured = capsys.readouterr()
        assert rc == 0
        assert "no points" in captured.err
        BenchLedger(ledger_path).append(
            _entry(series="smoke", host_key_=capture_host()["key"]))
        rc = main(["bench", "compare", "--series", "smoke",
                   "--ledger", ledger_path,
                   "--host-key", capture_host()["key"]])
        captured = capsys.readouterr()
        assert rc == 0
        assert "baseline" in captured.err

    def test_record_failed_cell_records_nothing(self, capsys, tmp_path):
        from repro.cli import main

        ledger_path = str(tmp_path / "ledger.jsonl")
        # memory=8 cannot hold a block per disk: the cell fails at run
        # time, and a failed grid must never become a trajectory point.
        rc = main(["bench", "record", "--series", "smoke",
                   "--ledger", ledger_path, "--n", "1000", "--disks", "4",
                   "--memory", "8", "--block", "4"])
        capsys.readouterr()
        assert rc == 3
        assert BenchLedger(ledger_path).read() == []
