"""The dashboard contract: one self-contained HTML file, no exceptions.

The nightly artifact must open anywhere — so the page may not reference
any external script, stylesheet, image, or font, and every section the
docs promise must render (with an honest placeholder when the index has
no data for it yet).
"""

import re

from repro.obs import RunHistory, render_dashboard
from repro.obs.ledger import make_entry

_SECTIONS = (
    "Perf trajectory",
    "Constant-factor ratios",
    "Phase breakdown",
    "Memory high-water",
    "Algorithm league table",
)


def _host():
    return {"key": "k" * 12, "system": "Linux", "machine": "x86_64",
            "python": "3.12.1", "usable_cores": 4, "platform": "x"}


def _seeded_history(tmp_path):
    history = RunHistory(str(tmp_path / "h"))
    for i, seconds in enumerate([4.0, 3.5, 4.5]):
        history.ingest_doc(
            make_entry("e1-grid", seconds, 144000, grid="g", cells=9,
                       host=_host(), when=1000.0 + i, min_of=3,
                       commit=f"c{i}"),
            when=1000.0 + i,
        )
    history.ingest_doc({
        "schema": "repro.run_report/1",
        "command": "sort",
        "result": {"records": 8000, "parallel_ios": 3128, "ratio": 1.61,
                   "verified": True},
        "phases": [
            {"name": "partition", "wall_s": 0.012},
            {"name": "distribute", "wall_s": 0.074},
        ],
        "host": _host(),
    }, commit="c2")
    history.ingest_doc({
        "schema": "repro.sweep_stats/1",
        "runner": {"executed": 9, "served_from_cache": 0, "failed": 0,
                   "retried": 0,
                   "memory": {"high_water_blocks": 4242,
                              "peak_rss_kb": 131072}},
        "journal": None,
    })
    return history


class TestRenderDashboard:
    def test_self_contained_no_external_references(self, tmp_path):
        html = render_dashboard(_seeded_history(tmp_path))
        assert html.lstrip().startswith("<!doctype html>")
        assert "<script" not in html  # no JS at all, not even inline
        assert "<link" not in html
        assert "<img" not in html and "<iframe" not in html
        assert not re.search(r"""(?:src|href)\s*=\s*["']https?://""", html)
        assert "@import" not in html and "url(" not in html

    def test_every_promised_section_renders(self, tmp_path):
        html = render_dashboard(_seeded_history(tmp_path))
        for section in _SECTIONS:
            assert section in html, section

    def test_data_sections_chart_the_index(self, tmp_path):
        html = render_dashboard(_seeded_history(tmp_path), when=0.0)
        assert "<svg" in html and "<polyline" in html  # trajectory lines
        assert "e1-grid" in html and "min-of-3" in html and "3 points" in html
        assert "measured / bound" in html  # the Theorem-1 ratio series
        assert "distribute" in html  # phase stacked bars carry span names
        assert "arena high-water blocks" in html
        assert "peak RSS" in html

    def test_empty_history_renders_placeholders_not_errors(self, tmp_path):
        history = RunHistory(str(tmp_path / "empty"))
        html = render_dashboard(history)
        for section in _SECTIONS:
            assert section in html, section
        assert "no ledger points indexed" in html
        assert "no profiled runs yet" in html

    def test_title_and_metadata_escaped(self, tmp_path):
        history = RunHistory(str(tmp_path / "empty"))
        html = render_dashboard(history, title="<b>sneaky & co</b>")
        assert "<b>sneaky" not in html
        assert "&lt;b&gt;sneaky &amp; co&lt;/b&gt;" in html

    def test_deterministic_for_fixed_when(self, tmp_path):
        history = _seeded_history(tmp_path)
        assert render_dashboard(history, when=42.0) == render_dashboard(
            history, when=42.0
        )
