"""Unit tests for repro.records: composite keys, merging, searching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import records


def test_make_records_assigns_sequential_rids():
    r = records.make_records(np.array([5, 3, 9], dtype=np.uint64))
    assert r["key"].tolist() == [5, 3, 9]
    assert r["rid"].tolist() == [0, 1, 2]


def test_make_records_rejects_2d():
    with pytest.raises(ValueError):
        records.make_records(np.zeros((2, 2), dtype=np.uint64))


def test_empty_records_shape_and_dtype():
    r = records.empty_records(7)
    assert r.shape == (7,)
    assert r.dtype == records.RECORD_DTYPE


def test_composite_keys_break_ties_by_rid():
    r = records.make_records(np.array([4, 4, 4], dtype=np.uint64))
    ck = records.composite_keys(r)
    assert ck[0] < ck[1] < ck[2]


def test_composite_keys_order_matches_lexicographic():
    r = records.make_records(np.array([9, 1, 9, 1], dtype=np.uint64))
    ck = records.composite_keys(r)
    order = np.argsort(ck)
    assert order.tolist() == [1, 3, 0, 2]


def test_composite_keys_reject_huge_keys():
    r = records.make_records(np.array([1 << 41], dtype=np.uint64))
    with pytest.raises(ValueError):
        records.composite_keys(r)


def test_sort_records_sorts_by_key_then_rid():
    r = records.make_records(np.array([2, 1, 2, 0], dtype=np.uint64))
    s = records.sort_records(r)
    assert s["key"].tolist() == [0, 1, 2, 2]
    assert s["rid"].tolist() == [3, 1, 0, 2]


def test_merge_records_interleaves():
    a = records.sort_records(records.make_records(np.array([1, 5, 9], dtype=np.uint64)))
    b = records.sort_records(records.make_records(np.array([2, 6], dtype=np.uint64)))
    b["rid"] += 100  # keep rids distinct across the two inputs
    m = records.merge_records(a, b)
    assert m["key"].tolist() == [1, 2, 5, 6, 9]


def test_merge_records_empty_sides():
    a = records.make_records(np.array([3], dtype=np.uint64))
    e = records.empty_records(0)
    assert records.merge_records(a, e)["key"].tolist() == [3]
    assert records.merge_records(e, a)["key"].tolist() == [3]


def test_searchsorted_records():
    base = records.sort_records(records.make_records(np.array([10, 20, 30], dtype=np.uint64)))
    probe = records.make_records(np.array([20], dtype=np.uint64))
    probe["rid"] = 0  # (20, 0) is <= (20, rid_of_20) position
    idx = records.searchsorted_records(base, probe)
    assert idx[0] in (1,)  # lands at the 20-entry


def test_records_equal():
    a = records.make_records(np.array([1, 2], dtype=np.uint64))
    b = a.copy()
    assert records.records_equal(a, b)
    b["key"][0] = 9
    assert not records.records_equal(a, b)


@given(st.lists(st.integers(min_value=0, max_value=2**39), max_size=200))
@settings(max_examples=50, deadline=None)
def test_sort_records_matches_python_sort(keys):
    r = records.make_records(np.array(keys, dtype=np.uint64))
    s = records.sort_records(r)
    expected = sorted((int(k), i) for i, k in enumerate(keys))
    assert [(int(x["key"]), int(x["rid"])) for x in s] == expected


@given(
    st.lists(st.integers(min_value=0, max_value=1000), max_size=80),
    st.lists(st.integers(min_value=0, max_value=1000), max_size=80),
)
@settings(max_examples=50, deadline=None)
def test_merge_is_sorted_and_complete(xs, ys):
    a = records.make_records(np.array(sorted(xs), dtype=np.uint64))
    b = records.make_records(np.array(sorted(ys), dtype=np.uint64))
    b["rid"] += len(xs)
    m = records.merge_records(a, b)
    ck = records.composite_keys(m) if m.size else np.array([], dtype=np.uint64)
    assert np.all(ck[:-1] <= ck[1:]) if m.size > 1 else True
    assert sorted(m["key"].tolist()) == sorted(xs + ys)
