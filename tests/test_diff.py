"""Tests for the run-diff regression gate (:mod:`repro.obs.diff`).

The acceptance contract from the issue: ``repro diff old.json new.json
--threshold 0.1`` exits non-zero when any tracked metric regressed past
the threshold and zero when reports match.  These tests pin the flatten/
coerce semantics, the threshold algebra (signed deltas, zero baselines,
per-path rules, ignore masks, strict shape checking), and the CLI exit
codes — including against a real recorded bench sidecar.
"""

import json
import math
import os

import pytest

from repro.obs import DIFF_SCHEMA, DiffResult, diff_runs, flatten


class TestFlatten:
    def test_nested_paths(self):
        flat = flatten({"a": {"b": [{"c": 1}, {"c": 2}]}, "d": 3})
        assert flat == {"a.b[0].c": 1, "a.b[1].c": 2, "d": 3}

    def test_numeric_string_coercion(self):
        # Bench sidecar tables store rows as lists of strings.
        flat = flatten({"row": ["4000", "1.895", "label"]})
        assert flat["row[0]"] == 4000
        assert flat["row[1]"] == 1.895
        assert flat["row[2]"] == "label"

    def test_non_finite_strings_stay_strings(self):
        flat = flatten({"x": "inf", "y": "nan"})
        assert flat["x"] == "inf" and flat["y"] == "nan"

    def test_bools_not_coerced(self):
        flat = flatten({"ok": True})
        assert flat["ok"] is True

    def test_empty_containers_survive(self):
        flat = flatten({"a": [], "b": {}})
        assert flat["a"] == [] and flat["b"] == {}


class TestDiffRuns:
    def test_identical_docs_ok(self):
        doc = {"x": 1, "y": {"z": [1.5, "s"]}}
        result = diff_runs(doc, dict(doc))
        assert result.ok and result.regressions == [] and result.changes == []

    def test_zero_threshold_flags_any_numeric_drift(self):
        result = diff_runs({"ios": 100}, {"ios": 101})
        assert not result.ok
        entry = result.regressions[0]
        assert entry.path == "ios" and entry.kind == "exceeds"
        assert entry.rel_delta == pytest.approx(0.01)

    def test_within_threshold_is_ok_but_reported(self):
        result = diff_runs({"s": 10.0}, {"s": 12.0}, threshold=0.5)
        assert result.ok
        assert result.changes[0].kind == "within"

    def test_past_threshold_regresses(self):
        # threshold=2.0 is the CI wall-clock gate: measured <= 3x recorded.
        ok = diff_runs({"s": 10.0}, {"s": 29.0}, threshold=2.0)
        bad = diff_runs({"s": 10.0}, {"s": 31.0}, threshold=2.0)
        assert ok.ok and not bad.ok

    def test_deltas_are_signed_improvements_pass(self):
        # A faster run is not a regression (except at threshold zero).
        result = diff_runs({"s": 10.0}, {"s": 1.0}, threshold=0.1)
        assert result.ok
        assert result.changes[0].rel_delta == pytest.approx(-0.9)

    def test_zero_baseline_is_infinite_delta(self):
        result = diff_runs({"x": 0}, {"x": 5}, threshold=1e9)
        assert not result.ok
        assert math.isinf(result.regressions[0].rel_delta)

    def test_per_path_rules_first_match_wins(self):
        a = {"wall_s": 1.0, "ios": 100}
        b = {"wall_s": 2.5, "ios": 101}
        # Default 0 (exact) but wall-clock gets a loose rule.
        result = diff_runs(a, b, threshold=0.0, rules=[("wall_s", 2.0)])
        assert len(result.regressions) == 1
        assert result.regressions[0].path == "ios"

    def test_ignore_masks_paths(self):
        a = {"host": "a", "params": {"jobs": 1}, "ios": 5}
        b = {"host": "b", "params": {"jobs": 4}, "ios": 5}
        result = diff_runs(a, b, ignore=["host", "params.*"])
        assert result.ok and result.changes == []

    def test_strict_flags_shape_changes(self):
        a, b = {"x": 1}, {"x": 1, "extra": 2}
        assert diff_runs(a, b).ok  # informational by default
        strict = diff_runs(a, b, strict=True)
        assert not strict.ok
        assert strict.regressions[0].kind == "added"

    def test_strict_flags_non_numeric_change_at_zero_threshold(self):
        a, b = {"algo": "balance"}, {"algo": "greed"}
        assert diff_runs(a, b).ok
        assert not diff_runs(a, b, strict=True).ok

    def test_result_to_dict_json_safe(self):
        result = diff_runs({"x": 0}, {"x": 1})
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["schema"] == DIFF_SCHEMA
        assert doc["ok"] is False
        assert doc["regressions"][0]["rel_delta"] == "inf"

    def test_tables_render(self):
        result = diff_runs({"x": 1, "y": 5.0}, {"x": 2, "y": 5.5},
                           threshold=0.5)
        text = "\n".join(t.render() for t in result.tables())
        assert "regressions (1)" in text
        assert "changes within threshold (1)" in text

    def test_recorded_bench_sidecar_self_diff(self):
        # The real CI gate input: a recorded sidecar diffs clean against
        # itself at threshold zero in strict mode.
        path = os.path.join(os.path.dirname(__file__), "..",
                            "benchmarks", "results", "e1_pdm_io.json")
        result = diff_runs(path, path, threshold=0.0, strict=True)
        assert result.ok and result.n_compared > 0


class TestDiffCli:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_identical_exits_zero(self, capsys, tmp_path):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", {"result": {"ios": 100}})
        b = self._write(tmp_path, "b.json", {"result": {"ios": 100}})
        rc = main(["diff", a, b])
        out = capsys.readouterr().out
        assert rc == 0
        assert "diff: OK" in out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", {"result": {"ios": 100}})
        b = self._write(tmp_path, "b.json", {"result": {"ios": 400}})
        rc = main(["diff", a, b, "--threshold", "0.1"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "diff: REGRESSION" in out
        assert "result.ios" in out

    def test_threshold_window_passes(self, capsys, tmp_path):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", {"wall_s": 10.0})
        b = self._write(tmp_path, "b.json", {"wall_s": 25.0})
        assert main(["diff", a, b, "--threshold", "2.0"]) == 0
        capsys.readouterr()

    def test_rule_and_ignore_flags(self, capsys, tmp_path):
        from repro.cli import main

        a = self._write(tmp_path, "a.json",
                        {"wall_s": 1.0, "ios": 100, "host": "x"})
        b = self._write(tmp_path, "b.json",
                        {"wall_s": 2.0, "ios": 100, "host": "y"})
        rc = main(["diff", a, b, "--rule", "wall_s=2.0", "--ignore", "host"])
        assert rc == 0
        capsys.readouterr()

    def test_malformed_rule_exits_two(self, capsys, tmp_path):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", {"x": 1})
        rc = main(["diff", a, a, "--rule", "nothreshold"])
        assert rc == 2
        capsys.readouterr()

    def test_emit_json_verdict(self, capsys, tmp_path):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", {"ios": 100})
        b = self._write(tmp_path, "b.json", {"ios": 150})
        rc = main(["diff", a, b, "--threshold", "0.1", "--emit-json", "-"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["schema"] == DIFF_SCHEMA and doc["ok"] is False

    def test_strict_gates_run_report_shape(self, capsys, tmp_path):
        # The CI determinism gate: two run reports from the same params
        # diff clean under --threshold 0 --strict with volatile paths
        # ignored; a shape change fails.
        from repro.cli import main

        a = self._write(tmp_path, "a.json", {"params": {"n": 100}, "ios": 5})
        b = self._write(tmp_path, "b.json",
                        {"params": {"n": 100}, "ios": 5, "extra": 1})
        assert main(["diff", a, a, "--threshold", "0", "--strict"]) == 0
        assert main(["diff", a, b, "--threshold", "0", "--strict"]) == 1
        capsys.readouterr()
