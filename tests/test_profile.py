"""Tests for the trace-driven profiler (:mod:`repro.obs.profile`).

The acceptance bar from the issue: on a real run's trace the hotspot
table's self-times must sum to the total wall-clock within 1% — i.e. the
profile accounts for (essentially) all of the measured time, which is
what made "where did the 12.2 s go?" answerable.  Plus structural tests
on synthetic traces: self-time complements, critical-path descent,
virtual closing of truncated spans, level tables, and the I/O timeline.
"""

import gzip
import json
import time

import pytest

from repro import workloads
from repro.core.sort_pdm import balance_sort_pdm
from repro.obs import (
    PROFILE_SCHEMA,
    Observation,
    profile_trace,
    render_profile,
)
from repro.pdm import ParallelDiskMachine


def _begin(span, parent, name, ts, **attrs):
    return {"ev": "begin", "span": span, "parent": parent, "name": name,
            "ts": ts, "attrs": attrs}


def _end(span, parent, name, ts, wall, **attrs):
    return {"ev": "end", "span": span, "parent": parent, "name": name,
            "ts": ts, "wall_s": wall, "attrs": attrs}


def _event(span, name, ts, **attrs):
    return {"ev": "event", "span": span, "name": name, "ts": ts,
            "attrs": attrs}


def _synthetic_trace():
    """root(10s) -> child_a(6s, level 0) + child_b(2s, level 1) with I/Os."""
    return [
        _begin(1, None, "root", 0.0),
        _begin(2, 1, "child_a", 1.0, level=0),
        _event(2, "io.read", 1.5, width=4),
        _event(2, "io.read", 2.0, width=2),
        _end(2, 1, "child_a", 7.0, 6.0),
        _begin(3, 1, "child_b", 7.0, level=1),
        _event(3, "io.write", 8.0, width=4),
        _end(3, 1, "child_b", 9.0, 2.0),
        _end(1, None, "root", 10.0, 10.0),
    ]


class TestProfileSynthetic:
    def test_schema_and_totals(self):
        prof = profile_trace(_synthetic_trace())
        assert prof["schema"] == PROFILE_SCHEMA
        assert prof["total_wall_s"] == 10.0
        assert prof["n_spans"] == 3
        assert prof["truncated_spans"] == 0
        assert prof["io"]["rounds"] == {
            "io.read": 2, "io.write": 1, "mem.step": 0, "total": 3}

    def test_self_times_are_exact_complements(self):
        prof = profile_trace(_synthetic_trace())
        by_name = {h["name"]: h for h in prof["hotspots"]}
        assert by_name["root"]["self_s"] == pytest.approx(2.0)   # 10 - 6 - 2
        assert by_name["child_a"]["self_s"] == pytest.approx(6.0)
        assert by_name["child_b"]["self_s"] == pytest.approx(2.0)
        assert prof["hotspots_total_self_s"] == pytest.approx(
            prof["total_wall_s"])

    def test_hotspots_sorted_by_self_time_and_top(self):
        prof = profile_trace(_synthetic_trace())
        selfs = [h["self_s"] for h in prof["hotspots"]]
        assert selfs == sorted(selfs, reverse=True)
        top1 = profile_trace(_synthetic_trace(), top=1)
        assert len(top1["hotspots"]) == 1
        # hotspots_total_self_s still covers ALL names, not just the shown.
        assert top1["hotspots_total_self_s"] == pytest.approx(10.0)

    def test_rounds_attributed_to_owning_span(self):
        prof = profile_trace(_synthetic_trace())
        by_name = {h["name"]: h for h in prof["hotspots"]}
        assert by_name["child_a"]["rounds"] == 2
        assert by_name["child_b"]["rounds"] == 1
        assert by_name["root"]["rounds"] == 0

    def test_critical_path_descends_heaviest_child(self):
        prof = profile_trace(_synthetic_trace())
        names = [row["name"] for row in prof["critical_path"]]
        assert names == ["root", "child_a"]  # 6s beats 2s
        assert [row["depth"] for row in prof["critical_path"]] == [0, 1]

    def test_level_table(self):
        prof = profile_trace(_synthetic_trace())
        levels = {row["level"]: row for row in prof["levels"]}
        assert levels[0]["rounds"] == 2 and levels[0]["wall_s"] == 6.0
        assert levels[1]["rounds"] == 1 and levels[1]["wall_s"] == 2.0

    def test_timeline_bins_and_mean_width(self):
        prof = profile_trace(_synthetic_trace(), bins=2)
        timeline = prof["io"]["timeline"]
        assert len(timeline) == 2
        # reads at ts 1.5, 2.0 land in [0, 5); the write at 8.0 in [5, 10).
        assert timeline[0]["rounds"] == 2
        assert timeline[0]["mean_width"] == pytest.approx(3.0)
        assert timeline[1]["rounds"] == 1
        assert timeline[1]["mean_width"] == pytest.approx(4.0)

    def test_stripe_width_histograms(self):
        prof = profile_trace(_synthetic_trace())
        widths = prof["io"]["stripe_width"]
        assert widths["read"] == {"2": 1, "4": 1}
        assert widths["write"] == {"4": 1}

    def test_mem_step_kind_feeds_width_histograms(self):
        events = [
            _begin(1, None, "root", 0.0),
            _event(1, "mem.step", 1.0, width=8, kind="read"),
            _event(1, "mem.step", 2.0, width=8, kind="write"),
            _end(1, None, "root", 3.0, 3.0),
        ]
        prof = profile_trace(events)
        assert prof["io"]["rounds"]["mem.step"] == 2
        assert prof["io"]["stripe_width"]["read"] == {"8": 1}
        assert prof["io"]["stripe_width"]["write"] == {"8": 1}


class TestProfileTruncated:
    def test_unclosed_span_closed_virtually_at_max_ts(self):
        events = [
            _begin(1, None, "root", 0.0),
            _begin(2, 1, "work", 1.0),
            _event(2, "io.read", 4.0, width=2),
            # crash: no ends at all
        ]
        prof = profile_trace(events)
        assert prof["truncated_spans"] == 2
        by_name = {h["name"]: h for h in prof["hotspots"]}
        assert by_name["root"]["wall_s"] == pytest.approx(4.0)
        assert by_name["work"]["wall_s"] == pytest.approx(3.0)
        # The identity survives truncation: self sums to the root wall.
        assert prof["hotspots_total_self_s"] == pytest.approx(
            prof["total_wall_s"])

    def test_end_without_begin_from_merged_trace(self):
        events = [_end(7, None, "orphan", 5.0, 5.0)]
        prof = profile_trace(events)
        assert prof["n_spans"] == 1
        assert prof["total_wall_s"] == pytest.approx(5.0)

    def test_empty_trace(self):
        prof = profile_trace([])
        assert prof["total_wall_s"] == 0.0
        assert prof["hotspots"] == []
        assert prof["critical_path"] == []
        assert prof["io"]["us_per_round"] is None


class TestProfileRealRun:
    def _trace(self):
        obs = Observation()
        machine = ParallelDiskMachine(memory=512, block=4, disks=8)
        data = workloads.by_name("uniform", 2000, seed=0)
        balance_sort_pdm(machine, data, obs=obs)
        obs.close()
        return list(obs.tracer.events)

    def test_attribution_within_one_percent(self):
        # The acceptance bar: hotspot self-times account for >= 99% of the
        # trace's total wall.
        prof = profile_trace(self._trace())
        total = prof["total_wall_s"]
        attributed = prof["hotspots_total_self_s"]
        assert total > 0
        assert abs(attributed - total) <= 0.01 * total

    def test_round_trips_match_machine_stats(self):
        obs = Observation()
        machine = ParallelDiskMachine(memory=512, block=4, disks=8)
        data = workloads.by_name("uniform", 2000, seed=0)
        res = balance_sort_pdm(machine, data, obs=obs)
        obs.close()
        prof = profile_trace(list(obs.tracer.events))
        rounds = prof["io"]["rounds"]
        assert rounds["io.read"] == res.io_stats["read_ios"]
        assert rounds["io.write"] == res.io_stats["write_ios"]
        assert rounds["total"] == res.total_ios

    def test_profile_from_gzip_trace_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        obs = Observation(trace_path=path)
        machine = ParallelDiskMachine(memory=512, block=4, disks=8)
        data = workloads.by_name("uniform", 1000, seed=0)
        balance_sort_pdm(machine, data, obs=obs)
        obs.close()
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"  # actually gzipped
        prof = profile_trace(path)
        assert prof["io"]["rounds"]["total"] > 0
        assert prof["truncated_spans"] == 0

    def test_render_profile_tables(self):
        prof = profile_trace(self._trace())
        text = "\n".join(t.render() for t in render_profile(prof))
        assert "profile summary" in text
        assert "hotspots (by self time)" in text
        assert "critical path" in text
        assert "I/O round trips" in text


class TestFusedRoundAccounting:
    """The profiler reports **logical** parallel-I/O rounds under fusion.

    Physically, an I/O plan collapses a window of write rounds into one
    store scatter — but the cost model (and therefore IOStats, the trace
    events, and every profile column derived from them) counts logical
    rounds.  A fused run's profile must be indistinguishable from the
    unfused reference: same round counts, same stripe-width histograms,
    same per-span attribution.
    """

    def _profile(self, io_plan):
        import os

        saved = os.environ.get("REPRO_IO_PLAN")
        os.environ["REPRO_IO_PLAN"] = io_plan
        try:
            obs = Observation()
            machine = ParallelDiskMachine(memory=512, block=4, disks=8)
            data = workloads.by_name("uniform", 2000, seed=0)
            res = balance_sort_pdm(machine, data, obs=obs)
            obs.close()
            return profile_trace(list(obs.tracer.events)), res, machine
        finally:
            if saved is None:
                os.environ.pop("REPRO_IO_PLAN", None)
            else:
                os.environ["REPRO_IO_PLAN"] = saved

    def test_logical_round_columns_identical_fused_vs_unfused(self):
        fused, fres, fmachine = self._profile("64")
        unfused, ures, _ = self._profile("0")
        # The plan actually fired in the fused run...
        assert fmachine.plan_stats.write_flushes > 0
        assert (fmachine.plan_stats.deferred_write_rounds
                > fmachine.plan_stats.write_flushes)
        # ...yet every logical-round column is the unfused reference's.
        assert fused["io"]["rounds"] == unfused["io"]["rounds"]
        assert fused["io"]["stripe_width"] == unfused["io"]["stripe_width"]
        assert fused["io"]["rounds"]["io.read"] == fres.io_stats["read_ios"]
        assert fused["io"]["rounds"]["io.write"] == fres.io_stats["write_ios"]
        assert fres.io_stats == ures.io_stats

    def test_per_span_round_attribution_identical(self):
        fused, _, _ = self._profile("64")
        unfused, _, _ = self._profile("0")
        by_name = lambda prof: {
            h["name"]: (h["count"], h["rounds"]) for h in prof["hotspots"]
        }
        assert by_name(fused) == by_name(unfused)
        levels = lambda prof: {
            row["level"]: row["rounds"] for row in prof["levels"]
        }
        assert levels(fused) == levels(unfused)

    def test_timeline_round_totals_identical(self):
        fused, _, _ = self._profile("64")
        unfused, _, _ = self._profile("0")
        total = lambda prof: sum(b["rounds"] for b in prof["io"]["timeline"])
        assert total(fused) == total(unfused) == fused["io"]["rounds"]["total"]


class TestRenderedHeaderUnits:
    """Golden-output regression: rendered headers carry explicit units.

    The profile docs always said µs/round means *self* µs per I/O round
    trip and the timeline's mean width is in blocks, but the rendered
    headers didn't — a reader of just the terminal output had to guess.
    These are exact golden column lists: a header change must be a
    deliberate edit here, not an accident.
    """

    def _tables(self):
        prof = profile_trace(_synthetic_trace(), bins=2)
        return {t.to_dict()["title"]: t.to_dict() for t in render_profile(prof)}

    def test_hotspot_headers_golden(self):
        tables = self._tables()
        assert tables["hotspots (by self time)"]["columns"] == [
            "span", "count", "wall s", "self s", "self %", "I/O rounds",
            "self µs/round",
        ]

    def test_critical_path_and_level_headers_golden(self):
        tables = self._tables()
        assert tables["critical path (longest chain)"]["columns"] == [
            "depth", "span", "wall s", "self s", "I/O rounds",
        ]
        assert tables["recursion levels"]["columns"] == [
            "level", "spans", "wall s", "self s", "I/O rounds",
        ]

    def test_timeline_headers_golden(self):
        tables = self._tables()
        assert tables["I/O utilization timeline (2 bins)"]["columns"] == [
            "t0 s", "I/O rounds", "mean width (blocks)",
        ]

    def test_summary_units_in_rendered_text(self):
        prof = profile_trace(_synthetic_trace())
        text = "\n".join(t.render() for t in render_profile(prof))
        assert "µs per round trip" in text
        assert "self µs/round" in text
        assert "mean width (blocks)" in text


class TestProfileCli:
    def test_profile_command(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "t.jsonl.gz"
        rc = main(["sort", "--n", "1000", "--disks", "4",
                   "--trace-out", str(trace)])
        capsys.readouterr()
        assert rc == 0
        rc = main(["profile", str(trace), "--top", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hotspots" in out

    def test_profile_emit_json(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        rc = main(["sort", "--n", "1000", "--disks", "4",
                   "--trace-out", str(trace)])
        capsys.readouterr()
        assert rc == 0
        rc = main(["profile", str(trace), "--emit-json", "-"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["schema"] == PROFILE_SCHEMA
        total, attributed = doc["total_wall_s"], doc["hotspots_total_self_s"]
        assert abs(attributed - total) <= 0.01 * total
