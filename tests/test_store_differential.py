"""Differential suite: arena block store vs the legacy dict store.

The storage substrate is pure engineering — the paper's cost model
(parallel I/Os, Theorem 1) never sees it.  That is only true if every
*observable* is bit-identical between ``REPRO_PDM_STORE=arena`` (the
default slab-allocated backend) and ``=dict`` (the legacy dict-of-dicts):

* sorted output records (exact array equality, keys *and* rids);
* the Balance matrices ``X`` / ``A`` and the location matrix ``L``
  after every engine round;
* the matching pairs every Rearrange call produces;
* the :class:`~repro.pdm.machine.IOStats` counters;
* the full exec payload (result + metrics + zero-clock trace), i.e. the
  unit the cache fingerprints and the golden corpus pins.

A drift in any of these means the arena fast paths changed behaviour,
not just speed — exactly the regression this suite exists to catch.
"""

import numpy as np
import pytest

from repro import workloads
from repro.core.balance import BalanceEngine
from repro.core.matching import derandomized_partial_match
from repro.core.sort_pdm import balance_sort_pdm
from repro.core.streams import peek_run
from repro.exec import run_task
from repro.obs import Observation
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.pdm.store import ArenaBlockStore, DictBlockStore, make_store
from repro.records import composite_keys

BACKENDS = ["arena", "dict"]

#: Cells small enough for the unit tier but deep enough to recurse,
#: rebalance, and hit partial-stripe writes.
CELLS = [
    {"n": 2000, "memory": 512, "block": 4, "disks": 4,
     "workload": "uniform", "seed": 0},
    {"n": 1500, "memory": 512, "block": 2, "disks": 8,
     "workload": "adversarial_striping", "seed": 2},
]


def _machine(cell, store):
    return ParallelDiskMachine(
        memory=cell["memory"], block=cell["block"], disks=cell["disks"],
        store=store,
    )


def _sort(cell, store, obs=None):
    data = workloads.by_name(cell["workload"], cell["n"], seed=cell["seed"])
    m = _machine(cell, store)
    res = balance_sort_pdm(m, data, obs=obs)
    out = peek_run(res.storage, res.output)
    return m, res, out


# ------------------------------------------------------------- selection


class TestBackendSelection:
    def test_make_store_names(self):
        assert isinstance(make_store("arena", 4, 4), ArenaBlockStore)
        assert isinstance(make_store("dict", 4, 4), DictBlockStore)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_PDM_STORE", "dict")
        assert isinstance(make_store(None, 4, 4), DictBlockStore)
        monkeypatch.setenv("REPRO_PDM_STORE", "arena")
        assert isinstance(make_store(None, 4, 4), ArenaBlockStore)
        monkeypatch.delenv("REPRO_PDM_STORE")
        assert isinstance(make_store(None, 4, 4), ArenaBlockStore)

    def test_machine_store_kwarg(self):
        assert isinstance(
            ParallelDiskMachine(memory=64, block=4, disks=2, store="dict").store,
            DictBlockStore,
        )


# ------------------------------------------------- end-to-end sort runs


class TestSortDifferential:
    @pytest.mark.parametrize("cell", CELLS, ids=lambda c: c["workload"])
    def test_records_and_iostats_identical(self, cell):
        runs = {s: _sort(cell, s) for s in BACKENDS}
        m_a, res_a, out_a = runs["arena"]
        m_d, res_d, out_d = runs["dict"]
        # Records: exact — keys and rids, in the same order.
        assert np.array_equal(out_a, out_d)
        # IOStats: every counter, including the derived width fraction.
        assert m_a.stats.snapshot() == m_d.stats.snapshot()
        # Sort-level measurements.
        for field in ("recursion_depth", "distribution_passes",
                      "engine_rounds", "blocks_swapped",
                      "blocks_unprocessed", "match_calls",
                      "max_balance_factor", "max_bucket_ratio"):
            assert getattr(res_a, field) == getattr(res_d, field), field
        assert m_a.memory_in_use == m_d.memory_in_use == 0

    @pytest.mark.parametrize("cell", CELLS, ids=lambda c: c["workload"])
    def test_exec_payload_identical(self, cell, monkeypatch):
        """The cache/golden unit: result + metrics + trace, bit for bit."""
        monkeypatch.setenv("REPRO_PDM_STORE", "arena")
        arena = run_task("sort_pdm", dict(cell))
        monkeypatch.setenv("REPRO_PDM_STORE", "dict")
        legacy = run_task("sort_pdm", dict(cell))
        assert arena == legacy

    def test_safe_copies_mode_identical(self, monkeypatch):
        """REPRO_PDM_SAFE_COPIES=1 changes aliasing, never observables."""
        cell = CELLS[0]
        monkeypatch.setenv("REPRO_PDM_SAFE_COPIES", "1")
        safe = run_task("sort_pdm", dict(cell))
        monkeypatch.delenv("REPRO_PDM_SAFE_COPIES")
        fast = run_task("sort_pdm", dict(cell))
        assert safe == fast


# ----------------------------------------- engine internals, round by round


def _trace_engine(store: str, n=1400, disks=8, block=4, seed=7):
    """Run one distribution pass, recording per-round engine state.

    Returns ``(rounds, pairs, bucket_runs_digest, io_snapshot)`` where
    ``rounds`` is a list of per-round dicts holding copies of X, A, the
    L-matrix shape/fill digest, and the round info the engine publishes.
    """
    data = workloads.by_name("adversarial_striping", n, seed=seed)
    m = ParallelDiskMachine(memory=4096, block=block, disks=disks, store=store)
    storage = VirtualDisks(m, disks)
    pairs: list[list[tuple[int, int]]] = []

    def recording_matcher(instance, matrices, rng):
        result = derandomized_partial_match(instance)
        pairs.append([(int(u), int(v)) for u, v in result.pairs])
        return result

    ck = np.sort(composite_keys(data))
    ranks = np.linspace(0, ck.size - 1, 5).astype(int)[1:-1]
    engine = BalanceEngine(storage, ck[ranks], matcher=recording_matcher)
    rounds: list[dict] = []

    def observer(eng, info):
        mats = eng.matrices
        rounds.append({
            "info": dict(info),
            "X": mats.X.copy().tolist(),
            "A": mats.A.copy().tolist(),
            # L digest: per (bucket, channel) chain lengths + block fills.
            "L": [[[(ref.address.vdisk, ref.fill) for ref in chain]
                   for chain in row] for row in mats.L],
        })

    engine.add_round_observer(observer)
    for i in range(0, data.shape[0], 64):
        part = data[i : i + 64]
        m.mem_acquire(part.shape[0])
        engine.feed(part)
        engine.run_rounds(drain_below=2 * engine.n_channels)
    buckets = engine.flush()
    digest = [
        (b.n_records, [(ref.address.vdisk, ref.fill) for ref in b.block_refs()])
        for b in buckets
    ]
    return rounds, pairs, digest, m.stats.snapshot()


class TestEngineDifferential:
    def test_matrices_pairs_and_buckets_identical(self):
        ra, pa, da, ia = _trace_engine("arena")
        rd, pd_, dd, id_ = _trace_engine("dict")
        assert len(ra) == len(rd) and len(ra) > 0
        for i, (a, d) in enumerate(zip(ra, rd)):
            assert a["info"] == d["info"], f"round {i} info drifted"
            assert a["X"] == d["X"], f"round {i} X drifted"
            assert a["A"] == d["A"], f"round {i} A drifted"
            assert a["L"] == d["L"], f"round {i} L drifted"
        assert pa == pd_, "matching pairs drifted"
        assert da == dd, "flushed bucket runs drifted"
        assert ia == id_, "IOStats drifted"

    def test_observed_run_matches_unobserved(self):
        """Attaching an Observation must not perturb either backend."""
        cell = CELLS[0]
        for store in BACKENDS:
            _, res_plain, out_plain = _sort(cell, store)
            obs = Observation()
            m_obs, res_obs, out_obs = _sort(cell, store, obs=obs)
            assert np.array_equal(out_plain, out_obs)
            assert res_plain.io_stats == res_obs.io_stats
            # The observed run recorded I/O events matching the counters.
            io_events = [e for e in obs.tracer.events
                         if e.get("name") in ("io.read", "io.write")]
            assert len(io_events) == res_obs.io_stats["total_ios"]
