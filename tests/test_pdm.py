"""Unit tests for the parallel disk machine, layout, and striping."""

import numpy as np
import pytest

from repro.exceptions import (
    AddressError,
    CapacityError,
    DiskContentionError,
    ParameterError,
)
from repro.pdm import (
    BlockAddress,
    ParallelDiskMachine,
    StripedFile,
    VirtualDisks,
    fully_striped_view,
)
from repro.pdm.layout import PAD_KEY, pad_to_block, strip_padding
from repro.pdm.striping import default_virtual_disk_count
from repro.records import RECORD_DTYPE, make_records
from repro.workloads import uniform


def machine(M=64, B=4, D=4, P=1):
    return ParallelDiskMachine(memory=M, block=B, disks=D, processors=P)


def block_of(machine_, value):
    r = make_records(np.full(machine_.B, value, dtype=np.uint64))
    return r


class TestMachineRules:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ParallelDiskMachine(memory=10, block=4, disks=4)  # DB > M/2
        with pytest.raises(ParameterError):
            ParallelDiskMachine(memory=64, block=0, disks=2)
        with pytest.raises(ParameterError):
            ParallelDiskMachine(memory=64, block=2, disks=2, processors=0)

    def test_write_then_read_roundtrip(self):
        m = machine()
        data = block_of(m, 7)
        m.mem_acquire(m.B)
        m.write_blocks([(BlockAddress(0, 0), data)])
        out = m.read_blocks([BlockAddress(0, 0)])[0]
        assert np.array_equal(out["key"], data["key"])
        assert m.stats.read_ios == 1 and m.stats.write_ios == 1

    def test_contention_rejected(self):
        m = machine()
        m.mem_acquire(2 * m.B)
        with pytest.raises(DiskContentionError):
            m.write_blocks(
                [(BlockAddress(1, 0), block_of(m, 1)), (BlockAddress(1, 1), block_of(m, 2))]
            )

    def test_read_unwritten_block(self):
        m = machine()
        with pytest.raises(AddressError):
            m.read_blocks([BlockAddress(0, 0)])

    def test_wrong_block_size_rejected(self):
        m = machine()
        m.mem_acquire(2)
        bad = make_records(np.array([1, 2], dtype=np.uint64))
        with pytest.raises(AddressError):
            m.write_blocks([(BlockAddress(0, 0), bad)])

    def test_wrong_dtype_rejected(self):
        m = machine()
        with pytest.raises(TypeError):
            m.write_blocks([(BlockAddress(0, 0), np.zeros(m.B))])

    def test_memory_ledger_overflow(self):
        m = machine(M=64, B=4, D=4)
        m.mem_acquire(64)
        with pytest.raises(CapacityError):
            m.mem_acquire(1)

    def test_memory_ledger_underflow(self):
        m = machine()
        with pytest.raises(CapacityError):
            m.mem_release(1)

    def test_read_respects_memory_capacity(self):
        m = machine(M=64, B=4, D=4)
        m.mem_acquire(m.B)
        m.write_blocks([(BlockAddress(0, 0), block_of(m, 3))])
        m.mem_acquire(m.M - m.B + 1)  # leave < B free
        with pytest.raises(CapacityError):
            m.read_blocks([BlockAddress(0, 0)])

    def test_one_io_moves_up_to_d_blocks(self):
        m = machine()
        m.mem_acquire(4 * m.B)
        m.write_blocks([(BlockAddress(d, 0), block_of(m, d)) for d in range(4)])
        assert m.stats.write_ios == 1
        assert m.stats.blocks_written == 4

    def test_allocate_slots_monotone(self):
        m = machine()
        a = m.allocate_slots(3)
        b = m.allocate_slots(2)
        assert b == a + 3

    def test_free_block_and_peek(self):
        m = machine()
        m.mem_acquire(m.B)
        m.write_blocks([(BlockAddress(2, 5), block_of(m, 9))])
        assert m.peek_block(BlockAddress(2, 5))["key"][0] == 9
        m.free_block(BlockAddress(2, 5))
        with pytest.raises(AddressError):
            m.peek_block(BlockAddress(2, 5))


class TestPadding:
    def test_pad_to_block(self):
        r = make_records(np.array([1, 2, 3], dtype=np.uint64))
        p = pad_to_block(r, 4)
        assert p.shape == (4,)
        assert p["key"][3] == PAD_KEY

    def test_pad_exact_multiple_unchanged(self):
        r = make_records(np.array([1, 2], dtype=np.uint64))
        assert pad_to_block(r, 2).shape == (2,)

    def test_strip_padding_inverts_pad(self):
        r = make_records(np.array([5], dtype=np.uint64))
        assert strip_padding(pad_to_block(r, 8)).shape == (1,)


class TestStripedFile:
    def test_roundtrip_counts_ios(self):
        m = machine(M=640, B=4, D=4)
        data = uniform(100, seed=1)
        f = StripedFile(m, 100, start_slot=m.allocate_slots(100))
        f.load_initial(data)
        assert m.stats.total_ios == 0  # initial placement is free
        out = f.read_all()
        assert np.array_equal(out["key"], data["key"])
        # 100 records, B=4 -> 25 blocks -> ceil(25/4)=7 stripes = 7 I/Os
        assert m.stats.read_ios == 7
        m.mem_release(100)

    def test_write_all_then_read_all(self):
        m = machine(M=640, B=4, D=4)
        data = uniform(50, seed=2)
        f = StripedFile(m, 50, start_slot=0)
        m.mem_acquire(50)
        f.write_all(data)
        assert m.memory_in_use == 0  # writes drain memory
        out = f.read_all()
        assert np.array_equal(out["key"], data["key"])
        m.mem_release(50)

    def test_block_address_round_robin(self):
        m = machine()
        f = StripedFile(m, 10 * m.B, start_slot=3)
        assert f.block_address(0) == BlockAddress(0, 3)
        assert f.block_address(5) == BlockAddress(1, 4)

    def test_stripe_out_of_range(self):
        m = machine()
        f = StripedFile(m, 4, start_slot=0)
        f.load_initial(make_records(np.arange(4, dtype=np.uint64)))
        with pytest.raises(AddressError):
            f.read_stripe(1)

    def test_length_mismatch_rejected(self):
        m = machine()
        f = StripedFile(m, 8, start_slot=0)
        with pytest.raises(ParameterError):
            f.load_initial(make_records(np.arange(4, dtype=np.uint64)))

    def test_empty_file(self):
        m = machine()
        f = StripedFile(m, 0, start_slot=0)
        assert f.read_all().size == 0
        assert f.n_stripes == 0


class TestVirtualDisks:
    def test_default_virtual_disk_count(self):
        assert default_virtual_disk_count(1) == 1
        assert default_virtual_disk_count(8) == 2
        assert default_virtual_disk_count(27) == 3
        assert default_virtual_disk_count(64) == 4

    def test_requires_divisibility(self):
        m = machine(M=64, B=2, D=6)
        with pytest.raises(ParameterError):
            VirtualDisks(m, 4)

    def test_virtual_block_size(self):
        m = machine(M=64, B=4, D=4)
        v = VirtualDisks(m, 2)
        assert v.virtual_block_size == 8  # B * D/D' = 4*2

    def test_write_read_roundtrip_one_io_each(self):
        m = machine(M=64, B=4, D=4)
        v = VirtualDisks(m, 2)
        d0 = make_records(np.arange(8, dtype=np.uint64))
        d1 = make_records(np.arange(8, dtype=np.uint64) + 100)
        m.mem_acquire(16)
        addrs = v.parallel_write([(0, d0), (1, d1)])
        assert m.stats.write_ios == 1
        out = v.parallel_read(addrs)
        assert m.stats.read_ios == 1
        assert np.array_equal(out[0]["key"], d0["key"])
        assert np.array_equal(out[1]["key"], d1["key"])
        m.mem_release(16)

    def test_two_blocks_one_vdisk_rejected(self):
        m = machine(M=64, B=4, D=4)
        v = VirtualDisks(m, 2)
        d = make_records(np.arange(8, dtype=np.uint64))
        with pytest.raises(DiskContentionError):
            v.parallel_write([(0, d), (0, d)])

    def test_wrong_virtual_block_size_rejected(self):
        m = machine(M=64, B=4, D=4)
        v = VirtualDisks(m, 2)
        with pytest.raises(ParameterError):
            v.parallel_write([(0, make_records(np.arange(4, dtype=np.uint64)))])

    def test_fully_striped_view(self):
        m = machine(M=64, B=4, D=4)
        v = fully_striped_view(m)
        assert v.n_virtual == 1
        assert v.virtual_block_size == 16

    def test_free_releases_blocks(self):
        m = machine(M=64, B=4, D=4)
        v = VirtualDisks(m, 2)
        d = make_records(np.arange(8, dtype=np.uint64))
        m.mem_acquire(8)
        addrs = v.parallel_write([(0, d)])
        v.free(addrs)
        with pytest.raises(AddressError):
            v.parallel_read(addrs)
