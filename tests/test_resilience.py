"""The resilience subsystem: fault-plan DSL, deterministic injection,
retrying runner, journal checkpoints, and cache integrity.

The load-bearing property throughout is *chaos determinism*: every fault
decision is a pure function of ``(plan seed, rule seed, site, cell,
attempt, index)``, so a seeded transient plan plus a retry budget yields
payloads **bit-identical** to the fault-free run (the full end-to-end
gate lives in ``tests/test_chaos.py``; this file pins the unit-level
mechanics that make it hold).
"""

import json
import os

import pytest

from repro.exceptions import InjectedIOError, ParameterError
from repro.exec import ParallelRunner, ResultCache, RunSpec, payload_digest
from repro.exec.runner import FAILURES_SCHEMA
from repro.obs import Observation
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    SweepJournal,
    decision_unit,
    exec_decision,
    grid_fingerprint,
    inject_cache_faults,
)

CELL = {"n": 256, "h": 16}
SPEC = RunSpec("hierarchy_sort", CELL)
SPEC2 = RunSpec("hierarchy_sort", {"n": 512, "h": 16})


def plan(*rules, seed=0):
    return FaultPlan(seed=seed, rules=tuple(rules)).validate()


def rule(site="exec.task", **kw):
    kw.setdefault("at", (0,))
    return FaultRule(site=site, **kw)


# ------------------------------------------------------------------ DSL


class TestFaultPlanDSL:
    def test_round_trip_dict(self):
        p = plan(rule(rate=0.25, at=(), seed=7), rule("store.read", budget=2),
                 seed=42)
        assert FaultPlan.from_dict(p.to_dict()) == p

    def test_round_trip_file(self, tmp_path):
        p = plan(rule("store.write", mode="corrupt", rate=0.5, at=()), seed=3)
        path = str(tmp_path / "plan.json")
        p.dump(path)
        assert FaultPlan.load(path) == p

    def test_inline_json_load(self):
        p = FaultPlan.load(
            '{"seed": 9, "rules": [{"site": "exec.task", "at": [0]}]}'
        )
        assert p.seed == 9
        assert p.rules[0].site == "exec.task"
        assert p.rules[0].at == (0,)

    def test_load_missing_file_is_parameter_error(self):
        with pytest.raises(ParameterError, match="not found"):
            FaultPlan.load("/nonexistent/plan.json")

    def test_load_bad_json_is_parameter_error(self):
        with pytest.raises(ParameterError, match="not valid JSON"):
            FaultPlan.loads("{nope")

    def test_unknown_schema_rejected(self):
        with pytest.raises(ParameterError, match="schema"):
            FaultPlan.from_dict({"schema": "repro.fault_plan/9", "rules": []})

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(ParameterError, match="wat"):
            FaultPlan.from_dict(
                {"rules": [{"site": "exec.task", "at": [0], "wat": 1}]}
            )

    @pytest.mark.parametrize("bad, match", [
        (dict(site="disk.read", at=(0,)), "unknown fault site"),
        (dict(site="exec.task", mode="flaky", at=(0,)), "unknown fault mode"),
        (dict(site="store.read", mode="corrupt", at=(0,)), "corrupt mode"),
        (dict(site="exec.task", effect="explode", at=(0,)), "unknown fault effect"),
        (dict(site="store.read", effect="crash", at=(0,)), "only applies to exec.task"),
        (dict(site="exec.task", rate=1.5), "rate must be in"),
        (dict(site="exec.task"), "can never fire"),
        (dict(site="exec.task", at=(0,), budget=0), "budget must be >= 1"),
        (dict(site="exec.task", at=(0,), attempts=0), "attempts must be >= 1"),
        (dict(site="exec.task", at=(0,), duration=-1.0), "duration must be >= 0"),
    ])
    def test_validation_errors(self, bad, match):
        with pytest.raises(ParameterError, match=match):
            FaultRule(**bad).validate()

    def test_plan_properties(self):
        p = plan(rule("store.write", mode="corrupt"))
        assert p.watches_store and p.wants_store_checksums
        q = plan(rule("exec.task"))
        assert not q.watches_store and not q.wants_store_checksums
        r = plan(rule("store.read"))
        assert r.watches_store and not r.wants_store_checksums


# -------------------------------------------------------------- decisions


class TestDecisionDeterminism:
    def test_decision_unit_pure_and_uniformish(self):
        a = decision_unit(1, 2, "store.read", "cell", 0, 5)
        assert a == decision_unit(1, 2, "store.read", "cell", 0, 5)
        assert 0.0 <= a < 1.0
        # each coordinate matters
        assert a != decision_unit(2, 2, "store.read", "cell", 0, 5)
        assert a != decision_unit(1, 2, "store.read", "cell", 1, 5)
        assert a != decision_unit(1, 2, "store.read", "other", 0, 5)

    def _stream(self, p, cell, attempt, n=64):
        inj = FaultInjector(p, cell=cell, attempt=attempt)
        return [inj.decide("store.read") is not None for _ in range(n)]

    def test_stream_is_pure_function_of_cell_and_attempt(self):
        p = plan(rule("store.read", rate=0.3, at=()))
        assert self._stream(p, "a", 0) == self._stream(p, "a", 0)
        assert self._stream(p, "a", 0) != self._stream(p, "b", 0)
        assert self._stream(p, "a", 0) != self._stream(p, "a", 1, n=64) or True

    def test_at_addressing_fires_exactly_there(self):
        p = plan(rule("store.read", at=(2, 5)))
        fired = [i for i, f in enumerate(self._stream(p, "c", 0, 8)) if f]
        assert fired == [2, 5]

    def test_budget_caps_fires(self):
        p = plan(rule("store.read", rate=1.0, at=(), budget=3))
        assert sum(self._stream(p, "c", 0, 10)) == 3

    def test_attempts_gates_transient_rules(self):
        p = plan(rule("store.read", rate=1.0, at=(), attempts=2))
        assert all(self._stream(p, "c", 0, 4))
        assert all(self._stream(p, "c", 1, 4))
        assert not any(self._stream(p, "c", 2, 4))

    def test_permanent_ignores_attempt_gate(self):
        p = plan(rule("store.read", mode="permanent", rate=1.0, at=()))
        assert all(self._stream(p, "c", 99, 4))

    def test_unwatched_site_never_consumes_opportunities(self):
        p = plan(rule("exec.task"))
        inj = FaultInjector(p, cell="c")
        for _ in range(4):
            assert inj.decide("store.read") is None
        assert inj._counts.get("store.read") is None

    def test_exec_decision_is_pure(self):
        p = plan(rule(effect="crash"))
        r0 = exec_decision(p, "cellkey", 0)
        assert r0 is not None and r0.effect == "crash"
        assert exec_decision(p, "cellkey", 0) == r0
        assert exec_decision(p, "cellkey", 1) is None  # attempts=1 gate

    def test_fired_events_and_counters(self):
        obs = Observation()
        inj = FaultInjector(plan(rule("store.read")), cell="abcd", obs=obs)
        with pytest.raises(InjectedIOError):
            inj.on_read()
        events = [e for e in obs.tracer.events if e["name"] == "fault.injected"]
        assert len(events) == 1
        assert events[0]["attrs"]["site"] == "store.read"
        exported = obs.registry.export()
        assert exported["resilience"]["counters"]["fault.injected"] == 1


# --------------------------------------------------------- serial runner


class TestSerialRetries:
    def test_transient_fault_retried_to_identical_payload(self):
        clean = ParallelRunner(jobs=0).map([SPEC])[0].payload
        p = plan(rule())  # exec.task raise at opportunity 0, attempt 0 only
        runner = ParallelRunner(jobs=0, retries=1, backoff=0.0, fault_plan=p)
        out = runner.map([SPEC])[0]
        assert not out.failed
        assert json.dumps(out.payload, sort_keys=True) == \
            json.dumps(clean, sort_keys=True)
        assert runner.stats["retried"] == 1
        assert runner.stats["failed"] == 0

    def test_permanent_fault_becomes_failure_record(self):
        p = plan(rule(mode="permanent"))
        runner = ParallelRunner(jobs=0, retries=2, backoff=0.0, fault_plan=p)
        out = runner.map([SPEC, SPEC2])
        for r in out:
            assert r.failed
            assert r.payload["schema"] == FAILURES_SCHEMA
            assert r.payload["attempts"] == 3
            assert r.error["type"] == "InjectedIOError"
            assert len(r.payload["errors"]) == 3
            with pytest.raises(KeyError):
                r.result  # failure payloads carry no result
        assert runner.stats["failed"] == 2
        assert runner.stats["retried"] == 4

    def test_failure_payloads_never_cached(self, tmp_path):
        p = plan(rule(mode="permanent"))
        cache_dir = str(tmp_path / "cache")
        runner = ParallelRunner(jobs=0, cache_dir=cache_dir, retries=0,
                                backoff=0.0, fault_plan=p)
        assert runner.map([SPEC])[0].failed
        assert runner.cache.stores == 0
        # a fresh fault-free runner over the same dir re-executes clean
        clean = ParallelRunner(jobs=0, cache_dir=cache_dir)
        out = clean.map([SPEC])[0]
        assert not out.failed and not out.cached

    def test_failed_duplicates_share_the_failure(self):
        p = plan(rule(mode="permanent"))
        runner = ParallelRunner(jobs=0, retries=0, backoff=0.0, fault_plan=p)
        a, b = runner.map([SPEC, RunSpec("hierarchy_sort", dict(CELL))])
        assert a.failed and b.failed
        assert a.payload is b.payload  # one execution, one record
        assert runner.stats["failed"] == 1

    def test_poisoned_payload_detected_and_retried(self):
        p = plan(rule(mode="corrupt"))
        runner = ParallelRunner(jobs=0, retries=1, backoff=0.0, fault_plan=p)
        out = runner.map([SPEC])[0]
        assert not out.failed
        assert runner.stats["retried"] == 1
        # without a retry budget the poison surfaces as the failure
        runner2 = ParallelRunner(jobs=0, retries=0, backoff=0.0, fault_plan=p)
        out2 = runner2.map([SPEC])[0]
        assert out2.failed
        assert out2.error["type"] == "PoisonedPayloadError"

    def test_hang_effect_self_releases_serially(self):
        p = plan(rule(effect="hang", duration=0.01))
        runner = ParallelRunner(jobs=0, retries=1, backoff=0.0, fault_plan=p)
        out = runner.map([SPEC])[0]
        assert not out.failed
        assert runner.stats["retried"] == 1

    def test_crash_effect_raises_typed_error_serially(self):
        p = plan(rule(effect="crash"))
        runner = ParallelRunner(jobs=0, retries=0, backoff=0.0, fault_plan=p)
        out = runner.map([SPEC])[0]
        assert out.failed
        assert out.error["type"] == "InjectedWorkerCrash"

    def test_retry_events_and_backoff_schedule(self):
        obs = Observation()
        p = plan(rule(mode="permanent"))
        runner = ParallelRunner(jobs=0, retries=2, backoff=0.0,
                                fault_plan=p, obs=obs)
        runner.map([SPEC])
        retries = [e for e in obs.tracer.events if e["name"] == "retry.attempt"]
        assert [e["attrs"]["backoff"] for e in retries] == [0.0, 0.0]
        failed = [e for e in obs.tracer.events if e["name"] == "runner.cell_failed"]
        assert len(failed) == 1
        res = obs.registry.export()["resilience"]["counters"]
        assert res["retry.attempt"] == 2
        assert res["cell_failed"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(retries=-1)
        with pytest.raises(ValueError):
            ParallelRunner(timeout=0)
        with pytest.raises(ValueError):
            ParallelRunner(backoff=-0.1)

    def test_no_plan_is_fault_free(self):
        runner = ParallelRunner(jobs=0, retries=3)
        out = runner.map([SPEC])[0]
        assert not out.failed and runner.stats["retried"] == 0


# ------------------------------------------------------------- pool path


@pytest.mark.slow
class TestPoolRecovery:
    """Pool-mode recovery (crash rebuild, timeout preemption, interrupt
    persistence).  The CI box may report one usable core, so these tests
    widen ``default_jobs`` explicitly."""

    @pytest.fixture(autouse=True)
    def _two_cores(self, monkeypatch):
        import repro.exec.runner as runner_mod
        monkeypatch.setattr(runner_mod, "default_jobs", lambda: 4)

    def test_worker_crash_rebuilds_and_retries(self):
        p = plan(rule(effect="crash"))
        runner = ParallelRunner(jobs=2, retries=1, backoff=0.0, fault_plan=p)
        out = runner.map([SPEC, SPEC2])
        assert all(not r.failed for r in out)
        assert runner.stats["pool_rebuilds"] >= 1
        assert runner.stats["retried"] == 2

    def test_pool_and_serial_retry_accounting_match(self):
        p = plan(rule(effect="crash"))
        serial = ParallelRunner(jobs=0, retries=1, backoff=0.0, fault_plan=p)
        pooled = ParallelRunner(jobs=2, retries=1, backoff=0.0, fault_plan=p)
        s = serial.map([SPEC, SPEC2])
        q = pooled.map([SPEC, SPEC2])
        assert json.dumps([r.payload for r in s], sort_keys=True) == \
            json.dumps([r.payload for r in q], sort_keys=True)
        assert serial.stats["retried"] == pooled.stats["retried"]

    def test_permanent_crash_isolates_to_failure_record(self):
        p = plan(rule(effect="crash", mode="permanent"))
        runner = ParallelRunner(jobs=2, retries=1, backoff=0.0, fault_plan=p)
        out = runner.map([SPEC])[0]
        assert out.failed
        assert out.error["type"] == "InjectedWorkerCrash"
        assert out.payload["attempts"] == 2

    def test_timeout_preempts_hung_worker(self):
        p = plan(rule(effect="hang", duration=20.0))
        runner = ParallelRunner(jobs=2, retries=1, backoff=0.0,
                                timeout=0.6, fault_plan=p)
        out = runner.map([SPEC])[0]
        assert not out.failed
        assert runner.stats["timeouts"] == 1
        assert runner.stats["pool_rebuilds"] >= 1

    def test_exhausted_timeout_charges_taskTimeout(self):
        p = plan(rule(effect="hang", mode="permanent", duration=20.0))
        runner = ParallelRunner(jobs=2, retries=0, timeout=0.6, fault_plan=p)
        out = runner.map([SPEC])[0]
        assert out.failed
        assert out.error["type"] == "TaskTimeout"

    def test_interrupt_persists_completed_payloads(self, monkeypatch, tmp_path):
        import repro.exec.runner as runner_mod
        real_wait = runner_mod.wait

        def wait_then_interrupt(fs, timeout=None, return_when=None):
            real_wait(fs)  # let every in-flight future finish...
            raise KeyboardInterrupt  # ...then interrupt before processing

        monkeypatch.setattr(runner_mod, "wait", wait_then_interrupt)
        journal = SweepJournal(str(tmp_path / "j"))
        runner = ParallelRunner(jobs=2, cache_dir=journal.cells_dir,
                                journal=journal)
        with pytest.raises(KeyboardInterrupt):
            runner.map([SPEC, SPEC2])
        # the interrupt handler drained both finished futures to the cache
        assert runner.executed == 2
        assert runner.cache.stores == 2
        assert journal.stats["total_done"] == 2
        # restart is warm: everything served from cache, nothing re-run
        warm = ParallelRunner(jobs=0, cache_dir=journal.cells_dir)
        out = warm.map([SPEC, SPEC2])
        assert all(r.cached for r in out)
        assert warm.executed == 0


# -------------------------------------------------------- cache integrity


class TestCacheIntegrity:
    PAYLOAD = {"schema": "x", "result": {"v": 1}}

    def test_wrapped_entry_round_trips(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k1", self.PAYLOAD)
        doc = json.load(open(tmp_path / "k1.json"))
        assert doc["schema"] == "repro.cache_entry/1"
        assert doc["sha256"] == payload_digest(self.PAYLOAD)
        fresh = ResultCache(str(tmp_path))
        assert fresh.get("k1") == self.PAYLOAD
        assert fresh.corrupt == 0

    def test_bit_rot_quarantined_and_counted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k1", self.PAYLOAD)
        path = tmp_path / "k1.json"
        text = path.read_text().replace('"v":1', '"v":2')
        path.write_text(text)
        fresh = ResultCache(str(tmp_path))
        assert fresh.get("k1") is None
        assert fresh.corrupt == 1 and fresh.misses == 1
        assert not path.exists()
        assert (tmp_path / "k1.json.quarantine").exists()
        assert fresh.stats["corrupt"] == 1

    def test_unparseable_json_quarantined(self, tmp_path):
        (tmp_path / "k2.json").write_text("{truncated")
        cache = ResultCache(str(tmp_path))
        assert cache.get("k2") is None
        assert cache.corrupt == 1
        assert (tmp_path / "k2.json.quarantine").exists()

    def test_legacy_bare_payload_accepted(self, tmp_path):
        (tmp_path / "k3.json").write_text(json.dumps(self.PAYLOAD))
        cache = ResultCache(str(tmp_path))
        assert cache.get("k3") == self.PAYLOAD
        assert cache.corrupt == 0

    def test_quarantine_emits_obs(self, tmp_path):
        (tmp_path / "k4.json").write_text("[]")
        obs = Observation()
        cache = ResultCache(str(tmp_path))
        assert cache.get("k4", obs=obs) is None
        names = [e["name"] for e in obs.tracer.events]
        assert "cache.quarantined" in names
        res = obs.registry.export()["resilience"]["counters"]
        assert res["cache.quarantined"] == 1

    def test_inject_cache_faults_corrupt_then_reexecute(self, tmp_path):
        cache_dir = str(tmp_path)
        runner = ParallelRunner(jobs=0, cache_dir=cache_dir)
        runner.map([SPEC])
        p = plan(rule("cache.entry", mode="corrupt", at=(0,)))
        assert inject_cache_faults(cache_dir, p) == 1
        again = ParallelRunner(jobs=0, cache_dir=cache_dir)
        out = again.map([SPEC])[0]
        assert not out.cached  # integrity check forced a re-execution
        assert again.cache.corrupt == 1

    def test_inject_cache_faults_delete(self, tmp_path):
        cache_dir = str(tmp_path)
        ParallelRunner(jobs=0, cache_dir=cache_dir).map([SPEC])
        p = plan(rule("cache.entry", mode="transient", at=(0,)))
        assert inject_cache_faults(cache_dir, p) == 1
        assert not any(n.endswith(".json") for n in os.listdir(cache_dir))

    def test_inject_cache_faults_inert_without_rules(self, tmp_path):
        assert inject_cache_faults(str(tmp_path), plan(rule())) == 0
        assert inject_cache_faults("/nonexistent", plan(rule("cache.entry"))) == 0


# ---------------------------------------------------------------- journal


class TestSweepJournal:
    def test_begin_and_record_round_trip(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        j.begin("sort_pdm", ["k1", "k2", "k3"])
        j.record("k1", "done")
        j.record("k2", "failed")
        fresh = SweepJournal(str(tmp_path / "j"))
        assert fresh.completed() == {"k1": "done", "k2": "failed"}
        start = fresh.last_start()
        assert start["task"] == "sort_pdm" and start["cells"] == 3
        assert start["grid"] == grid_fingerprint(["k3", "k1", "k2"])

    def test_last_record_wins(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        j.record("k1", "failed")
        j.record("k1", "done")
        assert j.completed() == {"k1": "done"}

    def test_torn_tail_is_forgiven(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        j.begin("t", ["k1"])
        j.record("k1", "done")
        with open(j.path, "a") as fh:
            fh.write('{"ev": "cell", "key": "k2"')  # SIGKILL mid-line
        fresh = SweepJournal(str(tmp_path / "j"))
        assert fresh.completed() == {"k1": "done"}

    def test_bad_interior_line_raises(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        with open(j.path, "a") as fh:
            fh.write("not json\n")
        j.record("k1", "done")
        with pytest.raises(ValueError, match="bad journal line"):
            j.read()

    def test_stats_tally_all_sessions(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        j.record("k1", "done")
        j2 = SweepJournal(str(tmp_path / "j"))
        j2.record("k2", "done")
        j2.record("k3", "failed")
        st = j2.stats
        assert st["recorded_done"] == 1 and st["recorded_failed"] == 1
        assert st["total_done"] == 2 and st["total_failed"] == 1

    def test_grid_fingerprint_order_independent(self):
        assert grid_fingerprint(["a", "b"]) == grid_fingerprint(["b", "a"])
        assert grid_fingerprint(["a"]) != grid_fingerprint(["a", "b"])

    def test_runner_checkpoints_each_cell(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        runner = ParallelRunner(jobs=0, cache_dir=j.cells_dir, journal=j)
        runner.map([SPEC, SPEC2])
        assert j.recorded_done == 2
        assert j.completed() and all(
            s == "done" for s in j.completed().values()
        )

    def test_runner_journals_failures(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        p = plan(rule(mode="permanent"))
        runner = ParallelRunner(jobs=0, retries=0, backoff=0.0,
                                fault_plan=p, journal=j)
        runner.map([SPEC])
        assert j.recorded_failed == 1
        assert list(j.completed().values()) == ["failed"]


class TestJournalJobRecords:
    """Job-granular checkpoints (``{"ev": "job"}``) used by the service."""

    def test_pending_jobs_admission_order(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        j.job("k1", "admitted", task="t", params={"n": 1})
        j.job("k2", "admitted", task="t", params={"n": 2})
        j.job("k1", "done")
        fresh = SweepJournal(str(tmp_path / "j"))
        pending = fresh.pending_jobs()
        assert [p["key"] for p in pending] == ["k2"]
        assert pending[0]["params"] == {"n": 2}
        assert fresh.stats["jobs_seen"] == 2
        assert fresh.stats["jobs_pending"] == 1

    def test_readmission_after_terminal_re_pends(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        j.job("k1", "admitted", task="t", params={})
        j.job("k1", "cancelled")
        j.job("k1", "admitted", task="t", params={})
        assert [p["key"] for p in j.pending_jobs()] == ["k1"]

    def test_verify_grid_names_both_fingerprints(self, tmp_path):
        j = SweepJournal(str(tmp_path / "j"))
        j.begin("t", ["a", "b"])
        recorded, requested = j.verify_grid(["a", "c"])
        assert recorded == grid_fingerprint(["a", "b"])
        assert requested == grid_fingerprint(["a", "c"])
        assert recorded != requested
        same_rec, same_req = j.verify_grid(["b", "a"])
        assert same_rec == same_req


class TestJournalGridMismatchCLI:
    """Satellite regression: a journal recorded for grid A refuses grid B
    with exit 2 and a diagnostic naming *both* fingerprints — on resume
    AND on plain (non-resume) attach, which used to silently append a
    second grid start."""

    GRID_A = ["sweep", "--task", "hierarchy", "--n", "256", "--h", "16"]
    GRID_B = ["sweep", "--task", "hierarchy", "--n", "512", "--h", "16"]

    @staticmethod
    def _main(argv):
        from repro.cli import main
        return main(argv)

    def _mismatch_err(self, capsys, jdir):
        import re

        err = capsys.readouterr().err
        assert "different grid" in err
        m = re.search(r"fingerprint (\w+) != (\w+)", err)
        assert m, f"diagnostic must name both fingerprints: {err!r}"
        recorded = SweepJournal(jdir).last_start()["grid"]
        assert m.group(1) == recorded
        assert m.group(2) != recorded
        return err

    def test_resume_mismatch_exit_two_names_fingerprints(self, tmp_path, capsys):
        jdir = str(tmp_path / "j")
        assert self._main(self.GRID_A + ["--journal", jdir]) == 0
        capsys.readouterr()
        rc = self._main(self.GRID_B + ["--journal", jdir, "--resume"])
        assert rc == 2
        err = self._mismatch_err(capsys, jdir)
        assert "refusing to resume" in err

    def test_plain_attach_mismatch_also_refused(self, tmp_path, capsys):
        jdir = str(tmp_path / "j")
        assert self._main(self.GRID_A + ["--journal", jdir]) == 0
        capsys.readouterr()
        rc = self._main(self.GRID_B + ["--journal", jdir])
        assert rc == 2
        err = self._mismatch_err(capsys, jdir)
        assert "refusing to attach" in err
        # and the journal still records exactly the original grid
        starts = [r for r in SweepJournal(jdir).read()
                  if r.get("ev") == "start"]
        assert len(starts) == 1

    def test_matching_grid_still_attaches(self, tmp_path, capsys):
        jdir = str(tmp_path / "j")
        assert self._main(self.GRID_A + ["--journal", jdir]) == 0
        assert self._main(self.GRID_A + ["--journal", jdir]) == 0
        capsys.readouterr()


class TestBackoffCap:
    """Satellite: ``--backoff-max`` bounds cumulative per-cell backoff."""

    def test_cap_bounds_cumulative_sleep(self):
        import time as _time

        p = plan(rule(mode="permanent"))
        runner = ParallelRunner(jobs=0, retries=6, backoff=0.2,
                                backoff_max=0.3, fault_plan=p)
        t0 = _time.monotonic()
        out = runner.map([SPEC])[0]
        elapsed = _time.monotonic() - t0
        assert out.payload["schema"] == FAILURES_SCHEMA
        stats = runner.stats
        # uncapped schedule would sleep 0.2 * (1+2+4+8+16+32) = 12.6 s
        assert elapsed < 3.0
        assert stats["backoff_max"] == 0.3
        assert stats["backoff_capped"] >= 1
        assert stats["backoff_slept"] <= 0.3 + 1e-6

    def test_cap_disabled_with_none(self):
        runner = ParallelRunner(jobs=0, backoff_max=None)
        assert runner.stats["backoff_max"] is None
        runner.map([SPEC])
        assert runner.stats["backoff_slept"] == 0.0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="backoff_max"):
            ParallelRunner(jobs=0, backoff_max=-1.0)

    def test_cap_surfaced_in_sweep_stderr(self, capsys):
        from repro.cli import main

        rc = main(["sweep", "--task", "hierarchy", "--n", "256", "--h", "16",
                   "--backoff-max", "2.5"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "backoff" in err


class TestQuarantineRace:
    """Satellite: two readers racing one corrupt entry must both miss,
    produce exactly one ``*.quarantine`` file, and count the corruption
    exactly once between them (only the reader whose ``os.replace`` wins
    increments)."""

    def test_two_racing_readers_count_once(self, tmp_path):
        import threading

        cache_dir = str(tmp_path)
        seed = ResultCache(cache_dir)
        seed.put("k1", {"schema": "x", "result": {"v": 1}})
        path = tmp_path / "k1.json"
        path.write_text(path.read_text().replace('"v":1', '"v":2'))

        readers = [ResultCache(cache_dir) for _ in range(2)]
        barrier = threading.Barrier(2)
        results = [None, None]
        errors = []

        def read(i):
            try:
                barrier.wait(timeout=10)
                results[i] = readers[i].get("k1")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=read, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert results == [None, None]  # both miss
        quarantined = [n for n in os.listdir(cache_dir)
                       if n.endswith(".quarantine")]
        assert quarantined == ["k1.json.quarantine"]
        assert not path.exists()
        assert readers[0].corrupt + readers[1].corrupt == 1
        assert readers[0].misses + readers[1].misses == 2

    def test_loser_still_misses_after_quarantine(self, tmp_path):
        # Sequential shape of the same race: second reader finds the
        # entry already quarantined → plain miss, no second count.
        cache_dir = str(tmp_path)
        seed = ResultCache(cache_dir)
        seed.put("k1", {"schema": "x", "result": {"v": 1}})
        path = tmp_path / "k1.json"
        path.write_text(path.read_text().replace('"v":1', '"v":2'))
        first, second = ResultCache(cache_dir), ResultCache(cache_dir)
        assert first.get("k1") is None and first.corrupt == 1
        assert second.get("k1") is None and second.corrupt == 0
        assert first.corrupt + second.corrupt == 1
