"""Memory telemetry: honest gauges, and provably out-of-band.

Two contracts under test.  First, the gauges themselves: both store
backends track resident/high-water block counts and slab growth, the
machine adds its internal-memory ledger peak, and the runner folds
worker snapshots (counters add, high waters max).  Second — the one CI
stakes its determinism story on — ``REPRO_MEM_TELEMETRY`` gates only
the *surfacing*: sweep payloads, stdout tables, and reports are
bit-identical with telemetry on or off (``repro diff --threshold 0
--strict`` is the proof, same as the live-telemetry and io-plan gates).
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs.memory import (
    PHASES,
    MemoryTelemetry,
    memory_telemetry_enabled,
)
from repro.pdm import ParallelDiskMachine
from repro.pdm.machine import collect_mem_stats, merge_mem_snapshots
from repro.pdm.store import make_store
from repro.records import make_records

BACKENDS = ["arena", "dict"]


def block(start, B=4):
    return make_records(np.arange(start, start + B, dtype=np.uint64))


# ------------------------------------------------------------- store gauges


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreGauges:
    def test_high_water_tracks_peak_not_current(self, backend):
        s = make_store(backend, 4, 4)
        disks = np.array([0, 1, 2], dtype=np.int64)
        slots = np.array([0, 0, 0], dtype=np.int64)
        s.write_batch(disks, slots, np.stack([block(0), block(4), block(8)]))
        snap = s.mem_snapshot()
        assert snap["resident_blocks"] == 3 == s.n_blocks()
        assert snap["high_water_blocks"] == 3
        s.free_batch(disks, slots)
        snap = s.mem_snapshot()
        assert snap["resident_blocks"] == 0
        assert snap["high_water_blocks"] == 3  # peak is sticky

    def test_overwrite_in_place_does_not_double_count(self, backend):
        s = make_store(backend, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(0)[None])
        s.write_batch(np.array([0]), np.array([0]), block(9)[None])
        snap = s.mem_snapshot()
        assert snap["resident_blocks"] == 1 == s.n_blocks()
        assert snap["high_water_blocks"] == 1

    def test_double_free_does_not_go_negative(self, backend):
        s = make_store(backend, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(0)[None])
        s.free(0, 0)
        s.free(0, 0)
        s.free_batch(np.array([0, 2]), np.array([0, 99]))
        assert s.mem_snapshot()["resident_blocks"] == 0

    def test_fused_read_free_decrements(self, backend):
        s = make_store(backend, 4, 4)
        disks = np.array([0, 1], dtype=np.int64)
        slots = np.array([0, 0], dtype=np.int64)
        s.write_batch(disks, slots, np.stack([block(0), block(4)]))
        s.read_batch(disks, slots, free=True)
        snap = s.mem_snapshot()
        assert snap["resident_blocks"] == 0
        assert snap["high_water_blocks"] == 2

    def test_snapshot_shape(self, backend):
        snap = make_store(backend, 4, 4).mem_snapshot()
        assert set(snap) == {
            "backend", "slab_rows", "slab_bytes", "resident_blocks",
            "high_water_blocks", "free_rows", "grow_events",
        }
        assert snap["backend"] == backend

    def test_gauges_always_on_even_when_disabled(self, backend, monkeypatch):
        # The counters are too cheap to branch on; only *surfacing* is
        # gated by REPRO_MEM_TELEMETRY.
        monkeypatch.setenv("REPRO_MEM_TELEMETRY", "0")
        s = make_store(backend, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(0)[None])
        assert s.mem_snapshot()["high_water_blocks"] == 1


def test_arena_grow_events_count_slab_growth():
    s = make_store("arena", 1, 4)
    grows0 = s.mem_snapshot()["grow_events"]
    n = 64
    for i in range(n):  # one block at a time forces geometric regrowth
        s.write_batch(np.array([0]), np.array([i]), block(4 * i)[None])
    snap = s.mem_snapshot()
    assert snap["grow_events"] > grows0
    assert snap["slab_rows"] >= n
    assert snap["slab_bytes"] > 0


# ----------------------------------------------------------- machine gauges


def test_machine_snapshot_adds_ledger_peak():
    m = ParallelDiskMachine(memory=64, block=4, disks=4)
    m.mem_acquire(40)
    m.mem_release(20)
    m.mem_acquire(10)  # current 30, peak 40
    snap = m.mem_snapshot()
    assert snap["machines"] == 1
    assert snap["ledger_high_water_records"] == 40
    assert snap["M"] == 64
    m.mem_release(30)
    assert m.mem_snapshot()["ledger_high_water_records"] == 40


def test_collect_and_merge_mem_snapshots():
    with collect_mem_stats() as fns:
        m1 = ParallelDiskMachine(memory=64, block=4, disks=4)
        m2 = ParallelDiskMachine(memory=64, block=4, disks=4)
        m1.mem_acquire(10)
        m2.mem_acquire(30)
        m1.store.write_batch(np.array([0]), np.array([0]), block(0)[None])
    assert len(fns) == 2
    merged = merge_mem_snapshots(fn() for fn in fns)
    assert merged["machines"] == 2  # counters add
    assert merged["ledger_high_water_records"] == 30  # high waters max
    assert merged["high_water_blocks"] == 1
    # Machines built outside the context are not collected.
    ParallelDiskMachine(memory=64, block=4, disks=4)
    assert len(fns) == 2
    # An empty fold is the all-zero gauge set (what a disabled run reports).
    assert not any(merge_mem_snapshots([]).values())


# ------------------------------------------------------ enable gate + RSS


def test_memory_telemetry_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_MEM_TELEMETRY", raising=False)
    assert memory_telemetry_enabled() is True  # default on
    for off in ("0", "", "off"):
        monkeypatch.setenv("REPRO_MEM_TELEMETRY", off)
        assert memory_telemetry_enabled() is False
    monkeypatch.setenv("REPRO_MEM_TELEMETRY", "1")
    assert memory_telemetry_enabled() is True


def test_memory_telemetry_samples_top_level_phases():
    mt = MemoryTelemetry()
    mt.observe_span_end("distribute", {"level": 0})
    mt.observe_span_end("distribute", {"level": 2})  # recursion: skipped
    mt.observe_span_end("io.batch", {})  # not a phase: skipped
    mt.observe_span_end("merge", {})  # missing level counts as top
    snap = mt.snapshot()
    assert [s["phase"] for s in snap["phase_rss"]] == ["distribute", "merge"]
    assert all(s["rss_kb"] >= 0 for s in snap["phase_rss"])
    assert snap["peak_rss_kb"] >= max(
        (s["rss_kb"] for s in snap["phase_rss"]), default=0
    )
    assert set(PHASES) >= {"partition", "distribute", "merge"}


# ------------------------------------------- payload purity (the CI gate)


class TestPayloadPurity:
    GRID = ["sweep", "--task", "sort", "--n", "2000,4000", "--disks", "4"]

    def _run(self, tmp_path, monkeypatch, capsys, enabled):
        monkeypatch.setenv("REPRO_MEM_TELEMETRY", "1" if enabled else "0")
        out = tmp_path / f"mem_{enabled}.json"
        stats = tmp_path / f"stats_{enabled}.json"
        rc = main([*self.GRID, "--emit-json", str(out),
                   "--stats-json", str(stats)])
        assert rc == 0
        return capsys.readouterr().out, out, stats

    def test_payloads_bit_identical_on_or_off(self, tmp_path, monkeypatch,
                                              capsys):
        stdout_off, json_off, _ = self._run(tmp_path, monkeypatch, capsys,
                                            enabled=False)
        stdout_on, json_on, stats_on = self._run(tmp_path, monkeypatch,
                                                 capsys, enabled=True)
        assert stdout_on == stdout_off
        rc = main(["diff", str(json_off), str(json_on),
                   "--threshold", "0", "--strict"])
        assert rc == 0, "memory telemetry leaked into the report"
        # And the telemetry actually measured something when on.
        memory = json.loads(stats_on.read_text())["runner"]["memory"]
        assert memory["high_water_blocks"] > 0
        assert memory["machines"] == 2  # one per grid cell
        assert memory["ledger_high_water_records"] > 0
        assert memory["peak_rss_kb"] > 0

    def test_disabled_run_reports_no_gauges(self, tmp_path, monkeypatch,
                                            capsys):
        _, _, stats_off = self._run(tmp_path, monkeypatch, capsys,
                                    enabled=False)
        memory = json.loads(stats_off.read_text())["runner"]["memory"]
        assert memory == {} or not any(memory.values())

    def test_pool_merges_worker_snapshots(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.setenv("REPRO_MEM_TELEMETRY", "1")
        stats = tmp_path / "pool_stats.json"
        rc = main([*self.GRID, "--jobs", "2", "--stats-json", str(stats)])
        assert rc == 0
        capsys.readouterr()
        memory = json.loads(stats.read_text())["runner"]["memory"]
        assert memory["machines"] == 2
        assert memory["high_water_blocks"] > 0
        assert memory["peak_rss_kb"] > 0


def test_mem_chatter_is_interactive_only(capsys, monkeypatch):
    import sys as _sys

    args = ["sort", "--n", "2000", "--memory", "512", "--disks", "4"]
    monkeypatch.setenv("REPRO_MEM_TELEMETRY", "1")
    assert main(args) == 0
    assert "[mem]" not in capsys.readouterr().err  # stderr is not a tty
    monkeypatch.setattr(_sys.stderr, "isatty", lambda: True, raising=False)
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "[mem]" in err and "arena high-water" in err
    monkeypatch.setenv("REPRO_MEM_TELEMETRY", "0")
    assert main(args) == 0
    assert "[mem]" not in capsys.readouterr().err
    monkeypatch.setenv("REPRO_MEM_TELEMETRY", "1")
    assert main([*args, "--quiet"]) == 0
    assert "[mem]" not in capsys.readouterr().err
