"""Golden-pinned tests for the regression-attribution engine.

Attribution is CI-facing output: the ranked span table's column headers
and the verdict vocabulary are pinned here the same way the profile and
report tables are — renaming a column or a verdict is a contract change,
not a refactor.
"""

import pytest

from repro.obs import ATTRIB_SCHEMA, attribute_runs, render_attrib


def _profile(distribute=1.0, partition=0.2, rounds_distribute=1848,
             rounds_partition=756, total=None, read_width=None):
    hotspots = [
        {"name": "distribute", "count": 9, "wall_s": distribute + 0.1,
         "self_s": distribute, "rounds": rounds_distribute},
        {"name": "partition", "count": 9, "wall_s": partition + 0.05,
         "self_s": partition, "rounds": rounds_partition},
    ]
    io = {"rounds": {"io.read": 0, "io.write": 0, "mem.step": 0,
                     "total": rounds_distribute + rounds_partition}}
    if read_width is not None:
        io["stripe_width"] = {"read": read_width, "write": {}}
    return {
        "schema": "repro.profile/1",
        "total_wall_s": total if total is not None else distribute + partition,
        "hotspots": hotspots,
        "io": io,
    }


def _report(distribute=1.0, partition=0.2):
    return {
        "schema": "repro.run_report/1",
        "phases": [
            {"name": "distribute", "wall_s": distribute, "read_ios": 924,
             "write_ios": 924},
            {"name": "partition", "wall_s": partition, "read_ios": 378,
             "write_ios": 378},
        ],
    }


class TestAttributeRuns:
    def test_schema_basis_and_ranking(self):
        attrib = attribute_runs(_profile(), _profile(distribute=2.9))
        assert attrib["schema"] == ATTRIB_SCHEMA
        assert attrib["basis"] == "self_s"
        names = [r["name"] for r in attrib["spans"]]
        assert names[0] == "distribute"  # ranked by |Δ|, largest first
        top = attrib["spans"][0]
        assert top["delta_s"] == pytest.approx(1.9)
        assert top["rounds_unchanged"] is True
        assert top["verdict"] == "per-round dispatch regressed (rounds unchanged)"

    def test_rounds_changed_verdict(self):
        b = _profile(distribute=2.9, rounds_distribute=3700)
        attrib = attribute_runs(_profile(), b)
        top = attrib["spans"][0]
        assert top["rounds_unchanged"] is False
        assert top["verdict"] == "more I/O rounds (schedule changed)"

    def test_improvement_verdict(self):
        attrib = attribute_runs(_profile(distribute=2.9), _profile())
        top = attrib["spans"][0]
        assert top["delta_s"] == pytest.approx(-1.9)
        assert top["verdict"] == "per-round dispatch improved (rounds unchanged)"

    def test_noise_floor_says_unchanged(self):
        attrib = attribute_runs(_profile(), _profile(distribute=1.001))
        assert all(r["verdict"] == "unchanged" for r in attrib["spans"])
        assert attrib["findings"] == []

    def test_findings_read_like_the_diagnosis(self):
        attrib = attribute_runs(_profile(), _profile(distribute=2.9))
        finding = attrib["findings"][0]
        assert finding == (
            "distribute self-time +1.90 s, rounds unchanged "
            "⇒ per-round dispatch regressed"
        )

    def test_config_deltas_with_default_placeholder(self):
        attrib = attribute_runs(
            _profile(), _profile(distribute=2.9),
            a_meta={"config": {}}, b_meta={"config": {"io_plan": "0"}},
        )
        assert attrib["config"] == [
            {"key": "io_plan", "a": "(default)", "b": "0"}
        ]
        assert "config delta: io_plan '(default)' → '0'" in attrib["findings"]

    def test_report_pair_uses_wall_basis(self):
        attrib = attribute_runs(_report(), _report(distribute=2.9))
        assert attrib["basis"] == "wall_s"
        assert attrib["spans"][0]["a_rounds"] == 1848  # read+write ios
        assert attrib["rounds"]["a"] == 1848 + 756

    def test_mixed_profile_report_uses_wall_basis(self):
        attrib = attribute_runs(_profile(), _report(distribute=2.9))
        assert attrib["basis"] == "wall_s"

    def test_stripe_width_means(self):
        a = _profile(read_width={"4": 10})
        b = _profile(distribute=2.9, read_width={"2": 10, "4": 10})
        attrib = attribute_runs(a, b)
        assert attrib["stripe_width"] == [
            {"kind": "read", "a_mean": 4.0, "b_mean": 3.0}
        ]

    def test_top_truncates_after_ranking(self):
        attrib = attribute_runs(_profile(), _profile(distribute=2.9), top=1)
        assert len(attrib["spans"]) == 1
        assert attrib["spans"][0]["name"] == "distribute"

    def test_non_run_documents_refused(self):
        with pytest.raises(ValueError, match="cannot attribute run A"):
            attribute_runs({"schema": "repro.bench_point/1"}, _profile())


class TestRenderAttrib:
    def test_golden_columns(self):
        attrib = attribute_runs(
            _profile(read_width={"4": 10}),
            _profile(distribute=2.9, read_width={"4": 10}),
            a_meta={"commit": "aaa", "config": {}},
            b_meta={"commit": "bbb", "config": {"io_plan": "0"}},
        )
        tables = render_attrib(attrib)
        assert [t.title for t in tables] == [
            "attribution · aaa → bbb · ranked by |Δ self time|",
            "run totals",
            "config deltas",
        ]
        spans, totals, config = tables
        assert spans.columns == [
            "span", "self s (A)", "self s (B)", "Δ s", "Δ share %",
            "rounds (A)", "rounds (B)", "verdict",
        ]
        assert totals.columns == ["metric", "A", "B", "Δ"]
        metric_rows = [row[0] for row in totals.rows]
        assert metric_rows == [
            "total s", "I/O rounds", "mean read width (blocks)",
        ]
        assert config.columns == ["config", "A", "B"]

    def test_wall_basis_labels_columns(self):
        tables = render_attrib(attribute_runs(_report(), _report(2.9)))
        assert "wall s (A)" in tables[0].columns
        assert tables[0].title.endswith("ranked by |Δ wall time|")

    def test_config_table_absent_without_deltas(self):
        tables = render_attrib(attribute_runs(_profile(), _profile(2.9)))
        assert [t.title for t in tables] == [
            "attribution · ranked by |Δ self time|", "run totals",
        ]
