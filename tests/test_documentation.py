"""Documentation contract: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test makes
that a checked property rather than a hope.  Public = importable from a
``repro`` module without a leading underscore.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


def public_members(module):
    for attr in dir(module):
        if attr.startswith("_"):
            continue
        obj = getattr(module, attr)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield attr, obj


@pytest.mark.parametrize("name", MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for attr, obj in public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(attr)
        if inspect.isclass(obj):
            for m_name, member in inspect.getmembers(obj, inspect.isfunction):
                if m_name.startswith("_") or member.__module__ != obj.__module__:
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{attr}.{m_name}")
    assert not undocumented, f"{name}: missing docstrings on {undocumented}"


def test_package_docstring_mentions_the_paper():
    assert "Nodine" in repro.__doc__ and "Vitter" in repro.__doc__


def test_version_is_exposed():
    assert isinstance(repro.__version__, str) and repro.__version__.count(".") == 2
