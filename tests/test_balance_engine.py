"""Integration tests for the Balance engine (Algorithms 3, 5, 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.core.balance import BalanceEngine, read_bucket_run
from repro.exceptions import ParameterError
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys, make_records, sort_records


def make_storage(M=4096, B=4, D=8, n_virtual=4):
    machine = ParallelDiskMachine(memory=M, block=B, disks=D)
    return machine, VirtualDisks(machine, n_virtual)


def pivots_for(records: np.ndarray, s: int) -> np.ndarray:
    ck = np.sort(composite_keys(records))
    ranks = np.linspace(0, ck.size - 1, s + 1).astype(int)[1:-1]
    return ck[ranks]


def feed_all(engine, machine, records, chunk=64):
    for i in range(0, records.shape[0], chunk):
        part = records[i : i + chunk]
        machine.mem_acquire(part.shape[0])
        engine.feed(part)
        engine.run_rounds(drain_below=2 * engine.n_channels)
    return engine.flush()


class TestEngineBasics:
    def test_rejects_unsorted_pivots(self):
        machine, storage = make_storage()
        with pytest.raises(ParameterError):
            BalanceEngine(storage, np.array([5, 1], dtype=np.uint64))

    def test_feed_after_flush_rejected(self):
        machine, storage = make_storage()
        engine = BalanceEngine(storage, np.array([100], dtype=np.uint64))
        engine.flush()
        with pytest.raises(ParameterError):
            engine.feed(make_records(np.array([1], dtype=np.uint64)))

    def test_empty_flush(self):
        machine, storage = make_storage()
        engine = BalanceEngine(storage, np.array([100], dtype=np.uint64))
        runs = engine.flush()
        assert len(runs) == 2
        assert all(r.n_records == 0 for r in runs)

    def test_bucket_record_counts_match_partition(self):
        machine, storage = make_storage()
        data = workloads.uniform(500, seed=3)
        piv = pivots_for(data, 4)
        engine = BalanceEngine(storage, piv)
        runs = feed_all(engine, machine, data)
        expected = np.bincount(
            np.searchsorted(piv, composite_keys(data), side="right"), minlength=4
        )
        assert engine.bucket_record_counts.tolist() == expected.tolist()
        assert sum(r.n_records for r in runs) == 500

    def test_unknown_matcher_rejected(self):
        machine, storage = make_storage()
        with pytest.raises(ParameterError):
            BalanceEngine(storage, np.array([100], dtype=np.uint64), matcher="bogus")


class TestDistributionCorrectness:
    @pytest.mark.parametrize("matcher", ["derandomized", "randomized", "greedy", "mincost"])
    @pytest.mark.parametrize("workload", ["uniform", "adversarial_striping", "few_distinct"])
    def test_every_record_lands_in_its_bucket(self, matcher, workload):
        machine, storage = make_storage()
        data = workloads.by_name(workload, 600, seed=5)
        piv = pivots_for(data, 5)
        engine = BalanceEngine(storage, piv, matcher=matcher, rng=np.random.default_rng(1))
        runs = feed_all(engine, machine, data)
        seen = 0
        for b, run in enumerate(runs):
            for chunk in read_bucket_run(storage, run, free=True):
                buckets = np.searchsorted(piv, composite_keys(chunk), side="right")
                assert np.all(buckets == b)
                seen += chunk.shape[0]
                machine.mem_release(chunk.shape[0])
        assert seen == 600

    def test_invariants_checked_every_round(self):
        machine, storage = make_storage()
        data = workloads.adversarial_striping(800, seed=6, period=4)
        engine = BalanceEngine(
            storage, pivots_for(data, 4), matcher="derandomized", check_invariants=True
        )
        feed_all(engine, machine, data)  # raises InvariantViolation on failure

    def test_rebalancing_happens_under_skew(self):
        machine, storage = make_storage()
        # every block the same bucket ordering: tentative placement always
        # hits channel 0 first for bucket 0 — swaps must occur
        data = workloads.adversarial_striping(800, seed=7, period=4)
        engine = BalanceEngine(storage, pivots_for(data, 4))
        feed_all(engine, machine, data)
        assert engine.stats.blocks_swapped > 0

    def test_theorem4_balance_bound(self):
        machine, storage = make_storage()
        for workload in ["uniform", "adversarial_striping", "adversarial_bucket_skew"]:
            machine, storage = make_storage()
            data = workloads.by_name(workload, 1000, seed=8)
            engine = BalanceEngine(storage, pivots_for(data, 4))
            feed_all(engine, machine, data)
            # Theorem 4: "no more than a factor of about 2 above optimal";
            # the flush's padded tail adds at most a small additive slack.
            assert engine.matrices.max_balance_factor() <= 2.5


class TestBucketRuns:
    def test_block_refs_and_counts(self):
        machine, storage = make_storage()
        data = workloads.uniform(300, seed=9)
        engine = BalanceEngine(storage, pivots_for(data, 3))
        runs = feed_all(engine, machine, data)
        for run in runs:
            refs = run.block_refs()
            assert run.n_blocks == len(refs)
            assert sum(r.fill for r in refs) == run.n_records

    def test_max_blocks_on_channel_is_read_cost(self):
        machine, storage = make_storage()
        data = workloads.uniform(400, seed=10)
        engine = BalanceEngine(storage, pivots_for(data, 2))
        runs = feed_all(engine, machine, data)
        run = max(runs, key=lambda r: r.n_records)
        before = machine.stats.read_ios
        for chunk in read_bucket_run(storage, run, free=True):
            machine.mem_release(chunk.shape[0])
        assert machine.stats.read_ios - before == run.max_blocks_on_channel


class TestEngineProperty:
    @given(st.integers(0, 10**6), st.integers(2, 6), st.sampled_from([2, 4, 8]))
    @settings(max_examples=25, deadline=None)
    def test_property_partition_and_balance(self, seed, s, hp):
        machine = ParallelDiskMachine(memory=8192, block=2, disks=8)
        storage = VirtualDisks(machine, hp)
        data = workloads.uniform(int(np.random.default_rng(seed).integers(1, 700)), seed=seed)
        piv = pivots_for(data, s) if data.size >= s else np.sort(composite_keys(data))[: s - 1]
        engine = BalanceEngine(storage, piv, rng=np.random.default_rng(seed))
        runs = feed_all(engine, machine, data)
        # conservation
        assert sum(r.n_records for r in runs) == data.shape[0]
        # invariant 2 held at the end
        engine.matrices.check_invariant_2()
        # every bucket readable within the Theorem-4 factor
        assert engine.matrices.max_balance_factor() <= 2.5 + 2 / max(
            1, engine.matrices.X.max()
        )
