"""Tests for the observability layer: metrics, tracer, reports, hooks.

Covers the :mod:`repro.obs` subsystem itself (registry semantics, span
nesting, JSONL round-trips, run reports) and its integration contract with
the simulators — most importantly that attaching an observation changes
*no* measured quantity (I/O counts, model times are bit-identical to the
uninstrumented run).
"""

import io
import json

import numpy as np
import pytest

from repro import workloads
from repro.core.balance import BalanceEngine
from repro.core.sort_hierarchy import balance_sort_hierarchy
from repro.core.sort_pdm import balance_sort_pdm
from repro.hierarchies import ParallelHierarchies
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    Observation,
    RunReport,
    Tracer,
    read_trace,
    render_report,
    summarize_trace,
)
from repro.obs.report import SCHEMA
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys


# --------------------------------------------------------------------------
# metrics registry
# --------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.export() == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_watermarks(self):
        g = Gauge("load")
        g.set(3.0)
        g.set(1.0)
        g.set(2.0)
        assert g.export() == {"value": 2.0, "min": 1.0, "max": 3.0}

    def test_histogram_exact_mode(self):
        h = Histogram("width")
        for v in [8, 8, 4, 8]:
            h.observe(v)
        ex = h.export()
        assert ex["count"] == 4
        assert ex["dist"] == {"4": 1, "8": 3}
        assert ex["min"] == 4 and ex["max"] == 8
        assert ex["mean"] == pytest.approx(7.0)

    def test_histogram_preaggregated(self):
        h = Histogram("swaps")
        h.observe(2, n=5)
        assert h.count == 5 and h.sum == 10

    def test_histogram_bucketed(self):
        h = Histogram("cost", buckets=[1, 4, 16])
        for v in [0.5, 3, 10, 100]:
            h.observe(v)
        dist = h.export()["dist"]
        assert dist == {"le=1": 1, "le=4": 1, "le=16": 1, "le=+Inf": 1}

    def test_get_or_create_and_type_clash(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_dotted_scope_nests(self):
        r = MetricsRegistry()
        r.scope("pdm.cpu").counter("work").inc(7)
        # dotted path nests: resetting the parent scope reaches the child
        assert r.scope("pdm").scope("cpu").counter("work").value == 7
        r.scope("pdm").reset()
        assert r.scope("pdm.cpu").counter("work").value == 0

    def test_export_skips_empty_scopes(self):
        r = MetricsRegistry()
        r.scope("empty")
        r.scope("full").counter("n").inc()
        ex = r.export()
        assert "empty" not in ex
        assert ex["full"]["counters"]["n"] == 1

    def test_walk_paths(self):
        r = MetricsRegistry()
        r.counter("top").inc()
        r.scope("sub").gauge("g").set(1)
        paths = [p for p, _ in r.walk()]
        assert paths == ["top", "sub.g"]

    def test_reset_recursive(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.scope("s").histogram("h").observe(1)
        r.reset()
        assert r.counter("c").value == 0
        assert r.scope("s").histogram("h").count == 0


# --------------------------------------------------------------------------
# tracer
# --------------------------------------------------------------------------


class TestTracerSpans:
    def test_nesting_and_parent_ids(self):
        tr = Tracer(clock=iter(range(100)).__next__)
        with tr.span("outer") as outer:
            with tr.span("inner"):
                tr.event("tick", k=1)
        evs = tr.events
        kinds = [(e["ev"], e["name"]) for e in evs]
        assert kinds == [
            ("begin", "outer"), ("begin", "inner"), ("event", "tick"),
            ("end", "inner"), ("end", "outer"),
        ]
        inner_begin = evs[1]
        assert inner_begin["parent"] == outer.span_id
        assert evs[2]["span"] == inner_begin["span"]

    def test_annotate_lands_on_end_event(self):
        tr = Tracer()
        with tr.span("phase", level=2) as sp:
            sp.annotate(ios=42)
        end = tr.events[-1]
        assert end["attrs"] == {"level": 2, "ios": 42}
        assert end["wall_s"] >= 0

    def test_error_recorded_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.events[-1]["error"] == "RuntimeError"

    def test_close_ends_dangling_spans(self):
        tr = Tracer()
        sp = tr.span("left-open")
        sp.__enter__()
        tr.close()
        assert tr.events[-1]["ev"] == "end"
        assert tr.events[-1]["name"] == "left-open"

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", x=1) as sp:
            sp.annotate(y=2).event("e")
        NULL_TRACER.event("e2")
        NULL_TRACER.close()
        assert NULL_TRACER.events == []

    def test_list_sink_receives_events(self):
        sink = ListSink()
        tr = Tracer(sink=sink)
        with tr.span("s"):
            pass
        assert [e["ev"] for e in sink.events] == ["begin", "end"]


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tr = Tracer(sink=JsonlSink(path))
        with tr.span("distribute", level=0) as sp:
            sp.event("balance.round", round=1, swapped=2)
            sp.annotate(ios=10)
        tr.close()
        events = read_trace(path)
        assert events == tr.events
        assert events[-1]["attrs"]["ios"] == 10

    def test_numpy_values_serialized(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        tr = Tracer(sink=sink)
        tr.event("e", width=np.int64(8), factor=np.float64(1.5))
        tr.close()
        ev = json.loads(buf.getvalue())
        assert ev["attrs"] == {"width": 8, "factor": 1.5}

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "begin"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_trace(str(path))

    def test_read_trace_skips_blank_lines(self):
        events = read_trace(['{"ev":"event"}', "", '{"ev":"end"}'])
        assert len(events) == 2


class TestGzipTraces:
    def _emit(self, path):
        tr = Tracer(sink=JsonlSink(path))
        with tr.span("distribute", level=0) as sp:
            sp.event("io.read", width=8)
            sp.annotate(ios=1)
        tr.close()
        return tr.events

    def test_gz_suffix_writes_gzip_and_reads_back(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        events = self._emit(path)
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"  # gzip magic
        assert read_trace(path) == events

    def test_gzip_output_is_byte_deterministic(self, tmp_path):
        # mtime is pinned to zero in the gzip header, so identical event
        # streams (zero-clock, as the exec layer emits) produce identical
        # files — the diff/cache contract.
        def emit(path):
            tr = Tracer(sink=JsonlSink(path), clock=lambda: 0.0)
            with tr.span("distribute", level=0) as sp:
                sp.event("io.read", width=8)
                sp.annotate(ios=1)
            tr.close()

        a, b = str(tmp_path / "a.jsonl.gz"), str(tmp_path / "b.jsonl.gz")
        emit(a)
        emit(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_magic_byte_detection_beats_extension(self, tmp_path):
        # A .jsonl that is secretly gzipped still reads (and vice versa).
        import gzip as gz

        path = tmp_path / "trace.jsonl"
        with gz.open(path, "wt", encoding="utf-8") as fh:
            fh.write('{"ev":"event","name":"e"}\n')
        assert read_trace(str(path))[0]["name"] == "e"
        plain = tmp_path / "trace2.jsonl.gz"
        plain.write_text('{"ev":"event","name":"p"}\n')
        assert read_trace(str(plain))[0]["name"] == "p"

    def test_truncated_tail_tolerated_only_when_asked(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"ev":"event","name":"ok"}\n{"ev":"eve')
        with pytest.raises(ValueError):
            read_trace(str(path))
        events = read_trace(str(path), tolerate_truncated_tail=True)
        assert [e["name"] for e in events] == ["ok"]

    def test_torn_middle_line_still_raises(self):
        lines = ['{"ev":"eve', '{"ev":"event","name":"ok"}']
        with pytest.raises(ValueError, match="line 1"):
            read_trace(lines, tolerate_truncated_tail=True)

    def test_observation_trace_path_gz(self, tmp_path):
        path = str(tmp_path / "t.jsonl.gz")
        obs = Observation(trace_path=path)
        with obs.span("s"):
            obs.event("e")
        obs.close()
        assert [e["ev"] for e in read_trace(path)] == ["begin", "event", "end"]


class TestSummarizeTrace:
    def _trace(self):
        tr = Tracer()
        with tr.span("distribute") as sp:
            sp.event("io.read", width=8)
            sp.event("io.read", width=4)
            sp.event("io.write", width=8)
            sp.event("balance.round", round=1, max_balance_factor=1.5)
            sp.annotate(ios=3, rounds=1)
        with tr.span("distribute") as sp:
            sp.annotate(ios=2, rounds=1)
        return tr.events

    def test_phase_aggregation(self):
        s = summarize_trace(self._trace())
        (phase,) = s["phases"]
        assert phase["name"] == "distribute"
        assert phase["count"] == 2
        assert phase["ios"] == 5
        assert phase["rounds"] == 2

    def test_timeline_and_stripes(self):
        s = summarize_trace(self._trace())
        assert s["balance_timeline"] == [{"round": 1, "max_balance_factor": 1.5}]
        assert s["stripe_width"]["read"] == {"4": 1, "8": 1}
        assert s["stripe_width"]["write"] == {"8": 1}
        assert s["n_events"] == len(self._trace())

    def test_unclosed_spans_counted_not_fatal(self):
        # Regression test: a crashed / interrupted run leaves begins
        # without ends.  Summarize must not raise and must report the
        # truncation instead of silently pretending the trace is whole.
        events = self._trace()
        truncated = [e for e in events if e["ev"] != "end"]
        s = summarize_trace(truncated)
        assert s["truncated_spans"] == 2
        assert s["n_events"] == len(truncated)
        # A complete trace reports zero.
        assert summarize_trace(events)["truncated_spans"] == 0

    def test_partial_span_costs_not_double_counted(self):
        tr = Tracer()
        with tr.span("distribute") as sp:
            sp.event("io.read", width=8)
            sp.annotate(ios=1)
        events = list(tr.events)
        events.append({"ev": "begin", "span": 99, "parent": None,
                       "name": "distribute", "ts": 0.0, "attrs": {}})
        s = summarize_trace(events)
        (phase,) = s["phases"]
        # The unclosed span contributes no end-annotations; the closed
        # span's totals survive unchanged.
        assert phase["ios"] == 1
        assert s["truncated_spans"] == 1

    def test_truncated_tail_file_summarizes(self, tmp_path):
        # End-to-end: a torn final line on disk (killed mid-write) is
        # forgiven when summarizing from a path.
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"ev":"begin","span":1,"parent":null,"name":"s","ts":0,"attrs":{}}\n'
            '{"ev":"event","span":1,"name":"io.read","ts":0,"attrs":{"width":4}}\n'
            '{"ev":"end","span":1,"pare'
        )
        s = summarize_trace(str(path))
        assert s["truncated_spans"] == 1
        assert s["stripe_width"]["read"] == {"4": 1}


class TestMergeTraceEvents:
    """Span-rebasing edge cases for the exec-layer trace merge."""

    def _payload(self, task="sort_pdm", trace=None, **extra):
        return {"task": task, "trace": trace or [], **extra}

    def _run_trace(self):
        tr = Tracer()
        with tr.span("distribute") as sp:
            sp.event("io.read", width=4)
        return list(tr.events)

    def test_empty_child_trace_still_wrapped(self):
        from repro.exec import merge_trace_events

        merged = merge_trace_events([self._payload(trace=[])])
        assert [e["ev"] for e in merged] == ["begin", "end"]
        assert merged[0]["name"] == "run:sort_pdm[0]"
        assert merged[0]["span"] == merged[1]["span"]

    def test_colliding_span_ids_rebased_unique(self):
        from repro.exec import merge_trace_events

        # Two runs whose traces both use span id 1 (every zero-clock run
        # does) must not collide after the merge.
        a, b = self._run_trace(), self._run_trace()
        assert a[0]["span"] == b[0]["span"] == 1
        merged = merge_trace_events([self._payload(trace=a),
                                     self._payload(trace=b)])
        begins = [e for e in merged if e["ev"] == "begin"]
        ids = [e["span"] for e in begins]
        assert len(ids) == len(set(ids)) == 4  # 2 wrappers + 2 rebased
        # Each run's root span now parents to its wrapper.
        wrappers = [e["span"] for e in begins if e["name"].startswith("run:")]
        children = [e for e in begins if not e["name"].startswith("run:")]
        assert [c["parent"] for c in children] == wrappers

    def test_merged_stream_is_valid_for_summarize(self):
        from repro.exec import merge_trace_events

        merged = merge_trace_events(
            [self._payload(trace=self._run_trace()) for _ in range(3)]
        )
        s = summarize_trace(merged)
        assert s["truncated_spans"] == 0
        assert s["stripe_width"]["read"] == {"4": 3}

    def test_out_of_order_timestamps_preserved(self):
        from repro.exec import merge_trace_events

        # Zero-clock runs all carry ts=0; a child trace with descending
        # timestamps must survive verbatim (merge never sorts — relative
        # order is the contract).
        trace = [
            {"ev": "begin", "span": 1, "parent": None, "name": "s",
             "ts": 5.0, "attrs": {}},
            {"ev": "event", "span": 1, "name": "io.read", "ts": 2.0,
             "attrs": {"width": 2}},
            {"ev": "end", "span": 1, "parent": None, "name": "s",
             "ts": 1.0, "wall_s": 1.0, "attrs": {}},
        ]
        merged = merge_trace_events([self._payload(trace=trace)])
        inner = [e for e in merged if e["name"] == "s"]
        assert [e["ts"] for e in inner] == [5.0, 1.0]
        event = next(e for e in merged if e["ev"] == "event")
        assert event["ts"] == 2.0
        # And the stream still summarizes / profiles without raising.
        assert summarize_trace(merged)["truncated_spans"] == 0

    def test_cached_flag_lands_on_wrapper(self):
        from repro.exec import merge_trace_events

        merged = merge_trace_events([self._payload(trace=[], cached=True)])
        assert merged[0]["attrs"] == {"index": 0, "cached": True}


class TestRunReport:
    def test_schema_and_keys(self):
        obs = Observation()
        obs.scope("pdm").counter("read_ios").inc(3)
        with obs.span("partition") as sp:
            sp.annotate(ios=5)
        obs.close()
        rep = RunReport.from_observation(
            obs, command="sort", params={"n": 100}, result={"parallel_ios": 5}
        )
        d = rep.to_dict()
        assert d["schema"] == SCHEMA
        assert set(d) == {
            "schema", "command", "params", "result", "phases",
            "balance_timeline", "stripe_width", "metrics", "n_trace_events",
        }
        assert d["metrics"]["pdm"]["counters"]["read_ios"] == 3
        assert d["phases"][0]["ios"] == 5
        # JSON-clean
        json.loads(rep.to_json())

    def test_write_dash_prints(self, capsys):
        RunReport(command="sort").write("-")
        assert '"schema"' in capsys.readouterr().out

    def test_render_report_tables(self):
        rep = {
            "command": "sort",
            "result": {"parallel_ios": 7},
            "phases": [{"name": "distribute", "count": 1, "wall_s": 0.1, "ios": 7}],
            "balance_timeline": [{"round": 1, "max_balance_factor": 1.0}],
            "stripe_width": {"read": {"8": 3}, "write": {}},
        }
        tables = render_report(rep)
        titles = [t.title for t in tables]
        assert any("run report" in t for t in titles)
        assert any("per-phase" in t for t in titles)
        assert any("stripe-width" in t for t in titles)


# --------------------------------------------------------------------------
# simulator integration: identical measurements, populated instruments
# --------------------------------------------------------------------------


class TestPdmIntegration:
    def _sort(self, obs):
        machine = ParallelDiskMachine(memory=512, block=4, disks=8)
        data = workloads.by_name("zipf", 3000, seed=7)
        res = balance_sort_pdm(machine, data, obs=obs, check_invariants=False)
        return machine, res

    def test_measurements_bit_identical_with_obs(self):
        _, plain = self._sort(obs=None)
        _, instrumented = self._sort(obs=Observation())
        assert instrumented.io_stats == plain.io_stats
        assert instrumented.cpu == plain.cpu

    def test_metrics_match_machine_stats(self):
        obs = Observation()
        machine, res = self._sort(obs)
        ex = obs.registry.export()
        pdm = ex["pdm"]["counters"]
        assert pdm["read_ios"] == machine.stats.read_ios
        assert pdm["write_ios"] == machine.stats.write_ios
        assert pdm["blocks_read"] == machine.stats.blocks_read
        assert ex["pdm"]["cpu"]["counters"]["work"] == machine.cpu.work
        bal = ex["balance"]["counters"]
        assert bal["rounds"] == res.engine_rounds
        assert bal["swaps"] == res.blocks_swapped

    def test_stripe_histogram_totals(self):
        obs = Observation()
        machine, _ = self._sort(obs)
        hist = obs.scope("pdm").histogram("io.write.width")
        assert hist.count == machine.stats.write_ios
        assert hist.sum == machine.stats.blocks_written
        assert hist.counts.get(machine.D, 0) == machine.stats.full_width_writes

    def test_phase_spans_cover_all_ios(self):
        obs = Observation()
        machine, _ = self._sort(obs)
        top = [
            e for e in obs.tracer.events
            if e["ev"] == "end" and e.get("parent") is None
        ]
        # the top-level spans partition the whole run's I/O budget
        assert sum(e["attrs"].get("ios", 0) for e in top) == machine.stats.total_ios

    def test_write_width_fraction_in_snapshot(self):
        machine, _ = self._sort(obs=None)
        snap = machine.stats.snapshot()
        assert snap["write_width_fraction"] == pytest.approx(
            machine.stats.write_width_fraction
        )

    def test_reset_stats_resets_metrics_scope(self):
        obs = Observation()
        machine, _ = self._sort(obs)
        assert obs.scope("pdm").counter("read_ios").value > 0
        machine.reset_stats()
        assert obs.scope("pdm").counter("read_ios").value == 0
        assert obs.scope("pdm").scope("cpu").counter("work").value == 0


class TestHierarchyIntegration:
    def _sort(self, model, obs):
        machine = ParallelHierarchies(27, model=model)
        data = workloads.uniform(1200, seed=9)
        res = balance_sort_hierarchy(machine, data, obs=obs)
        return machine, res

    @pytest.mark.parametrize("model", ["hmm", "bt"])
    def test_model_times_identical_with_obs(self, model):
        _, plain = self._sort(model, obs=None)
        _, instrumented = self._sort(model, obs=Observation())
        assert instrumented.total_time == plain.total_time
        assert instrumented.parallel_steps == plain.parallel_steps
        assert instrumented.memory_time == plain.memory_time

    def test_metrics_match_machine(self):
        obs = Observation()
        machine, _ = self._sort("hmm", obs)
        h = obs.registry.export()["hierarchy"]
        assert h["counters"]["parallel_steps"] == machine.parallel_steps
        assert h["gauges"]["memory_time"]["value"] == pytest.approx(
            machine.memory_time
        )

    def test_phase_spans_cover_model_time(self):
        obs = Observation()
        machine, _ = self._sort("bt", obs)
        top = [
            e for e in obs.tracer.events
            if e["ev"] == "end" and e.get("parent") is None
        ]
        total = sum(
            e["attrs"].get("memory_time", 0) + e["attrs"].get("interconnect_time", 0)
            for e in top
        )
        assert total == pytest.approx(machine.total_time, rel=1e-6)


class TestBalanceObserver:
    def _engine(self, n=600):
        machine = ParallelDiskMachine(memory=65536, block=4, disks=8)
        storage = VirtualDisks(machine, 4)
        data = workloads.adversarial_striping(n, seed=11, period=4)
        ck = np.sort(composite_keys(data))
        pivots = ck[np.linspace(0, ck.size - 1, 5).astype(int)[1:-1]]
        engine = BalanceEngine(storage, pivots)
        machine.mem_acquire(n)
        return engine, data

    def test_observer_called_per_round(self):
        engine, data = self._engine()
        seen = []
        engine.add_round_observer(lambda eng, info: seen.append(info["round"]))
        engine.feed(data)
        engine.run_rounds(drain_below=0)
        engine.flush()
        assert seen == list(range(1, engine.stats.rounds + 1))

    def test_remove_round_observer(self):
        engine, data = self._engine()
        seen = []
        cb = engine.add_round_observer(lambda eng, info: seen.append(info))
        engine.remove_round_observer(cb)
        engine.feed(data)
        engine.run_rounds(drain_below=0)
        engine.flush()
        assert seen == []

    def test_attach_obs_counts_rounds(self):
        engine, data = self._engine()
        obs = Observation()
        engine.attach_obs(obs)
        engine.feed(data)
        engine.run_rounds(drain_below=0)
        engine.flush()
        bal = obs.registry.export()["balance"]["counters"]
        assert bal["rounds"] == engine.stats.rounds
        assert bal["swaps"] == engine.stats.blocks_swapped
        rounds = [
            e for e in obs.tracer.events
            if e["ev"] == "event" and e["name"] == "balance.round"
        ]
        assert len(rounds) == engine.stats.rounds


class TestObservation:
    def test_trace_path_streams_jsonl(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        obs = Observation(trace_path=path)
        with obs.span("s"):
            obs.event("e")
        obs.close()
        assert [e["ev"] for e in read_trace(path)] == ["begin", "event", "end"]

    def test_disabled_is_shared_and_inert(self):
        a = Observation.disabled()
        assert a is Observation.disabled()
        assert a.tracer is NULL_TRACER
