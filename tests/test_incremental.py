"""Equivalence tests: incremental aux maintenance vs batch ComputeAux."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalAux
from repro.core.matrices import compute_aux
from repro.exceptions import ParameterError


def random_trace(rng, s, hp, steps):
    """A legal update stream: adds, and removes of previously added blocks."""
    x = np.zeros((s, hp), dtype=np.int64)
    trace = []
    for _ in range(steps):
        if x.sum() and rng.random() < 0.3:
            rows, cols = np.nonzero(x)
            i = int(rng.integers(0, rows.size))
            b, h = int(rows[i]), int(cols[i])
            x[b, h] -= 1
            trace.append(("remove", b, h))
        else:
            b = int(rng.integers(0, s))
            h = int(rng.integers(0, hp))
            x[b, h] += 1
            trace.append(("add", b, h))
    return trace


class TestIncrementalAux:
    def test_construction_validates(self):
        with pytest.raises(ParameterError):
            IncrementalAux(0, 4)

    def test_single_add(self):
        inc = IncrementalAux(1, 4)
        inc.add(0, 2)
        assert inc.X.tolist() == [[0, 0, 1, 0]]
        assert np.array_equal(inc.A, compute_aux(inc.X))

    def test_remove_underflow(self):
        inc = IncrementalAux(1, 2)
        with pytest.raises(ParameterError):
            inc.remove(0, 0)

    def test_matches_batch_on_fixed_trace(self):
        inc = IncrementalAux(3, 4)
        for b, h in [(0, 0), (0, 0), (0, 1), (1, 2), (2, 3), (0, 0), (1, 2)]:
            inc.add(b, h)
            assert np.array_equal(inc.A, compute_aux(inc.X)), (b, h)
        inc.remove(0, 0)
        assert np.array_equal(inc.A, compute_aux(inc.X))

    @given(st.integers(0, 10**6), st.integers(1, 6), st.integers(1, 8), st.integers(1, 300))
    @settings(max_examples=60, deadline=None)
    def test_property_always_matches_batch(self, seed, s, hp, steps):
        rng = np.random.default_rng(seed)
        inc = IncrementalAux(s, hp)
        for op, b, h in random_trace(rng, s, hp, steps):
            getattr(inc, "add" if op == "add" else "remove")(b, h)
            assert np.array_equal(inc.A, compute_aux(inc.X))

    def test_amortized_work_is_near_constant_per_update(self):
        # Section 5's claim: upkeep is O(1) amortized per histogram update —
        # total work stays within a small multiple of the update count.
        rng = np.random.default_rng(7)
        s, hp, steps = 8, 16, 4000
        inc = IncrementalAux(s, hp)
        for op, b, h in random_trace(rng, s, hp, steps):
            getattr(inc, "add" if op == "add" else "remove")(b, h)
        assert inc.work < 6 * steps
