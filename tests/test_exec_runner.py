"""The exec layer: fingerprints, cache, runner, merging, and the core
determinism-under-parallelism contract.

The contract under test: a grid's payloads — results, metrics, traces —
are a pure function of the specs, so serial execution, a process pool,
and a warm cache must all produce **bit-identical** output, and repeat
runs must reproduce the merged trace exactly.
"""

import json
import os

import numpy as np
import pytest

from repro.exec import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    canonical_params,
    fingerprint,
    grid,
    merge_metrics,
    merge_trace_events,
    run_task,
    task_names,
)
from repro.obs import MetricsRegistry

# Small-but-real grid cells used throughout: fast enough for the unit
# tier, real enough to carry metrics and traces.
CELLS = [
    {"n": 600, "memory": 512, "block": 4, "disks": 4,
     "workload": "uniform", "seed": 0},
    {"n": 600, "memory": 512, "block": 4, "disks": 4,
     "workload": "adversarial_striping", "seed": 1},
]
SPECS = [RunSpec("sort_pdm", dict(c)) for c in CELLS]


# ------------------------------------------------------------ fingerprint


class TestFingerprint:
    def test_key_order_invariant(self):
        a = fingerprint("t", {"n": 1, "d": 2})
        b = fingerprint("t", {"d": 2, "n": 1})
        assert a == b

    def test_sensitive_to_task_params_salt(self):
        base = fingerprint("t", {"n": 1})
        assert fingerprint("u", {"n": 1}) != base
        assert fingerprint("t", {"n": 2}) != base
        assert fingerprint("t", {"n": 1}, salt="other/2") != base

    def test_numpy_scalars_canonicalize_like_python(self):
        assert canonical_params({"n": np.int64(5)}) == canonical_params({"n": 5})
        assert fingerprint("t", {"n": np.int64(5)}) == fingerprint("t", {"n": 5})

    def test_runspec_fingerprint_matches_module_fn(self):
        spec = RunSpec("sort_pdm", {"n": 10})
        assert spec.fingerprint() == fingerprint("sort_pdm", {"n": 10})

    def test_registered_tasks_present(self):
        assert {"sort_pdm", "compare_pdm", "hierarchy_sort"} <= set(task_names())


# ------------------------------------------------------------------- grid


class TestGrid:
    def test_last_axis_fastest(self):
        cells = grid(n=[1, 2], d=[10, 20])
        assert cells == [
            {"n": 1, "d": 10}, {"n": 1, "d": 20},
            {"n": 2, "d": 10}, {"n": 2, "d": 20},
        ]

    def test_scalars_broadcast(self):
        assert grid(n=[1, 2], seed=7) == [
            {"n": 1, "seed": 7}, {"n": 2, "seed": 7},
        ]


# ------------------------------------------------------------------ cache


class TestResultCache:
    def test_memory_roundtrip_and_stats(self):
        c = ResultCache()
        assert c.get("k") is None
        c.put("k", {"x": 1})
        assert c.get("k") == {"x": 1}
        assert "k" in c and len(c) == 1
        assert c.stats["hits"] == 1 and c.stats["misses"] == 1

    def test_directory_persists_across_instances(self, tmp_path):
        c1 = ResultCache(str(tmp_path))
        c1.put("deadbeef", {"x": [1, 2]})
        c2 = ResultCache(str(tmp_path))
        assert c2.get("deadbeef") == {"x": [1, 2]}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        c = ResultCache(str(tmp_path))
        c.put("aa", {"x": 1})
        # clobber the on-disk entry; a fresh instance must treat it as a miss
        (path,) = list(tmp_path.glob("*.json"))
        path.write_text("{not json")
        c2 = ResultCache(str(tmp_path))
        assert c2.get("aa") is None


# ----------------------------------------------------------------- runner


class TestRunner:
    def test_duplicate_specs_execute_once(self):
        runner = ParallelRunner(jobs=0)
        spec = RunSpec("hierarchy_sort", {"n": 256, "h": 16})
        results = runner.map([spec, spec, spec])
        assert runner.executed == 1
        assert runner.served_from_cache == 2
        assert [r.cached for r in results] == [False, True, True]
        assert results[0].payload == results[1].payload == results[2].payload

    def test_results_in_spec_order(self):
        runner = ParallelRunner(jobs=0)
        specs = [RunSpec("hierarchy_sort", {"n": n, "h": 16}) for n in (256, 128, 512)]
        results = runner.map(specs)
        assert [r.spec.params["n"] for r in results] == [256, 128, 512]
        assert [r.result["records"] for r in results] == [256, 128, 512]

    def test_warm_cache_serves_without_execution(self, tmp_path):
        r1 = ParallelRunner(jobs=0, cache_dir=str(tmp_path))
        first = r1.map(SPECS[:1])
        r2 = ParallelRunner(jobs=0, cache_dir=str(tmp_path))
        second = r2.map(SPECS[:1])
        assert r2.executed == 0 and r2.served_from_cache == 1
        assert second[0].cached and not first[0].cached
        assert second[0].payload == first[0].payload

    @pytest.mark.slow
    def test_serial_vs_pool_bit_identical(self):
        """The headline contract: jobs=2 payloads equal serial's exactly."""
        serial = ParallelRunner(jobs=0).map(SPECS)
        pooled = ParallelRunner(jobs=2).map(SPECS)
        for s, p in zip(serial, pooled):
            assert s.payload == p.payload
        # Down to the serialized bytes, not just dict equality:
        assert json.dumps([r.payload for r in serial], sort_keys=True) == \
            json.dumps([r.payload for r in pooled], sort_keys=True)

    def test_repeat_run_identical_merged_trace(self):
        a = [r.payload for r in ParallelRunner(jobs=0).map(SPECS)]
        b = [r.payload for r in ParallelRunner(jobs=0).map(SPECS)]
        assert merge_trace_events(a) == merge_trace_events(b)
        assert merge_metrics(a).export() == merge_metrics(b).export()

    def test_payload_schema_and_zero_clock(self):
        payload = run_task("hierarchy_sort", {"n": 256, "h": 16})
        assert payload["schema"] == "repro.exec_payload/1"
        assert set(payload) == {"schema", "task", "params", "result",
                                "metrics", "trace"}
        # zero-clock tracer: every timestamp is exactly 0.0
        assert all(ev.get("ts", 0.0) == 0.0 for ev in payload["trace"])
        assert all(ev.get("wall_s", 0.0) == 0.0 for ev in payload["trace"])


# ------------------------------------------------------------ jobs clamp


class TestJobsClamp:
    """``jobs`` is clamped to the usable core count (oversubscription only
    adds pickling and contention; see the ParallelRunner docstring)."""

    def test_oversubscription_clamps_and_traces(self, monkeypatch):
        import repro.exec.runner as runner_mod
        from repro.obs import Observation

        monkeypatch.setattr(runner_mod, "default_jobs", lambda: 2)
        obs = Observation()
        runner = ParallelRunner(jobs=8, obs=obs)
        assert runner.jobs == 2
        assert runner.jobs_requested == 8
        assert runner.stats["jobs"] == 2
        assert runner.stats["jobs_requested"] == 8
        clamped = [e for e in obs.tracer.events
                   if e.get("name") == "runner.jobs_clamped"]
        assert len(clamped) == 1
        assert clamped[0]["attrs"] == {"requested": 8, "usable": 2}

    def test_within_budget_not_clamped(self, monkeypatch):
        import repro.exec.runner as runner_mod
        from repro.obs import Observation

        monkeypatch.setattr(runner_mod, "default_jobs", lambda: 4)
        obs = Observation()
        runner = ParallelRunner(jobs=3, obs=obs)
        assert runner.jobs == 3 and runner.jobs_requested == 3
        assert not [e for e in obs.tracer.events
                    if e.get("name") == "runner.jobs_clamped"]

    def test_serial_requests_stay_serial(self, monkeypatch):
        import repro.exec.runner as runner_mod

        monkeypatch.setattr(runner_mod, "default_jobs", lambda: 1)
        for jobs in (None, 0, 1):
            runner = ParallelRunner(jobs=jobs)
            assert runner.jobs <= 1  # no pool; stats still report >= 1
            assert runner.stats["jobs"] == 1
            assert runner.stats["jobs_requested"] == 1

    def test_clamped_runner_results_correct(self, monkeypatch):
        import repro.exec.runner as runner_mod

        monkeypatch.setattr(runner_mod, "default_jobs", lambda: 1)
        runner = ParallelRunner(jobs=16)  # clamps to 1 → inline path
        assert runner.jobs == 1
        results = runner.map(SPECS[:1])
        assert results[0].result["records"] == CELLS[0]["n"]


# ---------------------------------------------------------------- merging


class TestMerging:
    def test_metrics_fold_like_one_registry(self):
        r1, r2, expected = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        r1.counter("c").inc(3)
        r2.counter("c").inc(4)
        expected.counter("c").inc(7)
        for v in (1.0, 5.0):
            r1.gauge("g").set(v)
        for v in (2.0, 3.0):
            r2.gauge("g").set(v)
        for v in (1.0, 5.0, 2.0, 3.0):
            expected.gauge("g").set(v)
        for v in (1, 2):
            r1.histogram("h").observe(v)
        r2.histogram("h").observe(100)
        for v in (1, 2, 100):
            expected.histogram("h").observe(v)
        merged = merge_metrics(
            [{"metrics": r1.export()}, {"metrics": r2.export()}]
        )
        assert merged.export() == expected.export()

    def test_trace_merge_wraps_and_rebases(self):
        payloads = [
            run_task("hierarchy_sort", {"n": 256, "h": 16, "seed": s})
            for s in (0, 1)
        ]
        merged = merge_trace_events(payloads)
        begins = [e for e in merged if e["ev"] == "begin"]
        ends = [e for e in merged if e["ev"] == "end"]
        # wrapper spans bracket each run
        names = [e["name"] for e in begins]
        assert "run:hierarchy_sort[0]" in names
        assert "run:hierarchy_sort[1]" in names
        # begin ids are unique and begin/end pair up exactly
        begin_ids = [e["span"] for e in begins]
        assert len(begin_ids) == len(set(begin_ids))
        assert sorted(begin_ids) == sorted(e["span"] for e in ends)
        # merged stream is consumable by the trace summarizer
        from repro.obs import summarize_trace

        summary = summarize_trace(merged)
        assert summary


# -------------------------------------------------------------------- CLI


class TestSweepCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 0
        return capsys.readouterr()

    @pytest.mark.slow
    def test_stdout_identical_serial_vs_jobs(self, capsys, tmp_path):
        argv = ["sweep", "--task", "hierarchy", "--n", "256,512", "--h", "16"]
        out_serial = self.run_cli(
            argv + ["--cache-dir", str(tmp_path / "a")], capsys
        )
        out_pool = self.run_cli(
            argv + ["--jobs", "2", "--cache-dir", str(tmp_path / "b")], capsys
        )
        assert out_serial.out == out_pool.out
        # runner statistics stay on stderr, keeping stdout deterministic
        assert "[sweep]" in out_serial.err
        assert "[sweep]" not in out_serial.out

    def test_warm_cache_sweep_identical_report(self, capsys, tmp_path):
        def run(tag):
            path = tmp_path / f"{tag}.json"
            argv = ["sweep", "--task", "hierarchy", "--n", "256", "--h", "16",
                    "--cache-dir", str(tmp_path / "cache"),
                    "--emit-json", str(path)]
            err = self.run_cli(argv, capsys).err
            with open(path) as fh:
                return json.load(fh), err

        cold, cold_err = run("cold")
        warm, warm_err = run("warm")
        # the cache-served run executed nothing...
        assert "executed=0" in warm_err and "executed=1" in cold_err
        # ...and apart from the cached flag the reports are identical
        for report in (cold, warm):
            for row in report["result"]["rows"]:
                row.pop("cached")
        assert cold == warm

    def test_emit_json_report(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        argv = ["sweep", "--task", "hierarchy", "--n", "256", "--h", "16",
                "--emit-json", str(report_path)]
        self.run_cli(argv, capsys)
        with open(report_path) as fh:
            report = json.load(fh)
        assert report["schema"] == "repro.run_report/1"
        assert report["result"]["task"] == "hierarchy_sort"
        assert report["result"]["n_cells"] == 1
        assert report["metrics"]
