"""Unit and property tests for Fast-Partial-Match (Algorithm 7, Theorem 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    MatchingInstance,
    derandomized_partial_match,
    greedy_match,
    greedy_mincost_match,
    randomized_partial_match,
)
from repro.core.matrices import BalanceMatrices
from repro.exceptions import InvariantViolation


def make_instance(adjacency: np.ndarray, u_channels=None, buckets=None) -> MatchingInstance:
    k, hp = adjacency.shape
    return MatchingInstance(
        u_channels=tuple(u_channels or range(k)),
        buckets=tuple(buckets or range(k)),
        adjacency=adjacency.astype(bool),
        n_channels=hp,
    )


def random_valid_instance(rng, hp):
    """A random instance satisfying the Invariant-1 degree bound."""
    k = rng.integers(1, max(2, hp // 2 + 1))
    need = (hp + 1) // 2
    adj = np.zeros((k, hp), dtype=bool)
    for i in range(k):
        deg = rng.integers(need, hp + 1)
        cols = rng.choice(hp, size=deg, replace=False)
        adj[i, cols] = True
    return make_instance(adj)


class TestInstance:
    def test_from_matrices(self):
        m = BalanceMatrices(2, 4)
        m.add_block(0, 1)
        m.add_block(0, 1)
        m.refresh_aux()
        inst = MatchingInstance.from_matrices(m, [1])
        assert inst.u_channels == (1,)
        assert inst.buckets == (0,)
        # row 0 zeros are channels 0, 2, 3
        assert inst.adjacency.tolist() == [[True, False, True, True]]

    def test_degree_invariant_check(self):
        inst = make_instance(np.array([[True, False, False, False]]))
        with pytest.raises(InvariantViolation):
            inst.check_degree_invariant()

    def test_empty_instance(self):
        inst = make_instance(np.zeros((0, 4)))
        assert greedy_match(inst).size == 0
        assert derandomized_partial_match(inst).size == 0


class TestGreedy:
    def test_matches_all_of_u(self):
        rng = np.random.default_rng(0)
        for hp in [2, 3, 4, 5, 8, 16, 31]:
            for _ in range(20):
                inst = random_valid_instance(rng, hp)
                res = greedy_match(inst)
                assert res.size == inst.size  # perfect on valid instances

    def test_raises_when_stuck(self):
        # k=2 but both vertices share the single neighbor: invalid instance
        adj = np.array([[True, False], [True, False]])
        inst = make_instance(adj)
        with pytest.raises(InvariantViolation):
            greedy_match(inst)

    def test_mincost_prefers_rarest_channel(self):
        adj = np.array([[False, True, True, False]])
        inst = make_instance(adj, u_channels=[0], buckets=[0])
        X = np.array([[5, 9, 1, 0]])
        res = greedy_mincost_match(inst, X)
        assert res.pairs == [(0, 2)]  # channel 2 has the lower X entry


class TestRandomized:
    def test_matches_at_least_quarter_on_average(self):
        rng = np.random.default_rng(42)
        total, quota = 0, 0
        for _ in range(200):
            hp = int(rng.integers(4, 24))
            inst = random_valid_instance(rng, hp)
            res = randomized_partial_match(inst, rng)
            total += res.size
            quota += min(inst.size, -(-hp // 4))
        assert total >= quota * 0.9  # Lemma 1 in aggregate, with slack

    def test_always_matches_at_least_one(self):
        rng = np.random.default_rng(7)
        for _ in range(100):
            inst = random_valid_instance(rng, int(rng.integers(2, 16)))
            assert randomized_partial_match(inst, rng).size >= 1

    def test_picking_rounds_are_constant_on_average(self):
        # degree >= H'/2 ⇒ expected ≤ 2 rounds (Algorithm 7's analysis)
        rng = np.random.default_rng(3)
        rounds = []
        for _ in range(100):
            inst = random_valid_instance(rng, 16)
            rounds.append(randomized_partial_match(inst, rng).picking_rounds)
        assert np.mean(rounds) < 6

    def test_pairs_are_valid_edges_distinct_targets(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            inst = random_valid_instance(rng, 12)
            res = randomized_partial_match(inst, rng)
            vs = [v for _, v in res.pairs]
            assert len(set(vs)) == len(vs)


class TestDerandomized:
    def test_meets_theorem5_target(self):
        rng = np.random.default_rng(5)
        for hp in [2, 3, 4, 5, 8, 12, 16, 24]:
            for _ in range(30):
                inst = random_valid_instance(rng, hp)
                res = derandomized_partial_match(inst)
                target = min(inst.size, -(-hp // 4))
                assert res.size >= target

    def test_is_deterministic(self):
        rng = np.random.default_rng(9)
        inst = random_valid_instance(rng, 16)
        a = derandomized_partial_match(inst)
        b = derandomized_partial_match(inst)
        assert a.pairs == b.pairs

    def test_no_fallback_on_valid_instances(self):
        rng = np.random.default_rng(13)
        fallbacks = 0
        for _ in range(300):
            inst = random_valid_instance(rng, int(rng.integers(2, 20)))
            fallbacks += derandomized_partial_match(inst).used_fallback
        assert fallbacks == 0

    def test_adversarial_dense_top_half(self):
        # every u adjacent exactly to the top ⌈H'/2⌉ channels: maximum
        # conflict pressure — still must hit ⌈H'/4⌉.
        for hp in [4, 8, 16]:
            need = (hp + 1) // 2
            k = hp // 2
            adj = np.zeros((k, hp), dtype=bool)
            adj[:, hp - need :] = True
            inst = make_instance(adj)
            res = derandomized_partial_match(inst)
            assert res.size >= min(k, -(-hp // 4))

    @given(st.integers(0, 10**6), st.integers(2, 20))
    @settings(max_examples=60, deadline=None)
    def test_property_target_met(self, seed, hp):
        rng = np.random.default_rng(seed)
        inst = random_valid_instance(rng, hp)
        res = derandomized_partial_match(inst)
        assert res.size >= min(inst.size, -(-hp // 4))
        vs = [v for _, v in res.pairs]
        assert len(set(vs)) == len(vs)
