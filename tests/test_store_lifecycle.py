"""Memory-ledger and block-lifecycle discipline, on both store backends.

The arena backend recycles slab rows through a free stack; the dict
backend deletes entries.  Either way the *visible* lifecycle contract is
the same and is pinned here for both: writes make blocks resident,
frees make them unwritten (idempotently), freed slots are reusable, the
fused ``read(free=True)`` path is exactly read-then-free, and the
machine's memory ledger refuses to over-commit or under-return.
"""

import numpy as np
import pytest

from repro.exceptions import AddressError, CapacityError, ParameterError
from repro.pdm import BlockAddress, ParallelDiskMachine
from repro.pdm.store import make_store
from repro.records import RECORD_DTYPE, make_records

BACKENDS = ["arena", "dict"]


def machine(store, M=64, B=4, D=4):
    return ParallelDiskMachine(memory=M, block=B, disks=D, store=store)


def block(start, B=4):
    return make_records(np.arange(start, start + B, dtype=np.uint64))


# -------------------------------------------------------- memory ledger


@pytest.mark.parametrize("store", BACKENDS)
class TestMemoryLedger:
    def test_overflow_rejected_and_state_unchanged(self, store):
        m = machine(store, M=64)
        m.mem_acquire(60)
        with pytest.raises(CapacityError):
            m.mem_acquire(5)
        assert m.memory_in_use == 60
        assert m.memory_free == 4
        m.mem_acquire(4)  # exactly full is legal
        assert m.memory_free == 0
        m.mem_release(64)

    def test_underflow_rejected(self, store):
        m = machine(store)
        m.mem_acquire(10)
        with pytest.raises(CapacityError):
            m.mem_release(11)
        assert m.memory_in_use == 10
        m.mem_release(10)
        with pytest.raises(CapacityError):
            m.mem_release(1)

    def test_negative_amounts_rejected(self, store):
        m = machine(store)
        with pytest.raises(ParameterError):
            m.mem_acquire(-1)
        with pytest.raises(ParameterError):
            m.mem_release(-1)
        assert m.memory_in_use == 0


# ------------------------------------------------------ block lifecycle


@pytest.mark.parametrize("store", BACKENDS)
class TestBlockLifecycle:
    def test_write_read_roundtrip(self, store):
        s = make_store(store, 4, 4)
        disks = np.array([0, 1, 2], dtype=np.int64)
        slots = np.array([5, 5, 7], dtype=np.int64)
        data = np.stack([block(0), block(10), block(20)])
        s.write_batch(disks, slots, data)
        assert s.n_blocks() == 3
        assert s.has(0, 5) and s.has(1, 5) and s.has(2, 7)
        assert not s.has(3, 5) and not s.has(0, 6)
        out = s.read_batch(disks, slots)
        assert np.array_equal(out, data)
        assert s.max_slot(2) == 7 and s.max_slot(3) == -1

    def test_read_of_unwritten_raises(self, store):
        s = make_store(store, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(0)[None])
        with pytest.raises(AddressError, match="unwritten"):
            s.read_batch(np.array([0]), np.array([1]))
        with pytest.raises(AddressError, match="unwritten"):
            # Beyond anything ever written (past the slot map's capacity).
            s.read_batch(np.array([0]), np.array([10_000]))

    def test_free_then_peek_and_read_raise(self, store):
        s = make_store(store, 4, 4)
        s.write_batch(np.array([1]), np.array([3]), block(0)[None])
        s.free(1, 3)
        assert not s.has(1, 3)
        assert s.n_blocks() == 0
        with pytest.raises(AddressError, match="peek of unwritten"):
            s.peek(1, 3)
        with pytest.raises(AddressError, match="read of unwritten"):
            s.read_batch(np.array([1]), np.array([3]))

    def test_double_free_is_noop(self, store):
        s = make_store(store, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(0)[None])
        s.free(0, 0)
        s.free(0, 0)  # scalar double free
        s.free_batch(np.array([0, 0]), np.array([0, 0]))  # batched, duplicated
        s.free_batch(np.array([2]), np.array([9999]))  # never written
        assert s.n_blocks() == 0

    def test_freed_slot_is_reusable(self, store):
        s = make_store(store, 4, 4)
        s.write_batch(np.array([0]), np.array([2]), block(0)[None])
        s.free(0, 2)
        s.write_batch(np.array([0]), np.array([2]), block(40)[None])
        out = s.read_batch(np.array([0]), np.array([2]))
        assert np.array_equal(out[0], block(40))
        assert s.n_blocks() == 1

    def test_overwrite_in_place_keeps_count(self, store):
        s = make_store(store, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(0)[None])
        s.write_batch(np.array([0]), np.array([0]), block(99)[None])
        assert s.n_blocks() == 1
        assert np.array_equal(s.read_batch(np.array([0]), np.array([0]))[0], block(99))

    def test_fused_read_free_equals_read_then_free(self, store):
        disks = np.array([0, 1, 2, 3], dtype=np.int64)
        slots = np.array([0, 0, 0, 0], dtype=np.int64)
        data = np.stack([block(10 * i) for i in range(4)])

        fused = make_store(store, 4, 4)
        fused.write_batch(disks, slots, data)
        out_fused = fused.read_batch(disks, slots, free=True)

        split = make_store(store, 4, 4)
        split.write_batch(disks, slots, data)
        out_split = split.read_batch(disks, slots)
        split.free_batch(disks, slots)

        assert np.array_equal(out_fused, out_split)
        assert fused.n_blocks() == split.n_blocks() == 0
        for d in range(4):
            assert not fused.has(d, 0) and not split.has(d, 0)
        if store == "arena":
            # Same rows must be recycled in the same order, so later
            # allocations land identically (address-level determinism).
            assert fused._free_rows == split._free_rows

    def test_read_buffer_survives_free_and_rewrite(self, store):
        """read_batch returns fresh storage — never views into the store."""
        s = make_store(store, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(7)[None])
        out = s.read_batch(np.array([0]), np.array([0]), free=True)
        kept = out.copy()
        # Recycle the slot (and, on the arena, the very same slab row).
        s.write_batch(np.array([0]), np.array([0]), block(50)[None])
        assert np.array_equal(out, kept)

    def test_peek_safety_modes(self, store):
        s = make_store(store, 4, 4)
        s.write_batch(np.array([0]), np.array([0]), block(3)[None])
        view = s.peek(0, 0)
        assert np.array_equal(view, block(3))
        if store == "arena":
            # Zero-copy read-only view: mutation attempts fail loudly.
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view["key"][0] = 1
        else:
            assert view.flags.writeable  # defensive copy; mutation harmless
            view["key"][0] = 1
            assert s.peek(0, 0)["key"][0] == 3
        safe = make_store(store, 4, 4, safe_copies=True)
        safe.write_batch(np.array([0]), np.array([0]), block(3)[None])
        copy = safe.peek(0, 0)
        assert copy.flags.writeable
        copy["key"][0] = 1
        assert safe.peek(0, 0)["key"][0] == 3

    def test_arena_recycles_rows_before_growing(self, store):
        if store != "arena":
            pytest.skip("slab bookkeeping is arena-specific")
        s = make_store("arena", 2, 4)
        disks = np.array([0, 1], dtype=np.int64)
        for i in range(40):  # steady-state churn: write a stripe, drop it
            s.write_batch(disks, np.array([i, i]), np.stack([block(i), block(i)]))
            s.free_batch(disks, np.array([i, i]))
        # The working set never exceeded one stripe, so the slab must not
        # have grown past the minimum growth quantum.
        assert s._arena.shape[0] <= 64
        assert s.n_blocks() == 0


# ----------------------------------------------- machine-level lifecycle


@pytest.mark.parametrize("store", BACKENDS)
class TestMachineLifecycle:
    def test_arr_api_fused_free(self, store):
        m = machine(store)
        disks = np.arange(4, dtype=np.int64)
        slots = np.zeros(4, dtype=np.int64)
        data = np.stack([block(10 * i) for i in range(4)])
        m.mem_acquire(16)
        m.write_blocks_arr(disks, slots, data)
        out = m.read_blocks_arr(disks, slots, free=True)
        assert np.array_equal(out, data)
        assert m.store.n_blocks() == 0
        with pytest.raises(AddressError):
            m.read_blocks_arr(disks, slots)
        assert m.stats.read_ios == 1 and m.stats.write_ios == 1

    def test_legacy_list_api_roundtrip(self, store):
        m = machine(store)
        blocks = [(BlockAddress(d, 0), block(d)) for d in range(4)]
        m.mem_acquire(16)
        m.write_blocks(blocks)
        back = m.read_blocks([a for a, _ in blocks])
        for (_, sent), got in zip(blocks, back):
            assert np.array_equal(sent, got)
        m.free_block(BlockAddress(0, 0))
        with pytest.raises(AddressError):
            m.read_blocks([BlockAddress(0, 0)])
