"""Cross-algorithm agreement: every sorter produces the identical output.

The strongest integration check available: five external sorts (Balance
Sort on disks, on P-HMM, striped merge sort, randomized [ViSa], Greed
Sort) plus the in-memory reference must emit exactly the same record
sequence for the same input — including rid order under heavy key
duplication (stability through the composite order).
"""

import numpy as np
import pytest

from repro import (
    ParallelDiskMachine,
    ParallelHierarchies,
    balance_sort_hierarchy,
    balance_sort_pdm,
    workloads,
)
from repro.baselines import (
    greed_sort,
    hierarchy_merge_sort,
    numpy_sort_records,
    randomized_distribution_sort,
    striped_merge_sort,
)
from repro.core.streams import peek_run
from repro.records import records_equal


def all_outputs(data):
    outs = {}
    m = ParallelDiskMachine(memory=512, block=4, disks=8)
    res = balance_sort_pdm(m, data)
    outs["balance-pdm"] = peek_run(res.storage, res.output)

    mh = ParallelHierarchies(27)
    res = balance_sort_hierarchy(mh, data)
    outs["balance-phmm"] = peek_run(res.storage, res.output)

    m = ParallelDiskMachine(memory=512, block=4, disks=8)
    res = striped_merge_sort(m, data)
    outs["striped"] = peek_run(res.storage, res.output)

    m = ParallelDiskMachine(memory=512, block=4, disks=8)
    res = randomized_distribution_sort(m, data)
    outs["randomized"] = peek_run(res.storage, res.output)

    m = ParallelDiskMachine(memory=512, block=4, disks=8)
    res = greed_sort(m, data)
    outs["greed"] = peek_run(res.storage, res.output)

    mh = ParallelHierarchies(16)
    res = hierarchy_merge_sort(mh, data)
    outs["hier-merge"] = peek_run(res.storage, res.output)

    outs["reference"] = numpy_sort_records(data)
    return outs


@pytest.mark.parametrize(
    "workload", ["uniform", "few_distinct", "adversarial_striping", "organ_pipe"]
)
def test_all_sorters_agree_exactly(workload):
    data = workloads.by_name(workload, 2200, seed=150)
    outs = all_outputs(data)
    ref = outs.pop("reference")
    for name, out in outs.items():
        assert records_equal(out, ref), f"{name} differs from the reference"


def test_agreement_on_tiny_inputs():
    for n in (0, 1, 2, 3):
        data = workloads.few_distinct(n, seed=151, distinct=1) if n else workloads.uniform(0)
        outs = all_outputs(data)
        ref = outs.pop("reference")
        for name, out in outs.items():
            assert records_equal(out, ref), f"{name} differs at n={n}"


def test_total_order_includes_rid_stability():
    # all keys equal: output order must be exactly input (rid) order
    data = workloads.few_distinct(1500, seed=152, distinct=1)
    outs = all_outputs(data)
    for name, out in outs.items():
        assert np.array_equal(out["rid"], np.sort(out["rid"])), name
