"""Unit tests for the PRAM machine, primitives, routing, and sorting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConcurrencyViolation, ParameterError
from repro.pram import PRAM, Variant, primitives, routing, sorting
from repro.records import composite_keys, make_records


class TestMachine:
    def test_brent_charge(self):
        m = PRAM(processors=4)
        t = m.charge(work=10, depth=3)
        assert t == 3 + 3  # ceil(10/4)=3 plus depth
        assert m.work == 10 and m.time == 6

    def test_single_processor_time_equals_work_plus_depth(self):
        m = PRAM(processors=1)
        m.charge(work=7, depth=2)
        assert m.time == 9

    def test_invalid_processors(self):
        with pytest.raises(ParameterError):
            PRAM(processors=0)

    def test_negative_charge_rejected(self):
        m = PRAM(processors=2)
        with pytest.raises(ParameterError):
            m.charge(work=-1, depth=0)

    def test_variant_from_string(self):
        m = PRAM(processors=1, variant="crcw")
        assert m.variant is Variant.CRCW

    def test_erew_denies_concurrency(self):
        m = PRAM(processors=1, variant=Variant.EREW)
        with pytest.raises(ConcurrencyViolation):
            m.require_concurrent_read()
        with pytest.raises(ConcurrencyViolation):
            m.require_concurrent_write()

    def test_crcw_allows_concurrency(self):
        m = PRAM(processors=1, variant=Variant.CRCW)
        m.require_concurrent_read()
        m.require_concurrent_write()

    def test_trace_records_steps(self):
        m = PRAM(processors=2, trace=True)
        m.charge(4, 1, label="x")
        assert m.steps[0].label == "x"

    def test_reset(self):
        m = PRAM(processors=2)
        m.charge(4, 1)
        m.reset()
        assert m.work == 0 and m.time == 0


class TestPrimitives:
    def test_prefix_sum_inclusive(self):
        m = PRAM(4)
        out = primitives.prefix_sum(m, np.array([1, 2, 3]))
        assert out.tolist() == [1, 3, 6]
        assert m.work == 6

    def test_prefix_sum_exclusive(self):
        m = PRAM(4)
        out = primitives.prefix_sum(m, np.array([1, 2, 3]), inclusive=False)
        assert out.tolist() == [0, 1, 3]

    def test_segmented_prefix_sum(self):
        m = PRAM(4)
        out = primitives.segmented_prefix_sum(
            m, np.array([1, 1, 1, 1, 1]), np.array([0, 0, 1, 1, 1])
        )
        assert out.tolist() == [1, 2, 1, 2, 3]

    def test_segmented_prefix_rejects_unsorted_segments(self):
        m = PRAM(4)
        with pytest.raises(ValueError):
            primitives.segmented_prefix_sum(m, np.array([1, 1]), np.array([1, 0]))

    def test_broadcast(self):
        m = PRAM(4)
        out = primitives.broadcast(m, 9, 5)
        assert out.tolist() == [9] * 5

    def test_compact(self):
        m = PRAM(4)
        out = primitives.compact(m, np.array([4, 5, 6, 7]), np.array([True, False, True, False]))
        assert out.tolist() == [4, 6]

    def test_partition_by_pivots(self):
        m = PRAM(4)
        buckets = primitives.partition_by_pivots(m, np.array([1, 5, 10, 20]), np.array([5, 15]))
        assert buckets.tolist() == [0, 1, 1, 2]

    def test_elementwise(self):
        m = PRAM(4)
        out = primitives.elementwise(m, np.array([1, 2]), lambda a: a * 2)
        assert out.tolist() == [2, 4]
        assert m.work == 2

    def test_resolve_concurrent_writes_erew_recipe(self):
        m = PRAM(4, variant=Variant.EREW)
        dests = np.array([3, 1, 3, 1, 2])
        winners, uniq = primitives.resolve_concurrent_writes(m, dests)
        assert uniq.tolist() == [1, 2, 3]
        # winner for each destination is the smallest-priority (= index) message
        assert winners.tolist() == [1, 4, 0]
        assert m.time > 0

    def test_resolve_concurrent_writes_crcw_cheaper(self):
        erew = PRAM(4, variant=Variant.EREW)
        crcw = PRAM(4, variant=Variant.CRCW)
        dests = np.arange(64) % 7
        primitives.resolve_concurrent_writes(erew, dests)
        primitives.resolve_concurrent_writes(crcw, dests)
        assert crcw.time < erew.time

    def test_resolve_concurrent_writes_empty(self):
        m = PRAM(2)
        winners, uniq = primitives.resolve_concurrent_writes(m, np.array([], dtype=int))
        assert winners.size == 0 and uniq.size == 0

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_resolve_concurrent_writes_picks_first_per_destination(self, dests):
        m = PRAM(4, variant=Variant.CRCW)
        winners, uniq = primitives.resolve_concurrent_writes(m, np.array(dests))
        first_seen = {}
        for i, d in enumerate(dests):
            first_seen.setdefault(d, i)
        assert dict(zip(uniq.tolist(), winners.tolist())) == first_seen


class TestRouting:
    def test_monotone_route_moves_packets(self):
        m = PRAM(4)
        arr = np.array([10, 20, 30, 40, 50])
        out = routing.monotone_route(m, arr, np.array([0, 2]), np.array([1, 4]))
        assert out[1] == 10 and out[4] == 30

    def test_rejects_non_monotone(self):
        m = PRAM(4)
        with pytest.raises(ValueError):
            routing.monotone_route(m, np.arange(4), np.array([2, 1]), np.array([0, 3]))

    def test_charges_log_depth(self):
        m = PRAM(processors=10**9)  # huge P isolates the depth term
        routing.monotone_route(m, np.arange(1024), np.array([0]), np.array([5]))
        assert m.time <= 1 + 10  # ceil(work/P)=1 + log2(1024)


class TestBatcherSort:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 9, 31, 32, 100, 255])
    def test_sorts_arbitrary_lengths(self, n):
        rng = np.random.default_rng(n)
        a = rng.integers(0, 1000, size=n, dtype=np.uint64)
        m = PRAM(8)
        assert np.array_equal(sorting.batcher_sort(m, a), np.sort(a))

    def test_round_count_matches_network_depth(self):
        # power-of-two input: exactly k(k+1)/2 charged rounds
        m = PRAM(1, trace=True)
        sorting.batcher_sort(m, np.arange(64, dtype=np.uint64)[::-1].copy())
        rounds = [s for s in m.steps if s.label == "batcher-round"]
        assert len(rounds) == sorting.batcher_round_count(64)

    def test_sorts_records_with_tie_break(self):
        r = make_records(np.array([5, 5, 1, 5], dtype=np.uint64))
        m = PRAM(4)
        out = sorting.batcher_sort(m, r)
        ck = composite_keys(out)
        assert np.all(ck[:-1] <= ck[1:])
        assert out["key"].tolist() == [1, 5, 5, 5]
        assert out["rid"].tolist() == [2, 0, 1, 3]  # stable among equal keys

    @given(st.lists(st.integers(0, 2**30), max_size=128))
    @settings(max_examples=40, deadline=None)
    def test_property_sorted_permutation(self, xs):
        a = np.array(xs, dtype=np.uint64)
        m = PRAM(4)
        out = sorting.batcher_sort(m, a)
        assert sorted(out.tolist()) == sorted(xs)
        assert np.array_equal(out, np.sort(a))


class TestChargedSorts:
    def test_cole_sorts_and_charges(self):
        m = PRAM(4)
        a = np.array([3, 1, 2], dtype=np.uint64)
        out = sorting.cole_merge_sort(m, a)
        assert out.tolist() == [1, 2, 3]
        assert m.work >= 3  # charged n log n scale

    def test_cole_charge_scales_n_log_n(self):
        m1, m2 = PRAM(1), PRAM(1)
        sorting.cole_merge_sort(m1, np.arange(1024, dtype=np.uint64))
        sorting.cole_merge_sort(m2, np.arange(2048, dtype=np.uint64))
        ratio = m2.work / m1.work
        assert 2.0 < ratio < 2.4  # n log n doubling ratio ≈ 2.2

    def test_rr_radix_requires_crcw(self):
        m = PRAM(4, variant=Variant.EREW)
        with pytest.raises(ConcurrencyViolation):
            sorting.rajasekaran_reif_radix(m, np.arange(8, dtype=np.uint64))

    def test_rr_radix_sorts_linear_work(self):
        m = PRAM(4, variant=Variant.CRCW)
        a = np.array([9, 2, 5], dtype=np.uint64)
        out = sorting.rajasekaran_reif_radix(m, a)
        assert out.tolist() == [2, 5, 9]
        assert m.work == 12  # 4n

    def test_cole_sorts_records(self):
        m = PRAM(2)
        r = make_records(np.array([7, 7, 0], dtype=np.uint64))
        out = sorting.cole_merge_sort(m, r)
        assert out["key"].tolist() == [0, 7, 7]
