"""Store-layer fault modes, pinned identical on both backends.

The paper's robustness claims are about adversarial block *placement*;
this suite extends the discipline to adversarial block *fate*: injected
transient I/O errors mid-``read_blocks_arr``, failed fused read+free
followed by a double free, and checksum-detected bit rot raising a typed
:class:`~repro.exceptions.BlockCorruptionError`.  Every scenario runs
under ``REPRO_PDM_STORE=dict`` and ``arena`` semantics via the ``store``
parameter, and the differential cases assert the two backends fail
**identically** — same exception type, same message, same residual
store state.
"""

import numpy as np
import pytest

from repro.exceptions import BlockCorruptionError, InjectedIOError
from repro.pdm import BlockAddress, ParallelDiskMachine
from repro.pdm.store import make_store
from repro.records import make_records
from repro.resilience import FaultInjector, FaultPlan, FaultRule, activate

BACKENDS = ["arena", "dict"]

B, D = 4, 4


def machine(store, checksums=None, M=64):
    return ParallelDiskMachine(memory=M, block=B, disks=D, store=store,
                               checksums=checksums)


def blocks(k, start=0):
    data = np.arange(start, start + k * B, dtype=np.uint64)
    return make_records(data).reshape(k, B)


def addresses(k, slot=0):
    return np.arange(k, dtype=np.int64), np.full(k, slot, dtype=np.int64)


def load(m, k=D, slot=0, start=0):
    disks, slots = addresses(k, slot)
    m.load_blocks_arr(disks, slots, blocks(k, start))
    return disks, slots


def plan_for(site, **kw):
    return FaultPlan(seed=0, rules=(FaultRule(site=site, **kw),)).validate()


# ------------------------------------------------- transient read faults


@pytest.mark.parametrize("store", BACKENDS)
class TestTransientReadFaults:
    def test_injected_read_error_leaves_state_unchanged(self, store):
        m = machine(store)
        disks, slots = load(m)
        m.attach_faults(FaultInjector(plan_for("store.read", at=(0,))))
        before = m.store.n_blocks()
        ios_before = m.stats.read_ios
        with pytest.raises(InjectedIOError, match="read fault"):
            m.read_blocks_arr(disks, slots, free=True)
        # no partial effects: nothing gathered, nothing freed, no I/O counted
        assert m.store.n_blocks() == before
        assert m.stats.read_ios == ios_before
        assert m.memory_in_use == 0

    def test_retry_after_transient_fault_succeeds(self, store):
        m = machine(store)
        disks, slots = load(m)
        m.attach_faults(FaultInjector(plan_for("store.read", at=(0,))))
        with pytest.raises(InjectedIOError):
            m.read_blocks_arr(disks, slots)
        # opportunity 1 is past the at=(0,) address: the retry runs clean
        out = m.read_blocks_arr(disks, slots)
        assert np.array_equal(out, blocks(D))

    def test_fresh_attempt_refires_at_same_index(self, store):
        # A rebuilt machine (new attempt) sees index 0 again — the fault
        # schedule is a function of the cell/attempt, not of history.
        for _ in range(2):
            m = machine(store)
            disks, slots = load(m)
            m.attach_faults(FaultInjector(plan_for("store.read", at=(0,))))
            with pytest.raises(InjectedIOError):
                m.read_blocks_arr(disks, slots)

    def test_failed_fused_read_free_then_double_free(self, store):
        m = machine(store)
        disks, slots = load(m)
        m.attach_faults(FaultInjector(plan_for("store.read", at=(0,))))
        with pytest.raises(InjectedIOError):
            m.read_blocks_arr(disks, slots, free=True)
        # the failed fused read freed nothing...
        assert m.store.n_blocks() == D
        m.detach_faults()
        out = m.read_blocks_arr(disks, slots, free=True)
        assert np.array_equal(out, blocks(D))
        assert m.store.n_blocks() == 0
        # ...and a double free after the successful one stays a no-op
        m.free_blocks_arr(disks, slots)
        assert m.store.n_blocks() == 0

    def test_free_fault_leaves_blocks_resident(self, store):
        m = machine(store)
        disks, slots = load(m)
        m.attach_faults(FaultInjector(plan_for("store.free", at=(0,))))
        with pytest.raises(InjectedIOError, match="free fault"):
            m.free_blocks_arr(disks, slots)
        assert m.store.n_blocks() == D

    def test_write_fault_fires_before_the_write(self, store):
        m = machine(store)
        m.attach_faults(FaultInjector(plan_for("store.write", at=(0,))))
        disks, slots = addresses(D)
        m.mem_acquire(D * B)
        with pytest.raises(InjectedIOError, match="write fault"):
            m.write_blocks_arr(disks, slots, blocks(D))
        assert m.store.n_blocks() == 0  # no partial effects
        assert m.stats.write_ios == 0


# ------------------------------------------------------------- checksums


@pytest.mark.parametrize("store", BACKENDS)
class TestChecksums:
    def test_corruption_detected_on_read(self, store):
        m = machine(store, checksums=True)
        disks, slots = load(m)
        m.store.corrupt_block(2, 0, bit_seed=12345)
        with pytest.raises(BlockCorruptionError, match="disk=2, slot=0"):
            m.read_blocks_arr(disks, slots)

    def test_corruption_detected_on_peek(self, store):
        m = machine(store, checksums=True)
        load(m)
        m.store.corrupt_block(1, 0, bit_seed=7)
        with pytest.raises(BlockCorruptionError, match="peek"):
            m.peek_block(BlockAddress(1, 0))

    def test_failed_fused_read_free_frees_nothing(self, store):
        m = machine(store, checksums=True)
        disks, slots = load(m)
        m.store.corrupt_block(3, 0, bit_seed=99)
        with pytest.raises(BlockCorruptionError):
            m.read_blocks_arr(disks, slots, free=True)
        # the detection aborted the whole batch: all D blocks still resident
        assert m.store.n_blocks() == D

    def test_rewrite_clears_corruption(self, store):
        m = machine(store, checksums=True)
        disks, slots = load(m)
        m.store.corrupt_block(0, 0, bit_seed=5)
        m.mem_acquire(D * B)
        m.write_blocks_arr(disks, slots, blocks(D, start=100))
        out = m.read_blocks_arr(disks, slots)
        assert np.array_equal(out, blocks(D, start=100))

    def test_checksums_off_is_silent(self, store):
        m = machine(store, checksums=False)
        disks, slots = load(m)
        m.store.corrupt_block(2, 0, bit_seed=12345)
        m.read_blocks_arr(disks, slots)  # no checksum, no detection

    def test_env_var_enables_checksums(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_PDM_CHECKSUMS", "1")
        m = machine(store)
        assert m.store.checksums
        monkeypatch.setenv("REPRO_PDM_CHECKSUMS", "0")
        assert not machine(store).store.checksums

    def test_corrupt_plan_auto_enables_checksums(self, store):
        plan = plan_for("store.write", mode="corrupt", at=(0,))
        with activate(FaultInjector(plan)):
            m = machine(store)
        assert m.store.checksums
        with activate(FaultInjector(plan_for("store.read", at=(0,)))):
            m2 = machine(store)
        assert not m2.store.checksums

    def test_injected_write_corruption_roundtrip(self, store):
        plan = plan_for("store.write", mode="corrupt", at=(0,))
        m = machine(store, checksums=True)
        m.attach_faults(FaultInjector(plan))
        disks, slots = addresses(D)
        m.mem_acquire(D * B)
        m.write_blocks_arr(disks, slots, blocks(D))
        m.detach_faults()
        with pytest.raises(BlockCorruptionError):
            m.read_blocks_arr(disks, slots)

    def test_freed_slot_forgets_its_checksum(self, store):
        m = machine(store, checksums=True)
        disks, slots = load(m)
        m.store.corrupt_block(0, 0, bit_seed=3)
        m.free_blocks_arr(disks, slots)
        # rewriting the freed slots starts fresh — no stale sum to trip on
        m.mem_acquire(D * B)
        m.write_blocks_arr(disks, slots, blocks(D, start=50))
        out = m.read_blocks_arr(disks, slots)
        assert np.array_equal(out, blocks(D, start=50))


# ----------------------------------------------------------- differential


class TestBackendsFailIdentically:
    """The two backends must agree on every failure, bit for bit."""

    def _pair(self, checksums=None):
        ms = [machine(s, checksums=checksums) for s in BACKENDS]
        for m in ms:
            load(m)
        return ms

    def test_injected_read_fault_identical(self):
        outcomes = []
        for m in self._pair():
            m.attach_faults(FaultInjector(plan_for("store.read", at=(0,)),
                                          cell="cell", attempt=0))
            disks, slots = addresses(D)
            with pytest.raises(InjectedIOError) as exc:
                m.read_blocks_arr(disks, slots, free=True)
            outcomes.append((str(exc.value), m.store.n_blocks(),
                             m.stats.read_ios, m.memory_in_use))
        assert outcomes[0] == outcomes[1]

    def test_corruption_error_identical(self):
        outcomes = []
        for m in self._pair(checksums=True):
            m.store.corrupt_block(2, 0, bit_seed=777)
            disks, slots = addresses(D)
            with pytest.raises(BlockCorruptionError) as exc:
                m.read_blocks_arr(disks, slots, free=True)
            outcomes.append((str(exc.value), m.store.n_blocks()))
        assert outcomes[0] == outcomes[1]

    def test_same_bit_flipped_on_both_backends(self):
        # corrupt_block(bit_seed) must damage the same bit of the same
        # block on both substrates: after the flip, the raw bytes agree.
        reads = []
        for m in self._pair(checksums=False):
            m.store.corrupt_block(1, 0, bit_seed=424242)
            disks, slots = addresses(D)
            reads.append(m.read_blocks_arr(disks, slots))
        assert np.array_equal(reads[0], reads[1])

    def test_fault_decision_stream_identical(self):
        # Same plan, same cell, same attempt → byte-identical fault
        # schedule regardless of backend (the injector never sees the
        # store, only opportunity indices).
        plan = plan_for("store.read", rate=0.5, seed=3)
        fired = []
        for name in BACKENDS:
            m = machine(name)
            disks, slots = load(m)
            inj = FaultInjector(plan, cell="deadbeef", attempt=0)
            m.attach_faults(inj)
            seen = []
            for _ in range(16):
                try:
                    m.read_blocks_arr(disks, slots)
                    m.mem_release(D * B)
                    seen.append(0)
                except InjectedIOError:
                    seen.append(1)
            fired.append(seen)
        assert fired[0] == fired[1]
        assert sum(fired[0]) > 0  # the plan actually fired


# ------------------------------------------------------------- inertness


@pytest.mark.parametrize("store", BACKENDS)
class TestInertWithoutPlan:
    def test_no_plan_no_hooks(self, store):
        m = machine(store)
        assert m._fault is None
        assert not m.store.checksums

    def test_non_store_plan_stays_inert(self, store):
        plan = plan_for("exec.task", at=(0,))
        with activate(FaultInjector(plan)):
            m = machine(store)
        assert m._fault is None  # exec-only plans never touch the I/O path

    def test_store_plan_attaches(self, store):
        plan = plan_for("store.read", at=(0,))
        with activate(FaultInjector(plan)):
            m = machine(store)
        assert m._fault is not None
