"""Differential tier: the vectorized kernels are *bit-identical* to scalar.

:mod:`repro.core.kernels` keeps the original per-bucket Python loops as a
selectable reference backend ("scalar") next to the NumPy kernels
("vectorized").  These tests run the same seeded instances through both
and require exact equality — same records byte-for-byte, same balance
matrices (X, A, L), same I/O statistics, same matching pairs in the same
order — so the fast path can never silently drift from the paper's
reference semantics.
"""

import numpy as np
import pytest

from repro import workloads
from repro.core.balance import BalanceEngine, read_bucket_run
from repro.core.kernels import (
    BACKENDS,
    ScalarBackend,
    VectorizedBackend,
    get_backend,
    use_backend,
)
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys

# Seeded grid: (n, buckets, virtual channels, workload, seed).
GRID = [
    (300, 3, 2, "uniform", 0),
    (500, 4, 4, "adversarial_striping", 1),
    (640, 5, 8, "adversarial_bucket_skew", 2),
    (257, 4, 4, "few_distinct", 3),
    (801, 6, 8, "uniform", 4),
]


def pivots_for(records: np.ndarray, s: int) -> np.ndarray:
    ck = np.sort(composite_keys(records))
    ranks = np.linspace(0, ck.size - 1, s + 1).astype(int)[1:-1]
    return ck[ranks]


def run_engine(backend, n, s, hp, workload, seed, chunk=64):
    """One full engine pass under ``backend``; return comparable state."""
    machine = ParallelDiskMachine(memory=8192, block=2, disks=8)
    storage = VirtualDisks(machine, hp)
    data = workloads.by_name(workload, n, seed=seed)
    piv = pivots_for(data, s)
    engine = BalanceEngine(storage, piv, backend=backend)
    for i in range(0, data.shape[0], chunk):
        part = data[i : i + chunk]
        machine.mem_acquire(part.shape[0])
        engine.feed(part)
        engine.run_rounds(drain_below=2 * engine.n_channels)
    runs = engine.flush()
    buckets = []
    for run in runs:
        chunks = []
        for c in read_bucket_run(storage, run, free=True):
            chunks.append(c.copy())
            machine.mem_release(c.shape[0])
        buckets.append(
            np.concatenate(chunks) if chunks else np.empty(0, dtype=data.dtype)
        )
    return {
        "X": engine.matrices.X.copy(),
        "A": engine.matrices.A.copy(),
        "L": [[list(cell) for cell in row] for row in engine.matrices.L],
        "io": machine.stats.snapshot(),
        "rounds": engine.stats.rounds,
        "swapped": engine.stats.blocks_swapped,
        "match_calls": engine.stats.match_calls,
        "buckets": buckets,
    }


@pytest.mark.parametrize("n,s,hp,workload,seed", GRID)
def test_engine_state_bit_identical(n, s, hp, workload, seed):
    a = run_engine("scalar", n, s, hp, workload, seed)
    b = run_engine("vectorized", n, s, hp, workload, seed)
    assert np.array_equal(a["X"], b["X"])
    assert np.array_equal(a["A"], b["A"])
    assert a["L"] == b["L"]
    assert a["io"] == b["io"]
    assert a["rounds"] == b["rounds"]
    assert a["swapped"] == b["swapped"]
    assert a["match_calls"] == b["match_calls"]
    for run_a, run_b in zip(a["buckets"], b["buckets"]):
        assert run_a.dtype == run_b.dtype
        assert run_a.tobytes() == run_b.tobytes()


@pytest.mark.parametrize("matcher", ["derandomized", "randomized"])
def test_full_sort_bit_identical(matcher):
    """End-to-end: same records out, same I/O trace, either backend."""
    from repro.core.sort_pdm import balance_sort_pdm
    from repro.core.streams import peek_run

    outs = {}
    for backend in ("scalar", "vectorized"):
        machine = ParallelDiskMachine(memory=512, block=4, disks=8)
        data = workloads.uniform(6_000, seed=11)
        with use_backend(backend):
            res = balance_sort_pdm(
                machine, data, matcher=matcher,
                rng=np.random.default_rng(7), check_invariants=False,
            )
        outs[backend] = (
            res.total_ios,
            res.io_stats,
            peek_run(res.storage, res.output).tobytes(),
        )
    assert outs["scalar"] == outs["vectorized"]


def test_resolve_conflicts_bit_identical():
    """Algorithm 7 step 2: smallest-numbered u wins, same order, both kernels."""
    rng = np.random.default_rng(17)
    for _ in range(200):
        k = int(rng.integers(1, 12))
        hp = int(rng.integers(2, 16))
        u_channels = tuple(int(x) for x in np.sort(rng.choice(64, k, replace=False)))
        picks = rng.integers(0, hp, size=k).astype(np.int64)
        a = ScalarBackend.resolve_conflicts(u_channels, picks)
        b = VectorizedBackend.resolve_conflicts(u_channels, picks)
        assert a == b


def test_carve_and_tail_kernels_bit_identical():
    """Block carving / tail padding agree on ragged random part lists."""
    rng = np.random.default_rng(23)
    for _ in range(200):
        vb = int(rng.integers(2, 9))
        parts = [
            workloads.uniform(int(rng.integers(1, 2 * vb)), seed=int(rng.integers(99)))
            for _ in range(int(rng.integers(1, 6)))
        ]
        buffered = sum(p.shape[0] for p in parts)
        sa = ScalarBackend.carve_full_blocks([p.copy() for p in parts], buffered, vb)
        va = VectorizedBackend.carve_full_blocks([p.copy() for p in parts], buffered, vb)
        assert len(sa[0]) == len(va[0])
        for x, y in zip(sa[0], va[0]):
            assert x.tobytes() == y.tobytes()
        assert sa[2] == va[2]  # remainder size
        assert np.concatenate(sa[1] or [np.empty(0, dtype=np.uint64)]).tobytes() == \
            np.concatenate(va[1] or [np.empty(0, dtype=np.uint64)]).tobytes()

        true_n = int(rng.integers(1, 3 * vb))
        padded_n = -(-true_n // vb) * vb
        padded = workloads.uniform(padded_n, seed=int(rng.integers(99)))
        st_ = ScalarBackend.tail_blocks(padded.copy(), true_n, vb)
        vt = VectorizedBackend.tail_blocks(padded.copy(), true_n, vb)
        assert len(st_) == len(vt)
        for (xb, xf), (yb, yf) in zip(st_, vt):
            assert xf == yf
            assert xb.tobytes() == yb.tobytes()


def test_bucket_chunks_bit_identical():
    rng = np.random.default_rng(29)
    for _ in range(100):
        n = int(rng.integers(1, 400))
        nb = int(rng.integers(1, 8))
        recs = workloads.uniform(n, seed=int(rng.integers(99)))
        buckets = rng.integers(0, nb, size=n)
        order = np.argsort(buckets, kind="stable")
        sr, sb = recs[order], buckets[order]
        a = list(ScalarBackend.bucket_chunks(sr, sb, nb))
        b = list(VectorizedBackend.bucket_chunks(sr, sb, nb))
        assert [x[0] for x in a] == [x[0] for x in b]
        for (_, ca), (_, cb) in zip(a, b):
            assert ca.tobytes() == cb.tobytes()


def test_backend_selection_plumbing():
    """Registry, env default, and context-manager override all resolve."""
    from repro.exceptions import ParameterError

    # "compiled" joins the registry only when the optional C extension
    # is built — its presence is exactly the build probe.
    assert set(BACKENDS) - {"compiled"} == {"scalar", "vectorized"}
    assert isinstance(get_backend("scalar"), ScalarBackend)
    assert isinstance(get_backend("vectorized"), VectorizedBackend)
    with use_backend("scalar"):
        assert isinstance(get_backend(None), ScalarBackend)
        with use_backend("vectorized"):
            assert isinstance(get_backend(None), VectorizedBackend)
        assert isinstance(get_backend(None), ScalarBackend)
    with pytest.raises(ParameterError):
        get_backend("bogus")
