"""Unit tests for the balance matrices (X, A, L), ComputeAux, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matrices import BalanceMatrices, compute_aux
from repro.exceptions import InvariantViolation, ParameterError


class TestComputeAux:
    def test_subtracts_row_median(self):
        X = np.array([[0, 1, 2, 3]])
        # paper median = 2nd smallest = 1; a = max(0, x - 1)
        assert compute_aux(X).tolist() == [[0, 0, 1, 2]]

    def test_all_equal_row_gives_zeros(self):
        X = np.full((2, 5), 7)
        assert compute_aux(X).tolist() == [[0] * 5, [0] * 5]

    def test_negative_clamped_to_zero(self):
        X = np.array([[10, 0, 0]])
        # median = 0; entries below median clamp at 0
        aux = compute_aux(X)
        assert aux.min() == 0

    @given(
        st.lists(
            st.lists(st.integers(0, 20), min_size=4, max_size=4),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_invariant_1_holds_for_any_histogram(self, rows):
        # At least ⌈H'/2⌉ entries of every row of A are 0 — by definition of
        # the paper median (Invariant 1 is unconditional).
        X = np.array(rows)
        aux = compute_aux(X)
        need = (X.shape[1] + 1) // 2
        assert np.all((aux == 0).sum(axis=1) >= need)


class TestBalanceMatrices:
    def test_construction_validates(self):
        with pytest.raises(ParameterError):
            BalanceMatrices(0, 4)
        with pytest.raises(ParameterError):
            BalanceMatrices(4, 0)

    def test_add_remove_block(self):
        m = BalanceMatrices(2, 4)
        m.add_block(1, 2)
        assert m.X[1, 2] == 1
        m.remove_block(1, 2)
        assert m.X[1, 2] == 0
        with pytest.raises(InvariantViolation):
            m.remove_block(1, 2)

    def test_refresh_aux_detects_over_2(self):
        m = BalanceMatrices(1, 4)
        for _ in range(3):
            m.add_block(0, 0)
        with pytest.raises(InvariantViolation):
            m.refresh_aux()

    def test_channels_with_two_and_bucket_lookup(self):
        m = BalanceMatrices(2, 4)
        # bucket 0: 2 blocks on channel 0, nothing elsewhere -> a_00 = 2
        m.add_block(0, 0)
        m.add_block(0, 0)
        m.refresh_aux()
        assert m.channels_with_two() == [0]
        assert m.bucket_with_two(0) == 0

    def test_bucket_with_two_requires_exactly_one(self):
        m = BalanceMatrices(2, 4)
        m.refresh_aux()
        with pytest.raises(InvariantViolation):
            m.bucket_with_two(0)

    def test_zero_channels_for_bucket(self):
        m = BalanceMatrices(1, 4)
        m.add_block(0, 0)
        m.add_block(0, 0)
        m.refresh_aux()
        assert m.zero_channels_for_bucket(0).tolist() == [1, 2, 3]

    def test_invariant_2_passes_when_binary(self):
        m = BalanceMatrices(2, 4)
        m.add_block(0, 0)
        m.add_block(0, 1)
        m.refresh_aux()
        m.check_invariant_2()

    def test_invariant_2_fails_on_two(self):
        m = BalanceMatrices(1, 4)
        m.add_block(0, 0)
        m.add_block(0, 0)
        m.refresh_aux()
        with pytest.raises(InvariantViolation):
            m.check_invariant_2()

    def test_location_chains(self):
        m = BalanceMatrices(2, 2)
        m.record_location(1, 0, "addr-a")
        m.record_location(1, 0, "addr-b")
        assert m.L[1][0] == ["addr-a", "addr-b"]

    def test_balance_factor_even(self):
        m = BalanceMatrices(1, 4)
        for ch in range(4):
            m.add_block(0, ch)
        assert m.balance_factor(0) == 1.0

    def test_balance_factor_skewed(self):
        m = BalanceMatrices(1, 4)
        for _ in range(4):
            m.X[0, 0] += 1  # direct manipulation: 4 blocks one channel
        # reads needed = 4; optimal = ceil(4/4) = 1
        assert m.balance_factor(0) == 4.0

    def test_balance_factor_empty_bucket(self):
        m = BalanceMatrices(1, 4)
        assert m.balance_factor(0) == 1.0

    def test_max_balance_factor(self):
        m = BalanceMatrices(2, 2)
        m.X[0] = [1, 1]
        m.X[1] = [3, 0]
        assert m.max_balance_factor() == pytest.approx(3 / 2)

    def test_bucket_sizes_blocks(self):
        m = BalanceMatrices(2, 2)
        m.X[0] = [1, 2]
        assert m.bucket_sizes_blocks().tolist() == [3, 0]


class TestTheorem4Property:
    """Invariant 2 ⟹ the factor-2 read bound, on random update traces."""

    @given(st.integers(0, 10**6), st.integers(2, 8), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_median_plus_one_implies_factor_about_2(self, seed, hp, s):
        # Construct any X satisfying x_bh <= m_b + 1 (Invariant 2's outcome)
        # and confirm the balance factor is <= 2 + small additive slack.
        rng = np.random.default_rng(seed)
        m = BalanceMatrices(s, hp)
        base = rng.integers(0, 10, size=(s, hp))
        # force the invariant: clip each row at its paper median + 1
        from repro.util.order_stats import paper_median_rows

        med = paper_median_rows(base)
        m.X = np.minimum(base, med[:, None] + 1)
        for b in range(s):
            total = m.X[b].sum()
            if total == 0:
                continue
            optimal = -(-total // hp)
            # max <= med + 1 and med <= ceil(total / ceil(H'/2) / ...) —
            # the paper's "factor of about 2": max <= 2*optimal + 1.
            assert m.X[b].max() <= 2 * optimal + 1
