"""The chaos-determinism gate (``-m chaos``).

The headline guarantee of ``docs/resilience.md``, pinned end-to-end:
under **any** seeded transient fault plan, with a retry budget, a
sweep's payloads are **bit-identical** to the fault-free run — faults
change *when* work happens, never *what* comes out.  Three seeded
transient plans run serially in the fast tier; the pool variant, the
cache-corruption round trip, and the kill-and-resume smoke ride the
slow/nightly tier.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec import ParallelRunner, RunSpec
from repro.resilience import FaultPlan, FaultRule, SweepJournal

pytestmark = pytest.mark.chaos

CELLS = [
    {"n": 600, "memory": 512, "block": 4, "disks": 4,
     "workload": "uniform", "seed": 0},
    {"n": 600, "memory": 512, "block": 4, "disks": 4,
     "workload": "adversarial_striping", "seed": 1},
]
SPECS = [RunSpec("sort_pdm", dict(c)) for c in CELLS]

#: Three seeded transient plans — exec-layer, store-layer, and mixed —
#: plus a corrupt-store plan.  Every one must pass the bit-identity gate.
PLANS = {
    "exec-transient": FaultPlan(seed=11, name="exec-transient", rules=(
        FaultRule(site="exec.task", rate=0.9, seed=1),
    )),
    "store-read": FaultPlan(seed=22, name="store-read", rules=(
        FaultRule(site="store.read", at=(3,), seed=2),
    )),
    "mixed": FaultPlan(seed=33, name="mixed", rules=(
        FaultRule(site="exec.task", rate=0.5, seed=3),
        FaultRule(site="store.read", at=(7,), seed=4),
        FaultRule(site="store.free", at=(1,), seed=5),
    )),
    "corrupt-store": FaultPlan(seed=44, name="corrupt-store", rules=(
        FaultRule(site="store.write", mode="corrupt", at=(0,), seed=6),
    )),
}
for _p in PLANS.values():
    _p.validate()


def payloads_json(results):
    return json.dumps([r.payload for r in results], sort_keys=True)


@pytest.fixture(scope="module")
def clean_payloads():
    return payloads_json(ParallelRunner(jobs=0).map(SPECS))


# ------------------------------------------------------------ serial gate


class TestSerialChaosGate:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_payloads_bit_identical_to_fault_free(self, name, clean_payloads):
        runner = ParallelRunner(jobs=0, retries=3, backoff=0.0,
                                fault_plan=PLANS[name])
        chaos = runner.map(SPECS)
        assert runner.stats["failed"] == 0
        assert payloads_json(chaos) == clean_payloads
        # the plan was not a no-op: at least one attempt was retried
        assert runner.stats["retried"] > 0, f"plan {name} never fired"

    def test_chaos_runs_are_repeatable(self):
        def run():
            r = ParallelRunner(jobs=0, retries=3, backoff=0.0,
                               fault_plan=PLANS["mixed"])
            out = payloads_json(r.map(SPECS))
            return out, r.stats["retried"]

        (a, ra), (b, rb) = run(), run()
        assert a == b and ra == rb  # same plan → same schedule, bit for bit


# ------------------------------------------------------- fused-plan gate


class TestFusedChaosParity:
    """Fault plans and fused I/O plans compose deterministically.

    Store-watching injectors must see every logical round as its own
    store access, so the machine refuses to fuse while one is attached
    (``io_plans_supported``) — the fault schedule's (site, cell, attempt,
    index) decisions are then *identical* no matter what the ambient
    ``REPRO_IO_PLAN`` asks for.  Exec-layer plans don't watch the store,
    so fusion stays on — and the payloads must still be bit-identical.
    The retry counts double as a decision-schedule fingerprint: the same
    plan firing at the same decisions retries the same number of times.
    """

    def _run(self, plan_name, io_plan):
        saved = os.environ.get("REPRO_IO_PLAN")
        os.environ["REPRO_IO_PLAN"] = io_plan
        try:
            runner = ParallelRunner(jobs=0, retries=3, backoff=0.0,
                                    fault_plan=PLANS[plan_name])
            out = payloads_json(runner.map(SPECS))
            return out, runner.stats["retried"]
        finally:
            if saved is None:
                os.environ.pop("REPRO_IO_PLAN", None)
            else:
                os.environ["REPRO_IO_PLAN"] = saved

    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_fault_decisions_identical_under_fused_plans(self, name,
                                                         clean_payloads):
        fused, fused_retries = self._run(name, "64")
        unfused, unfused_retries = self._run(name, "0")
        assert fused_retries == unfused_retries > 0  # same schedule fired
        assert fused == unfused == clean_payloads    # same bytes out

    def test_store_watching_injector_disables_fusion(self):
        from repro.pdm import ParallelDiskMachine
        from repro.resilience.injector import FaultInjector, activate

        saved = os.environ.get("REPRO_IO_PLAN")
        os.environ["REPRO_IO_PLAN"] = "64"
        try:
            injector = FaultInjector(PLANS["store-read"], cell="probe", attempt=0)
            with activate(injector):
                machine = ParallelDiskMachine(memory=512, block=4, disks=8)
                assert not machine.io_plans_supported()
            clean = ParallelDiskMachine(memory=512, block=4, disks=8)
            assert clean.io_plans_supported()
        finally:
            if saved is None:
                os.environ.pop("REPRO_IO_PLAN", None)
            else:
                os.environ["REPRO_IO_PLAN"] = saved


# -------------------------------------------------------------- pool gate


@pytest.mark.slow
class TestPoolChaosGate:
    @pytest.fixture(autouse=True)
    def _two_cores(self, monkeypatch):
        import repro.exec.runner as runner_mod
        monkeypatch.setattr(runner_mod, "default_jobs", lambda: 4)

    @pytest.mark.parametrize("name", ["exec-transient", "store-read"])
    def test_pool_payloads_bit_identical(self, name, clean_payloads):
        runner = ParallelRunner(jobs=2, retries=3, backoff=0.0,
                                fault_plan=PLANS[name])
        chaos = runner.map(SPECS)
        assert runner.stats["failed"] == 0
        assert payloads_json(chaos) == clean_payloads


# ---------------------------------------------------------------- via CLI


class TestChaosCLI:
    """The gate as CI runs it: two sweeps, one chaotic, reports compared."""

    ARGS = ["sweep", "--task", "sort", "--n", "600", "--disks", "4",
            "--workload", "uniform,adversarial_striping"]

    def _report(self, tmp_path, capsys, tag, extra):
        path = tmp_path / f"{tag}.json"
        from repro.cli import main
        assert main(self.ARGS + ["--emit-json", str(path)] + extra) == 0
        captured = capsys.readouterr()
        with open(path) as fh:
            return json.load(fh), captured

    def test_cli_chaos_report_identical(self, tmp_path, capsys):
        clean, clean_cap = self._report(tmp_path, capsys, "clean", [])
        plan = json.dumps(PLANS["mixed"].to_dict())
        chaos, chaos_cap = self._report(
            tmp_path, capsys, "chaos",
            ["--fault-plan", plan, "--retries", "3", "--backoff", "0"],
        )
        assert "retried=0" not in chaos_cap.err  # faults actually fired
        assert chaos_cap.out == clean_cap.out  # stdout tables identical
        for report in (clean, chaos):
            report.pop("meta", None)  # host/timestamp, when present
        assert chaos == clean  # diff threshold 0, in spirit and in bytes

    def test_cache_corruption_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        clean, _ = self._report(tmp_path, capsys, "warm",
                                ["--cache-dir", cache])
        plan = json.dumps(FaultPlan(seed=5, rules=(
            FaultRule(site="cache.entry", mode="corrupt", rate=1.0),
        )).validate().to_dict())
        again, cap = self._report(
            tmp_path, capsys, "again", ["--cache-dir", cache,
                                        "--fault-plan", plan],
        )
        # every entry was damaged, quarantined, and re-executed...
        assert "fault plan damaged 2 cache entries" in cap.err
        assert "corrupt=2" in cap.err and "executed=2" in cap.err
        # ...to a bit-identical report (cached flags and meta aside)
        for report in (clean, again):
            report.pop("meta", None)
            for row in report["result"]["rows"]:
                row.pop("cached")
        assert again == clean
        quarantined = [n for n in os.listdir(cache)
                       if n.endswith(".quarantine")]
        assert len(quarantined) == 2


# ------------------------------------------------------- journal + resume


class TestJournalResume:
    def test_failed_cells_reexecute_on_resume(self, tmp_path, capsys):
        from repro.cli import main

        jdir = str(tmp_path / "journal")
        # A permanent exec fault fails SOME cells: at these seeds the
        # decision hash lands under rate=0.5 for exactly one of the two.
        plan = json.dumps(FaultPlan(seed=0, rules=(
            FaultRule(site="exec.task", mode="permanent", rate=0.5, seed=0),
        )).validate().to_dict())
        argv = ["sweep", "--task", "sort", "--n", "600", "--disks", "4",
                "--workload", "uniform,adversarial_striping",
                "--journal", jdir]
        rc1 = main(argv + ["--fault-plan", plan, "--backoff", "0"])
        capsys.readouterr()
        journal = SweepJournal(jdir)
        st = journal.stats
        assert rc1 == 3 and 0 < st["total_failed"] < 2
        assert st["total_done"] == 2 - st["total_failed"]
        # Resume without the plan: done cells served, failed re-executed.
        assert main(argv + ["--resume"]) == 0
        cap = capsys.readouterr()
        assert f"resumed={st['total_done']}" in cap.err
        assert f"executed={st['total_failed']}" in cap.err
        assert SweepJournal(jdir).stats["total_done"] == 2

    @pytest.mark.slow
    def test_sigkill_then_resume_reexecutes_only_missing(self, tmp_path):
        jdir = str(tmp_path / "journal")
        argv = ["sweep", "--task", "sort", "--n", "2000", "--disks", "4",
                "--seed", "0,1,2,3,4,5", "--journal", jdir]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro"] + argv,
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        journal_path = os.path.join(jdir, "journal.jsonl")
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:  # pragma: no branch
                if proc.poll() is not None:
                    break  # finished before we could kill it — still valid
                if os.path.exists(journal_path) and any(
                    '"ev":"cell"' in line for line in open(journal_path)
                ):
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=30)
                    break
                time.sleep(0.02)
        finally:
            if proc.poll() is None:  # pragma: no cover - watchdog
                proc.kill()
                proc.wait(timeout=30)

        done_before = SweepJournal(jdir).stats["total_done"]
        assert done_before >= 1  # the poll loop guaranteed progress

        from repro.cli import main
        import io, contextlib
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            assert main(argv + ["--resume"]) == 0
        # only the missing cells re-executed; the rest came from checkpoint
        assert f"executed={6 - done_before}" in err.getvalue()
        assert f"resumed={done_before}" in err.getvalue()
        assert SweepJournal(jdir).stats["total_done"] == 6
