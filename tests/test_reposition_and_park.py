"""Tests for the working-set discipline: parked writes, reposition, dual pool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ParallelHierarchies, workloads
from repro.core.streams import (
    load_ordered_run,
    peek_run,
    read_run_all,
    reposition_run,
    write_ordered_run,
)
from repro.hierarchies import VirtualHierarchies
from repro.records import records_equal


def storage_pair(h=16, hp=4):
    machine = ParallelHierarchies(h)
    return machine, VirtualHierarchies(machine, hp)


class TestDualEndedPool:
    def test_low_alloc_takes_lowest_free(self):
        _, vh = storage_pair()
        data = workloads.uniform(6 * vh.virtual_block_size, seed=130)
        run = load_ordered_run(vh, data)  # slots 0..., low
        vh.free([run.blocks[0].address, run.blocks[4].address])  # channel 0 slots 0,1
        d = data[: vh.virtual_block_size]
        addr = vh.parallel_write([(0, d)])[0]
        assert addr.slot == 0  # lowest recycled

    def test_park_alloc_takes_highest_free(self):
        _, vh = storage_pair()
        data = workloads.uniform(6 * vh.virtual_block_size, seed=131)
        run = load_ordered_run(vh, data)
        vh.free([run.blocks[0].address, run.blocks[4].address])  # slots 0 and 1 on ch 0
        d = data[: vh.virtual_block_size]
        addr = vh.parallel_write([(0, d)], park=True)[0]
        assert addr.slot == 1  # highest recycled, not the frontier

    def test_park_extends_frontier_when_pool_empty(self):
        _, vh = storage_pair()
        d = workloads.uniform(vh.virtual_block_size, seed=132)
        a1 = vh.parallel_write([(0, d)], park=True)[0]
        a2 = vh.parallel_write([(0, d)], park=True)[0]
        assert a2.slot == a1.slot + 1

    def test_no_double_allocation_under_mixed_traffic(self):
        # stress the advisory-heap laziness: interleave low/park allocs and
        # frees; every live block address must be unique
        rng = np.random.default_rng(133)
        _, vh = storage_pair()
        d = workloads.uniform(vh.virtual_block_size, seed=134)
        live = []
        for step in range(300):
            if live and rng.random() < 0.4:
                idx = int(rng.integers(0, len(live)))
                vh.free([live.pop(idx)])
            else:
                park = bool(rng.random() < 0.5)
                live.append(vh.parallel_write([(0, d)], park=park)[0])
            slots = [a.slot for a in live]
            assert len(set(slots)) == len(slots)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_pool_consistency(self, seed):
        rng = np.random.default_rng(seed)
        _, vh = storage_pair()
        d = workloads.uniform(vh.virtual_block_size, seed=0)
        live = set()
        for _ in range(120):
            op = rng.random()
            if live and op < 0.45:
                addr = list(live)[int(rng.integers(0, len(live)))]
                vh.free([addr])
                live.discard(addr)
            else:
                a = vh.parallel_write([(0, d)], park=bool(op > 0.7))[0]
                assert a not in live
                live.add(a)


class TestReposition:
    def test_preserves_content_and_order(self):
        _, vh = storage_pair()
        data = workloads.uniform(130, seed=135)
        run = write_ordered_run(vh, data, park=True)
        moved = reposition_run(vh, run)
        assert records_equal(peek_run(vh, moved), data)
        assert moved.n_records == 130

    def test_moves_to_front(self):
        machine, vh = storage_pair()
        vb = vh.virtual_block_size
        # park a run high up
        filler = workloads.uniform(20 * vb, seed=136)
        f_run = write_ordered_run(vh, filler, park=True)
        data = workloads.uniform(8 * vb, seed=137)
        run = write_ordered_run(vh, data, park=True)
        high_slots = [r.address.slot for r in run.blocks]
        # free the filler: the front of the pool opens up
        vh.free([r.address for r in f_run.blocks])
        moved = reposition_run(vh, run)
        new_slots = [r.address.slot for r in moved.blocks]
        assert max(new_slots) < min(high_slots)
        assert records_equal(peek_run(vh, moved), data)

    def test_frees_the_source(self):
        from repro.exceptions import AddressError

        _, vh = storage_pair()
        vb = vh.virtual_block_size
        # live filler keeps the low slots occupied, so the rewrite cannot
        # recycle the source's own addresses
        load_ordered_run(vh, workloads.uniform(8 * vb, seed=142))
        data = workloads.uniform(4 * vb, seed=138)
        run = write_ordered_run(vh, data, park=True)
        sources = [r.address for r in run.blocks]
        moved = reposition_run(vh, run)
        new = {(a.address.vdisk, a.address.slot) for a in moved.blocks}
        for src in sources:
            if (src.vdisk, src.slot) not in new:
                with pytest.raises(AddressError):
                    vh.peek(src)

    def test_empty_run(self):
        _, vh = storage_pair()
        from repro.core.streams import OrderedRun

        out = reposition_run(vh, OrderedRun(blocks=[], n_records=0))
        assert out.n_records == 0

    def test_charges_read_and_write(self):
        machine, vh = storage_pair()
        data = workloads.uniform(64, seed=139)
        run = load_ordered_run(vh, data)
        before = machine.memory_time
        reposition_run(vh, run)
        assert machine.memory_time > before

    def test_works_on_bucket_runs(self):
        from repro.core.balance import BalanceEngine
        from repro.records import composite_keys

        machine, vh = storage_pair()
        data = workloads.uniform(300, seed=140)
        ck = np.sort(composite_keys(data))
        pivots = ck[np.linspace(0, ck.size - 1, 4).astype(int)[1:-1]]
        engine = BalanceEngine(vh, pivots)
        engine.feed(data)
        engine.run_rounds()
        runs = engine.flush()
        total = 0
        for brun in runs:
            moved = reposition_run(vh, brun)
            total += moved.n_records
            out = peek_run(vh, moved)
            assert out.shape[0] == brun.n_records
        assert total == 300


class TestWorkingSetShrinks:
    def test_recursion_footprint_scales_with_subproblem(self):
        # After a full hierarchy sort, the frontier must stay within a small
        # multiple of the input footprint (no unbounded parked growth).
        from repro import balance_sort_hierarchy

        machine = ParallelHierarchies(64)
        n = 16_000
        data = workloads.uniform(n, seed=141)
        res = balance_sort_hierarchy(machine, data, check_invariants=False)
        z = n / (res.storage.n_virtual * res.storage.virtual_block_size)
        frontier = max(res.storage._frontier)
        assert frontier < 3.0 * z
