"""Unit tests for the hypercube network, bitonic sort, routing, and T(H)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError, TopologyError
from repro.hypercube import Hypercube, bitonic_sort, monotone_route, sharesort, T_H
from repro.hypercube.bitonic import bitonic_step_count
from repro.records import composite_keys, make_records


class TestNetwork:
    def test_requires_power_of_two(self):
        with pytest.raises(ParameterError):
            Hypercube(6)

    def test_dimension(self):
        assert Hypercube(16).dimension == 4

    def test_neighbor(self):
        net = Hypercube(8)
        assert net.neighbor(0b101, 1) == 0b111

    def test_neighbor_bad_dim(self):
        with pytest.raises(TopologyError):
            Hypercube(8).neighbor(0, 3)

    def test_adjacency(self):
        net = Hypercube(8)
        assert net.are_adjacent(0, 4)
        assert not net.are_adjacent(0, 3)
        assert not net.are_adjacent(5, 5)

    def test_exchange_dim_swaps_pairs(self):
        net = Hypercube(4)
        out = net.exchange_dim(np.array([10, 20, 30, 40]), 0)
        assert out.tolist() == [20, 10, 40, 30]
        assert net.comm_steps == 1
        assert net.messages == 4

    def test_exchange_requires_one_value_per_node(self):
        net = Hypercube(4)
        with pytest.raises(TopologyError):
            net.exchange_dim(np.array([1, 2]), 0)

    def test_send_enforces_adjacency(self):
        net = Hypercube(8)
        assert net.send(0, 1, "x") == "x"
        with pytest.raises(TopologyError):
            net.send(0, 3, "x")

    def test_allreduce_sum(self):
        net = Hypercube(8)
        out = net.allreduce_sum(np.arange(8))
        assert out.tolist() == [28] * 8
        assert net.comm_steps == 3

    def test_broadcast(self):
        net = Hypercube(8)
        out = net.broadcast(2, 7)
        assert out.tolist() == [7] * 8
        assert net.comm_steps == 3
        assert net.messages == 7

    def test_reset(self):
        net = Hypercube(4)
        net.exchange_dim(np.arange(4), 0)
        net.reset()
        assert net.comm_steps == 0 and net.messages == 0


class TestBitonic:
    @pytest.mark.parametrize("d", range(1, 8))
    def test_sorts_random(self, d):
        h = 2**d
        net = Hypercube(h)
        a = np.random.default_rng(d).integers(0, 10**6, size=h, dtype=np.uint64)
        assert np.array_equal(bitonic_sort(net, a), np.sort(a))

    @pytest.mark.parametrize("d", range(1, 7))
    def test_step_count_is_exactly_d_d_plus_1_over_2(self, d):
        h = 2**d
        net = Hypercube(h)
        bitonic_sort(net, np.arange(h, dtype=np.uint64)[::-1].copy())
        assert net.comm_steps == bitonic_step_count(h) == d * (d + 1) // 2

    def test_descending(self):
        net = Hypercube(8)
        a = np.arange(8, dtype=np.uint64)
        out = bitonic_sort(net, a, descending=True)
        assert out.tolist() == list(range(7, -1, -1))

    def test_sorts_records(self):
        net = Hypercube(8)
        r = make_records(np.array([3, 3, 1, 9, 0, 3, 2, 1], dtype=np.uint64))
        out = bitonic_sort(net, r)
        ck = composite_keys(out)
        assert np.all(ck[:-1] <= ck[1:])

    def test_wrong_length_rejected(self):
        with pytest.raises(TopologyError):
            bitonic_sort(Hypercube(8), np.arange(5))

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_sorts_any_values(self, d, data):
        h = 2**d
        xs = data.draw(st.lists(st.integers(0, 100), min_size=h, max_size=h))
        net = Hypercube(h)
        out = bitonic_sort(net, np.array(xs, dtype=np.uint64))
        assert out.tolist() == sorted(xs)


class TestRouting:
    def test_monotone_route(self):
        net = Hypercube(8)
        v = np.arange(8) * 10
        out = monotone_route(net, v, np.array([1, 3, 4]), np.array([0, 2, 7]))
        assert out[0] == 10 and out[2] == 30 and out[7] == 40
        assert net.comm_steps == net.dimension

    def test_rejects_non_monotone(self):
        net = Hypercube(8)
        with pytest.raises(ValueError):
            monotone_route(net, np.arange(8), np.array([3, 1]), np.array([0, 2]))

    def test_rejects_out_of_range(self):
        net = Hypercube(4)
        with pytest.raises(TopologyError):
            monotone_route(net, np.arange(4), np.array([0]), np.array([9]))

    def test_message_count_is_total_hops(self):
        net = Hypercube(8)
        monotone_route(net, np.arange(8), np.array([0]), np.array([7]))
        assert net.messages == 3  # 0 -> 7 crosses 3 dimensions


class TestSharesort:
    def test_T_H_pram_is_log(self):
        assert T_H(1024, interconnect="pram") == 10

    def test_T_H_hypercube_shape(self):
        # log H (log log H)^2 at H=2^16: 16 * 16 = 256
        assert T_H(2**16) == pytest.approx(16 * 4 * 4)

    def test_T_H_precomputation_smaller(self):
        assert T_H(2**16, precomputation=True) < T_H(2**16)

    def test_sharesort_sorts_and_charges(self):
        net = Hypercube(16)
        a = np.random.default_rng(0).integers(0, 100, size=16, dtype=np.uint64)
        out = sharesort(net, a)
        assert np.array_equal(out, np.sort(a))
        assert net.comm_steps >= int(T_H(16))

    def test_sharesort_beats_bitonic_asymptotically(self):
        # Charged T(H) grows like log H (loglog H)^2 vs bitonic's log^2 H;
        # the crossover is far out (around d = 2^(loglog²)), so compare at a
        # symbolic scale and also check the growth *ratio* is favourable.
        h = 2**256
        assert T_H(h) < bitonic_step_count(h)
        ratio_small = T_H(2**10) / bitonic_step_count(2**10)
        ratio_large = T_H(2**40) / bitonic_step_count(2**40)
        assert ratio_large < ratio_small  # T(H)/bitonic shrinks with H
