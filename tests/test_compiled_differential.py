"""Differential tier: the compiled fast paths vs their Python references.

PR 8 adds two selectable fast paths that must never change a single
observable byte:

* the **columnar event journal** (``REPRO_OBS_COLUMNAR``, default on)
  vs the classic dict-per-event tracer path;
* the **compiled kernel backend** (``REPRO_KERNEL_BACKEND=compiled``,
  present only when the optional C extension ``repro._speedups`` is
  built) vs the pure-Python ``vectorized`` reference.

The unit of comparison is the whole exec payload — result, metrics
export, and zero-clock trace — canonicalized with ``json.dumps(...,
sort_keys=True)`` so a drift anywhere in the value tree fails loudly.
Both block-store backends and both physical I/O-plan modes (fused /
unfused) are crossed in, plus the audit and profile report surfaces.

Without the extension the compiled classes are skipped (the build is
optional by design); the columnar half always runs.
"""

import json

import pytest

from repro.core.kernels import BACKENDS
from repro.exec import run_task

HAVE_COMPILED = "compiled" in BACKENDS

needs_compiled = pytest.mark.skipif(
    not HAVE_COMPILED,
    reason="optional C extension not built "
           "(python setup.py build_ext --inplace)",
)

#: Deep enough to recurse, rebalance, and hit partial stripes; small
#: enough for the unit tier.
CELL = {"n": 2000, "memory": 512, "block": 4, "disks": 4,
        "workload": "adversarial_bucket_skew", "seed": 1}
HCELL = {"n": 1200, "h": 27, "model": "bt", "cost": "0.5"}

STORES = ["arena", "dict"]
#: REPRO_IO_PLAN values: default windowed fusion vs fully unfused.
PLANS = [("fused", None), ("unfused", "0")]


def canon(payload: dict) -> str:
    """Canonical JSON of a payload — byte equality means bit identity."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _set_env(monkeypatch, **env):
    for key, value in env.items():
        if value is None:
            monkeypatch.delenv(key, raising=False)
        else:
            monkeypatch.setenv(key, value)


def payload_under(monkeypatch, task: str, params: dict, **env) -> dict:
    _set_env(monkeypatch, **env)
    return run_task(task, dict(params))


# ---------------------------------------------- columnar vs dict events


class TestColumnarVsDictEvents:
    """``REPRO_OBS_COLUMNAR=0`` (classic dicts) vs the columnar journal."""

    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p[0])
    def test_sort_payload_identity(self, monkeypatch, store, plan):
        _set_env(monkeypatch, REPRO_PDM_STORE=store, REPRO_IO_PLAN=plan[1])
        classic = payload_under(monkeypatch, "sort_pdm", CELL,
                                REPRO_OBS_COLUMNAR="0")
        columnar = payload_under(monkeypatch, "sort_pdm", CELL,
                                 REPRO_OBS_COLUMNAR=None)
        assert canon(classic) == canon(columnar)

    def test_compare_and_hierarchy_payload_identity(self, monkeypatch):
        for task, params in (
            ("compare_pdm", {**CELL, "algorithm": "balance"}),
            ("hierarchy_sort", HCELL),
        ):
            classic = payload_under(monkeypatch, task, params,
                                    REPRO_OBS_COLUMNAR="0")
            columnar = payload_under(monkeypatch, task, params,
                                     REPRO_OBS_COLUMNAR=None)
            assert canon(classic) == canon(columnar), task

    def test_trace_and_metrics_sections_individually(self, monkeypatch):
        """Pinpoint failure mode: which payload section drifted."""
        classic = payload_under(monkeypatch, "sort_pdm", CELL,
                                REPRO_OBS_COLUMNAR="0")
        columnar = payload_under(monkeypatch, "sort_pdm", CELL,
                                 REPRO_OBS_COLUMNAR=None)
        assert classic["result"] == columnar["result"]
        assert classic["metrics"] == columnar["metrics"]
        assert len(classic["trace"]) == len(columnar["trace"])
        for i, (a, b) in enumerate(zip(classic["trace"],
                                       columnar["trace"])):
            assert a == b, f"trace record {i} drifted"


# ------------------------------------------------- compiled vs python


@needs_compiled
class TestCompiledVsPython:
    """``REPRO_KERNEL_BACKEND=compiled`` vs the ``vectorized`` reference."""

    @pytest.mark.parametrize("store", STORES)
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p[0])
    def test_sort_payload_identity(self, monkeypatch, store, plan):
        _set_env(monkeypatch, REPRO_PDM_STORE=store, REPRO_IO_PLAN=plan[1])
        python = payload_under(monkeypatch, "sort_pdm", CELL,
                               REPRO_KERNEL_BACKEND="vectorized")
        compiled = payload_under(monkeypatch, "sort_pdm", CELL,
                                 REPRO_KERNEL_BACKEND="compiled")
        assert canon(python) == canon(compiled)

    @pytest.mark.parametrize("matcher", ["derandomized", "randomized"])
    def test_matchers_identical(self, monkeypatch, matcher):
        params = {**CELL, "matcher": matcher}
        python = payload_under(monkeypatch, "sort_pdm", params,
                               REPRO_KERNEL_BACKEND="vectorized")
        compiled = payload_under(monkeypatch, "sort_pdm", params,
                                 REPRO_KERNEL_BACKEND="compiled")
        assert canon(python) == canon(compiled)

    def test_full_fast_stack_vs_full_reference_stack(self, monkeypatch):
        """Strongest cross: compiled+columnar vs pure-python+dict-events."""
        reference = payload_under(monkeypatch, "sort_pdm", CELL,
                                  REPRO_KERNEL_BACKEND="vectorized",
                                  REPRO_OBS_COLUMNAR="0")
        fast = payload_under(monkeypatch, "sort_pdm", CELL,
                             REPRO_KERNEL_BACKEND="compiled",
                             REPRO_OBS_COLUMNAR=None)
        assert canon(reference) == canon(fast)

    def test_audit_report_identical(self, monkeypatch, tmp_path):
        """The Theorem 1–4 audit surface is backend-invariant."""
        from repro.cli import main

        reports = {}
        for backend in ("vectorized", "compiled"):
            _set_env(monkeypatch, REPRO_KERNEL_BACKEND=backend)
            path = tmp_path / f"audit-{backend}.json"
            rc = main(["audit", "--n", "2000", "--memory", "512",
                       "--block", "4", "--disks", "8",
                       "--emit-json", str(path)])
            assert rc == 0
            reports[backend] = json.loads(path.read_text())
        a, b = reports["vectorized"], reports["compiled"]
        # Wall-clock fields move run to run; the deterministic audit
        # verdicts and measurements must not.
        assert a["audit"] == b["audit"]
        assert a["result"] == b["result"]

    def test_profile_report_identical(self, monkeypatch, tmp_path):
        """``repro profile`` over the zero-clock payload trace matches."""
        from repro.cli import main

        profiles = {}
        for backend in ("vectorized", "compiled"):
            payload = payload_under(monkeypatch, "sort_pdm", CELL,
                                    REPRO_KERNEL_BACKEND=backend)
            trace_path = tmp_path / f"trace-{backend}.jsonl"
            with open(trace_path, "w") as fh:
                for event in payload["trace"]:
                    fh.write(json.dumps(event) + "\n")
            out_path = tmp_path / f"profile-{backend}.json"
            rc = main(["profile", str(trace_path),
                       "--emit-json", str(out_path)])
            assert rc == 0
            doc = json.loads(out_path.read_text())
            doc.pop("trace", None)  # the input path differs by name
            profiles[backend] = doc
        assert profiles["vectorized"] == profiles["compiled"]

    def test_backend_registered_and_selectable(self):
        from repro.core.kernels import get_backend, use_backend

        backend = get_backend("compiled")
        assert backend.name == "compiled"
        assert callable(getattr(backend, "round_ops", None))
        assert callable(getattr(backend, "group_small", None))
        with use_backend("compiled"):
            assert get_backend(None).name == "compiled"
