"""Tests for run abstractions on both storage backends."""

import numpy as np
import pytest

from repro import workloads
from repro.core.balance import BlockRef
from repro.core.streams import (
    OrderedRun,
    as_ordered_run,
    concat_runs,
    load_ordered_run,
    peek_run,
    read_run_all,
    read_run_batches,
    write_ordered_run,
)
from repro.exceptions import ParameterError
from repro.hierarchies import ParallelHierarchies, VirtualHierarchies
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import records_equal


def pdm_storage():
    machine = ParallelDiskMachine(memory=2048, block=4, disks=8)
    return machine, VirtualDisks(machine, 4)


def hier_storage():
    machine = ParallelHierarchies(16)
    return machine, VirtualHierarchies(machine, 4)


@pytest.fixture(params=["pdm", "hier"])
def backend(request):
    return pdm_storage() if request.param == "pdm" else hier_storage()


class TestLoadAndRead:
    def test_roundtrip(self, backend):
        machine, storage = backend
        data = workloads.uniform(100, seed=20)
        run = load_ordered_run(storage, data)
        out = read_run_all(storage, run)
        assert records_equal(out, data)
        storage.release_memory(100)

    def test_block_fills_sum_to_n(self, backend):
        _, storage = backend
        data = workloads.uniform(101, seed=21)  # non-multiple of block size
        run = load_ordered_run(storage, data)
        assert sum(r.fill for r in run.blocks) == 101
        assert run.blocks[-1].fill == 101 % storage.virtual_block_size

    def test_round_robin_channels(self, backend):
        _, storage = backend
        data = workloads.uniform(10 * storage.virtual_block_size, seed=22)
        run = load_ordered_run(storage, data)
        channels = [r.address.vdisk for r in run.blocks]
        assert channels == [i % storage.n_virtual for i in range(10)]

    def test_read_batches_full_parallelism(self):
        machine, storage = pdm_storage()
        vb = storage.virtual_block_size
        data = workloads.uniform(vb * 8, seed=23)  # 8 full virtual blocks
        run = load_ordered_run(storage, data)
        list(read_run_batches(storage, run))
        # 8 blocks over 4 channels round robin -> 2 parallel reads
        assert machine.stats.read_ios == 2
        storage.release_memory(vb * 8)

    def test_peek_run_has_no_cost(self, backend):
        machine, storage = backend
        data = workloads.uniform(64, seed=24)
        run = load_ordered_run(storage, data)
        out = peek_run(storage, run)
        assert records_equal(out, data)
        if hasattr(machine, "stats"):
            assert machine.stats.total_ios == 0
        else:
            assert machine.memory_time == 0


class TestWrite:
    def test_write_then_read(self, backend):
        machine, storage = backend
        data = workloads.uniform(77, seed=25)
        storage.acquire_memory(77)
        run = write_ordered_run(storage, data)
        assert records_equal(peek_run(storage, run), data)

    def test_write_charges_backend(self):
        machine, storage = pdm_storage()
        vb = storage.virtual_block_size
        data = workloads.uniform(4 * vb, seed=26)  # one block per channel
        machine.mem_acquire(4 * vb)
        write_ordered_run(storage, data)
        assert machine.stats.write_ios == 1
        assert machine.memory_in_use == 0


class TestSliceAndConcat:
    def test_slice_blocks_counts(self):
        _, storage = pdm_storage()
        data = workloads.uniform(70, seed=27)  # vb=8: 8 full + 1 partial (6)
        run = load_ordered_run(storage, data)
        head = run.slice_blocks(0, 4)
        tail = run.slice_blocks(4, run.n_blocks)
        assert head.n_records == 32
        assert tail.n_records == 38

    def test_concat_runs(self):
        _, storage = pdm_storage()
        a = load_ordered_run(storage, workloads.uniform(20, seed=28))
        b = load_ordered_run(storage, workloads.uniform(30, seed=29))
        c = concat_runs([a, b])
        assert c.n_records == 50
        assert c.n_blocks == a.n_blocks + b.n_blocks

    def test_concat_preserves_read_order(self):
        machine, storage = pdm_storage()
        d1 = workloads.uniform(20, seed=30)
        d2 = workloads.uniform(20, seed=31)
        a = load_ordered_run(storage, d1)
        b = load_ordered_run(storage, d2)
        out = read_run_all(storage, concat_runs([a, b]))
        assert np.array_equal(out["key"], np.concatenate([d1["key"], d2["key"]]))
        storage.release_memory(40)

    def test_as_ordered_run_rejects_junk(self):
        with pytest.raises(ParameterError):
            as_ordered_run("nope")


class TestBookkeepingGuards:
    def test_fill_mismatch_detected(self):
        machine, storage = pdm_storage()
        data = workloads.uniform(16, seed=32)
        run = load_ordered_run(storage, data)
        # corrupt a fill count
        run.blocks[0] = BlockRef(run.blocks[0].address, run.blocks[0].fill - 1)
        with pytest.raises(ParameterError, match="fill bookkeeping"):
            list(read_run_batches(storage, run))
