"""Smoke tests: every example script runs to completion and says what it should.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

CASES = [
    ("quickstart.py", ["output verified", "measured / bound"]),
    ("database_merge_join.py", ["Sort-merge join", "matches"]),
    ("memory_hierarchy_sort.py", ["P-HMM", "P-BT", "hypercube"]),
    ("load_balancing_raid.py", ["balanced", "input-order", "random"]),
    ("balance_trace.py", ["aux_always_binary: True", "Theorem 4"]),
    ("umh_pipeline.py", ["Bus activity", "P-UMH"]),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in expected:
        assert needle in proc.stdout, f"{script}: missing {needle!r}"
