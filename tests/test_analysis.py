"""Tests for the bounds, optimality fits, and table reporting."""

import math

import pytest

from repro.analysis import bounds
from repro.analysis.optimality import RatioSeries, is_flat, loglog_slope, ratio_series
from repro.analysis.reporting import Table, format_value


class TestBounds:
    def test_paper_log_floors(self):
        assert bounds.paper_log(0.5) == 1.0
        assert bounds.paper_log(1) == 1.0
        assert bounds.paper_log(1024) == 10.0

    def test_sort_io_bound_formula(self):
        # (N/DB)·log(N/B)/log(M/B)
        assert bounds.sort_io_bound(2**16, m=512, b=4, d=8) == pytest.approx(
            (2**16 / 32) * 14 / 7
        )

    def test_sort_io_bound_degenerate(self):
        assert bounds.sort_io_bound(0, 512, 4, 8) == 1.0

    def test_striped_merge_ios_grows_with_n_over_m(self):
        small = bounds.striped_merge_sort_ios(10**4, 512, 4, 8)
        large = bounds.striped_merge_sort_ios(10**6, 512, 4, 8)
        # 100x the data, more than 100x the I/Os (extra merge levels)
        assert large > 100 * small

    def test_cpu_work_bound(self):
        assert bounds.cpu_work_bound(1024, p=4) == pytest.approx(256 * 10)

    def test_theorem2_power_terms(self):
        # alpha=1: (N/H)^2 dominates for large N/H
        n, h = 2**20, 16
        val = bounds.theorem2_power_bound(n, h, 1.0)
        assert val == pytest.approx((n / h) ** 2 + (n / h) * 20)

    def test_theorem2_log_bound(self):
        n, h = 2**16, 64
        assert bounds.theorem2_log_bound(n, h) == pytest.approx(1024 * 10 * 16)

    def test_theorem3_regimes(self):
        n, h = 2**16, 64
        assert bounds.theorem3_bound(n, h, None) == bounds.theorem3_bound(n, h, 0.5)
        assert bounds.theorem3_bound(n, h, 1.0) > bounds.theorem3_bound(n, h, 0.5)
        assert bounds.theorem3_bound(n, h, 2.0) > bounds.theorem3_bound(n, h, 1.0)

    def test_hypercube_extra_term(self):
        assert bounds.theorem2_hypercube_extra(2**16, 64) > 0


class TestOptimality:
    def test_ratio_series_scalar_xs(self):
        s = ratio_series([1, 2, 4], [10, 20, 40], lambda n: n)
        assert s.ratios == [10.0, 10.0, 10.0]
        assert s.spread == 1.0
        assert s.trend == 1.0
        assert is_flat(s)

    def test_ratio_series_tuple_xs(self):
        s = ratio_series([(2, 3), (4, 3)], [12, 24], lambda a, b: a * b)
        assert s.ratios == [2.0, 2.0]

    def test_ratio_series_validation(self):
        with pytest.raises(ValueError):
            ratio_series([], [], lambda n: n)
        with pytest.raises(ValueError):
            ratio_series([1], [1, 2], lambda n: n)

    def test_drifting_series_not_flat(self):
        s = ratio_series([1, 10, 100], [1, 40, 1600], lambda n: n)
        assert not is_flat(s)
        assert s.trend > 1

    def test_loglog_slope_power_law(self):
        xs = [10, 100, 1000]
        assert loglog_slope(xs, [x**2 for x in xs]) == pytest.approx(2.0)
        assert loglog_slope(xs, [5 * x for x in xs]) == pytest.approx(1.0)

    def test_loglog_slope_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([5, 5], [1, 2])


class TestReporting:
    def test_table_render_aligns(self):
        t = Table(["a", "bb"], title="T")
        t.add(1, 2.5)
        t.add("xx", True)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "yes" in text

    def test_table_add_dict(self):
        t = Table(["x", "y"])
        t.add_dict({"y": 2, "x": 1})
        assert t.rows[0] == ["1", "2"]

    def test_table_wrong_arity(self):
        t = Table(["x"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(3.14159) == "3.142"
        assert format_value(True) == "yes"
        assert format_value("s") == "s"

    def test_empty_table_renders_header(self):
        t = Table(["col"])
        assert "col" in t.render()

    def test_table_to_dict(self):
        t = Table(["x", "ok"], title="T")
        t.add(1, True)
        assert t.to_dict() == {
            "title": "T", "columns": ["x", "ok"], "rows": [["1", "yes"]],
        }

    def test_benchmark_sidecar_written(self, tmp_path, monkeypatch, capsys):
        import importlib.util
        import json
        import os

        spec = importlib.util.spec_from_file_location(
            "_harness",
            os.path.join(os.path.dirname(__file__), "..", "benchmarks", "_harness.py"),
        )
        harness = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(harness)
        monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
        t = Table(["n", "ios"], title="E0")
        t.add(100, 42)
        harness.report("e0_smoke", t, notes="a note")
        capsys.readouterr()
        assert (tmp_path / "e0_smoke.txt").exists()
        side = json.loads((tmp_path / "e0_smoke.json").read_text())
        assert side["schema"] == "repro.bench_result/1"
        assert side["name"] == "e0_smoke"
        assert side["columns"] == ["n", "ios"]
        assert side["rows"] == [["100", "42"]]
        assert side["notes"] == "a note"
