"""End-to-end tests for Balance Sort on parallel hierarchies (Theorems 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.analysis import bounds
from repro.core.sort_hierarchy import balance_sort_hierarchy, choose_s_and_g
from repro.core.streams import peek_run
from repro.exceptions import ParameterError
from repro.hierarchies import LogCost, ParallelHierarchies, PowerCost
from repro.util import assert_is_permutation, assert_sorted


def phmm(h=64, cost=None, interconnect="pram", model="hmm"):
    return ParallelHierarchies(h, model=model, cost_fn=cost or LogCost(), interconnect=interconnect)


class TestCorrectness:
    @pytest.mark.parametrize(
        "workload",
        ["uniform", "sorted", "reverse", "few_distinct", "zipf",
         "adversarial_striping", "adversarial_bucket_skew"],
    )
    def test_sorts_workloads_phmm(self, workload):
        m = phmm()
        data = workloads.by_name(workload, 3000, seed=60)
        res = balance_sort_hierarchy(m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out, workload)
        assert_is_permutation(out, data, workload)

    @pytest.mark.parametrize("model,alpha", [("hmm", None), ("hmm", 1.0), ("bt", 0.5), ("bt", 2.0)])
    def test_sorts_all_models(self, model, alpha):
        cost = LogCost() if alpha is None else PowerCost(alpha=alpha)
        m = phmm(model=model, cost=cost)
        data = workloads.uniform(2500, seed=61)
        res = balance_sort_hierarchy(m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)

    @pytest.mark.parametrize("interconnect", ["pram", "hypercube"])
    def test_both_interconnects(self, interconnect):
        m = phmm(interconnect=interconnect)
        data = workloads.uniform(2000, seed=62)
        res = balance_sort_hierarchy(m, data)
        assert_sorted(peek_run(res.storage, res.output))
        assert res.interconnect_time > 0

    def test_base_case_only(self):
        m = phmm(h=64)
        data = workloads.uniform(150, seed=63)  # N <= 3H = 192
        res = balance_sort_hierarchy(m, data)
        assert res.recursion_depth == 0
        assert res.base_case_calls == 1
        assert_sorted(peek_run(res.storage, res.output))

    def test_empty_and_tiny(self):
        for n in (0, 1, 3):
            m = phmm(h=8)
            data = workloads.uniform(n, seed=64)
            res = balance_sort_hierarchy(m, data)
            out = peek_run(res.storage, res.output)
            assert out.shape[0] == n
            assert_sorted(out)

    @pytest.mark.parametrize("matcher", ["derandomized", "randomized", "greedy"])
    def test_matchers(self, matcher):
        m = phmm(h=27)
        data = workloads.adversarial_striping(2000, seed=65, period=3)
        res = balance_sort_hierarchy(m, data, matcher=matcher)
        assert_sorted(peek_run(res.storage, res.output))

    def test_rejects_bad_arguments(self):
        m = phmm()
        with pytest.raises(ParameterError):
            balance_sort_hierarchy(m)

    @given(st.integers(0, 10**6), st.integers(0, 2500))
    @settings(max_examples=10, deadline=None)
    def test_property_random_sizes(self, seed, n):
        m = phmm(h=16)
        data = workloads.uniform(n, seed=seed)
        res = balance_sort_hierarchy(m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)


class TestParameterChoice:
    def test_choose_s_and_g_constraint(self):
        for n in [200, 1000, 10**4, 10**6]:
            for h in [8, 64, 512]:
                s, g = choose_s_and_g(n, h)
                lg = max(1, n.bit_length() - 1)
                assert s >= 3 and g >= 2
                assert g * lg <= n // s + 1

    def test_bucket_sizes_bounded(self):
        m = phmm()
        data = workloads.zipf_like(4000, seed=66)
        res = balance_sort_hierarchy(m, data)
        assert res.max_bucket_ratio <= 1.0


class TestCostShapes:
    def test_power_cost_dominates_log_cost(self):
        data = workloads.uniform(3000, seed=67)
        m_log = phmm(cost=LogCost())
        m_pow = phmm(cost=PowerCost(alpha=1.0))
        t_log = balance_sort_hierarchy(m_log, data).memory_time
        t_pow = balance_sort_hierarchy(m_pow, data).memory_time
        assert t_pow > t_log

    def test_bt_streams_cheaper_than_hmm_for_sublinear_alpha(self):
        # Section 4.4: the touch pipeline makes streaming cost ~loglog
        # instead of x^0.5 per record.
        data = workloads.uniform(3000, seed=68)
        t_hmm = balance_sort_hierarchy(phmm(cost=PowerCost(alpha=0.5)), data).memory_time
        t_bt = balance_sort_hierarchy(
            phmm(model="bt", cost=PowerCost(alpha=0.5)), data
        ).memory_time
        assert t_bt < t_hmm

    def test_hypercube_interconnect_costs_more(self):
        data = workloads.uniform(2000, seed=69)
        t_pram = balance_sort_hierarchy(phmm(interconnect="pram"), data).interconnect_time
        t_cube = balance_sort_hierarchy(phmm(interconnect="hypercube"), data).interconnect_time
        assert t_cube > t_pram

    def test_theorem2_power_ratio_bounded(self):
        ratios = []
        for n in [2000, 4000, 8000, 16000]:
            m = phmm(cost=PowerCost(alpha=1.0))
            res = balance_sort_hierarchy(
                m, workloads.uniform(n, seed=70), check_invariants=False
            )
            ratios.append(res.total_time / bounds.theorem2_power_bound(n, 64, 1.0))
        assert max(ratios) / min(ratios) < 4.0

    def test_more_hierarchies_is_faster(self):
        data = workloads.uniform(4000, seed=71)
        t8 = balance_sort_hierarchy(phmm(h=8), data).total_time
        t64 = balance_sort_hierarchy(phmm(h=64), data).total_time
        assert t64 < t8
