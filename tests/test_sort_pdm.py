"""End-to-end tests for Balance Sort on the parallel disk model (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.analysis import bounds
from repro.core.sort_pdm import balance_sort_pdm, default_bucket_count
from repro.core.streams import load_ordered_run, peek_run
from repro.exceptions import ParameterError
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.util import assert_is_permutation, assert_sorted


def machine(M=512, B=4, D=8, P=1, variant="EREW"):
    return ParallelDiskMachine(memory=M, block=B, disks=D, processors=P, pram_variant=variant)


class TestCorrectness:
    @pytest.mark.parametrize("workload", sorted(workloads.GENERATORS))
    def test_sorts_every_workload(self, workload):
        m = machine()
        data = workloads.by_name(workload, 2500, seed=40)
        res = balance_sort_pdm(m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out, workload)
        assert_is_permutation(out, data, workload)
        assert m.memory_in_use == 0

    @pytest.mark.parametrize("matcher", ["derandomized", "randomized", "greedy", "mincost"])
    def test_all_matchers(self, matcher):
        m = machine()
        data = workloads.adversarial_striping(2000, seed=41)
        res = balance_sort_pdm(m, data, matcher=matcher)
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)

    def test_base_case_only(self):
        m = machine(M=2048, B=4, D=8)
        data = workloads.uniform(500, seed=42)  # fits in memory
        res = balance_sort_pdm(m, data)
        assert res.recursion_depth == 0
        out = peek_run(res.storage, res.output)
        assert_sorted(out)

    def test_empty_and_single(self):
        for n in (0, 1, 2):
            m = machine()
            data = workloads.uniform(n, seed=43)
            res = balance_sort_pdm(m, data)
            out = peek_run(res.storage, res.output)
            assert out.shape[0] == n
            assert_sorted(out)

    def test_crcw_radix_internal(self):
        m = machine(variant="CRCW")
        data = workloads.uniform(2000, seed=44)
        res = balance_sort_pdm(m, data, internal="radix")
        assert_sorted(peek_run(res.storage, res.output))

    def test_rejects_both_records_and_run(self):
        m = machine()
        data = workloads.uniform(10, seed=0)
        storage = VirtualDisks(m, 2)
        run = load_ordered_run(storage, data)
        with pytest.raises(ParameterError):
            balance_sort_pdm(m, data, run=run, storage=storage)
        with pytest.raises(ParameterError):
            balance_sort_pdm(m)

    def test_rejects_bogus_internal(self):
        m = machine()
        with pytest.raises(ParameterError):
            balance_sort_pdm(m, workloads.uniform(10, seed=0), internal="quick")

    @given(st.integers(0, 10**6), st.integers(0, 3000))
    @settings(max_examples=15, deadline=None)
    def test_property_random_sizes(self, seed, n):
        m = machine()
        data = workloads.uniform(n, seed=seed)
        res = balance_sort_pdm(m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)


class TestModelDiscipline:
    def test_memory_never_exceeded(self):
        # the ledger raises CapacityError internally if violated; a clean
        # run plus a zero final balance is the assertion
        m = machine(M=256, B=2, D=8)
        data = workloads.uniform(3000, seed=45)
        balance_sort_pdm(m, data)
        assert m.memory_in_use == 0

    def test_machine_too_small_raises(self):
        m = machine(M=64, B=4, D=8)  # DB = 32 = M/2: no room for buffers
        data = workloads.uniform(500, seed=46)
        with pytest.raises(ParameterError, match="too small"):
            balance_sort_pdm(m, data)


class TestTheorem1Shape:
    def test_io_within_constant_of_bound(self):
        ratios = []
        for n in [2000, 8000, 32000]:
            m = machine(M=512, B=4, D=8)
            data = workloads.uniform(n, seed=47)
            res = balance_sort_pdm(m, data, check_invariants=False)
            bound = bounds.sort_io_bound(n, m.M, m.B, m.D)
            ratios.append(res.total_ios / bound)
        # Optimal ⟹ the ratio is Θ(1) in N.  The constant here is ~3 passes
        # per recursion level times log(M/B)/log(S) ≈ 12 with the paper's
        # S = (M/B)^{1/4}; what matters is that the band is tight and the
        # growth saturates rather than tracking an extra log factor.
        assert max(ratios) < 16
        assert ratios[-1] < ratios[0] * 1.6

    def test_balance_theorem4(self):
        m = machine()
        data = workloads.adversarial_bucket_skew(4000, seed=48)
        res = balance_sort_pdm(m, data)
        assert res.max_balance_factor <= 2.5

    def test_bucket_sizes_within_2n_over_s(self):
        m = machine()
        data = workloads.zipf_like(4000, seed=49)
        res = balance_sort_pdm(m, data)
        assert res.max_bucket_ratio <= 1.0

    def test_cpu_work_scales_n_log_n(self):
        works = []
        for n in [4000, 8000, 16000]:
            m = machine()
            res = balance_sort_pdm(m, workloads.uniform(n, seed=50), check_invariants=False)
            works.append(res.cpu["work"] / (n * np.log2(n)))
        # work / (n log n) stays bounded
        assert max(works) / min(works) < 2.0

    def test_default_bucket_count(self):
        assert default_bucket_count(512, 4) == 3
        assert default_bucket_count(4096, 4) == 6
        assert default_bucket_count(16, 4) == 3  # floored


class TestDeterminism:
    def test_derandomized_sort_is_reproducible(self):
        outs = []
        for _ in range(2):
            m = machine()
            data = workloads.adversarial_striping(3000, seed=51)
            res = balance_sort_pdm(m, data, matcher="derandomized")
            outs.append(
                (res.total_ios, res.blocks_swapped, res.engine_rounds, res.match_calls)
            )
        assert outs[0] == outs[1]
