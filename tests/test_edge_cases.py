"""Edge-case grab bag: branches the main suites don't reach."""

import numpy as np
import pytest

from repro import workloads
from repro.exceptions import AddressError, ParameterError
from repro.pdm import BlockAddress, ParallelDiskMachine, StripedFile, VirtualDisks
from repro.pram import PRAM, Variant, primitives
from repro.records import make_records


class TestResolveConcurrentWritesPriorities:
    def test_explicit_priorities_pick_lowest(self):
        m = PRAM(4, variant=Variant.CRCW)
        dests = np.array([5, 5, 5])
        prios = np.array([9, 1, 4])
        winners, uniq = primitives.resolve_concurrent_writes(m, dests, prios)
        assert uniq.tolist() == [5]
        assert winners.tolist() == [1]  # index of priority 1

    def test_priority_ties_break_by_position(self):
        m = PRAM(4, variant=Variant.CRCW)
        winners, _ = primitives.resolve_concurrent_writes(
            m, np.array([2, 2]), np.array([7, 7])
        )
        assert winners.tolist() == [0]


class TestStripedFileEdges:
    def test_write_stripe_wrong_length(self):
        m = ParallelDiskMachine(memory=640, block=4, disks=4)
        f = StripedFile(m, 64, start_slot=0)
        m.mem_acquire(3)
        with pytest.raises(ParameterError):
            f.write_stripe(0, make_records(np.arange(3, dtype=np.uint64)))

    def test_negative_length_rejected(self):
        m = ParallelDiskMachine(memory=640, block=4, disks=4)
        with pytest.raises(ParameterError):
            StripedFile(m, -1, start_slot=0)

    def test_block_address_out_of_range(self):
        m = ParallelDiskMachine(memory=640, block=4, disks=4)
        f = StripedFile(m, 16, start_slot=0)
        with pytest.raises(AddressError):
            f.block_address(4)

    def test_free_removes_blocks(self):
        m = ParallelDiskMachine(memory=640, block=4, disks=4)
        data = workloads.uniform(16, seed=210)
        f = StripedFile(m, 16, start_slot=0)
        f.load_initial(data)
        f.free()
        with pytest.raises(AddressError):
            m.peek_block(f.block_address(0))


class TestMachineAddressing:
    def test_negative_slot(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        with pytest.raises(AddressError):
            m.read_blocks([BlockAddress(0, -1)])

    def test_disk_out_of_range(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        with pytest.raises(AddressError):
            m.read_blocks([BlockAddress(9, 0)])

    def test_allocate_negative(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        with pytest.raises(ParameterError):
            m.allocate_slots(-1)


class TestEffectiveBTCostRegimes:
    def test_all_regimes(self):
        from repro.hierarchies import LogCost, PowerCost
        from repro.hierarchies.parallel import EffectiveBTCost

        x = np.array([2**16], dtype=np.float64)
        # sublinear and log: loglog
        assert EffectiveBTCost(PowerCost(alpha=0.5))(x)[0] == pytest.approx(4.0)
        assert EffectiveBTCost(LogCost())(x)[0] == pytest.approx(4.0)
        # alpha = 1: log
        assert EffectiveBTCost(PowerCost(alpha=1.0))(x)[0] == pytest.approx(16.0)
        # alpha > 1: x^(alpha-1)
        assert EffectiveBTCost(PowerCost(alpha=2.0))(x)[0] == pytest.approx(2**16)


class TestUMHCost:
    def test_values_and_validation(self):
        from repro.hierarchies import UMHCost

        f = UMHCost(rho=2)
        assert f(np.array([1]))[0] == pytest.approx(1.0)
        assert f(np.array([8]))[0] == pytest.approx(4.0)
        with pytest.raises(ValueError):
            UMHCost(rho=1)

    def test_well_behaved_factory_umh(self):
        from repro.hierarchies.cost import UMHCost, well_behaved

        assert isinstance(well_behaved("umh"), UMHCost)


class TestPairwiseSpaceEdges:
    def test_universe_validation(self):
        from repro.util import PairwiseSpace

        with pytest.raises(ValueError):
            PairwiseSpace(0)

    def test_universe_one(self):
        from repro.util import PairwiseSpace

        sp = PairwiseSpace(1)
        assert sp.p == 2


class TestChooseSAndGSmall:
    def test_small_n_still_satisfiable(self):
        from repro.core.sort_hierarchy import choose_s_and_g

        # just above the base case of a tiny machine
        s, g = choose_s_and_g(30, 8)
        assert s >= 3 and g >= 2


class TestHypercubeCollectives:
    def test_allreduce_matches_numpy(self):
        from repro.hypercube import Hypercube

        net = Hypercube(16)
        vals = np.arange(16) ** 2
        out = net.allreduce_sum(vals)
        assert np.all(out == vals.sum())


class TestEngineDrainMode:
    def test_flush_on_engine_with_single_channel(self):
        # H' = 1: the aux matrix is identically zero (median = the entry);
        # no matching machinery should ever trigger
        from repro.core.balance import BalanceEngine
        from repro.records import composite_keys

        m = ParallelDiskMachine(memory=4096, block=4, disks=4)
        storage = VirtualDisks(m, 1)
        data = workloads.uniform(300, seed=211)
        ck = np.sort(composite_keys(data))
        engine = BalanceEngine(storage, ck[[100, 200]])
        m.mem_acquire(300)
        engine.feed(data)
        runs = engine.flush()
        assert engine.stats.match_calls == 0
        assert sum(r.n_records for r in runs) == 300
