"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.n == 20_000
        assert args.matcher == "derandomized"

    def test_bad_matcher_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--matcher", "psychic"])

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--workload", "nope"])


class TestCommands:
    def test_sort_small(self, capsys):
        rc = main(["sort", "--n", "2000", "--memory", "512", "--block", "4",
                   "--disks", "8", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel I/Os" in out
        assert "output verified" in out and "yes" in out

    def test_io_plan_line_is_interactive_chatter_only(self, capsys, monkeypatch):
        """``[io-plan]`` respects --quiet and non-TTY stderr.

        Under capsys stderr is not a terminal, so the default run must
        stay silent; forcing ``isatty`` shows the line; --quiet silences
        it again even on a terminal.
        """
        import sys as _sys

        args = ["sort", "--n", "2000", "--memory", "512", "--disks", "8"]
        assert main(args) == 0
        assert "[io-plan]" not in capsys.readouterr().err
        monkeypatch.setattr(_sys.stderr, "isatty", lambda: True,
                            raising=False)
        assert main(args) == 0
        assert "[io-plan]" in capsys.readouterr().err
        monkeypatch.setattr(_sys.stderr, "isatty", lambda: True,
                            raising=False)
        assert main([*args, "--quiet"]) == 0
        assert "[io-plan]" not in capsys.readouterr().err

    def test_sort_with_overrides(self, capsys):
        rc = main(["sort", "--n", "1500", "--memory", "512", "--matcher", "greedy",
                   "--buckets", "4", "--virtual-disks", "4", "--workload", "zipf"])
        assert rc == 0
        assert "Theorem 1 bound" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--n", "2500", "--memory", "512"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ["balance", "greed", "randomized", "striped"]:
            assert name in out

    def test_hierarchy_models(self, capsys):
        for model, cost in [("hmm", "log"), ("bt", "0.5"), ("umh", "umh")]:
            rc = main(["hierarchy", "--n", "1200", "--h", "27", "--model", model,
                       "--cost", cost])
            out = capsys.readouterr().out
            assert rc == 0
            assert f"P-{model.upper()}" in out

    def test_hierarchy_hypercube(self, capsys):
        rc = main(["hierarchy", "--n", "900", "--h", "16", "--interconnect", "hypercube"])
        assert rc == 0
        assert "hypercube" in capsys.readouterr().out

    def test_sort_emit_json_stdout_suppresses_table(self, capsys):
        import json

        rc = main(["sort", "--n", "1500", "--memory", "512", "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel I/Os" not in out  # human table suppressed
        report = json.loads(out)
        assert report["schema"] == "repro.run_report/1"
        assert report["command"] == "sort"
        assert report["result"]["verified"] is True
        assert report["result"]["parallel_ios"] > 0
        assert report["phases"]  # per-phase breakdown present
        assert report["metrics"]["pdm"]["counters"]["read_ios"] > 0

    def test_sort_emit_json_file_keeps_table(self, capsys, tmp_path):
        import json

        path = tmp_path / "rep.json"
        rc = main(["sort", "--n", "1500", "--memory", "512",
                   "--emit-json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel I/Os" in out  # table still printed
        assert json.loads(path.read_text())["command"] == "sort"

    def test_trace_out_then_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(["sort", "--n", "1500", "--memory", "512",
                   "--trace-out", str(trace)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-phase breakdown" in out
        assert "distribute" in out
        assert "stripe-width histogram" in out

    def test_report_emit_json(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        main(["sort", "--n", "1500", "--memory", "512", "--trace-out", str(trace)])
        capsys.readouterr()
        rc = main(["report", str(trace), "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        summary = json.loads(out)
        assert summary["schema"] == "repro.trace_summary/1"
        assert {p["name"] for p in summary["phases"]} >= {"partition", "distribute"}

    def test_compare_emit_json(self, capsys):
        import json

        rc = main(["compare", "--n", "2500", "--memory", "512",
                   "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        algos = [r["algorithm"] for r in report["result"]["algorithms"]]
        assert algos == ["balance", "greed", "randomized", "striped-merge"]
        assert set(report["metrics"]["algo"]) >= {"balance", "greed"}

    def test_hierarchy_emit_json(self, capsys):
        import json

        rc = main(["hierarchy", "--n", "1200", "--h", "27", "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        assert report["command"] == "hierarchy"
        assert report["result"]["verified"] is True
        assert report["result"]["total_time"] > 0
        assert report["metrics"]["hierarchy"]["counters"]["parallel_steps"] > 0

    def test_workloads_listing(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "uniform" in out and "adversarial_striping" in out


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "workloads"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "uniform" in proc.stdout


# ------------------------------------------------------- sweep resilience


class TestSweepExitCodes:
    """The documented sweep contract: 0 all-success, 2 usage errors,
    3 when any cell exhausted its retries (mirroring ``repro diff``)."""

    ARGS = ["sweep", "--task", "hierarchy", "--n", "256", "--h", "16"]
    PERMANENT = ('{"seed": 0, "rules": [{"site": "exec.task", '
                 '"mode": "permanent", "at": [0]}]}')

    def test_clean_sweep_exits_zero(self, capsys):
        assert main(self.ARGS) == 0
        assert "failed=0" in capsys.readouterr().err

    def test_exhausted_retries_exit_three(self, capsys):
        rc = main(self.ARGS + ["--fault-plan", self.PERMANENT,
                               "--retries", "1", "--backoff", "0"])
        cap = capsys.readouterr()
        assert rc == 3
        assert "retried=1 failed=1" in cap.err
        # the failed cell is surfaced as a table, not a traceback
        assert "failed cells · 1" in cap.out
        assert "InjectedIOError" in cap.out

    def test_survivable_transient_exits_zero(self, capsys):
        transient = ('{"seed": 0, "rules": [{"site": "exec.task", '
                     '"at": [0]}]}')
        rc = main(self.ARGS + ["--fault-plan", transient,
                               "--retries", "1", "--backoff", "0"])
        cap = capsys.readouterr()
        assert rc == 0
        assert "retried=1 failed=0" in cap.err

    def test_bad_fault_plan_exits_two(self, capsys):
        rc = main(self.ARGS + ["--fault-plan", '{"seed": "nope"'])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_fault_site_exits_two(self, capsys):
        rc = main(self.ARGS + ["--fault-plan",
                               '{"rules": [{"site": "disk.io", "at": [0]}]}'])
        assert rc == 2
        assert "unknown fault site" in capsys.readouterr().err

    def test_resume_without_journal_exits_two(self, capsys):
        rc = main(self.ARGS + ["--resume"])
        assert rc == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_resume_grid_mismatch_exits_two(self, tmp_path, capsys):
        jdir = str(tmp_path / "j")
        assert main(self.ARGS + ["--journal", jdir]) == 0
        capsys.readouterr()
        other = ["sweep", "--task", "hierarchy", "--n", "512", "--h", "16"]
        rc = main(other + ["--journal", jdir, "--resume"])
        assert rc == 2
        assert "different grid" in capsys.readouterr().err

    def test_failures_recorded_in_emit_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        rc = main(self.ARGS + ["--fault-plan", self.PERMANENT,
                               "--backoff", "0",
                               "--emit-json", str(path)])
        capsys.readouterr()
        assert rc == 3
        report = json.load(open(path))
        result = report["result"]
        assert result["n_failed"] == 1 and result["rows"] == []
        failure = result["failures"][0]
        assert failure["error"]["type"] == "InjectedIOError"
        assert failure["attempts"] == 1
        # resilience knobs never leak into the report's params
        for knob in ("fault_plan", "retries", "journal", "resume"):
            assert knob not in report["params"]

    def test_journal_resume_warm_sweep(self, tmp_path, capsys):
        jdir = str(tmp_path / "j")
        assert main(self.ARGS + ["--journal", jdir]) == 0
        assert "recorded_done=1" in capsys.readouterr().err
        assert main(self.ARGS + ["--journal", jdir, "--resume"]) == 0
        err = capsys.readouterr().err
        assert "executed=0" in err and "resumed=1" in err
