"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.n == 20_000
        assert args.matcher == "derandomized"

    def test_bad_matcher_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--matcher", "psychic"])

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--workload", "nope"])


class TestCommands:
    def test_sort_small(self, capsys):
        rc = main(["sort", "--n", "2000", "--memory", "512", "--block", "4",
                   "--disks", "8", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel I/Os" in out
        assert "output verified" in out and "yes" in out

    def test_sort_with_overrides(self, capsys):
        rc = main(["sort", "--n", "1500", "--memory", "512", "--matcher", "greedy",
                   "--buckets", "4", "--virtual-disks", "4", "--workload", "zipf"])
        assert rc == 0
        assert "Theorem 1 bound" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--n", "2500", "--memory", "512"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ["balance", "greed", "randomized", "striped"]:
            assert name in out

    def test_hierarchy_models(self, capsys):
        for model, cost in [("hmm", "log"), ("bt", "0.5"), ("umh", "umh")]:
            rc = main(["hierarchy", "--n", "1200", "--h", "27", "--model", model,
                       "--cost", cost])
            out = capsys.readouterr().out
            assert rc == 0
            assert f"P-{model.upper()}" in out

    def test_hierarchy_hypercube(self, capsys):
        rc = main(["hierarchy", "--n", "900", "--h", "16", "--interconnect", "hypercube"])
        assert rc == 0
        assert "hypercube" in capsys.readouterr().out

    def test_sort_emit_json_stdout_suppresses_table(self, capsys):
        import json

        rc = main(["sort", "--n", "1500", "--memory", "512", "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel I/Os" not in out  # human table suppressed
        report = json.loads(out)
        assert report["schema"] == "repro.run_report/1"
        assert report["command"] == "sort"
        assert report["result"]["verified"] is True
        assert report["result"]["parallel_ios"] > 0
        assert report["phases"]  # per-phase breakdown present
        assert report["metrics"]["pdm"]["counters"]["read_ios"] > 0

    def test_sort_emit_json_file_keeps_table(self, capsys, tmp_path):
        import json

        path = tmp_path / "rep.json"
        rc = main(["sort", "--n", "1500", "--memory", "512",
                   "--emit-json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel I/Os" in out  # table still printed
        assert json.loads(path.read_text())["command"] == "sort"

    def test_trace_out_then_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(["sort", "--n", "1500", "--memory", "512",
                   "--trace-out", str(trace)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-phase breakdown" in out
        assert "distribute" in out
        assert "stripe-width histogram" in out

    def test_report_emit_json(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        main(["sort", "--n", "1500", "--memory", "512", "--trace-out", str(trace)])
        capsys.readouterr()
        rc = main(["report", str(trace), "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        summary = json.loads(out)
        assert summary["schema"] == "repro.trace_summary/1"
        assert {p["name"] for p in summary["phases"]} >= {"partition", "distribute"}

    def test_compare_emit_json(self, capsys):
        import json

        rc = main(["compare", "--n", "2500", "--memory", "512",
                   "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        algos = [r["algorithm"] for r in report["result"]["algorithms"]]
        assert algos == ["balance", "greed", "randomized", "striped-merge"]
        assert set(report["metrics"]["algo"]) >= {"balance", "greed"}

    def test_hierarchy_emit_json(self, capsys):
        import json

        rc = main(["hierarchy", "--n", "1200", "--h", "27", "--emit-json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        assert report["command"] == "hierarchy"
        assert report["result"]["verified"] is True
        assert report["result"]["total_time"] > 0
        assert report["metrics"]["hierarchy"]["counters"]["parallel_steps"] > 0

    def test_workloads_listing(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "uniform" in out and "adversarial_striping" in out


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "workloads"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "uniform" in proc.stdout
