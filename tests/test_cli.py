"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.n == 20_000
        assert args.matcher == "derandomized"

    def test_bad_matcher_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--matcher", "psychic"])

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--workload", "nope"])


class TestCommands:
    def test_sort_small(self, capsys):
        rc = main(["sort", "--n", "2000", "--memory", "512", "--block", "4",
                   "--disks", "8", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel I/Os" in out
        assert "output verified" in out and "yes" in out

    def test_sort_with_overrides(self, capsys):
        rc = main(["sort", "--n", "1500", "--memory", "512", "--matcher", "greedy",
                   "--buckets", "4", "--virtual-disks", "4", "--workload", "zipf"])
        assert rc == 0
        assert "Theorem 1 bound" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--n", "2500", "--memory", "512"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ["balance", "greed", "randomized", "striped"]:
            assert name in out

    def test_hierarchy_models(self, capsys):
        for model, cost in [("hmm", "log"), ("bt", "0.5"), ("umh", "umh")]:
            rc = main(["hierarchy", "--n", "1200", "--h", "27", "--model", model,
                       "--cost", cost])
            out = capsys.readouterr().out
            assert rc == 0
            assert f"P-{model.upper()}" in out

    def test_hierarchy_hypercube(self, capsys):
        rc = main(["hierarchy", "--n", "900", "--h", "16", "--interconnect", "hypercube"])
        assert rc == 0
        assert "hypercube" in capsys.readouterr().out

    def test_workloads_listing(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "uniform" in out and "adversarial_striping" in out


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "workloads"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "uniform" in proc.stdout
