"""Golden-trace regression corpus.

Each file under ``tests/golden/`` is one canonical exec payload
(``repro.exec_payload/1``): the full result + merged metrics + zero-clock
trace of a small, fast, deterministic run.  The test re-executes the
run from the stored ``(task, params)`` and requires the fresh payload to
equal the stored one *exactly* — any drift in I/O counts, metrics,
trace structure, or result schema fails loudly with the offending paths.

The corpus is stored gzipped (``*.json.gz``) — traces dominate the
payloads and compress ~20×, which keeps the repo slim as the corpus
grows.  The gzip stream is deterministic (``mtime=0``, no embedded
filename), so regeneration without behaviour change is byte-stable and
an intentional regen diffs as exactly the changed cases.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python tests/test_golden_reports.py --regen

and commit the diff; the diff *is* the review artifact.
"""

import gzip
import json
import os

import pytest

from repro.exec import run_task

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: The corpus: small enough to re-run in seconds, wide enough to cover
#: every task type and both PDM algorithm families.
CASES = {
    "sort_pdm_small": (
        "sort_pdm",
        {"n": 2000, "memory": 512, "block": 4, "disks": 4,
         "workload": "uniform", "seed": 0, "verify": True},
    ),
    "sort_pdm_adversarial": (
        "sort_pdm",
        {"n": 1500, "memory": 512, "block": 2, "disks": 8,
         "workload": "adversarial_striping", "seed": 2},
    ),
    "compare_pdm_greed": (
        "compare_pdm",
        {"algorithm": "greed", "n": 2000, "memory": 512, "block": 4,
         "disks": 4, "workload": "uniform", "seed": 1},
    ),
    "hierarchy_sort_umh": (
        "hierarchy_sort",
        {"n": 1024, "h": 64, "model": "hmm", "cost": "umh",
         "workload": "uniform", "seed": 0},
    ),
}


def _path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json.gz")


def load_golden(path: str) -> dict:
    """Load one golden payload, transparently decompressing ``.json.gz``.

    Plain ``.json`` paths still load (useful when bisecting across the
    compression change), but the corpus itself is stored gzipped only.
    """
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return json.load(fh)
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _diff_paths(a, b, prefix=""):
    """Paths where two JSON-ish values disagree (first 20)."""
    out = []
    if type(a) is not type(b):
        return [f"{prefix or '$'}: type {type(a).__name__} != {type(b).__name__}"]
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{prefix}.{k}: only in fresh")
            elif k not in b:
                out.append(f"{prefix}.{k}: only in golden")
            else:
                out.extend(_diff_paths(a[k], b[k], f"{prefix}.{k}"))
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{prefix}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(_diff_paths(x, y, f"{prefix}[{i}]"))
    elif a != b:
        out.append(f"{prefix or '$'}: {a!r} != {b!r}")
    return out[:20]


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_payload_unchanged(name):
    task, params = CASES[name]
    path = _path(name)
    assert os.path.exists(path), (
        f"missing golden file {path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_reports.py --regen`"
    )
    golden = load_golden(path)
    # The stored file must itself be self-consistent with the corpus.
    assert golden["task"] == task
    assert golden["params"] == params
    fresh = run_task(task, params)
    if fresh != golden:
        diff = "\n  ".join(_diff_paths(golden, fresh))
        pytest.fail(
            f"golden payload {name!r} drifted; first differing paths "
            f"(golden != fresh):\n  {diff}\nIf intentional, regenerate and "
            f"commit the diff."
        )


def test_golden_corpus_has_no_strays():
    """Every file in tests/golden/ is a declared case, stored gzipped."""
    listing = os.listdir(GOLDEN_DIR)
    files = {f[:-8] for f in listing if f.endswith(".json.gz")}
    assert files == set(CASES)
    plain = [f for f in listing if f.endswith(".json")]
    assert not plain, f"uncompressed strays in golden corpus: {plain}"


def test_golden_gzip_streams_are_deterministic():
    """Stored gzip bytes carry no timestamp/filename — regen is byte-stable."""
    for name in sorted(CASES):
        with open(_path(name), "rb") as fh:
            header = fh.read(10)
        assert header[:2] == b"\x1f\x8b", f"{name}: not a gzip stream"
        assert header[3] == 0, f"{name}: FLG set (embedded filename?)"
        assert header[4:8] == b"\x00\x00\x00\x00", f"{name}: nonzero MTIME"


def _dump_gz(path: str, payload: dict) -> None:
    """Write one payload as a deterministic gzip stream (mtime=0, no name)."""
    with open(path, "wb") as raw:
        with gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0) as gz:
            text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
            gz.write(text.encode("utf-8"))


def regenerate():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, (task, params) in sorted(CASES.items()):
        payload = run_task(task, params)
        _dump_gz(_path(name), payload)
        print(f"wrote {_path(name)} "
              f"({os.path.getsize(_path(name))} bytes)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
