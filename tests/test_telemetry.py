"""Tests for the live-telemetry channel (:mod:`repro.obs.telemetry`).

The contract under test, in order of importance:

1. **Determinism** — sweep payloads are bit-identical with telemetry on
   or off, serial and ``--jobs 2`` (telemetry observes the tracer
   stream; it never feeds back into a payload).  The CLI-level version
   gates full run reports through ``repro diff --threshold 0 --strict``.
2. **Stream contents** — the runner emits the ``repro.progress/1``
   lifecycle (sweep/cell start + finish, retries), workers tee throttled
   phase progress, and the aggregator folds it into a sane snapshot
   (counts, rounds, records/sec, ETA).
3. **Crash forgiveness** — ``repro top`` tolerates a torn telemetry
   tail exactly like the journal (the SIGKILL signature).
"""

import json
import io

import pytest

from repro.exec import ParallelRunner, RunSpec
from repro.obs import (
    PROGRESS_SCHEMA,
    LiveProgressView,
    ProgressSink,
    TelemetryWriter,
    activate_telemetry,
    active_telemetry,
    aggregate_progress,
    read_telemetry,
    render_progress_line,
)
from repro.obs.telemetry import progress_tables


def _sweep_specs():
    return [
        RunSpec("sort_pdm", {"n": 1000, "disks": 4}),
        RunSpec("sort_pdm", {"n": 2000, "disks": 4}),
    ]


class TestTelemetryWriter:
    def test_one_line_per_emit_immediately_readable(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        with TelemetryWriter(path, source="test", clock=lambda: 42.0) as w:
            w.emit("sweep_start", cells=3)
            # Line-buffered: readable before close.
            events = read_telemetry(path)
            assert events == [
                {"ev": "sweep_start", "ts": 42.0, "src": "test", "cells": 3}
            ]
            w.emit("sweep_end")
        assert len(read_telemetry(path)) == 2

    def test_append_mode_shares_a_file(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        with TelemetryWriter(path, source="a") as wa:
            wa.emit("cell_start", key="k1")
            with TelemetryWriter(path, source="b") as wb:
                wb.emit("progress", rounds=7)
            wa.emit("cell_finish", key="k1")
        sources = [e["src"] for e in read_telemetry(path)]
        assert sources == ["a", "b", "a"]

    def test_ambient_activation_nests_and_restores(self, tmp_path):
        outer = TelemetryWriter(str(tmp_path / "o.jsonl"))
        inner = TelemetryWriter(str(tmp_path / "i.jsonl"))
        assert active_telemetry() is None
        with activate_telemetry(outer):
            assert active_telemetry() is outer
            with activate_telemetry(inner):
                assert active_telemetry() is inner
            assert active_telemetry() is outer
        assert active_telemetry() is None
        outer.close()
        inner.close()


class TestProgressSink:
    def _writer(self, tmp_path):
        return TelemetryWriter(str(tmp_path / "tel.jsonl"), source="cell:x")

    def test_counts_rounds_and_flushes_every_n(self, tmp_path):
        w = self._writer(tmp_path)
        sink = ProgressSink(w, every=3, interval=1e9)
        for _ in range(7):
            sink.emit({"ev": "event", "name": "io.read", "attrs": {}})
        w.close()
        events = read_telemetry(w.path)
        progress = [e for e in events if e["ev"] == "progress"]
        assert [p["rounds"] for p in progress] == [3, 6]
        assert sink.rounds == 7

    def test_close_flushes_the_tail(self, tmp_path):
        w = self._writer(tmp_path)
        sink = ProgressSink(w, every=100, interval=1e9)
        sink.emit({"ev": "event", "name": "io.write", "attrs": {}})
        sink.close()
        w.close()
        progress = [e for e in read_telemetry(w.path) if e["ev"] == "progress"]
        assert progress and progress[-1]["rounds"] == 1

    def test_level0_phases_forwarded_immediately(self, tmp_path):
        w = self._writer(tmp_path)
        sink = ProgressSink(w, every=100, interval=1e9)
        sink.emit({"ev": "begin", "name": "partition", "attrs": {"level": 0}})
        sink.emit({"ev": "begin", "name": "partition", "attrs": {"level": 2}})
        w.close()
        phases = [e for e in read_telemetry(w.path) if e["ev"] == "phase"]
        assert [p["phase"] for p in phases] == ["partition"]
        assert sink.phase == "partition"

    def test_balance_factor_tracked(self, tmp_path):
        w = self._writer(tmp_path)
        sink = ProgressSink(w, every=1, interval=1e9)
        sink.emit({"ev": "event", "name": "balance.round",
                   "attrs": {"max_balance_factor": 1.5}})
        w.close()
        progress = [e for e in read_telemetry(w.path) if e["ev"] == "progress"]
        assert progress[-1]["max_balance_factor"] == 1.5
        assert progress[-1]["balance_rounds"] == 1


class TestRunnerTelemetry:
    def test_lifecycle_events_serial(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        runner = ParallelRunner(telemetry=path)
        runner.map(_sweep_specs())
        runner.telemetry.close()
        events = read_telemetry(path)
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_end"
        start = events[0]
        assert start["schema"] == PROGRESS_SCHEMA
        assert start["task"] == "sort_pdm" and start["cells"] == 2
        assert kinds.count("cell_start") == 2
        assert kinds.count("cell_finish") == 2
        # Workers teed phase progress into the same stream.
        assert "phase" in kinds
        finishes = [e for e in events if e["ev"] == "cell_finish"]
        assert all(not f["cached"] and not f["failed"] for f in finishes)
        assert all(f["seconds"] > 0 and f["rounds"] > 0 for f in finishes)
        assert {f["records"] for f in finishes} == {1000, 2000}

    def test_cache_hits_emit_cached_finishes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        ParallelRunner(cache_dir=cache_dir).map(_sweep_specs())
        path = str(tmp_path / "tel.jsonl")
        runner = ParallelRunner(cache_dir=cache_dir, telemetry=path)
        runner.map(_sweep_specs())
        runner.telemetry.close()
        finishes = [e for e in read_telemetry(path) if e["ev"] == "cell_finish"]
        assert len(finishes) == 2 and all(f["cached"] for f in finishes)
        state = aggregate_progress(read_telemetry(path))
        assert state["cached"] == 2 and state["done"] == 2

    def test_retries_and_failures_stream(self, tmp_path):
        from repro.resilience import FaultPlan

        plan = FaultPlan.from_dict({
            "seed": 1,
            "rules": [{"site": "exec.task", "mode": "permanent", "at": [0]}],
        })
        path = str(tmp_path / "tel.jsonl")
        runner = ParallelRunner(
            telemetry=path, fault_plan=plan, retries=1, backoff=0.0
        )
        results = runner.map(_sweep_specs()[:1])
        runner.telemetry.close()
        assert results[0].failed
        events = read_telemetry(path)
        kinds = [e["ev"] for e in events]
        assert kinds.count("cell_retry") == 1
        finish = [e for e in events if e["ev"] == "cell_finish"][0]
        assert finish["failed"] and "rounds" not in finish
        state = aggregate_progress(events)
        assert state["failed"] == 1 and state["retried"] == 1

    def test_payloads_bit_identical_telemetry_on_off_serial_and_pool(
        self, tmp_path
    ):
        specs = _sweep_specs()
        baseline = [r.payload for r in ParallelRunner().map(specs)]
        for jobs, name in ((None, "serial"), (2, "jobs2")):
            path = str(tmp_path / f"tel-{name}.jsonl")
            runner = ParallelRunner(jobs=jobs, telemetry=path)
            payloads = [r.payload for r in runner.map(specs)]
            runner.telemetry.close()
            assert json.dumps(payloads, sort_keys=True) == json.dumps(
                baseline, sort_keys=True
            ), f"telemetry changed payload bytes in {name} mode"
            assert len(read_telemetry(path)) > 0


class TestAggregation:
    def _events(self):
        return [
            {"ev": "sweep_start", "ts": 100.0, "src": "runner",
             "schema": PROGRESS_SCHEMA, "task": "sort_pdm", "cells": 4,
             "jobs": 1, "grid": "abcd"},
            {"ev": "cell_start", "ts": 100.0, "src": "runner",
             "key": "k1" * 32, "index": 0, "attempt": 0},
            {"ev": "cell_finish", "ts": 102.0, "src": "runner",
             "key": "k1" * 32, "index": 0, "cached": False, "failed": False,
             "seconds": 2.0, "records": 4000, "records_per_sec": 2000.0,
             "rounds": 100},
            {"ev": "cell_start", "ts": 102.0, "src": "runner",
             "key": "k2" * 32, "index": 1, "attempt": 0},
            {"ev": "progress", "ts": 103.0, "src": f"cell:{'k2' * 8}",
             "phase": "distribute", "rounds": 40, "spans": 3,
             "balance_rounds": 0},
        ]

    def test_snapshot_counts_running_and_eta(self):
        state = aggregate_progress(self._events())
        assert state["cells"] == 4 and state["done"] == 1
        assert state["grid"] == "abcd"
        assert not state["finished"]
        assert state["rounds"] == 140  # 100 finished + 40 in flight
        assert state["records_per_sec"] == 2000.0
        assert len(state["running"]) == 1
        running = state["running"][0]
        assert running["phase"] == "distribute" and running["rounds"] == 40
        assert running["elapsed_s"] == pytest.approx(1.0)
        # 3 remaining cells x 2.0s mean executed-cell wall.
        assert state["eta_s"] == pytest.approx(6.0)
        assert state["elapsed_s"] == pytest.approx(3.0)

    def test_finished_stream_has_no_eta(self):
        events = self._events() + [
            {"ev": "cell_finish", "ts": 104.0, "src": "runner",
             "key": "k2" * 32, "index": 1, "cached": False, "failed": False,
             "seconds": 2.0, "records": 4000, "rounds": 80},
            {"ev": "sweep_end", "ts": 104.0, "src": "runner", "cells": 4},
        ]
        state = aggregate_progress(events)
        assert state["finished"] and state["eta_s"] is None
        assert state["running"] == []

    def test_render_line_and_tables(self):
        state = aggregate_progress(self._events())
        line = render_progress_line(state)
        assert line.startswith("[sweep] 1/4 cells")
        assert "1 running in distribute" in line
        assert "eta" in line
        titles = [t.to_dict()["title"] for t in progress_tables(state)]
        assert any("sweep progress" in t for t in titles)
        assert any("running cells" in t for t in titles)

    def test_empty_stream(self):
        state = aggregate_progress([])
        assert state["done"] == 0 and not state["finished"]
        assert render_progress_line(state).startswith("[sweep]")


class TestTornTail:
    def _write_with_torn_tail(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        runner = ParallelRunner(telemetry=path)
        runner.map(_sweep_specs()[:1])
        runner.telemetry.close()
        with open(path, "a") as fh:
            fh.write('{"ev": "cell_fin')  # SIGKILL mid-write
        return path

    def test_read_telemetry_forgives_torn_tail(self, tmp_path):
        path = self._write_with_torn_tail(tmp_path)
        events = read_telemetry(path)
        assert events[0]["ev"] == "sweep_start"
        state = aggregate_progress(events)
        assert state["done"] == 1

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "sweep_start"}\n')
            fh.write("not json\n")
            fh.write('{"ev": "sweep_end"}\n')
        with pytest.raises(ValueError):
            read_telemetry(path)


class TestLiveProgressView:
    def test_non_tty_prints_changed_lines(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        runner = ParallelRunner(telemetry=path)
        runner.map(_sweep_specs()[:1])
        runner.telemetry.close()
        stream = io.StringIO()
        view = LiveProgressView(path, stream=stream, interval=0.01)
        view.start()
        view.stop()
        out = stream.getvalue()
        assert "[sweep] 1/1 cells" in out
        assert "done" in out
        assert "\r" not in out  # non-tty mode appends lines

    def test_view_survives_missing_file(self, tmp_path):
        stream = io.StringIO()
        view = LiveProgressView(
            str(tmp_path / "never-written.jsonl"), stream=stream
        )
        view.start()
        view.stop()
        assert stream.getvalue() == ""


class TestCliTelemetry:
    def test_sweep_telemetry_and_top_snapshot(self, capsys, tmp_path):
        from repro.cli import main

        tel = str(tmp_path / "tel.jsonl")
        rc = main(["sweep", "--n", "1000,2000", "--disks", "4",
                   "--telemetry", tel])
        captured = capsys.readouterr()
        assert rc == 0
        assert f"telemetry={tel}" in captured.err
        rc = main(["top", tel])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sweep progress" in out
        assert "[sweep] 2/2 cells" in out

    def test_top_after_sigkill_torn_tail(self, capsys, tmp_path):
        from repro.cli import main

        tel = str(tmp_path / "tel.jsonl")
        rc = main(["sweep", "--n", "1000", "--disks", "4",
                   "--telemetry", tel])
        capsys.readouterr()
        assert rc == 0
        # Simulate a SIGKILL mid-append: torn final line, no sweep_end.
        lines = open(tel).read().splitlines()
        with open(tel, "w") as fh:
            fh.write("\n".join(lines[:-1]) + "\n")
            fh.write('{"ev": "sweep_e')
        rc = main(["top", tel])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sweep progress" in out

    def test_top_follow_exits_on_sweep_end(self, capsys, tmp_path):
        from repro.cli import main

        tel = str(tmp_path / "tel.jsonl")
        rc = main(["sweep", "--n", "1000", "--disks", "4",
                   "--telemetry", tel])
        capsys.readouterr()
        assert rc == 0
        rc = main(["top", tel, "--follow", "--interval", "0.01"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "done" in out

    def test_top_missing_file_is_usage_error(self, capsys, tmp_path):
        from repro.cli import main

        rc = main(["top", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no telemetry" in capsys.readouterr().err

    def test_live_uses_temp_stream_and_cleans_up(self, capsys, tmp_path,
                                                 monkeypatch):
        import tempfile

        from repro.cli import main

        monkeypatch.setenv("TMPDIR", str(tmp_path))
        tempfile.tempdir = None  # re-read TMPDIR
        try:
            rc = main(["sweep", "--n", "1000", "--disks", "4", "--live"])
        finally:
            tempfile.tempdir = None
        captured = capsys.readouterr()
        assert rc == 0
        assert "[sweep] 1/1 cells" in captured.err  # the live view rendered
        leftovers = list(tmp_path.glob("repro-telemetry-*"))
        assert leftovers == []

    def test_stats_json_and_stats_table(self, capsys, tmp_path):
        from repro.cli import main

        stats_path = tmp_path / "stats.json"
        rc = main(["sweep", "--n", "1000", "--disks", "4",
                   "--stats-json", str(stats_path)])
        captured = capsys.readouterr()
        assert rc == 0
        # The aligned stats table rides stderr; stdout keeps only the grid.
        assert "sweep stats" in captured.err
        assert "cells executed" in captured.err
        assert "sweep stats" not in captured.out
        doc = json.loads(stats_path.read_text())
        assert doc["schema"] == "repro.sweep_stats/1"
        assert doc["runner"]["executed"] == 1
        assert doc["journal"] is None
        # Physical-fusion counters fold into the stats doc out of band
        # (they are telemetry: never part of any payload).
        io_plan = doc["runner"]["io_plan"]
        assert io_plan["write_flushes"] >= 1
        assert io_plan["deferred_write_rounds"] >= io_plan["write_flushes"]
        assert "plan write flushes" in captured.err

    def test_reports_bit_identical_via_diff_strict(self, capsys, tmp_path):
        """The acceptance gate: telemetry-on vs telemetry-off run reports
        survive ``repro diff --threshold 0 --strict`` untouched, for both
        serial and --jobs 2 telemetry runs."""
        from repro.cli import main

        grid = ["--n", "1000,2000", "--disks", "4"]
        plain = str(tmp_path / "plain.json")
        rc = main(["sweep", *grid, "--emit-json", plain])
        capsys.readouterr()
        assert rc == 0
        for name, extra in (
            ("tel", ["--telemetry", str(tmp_path / "t1.jsonl")]),
            ("tel-jobs2", ["--jobs", "2",
                           "--telemetry", str(tmp_path / "t2.jsonl")]),
        ):
            out_json = str(tmp_path / f"{name}.json")
            rc = main(["sweep", *grid, *extra, "--emit-json", out_json])
            capsys.readouterr()
            assert rc == 0
            rc = main(["diff", plain, out_json,
                       "--threshold", "0", "--strict"])
            captured = capsys.readouterr()
            assert rc == 0, f"{name}: {captured.out}"
            assert "OK" in captured.out
