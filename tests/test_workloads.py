"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro import workloads
from repro.records import RECORD_DTYPE


@pytest.mark.parametrize("name", sorted(workloads.GENERATORS))
def test_generator_shape_dtype_and_determinism(name):
    a = workloads.by_name(name, 200, seed=7)
    b = workloads.by_name(name, 200, seed=7)
    assert a.shape == (200,)
    assert a.dtype == RECORD_DTYPE
    assert np.array_equal(a["key"], b["key"])  # seeded ⇒ reproducible


@pytest.mark.parametrize("name", sorted(workloads.GENERATORS))
def test_generator_seed_changes_output(name):
    a = workloads.by_name(name, 500, seed=1)
    b = workloads.by_name(name, 500, seed=2)
    # sorted inputs of different seeds still differ in values
    assert not np.array_equal(a["key"], b["key"])


@pytest.mark.parametrize("name", sorted(workloads.GENERATORS))
def test_generator_rids_are_initial_locations(name):
    a = workloads.by_name(name, 64, seed=3)
    assert a["rid"].tolist() == list(range(64))


def test_sorted_keys_is_sorted():
    a = workloads.sorted_keys(300, seed=0)
    assert np.all(a["key"][:-1] <= a["key"][1:])


def test_reverse_sorted_is_reverse_sorted():
    a = workloads.reverse_sorted(300, seed=0)
    assert np.all(a["key"][:-1] >= a["key"][1:])


def test_few_distinct_has_few_distinct():
    a = workloads.few_distinct(1000, seed=0, distinct=5)
    assert len(np.unique(a["key"])) <= 5


def test_runs_are_sorted_runs():
    a = workloads.runs(256, seed=0, run_length=32)
    for start in range(0, 256, 32):
        chunk = a["key"][start : start + 32]
        assert np.all(chunk[:-1] <= chunk[1:])


def test_organ_pipe_shape():
    a = workloads.organ_pipe(100, seed=0)
    keys = a["key"]
    assert np.all(keys[:49] <= keys[1:50])
    assert np.all(keys[50:-1] >= keys[51:])


def test_adversarial_bucket_skew_concentrates_keys():
    a = workloads.adversarial_bucket_skew(2000, seed=0, hot_fraction=0.5)
    lo = (1 << 40) // 3
    hot = np.count_nonzero((a["key"] >= lo) & (a["key"] < lo + 1024))
    assert hot >= 900  # about half the records in a 1024-wide band


def test_adversarial_striping_lanes():
    period = 4
    a = workloads.adversarial_striping(400, seed=0, period=period)
    band = (1 << 40) // period
    lanes = (a["key"] // band).astype(int)
    assert np.array_equal(lanes % period, np.arange(400) % period)


def test_by_name_unknown_raises():
    with pytest.raises(KeyError):
        workloads.by_name("nope", 10)


def test_keys_fit_composite_packing():
    from repro.records import composite_keys

    for name in workloads.GENERATORS:
        composite_keys(workloads.by_name(name, 128, seed=0))  # must not raise
