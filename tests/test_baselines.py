"""Tests for the three baselines and the in-memory references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.baselines import (
    greed_sort,
    numpy_sort_records,
    randomized_distribution_sort,
    striped_merge_sort,
)
from repro.baselines.internal import python_merge_sort
from repro.core.streams import peek_run
from repro.exceptions import ParameterError
from repro.pdm import ParallelDiskMachine
from repro.util import assert_is_permutation, assert_sorted


def machine(M=512, B=4, D=8):
    return ParallelDiskMachine(memory=M, block=B, disks=D)


ALGORITHMS = {
    "striped": striped_merge_sort,
    "randomized": randomized_distribution_sort,
    "greed": greed_sort,
}


@pytest.mark.parametrize("alg", sorted(ALGORITHMS))
class TestBaselineCorrectness:
    @pytest.mark.parametrize(
        "workload", ["uniform", "sorted", "reverse", "few_distinct", "adversarial_striping"]
    )
    def test_sorts_workloads(self, alg, workload):
        m = machine()
        data = workloads.by_name(workload, 2500, seed=90)
        res = ALGORITHMS[alg](m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out, f"{alg}/{workload}")
        assert_is_permutation(out, data, f"{alg}/{workload}")
        assert m.memory_in_use == 0

    def test_empty_and_tiny(self, alg):
        for n in (0, 1, 5):
            m = machine()
            data = workloads.uniform(n, seed=91)
            res = ALGORITHMS[alg](m, data)
            out = peek_run(res.storage, res.output)
            assert out.shape[0] == n
            assert_sorted(out)

    def test_in_memory_input(self, alg):
        m = machine(M=4096)
        data = workloads.uniform(500, seed=92)
        res = ALGORITHMS[alg](m, data)
        assert_sorted(peek_run(res.storage, res.output))

    @given(st.integers(0, 10**6), st.integers(0, 2500))
    @settings(max_examples=8, deadline=None)
    def test_property_random_sizes(self, alg, seed, n):
        m = machine()
        data = workloads.uniform(n, seed=seed)
        res = ALGORITHMS[alg](m, data)
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)


class TestStripedMergeSpecifics:
    def test_fan_in_default_is_memory_limited(self):
        m = machine(M=512, B=4, D=8)  # superblock 32 -> fan-in 8
        res = striped_merge_sort(m, workloads.uniform(3000, seed=93))
        assert res.fan_in == 8

    def test_fan_in_rejected_when_too_large(self):
        m = machine(M=512, B=4, D=8)
        with pytest.raises(ParameterError):
            striped_merge_sort(m, workloads.uniform(100, seed=0), fan_in=100)

    def test_striping_penalty_grows_with_d(self):
        # With DB -> M the striped fan-in collapses to 2 and passes grow;
        # the independent-disk algorithms keep their fan-in.
        def ios(d, b):
            m = machine(M=512, B=b, D=d)
            return striped_merge_sort(m, workloads.uniform(8000, seed=94)).total_ios * d * b

        narrow = ios(2, 4)  # DB=8,  fan-in 32
        wide = ios(64, 2)  # DB=128, fan-in 2
        # per-record I/O volume strictly worse when striped wide
        assert wide > narrow

    def test_merge_passes_counted(self):
        m = machine()
        res = striped_merge_sort(m, workloads.uniform(4000, seed=95))
        assert res.merge_passes >= 1


class TestRandomizedSpecifics:
    def test_uses_all_disks_by_default(self):
        m = machine()
        res = randomized_distribution_sort(m, workloads.uniform(2000, seed=96))
        assert res.storage.n_virtual == m.D

    def test_balance_factor_reasonable(self):
        # balls-in-bins: not the deterministic factor 2, but close for
        # buckets with many blocks
        m = machine()
        res = randomized_distribution_sort(m, workloads.uniform(6000, seed=97))
        assert res.max_balance_factor <= 4.0

    def test_seeded_reproducibility(self):
        runs = []
        for _ in range(2):
            m = machine()
            res = randomized_distribution_sort(
                m, workloads.uniform(2000, seed=98), rng=np.random.default_rng(5)
            )
            runs.append(res.total_ios)
        assert runs[0] == runs[1]


class TestGreedSpecifics:
    def test_runs_on_independent_disks(self):
        m = machine()
        res = greed_sort(m, workloads.uniform(2000, seed=99))
        assert res.storage.n_virtual == m.D
        assert res.storage.virtual_block_size == m.B

    def test_io_is_optimal_order(self):
        # Greed Sort is I/O-optimal on the PDM [NoV]: its ratio to the
        # Theorem 1 bound stays in a constant band as N grows.
        from repro.analysis import bounds

        ratios = []
        for n in [4000, 16000, 64000]:
            m = machine()
            data = workloads.uniform(n, seed=100)
            res = greed_sort(m, data)
            ratios.append(res.total_ios / bounds.sort_io_bound(n, m.M, m.B, m.D))
        assert max(ratios) < 8
        assert max(ratios) / min(ratios) < 3.0

    def test_fan_in_validation(self):
        m = ParallelDiskMachine(memory=64, block=4, disks=4)
        with pytest.raises(ParameterError):
            greed_sort(m, workloads.uniform(500, seed=0), fan_in=1)


class TestInternalReferences:
    def test_numpy_sort_records(self):
        data = workloads.few_distinct(200, seed=101)
        out = numpy_sort_records(data)
        assert_sorted(out)
        assert_is_permutation(out, data)

    def test_numpy_sort_rejects_plain_arrays(self):
        with pytest.raises(TypeError):
            numpy_sort_records(np.arange(5))

    @given(st.lists(st.integers(-100, 100), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_python_merge_sort_oracle(self, xs):
        assert python_merge_sort(xs) == sorted(xs)
