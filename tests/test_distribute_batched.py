"""Differential tier for the fused distribute phase (I/O plans).

The batching contract (``docs/performance.md``): fusing a window of
logical rounds into one physical gather/scatter against the block store
is a *pure* execution-strategy change — every observable output must be
bit-identical to executing the rounds one at a time:

* sorted records and per-bucket contents,
* the engine's ``X``/``A``/``L`` matrices and matching decisions at
  every round boundary,
* ``IOStats`` (logical parallel-I/O accounting) and CPU counters,
* full ``repro.run_report/1`` payloads — trace events, metrics, result —
  under both store backends, both kernel backends, with observation
  attached, and in ``REPRO_PDM_SAFE_COPIES=1`` mode.

``REPRO_IO_PLAN=0`` selects the unfused reference execution; the window
sweep (1 / 2 / 64 / auto) pins that *every* fusion width agrees with it.
"""

import json
import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro import workloads
from repro.core.balance import BalanceEngine, read_bucket_run
from repro.core.kernels import use_backend
from repro.core.sort_pdm import balance_sort_pdm
from repro.exec.tasks import run_task
from repro.obs import Observation, TheoryAuditor
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys

CELL = dict(n=2000, memory=512, block=4, disks=8, workload="uniform", seed=0)


@contextmanager
def env(**kv):
    saved = {k: os.environ.get(k) for k in kv}
    try:
        for k, v in kv.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = str(v)
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def payload_json(plan, **extra_env):
    with env(REPRO_IO_PLAN=plan, **extra_env):
        return json.dumps(run_task("sort_pdm", dict(CELL)), sort_keys=True)


# ------------------------------------------------------- payload identity


class TestPayloadIdentity:
    """Full run-report payloads, fused vs unfused, across the mode grid."""

    @pytest.mark.parametrize("store", ["arena", "dict"])
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_fused_payload_bit_identical(self, store, backend):
        modes = dict(REPRO_PDM_STORE=store, REPRO_KERNEL_BACKEND=backend)
        assert payload_json(None, **modes) == payload_json("0", **modes)

    @pytest.mark.parametrize("window", ["1", "2", "64", "auto"])
    def test_every_window_width_agrees(self, window):
        assert payload_json(window) == payload_json("0")

    def test_safe_copies_mode(self):
        assert (payload_json(None, REPRO_PDM_SAFE_COPIES="1")
                == payload_json("0", REPRO_PDM_SAFE_COPIES="1"))

    def test_workload_spread(self):
        for workload in ["adversarial_striping", "few_distinct", "sorted"]:
            cell = dict(CELL, workload=workload, n=1200)
            with env(REPRO_IO_PLAN=None):
                fused = json.dumps(run_task("sort_pdm", cell), sort_keys=True)
            with env(REPRO_IO_PLAN="0"):
                unfused = json.dumps(run_task("sort_pdm", cell), sort_keys=True)
            assert fused == unfused, workload


# ------------------------------------------------- engine-level identity


def pivots_for(records, s):
    ck = np.sort(composite_keys(records))
    ranks = np.linspace(0, ck.size - 1, s + 1).astype(int)[1:-1]
    return ck[ranks]


def drive_engine(plan, backend="vectorized", n=900, hp=4, s=4, seed=7,
                 workload="adversarial_bucket_skew"):
    """Feed a block stream through BalanceEngine, recording every round.

    Returns (per-round observer snapshots, final L chains, IOStats,
    per-bucket record bytes).  The round snapshots copy ``X``/``A`` and
    the round info dict at each boundary, so a fused run that made a
    different placement or matching decision *anywhere* diverges.
    """
    data = workloads.by_name(workload, n, seed=seed)
    rounds = []
    with env(REPRO_IO_PLAN=plan), use_backend(backend):
        machine = ParallelDiskMachine(memory=8192, block=2, disks=8)
        storage = VirtualDisks(machine, hp)
        engine = BalanceEngine(
            storage, pivots_for(data, s),
            rng=np.random.default_rng(seed), check_invariants=True,
        )

        @engine.add_round_observer
        def _capture(eng, info):
            m = eng.matrices
            rounds.append((dict(info), m.X.copy().tolist(), m.A.copy().tolist()))

        with machine.io_plan():
            for i in range(0, data.shape[0], 64):
                part = data[i : i + 64]
                machine.mem_acquire(part.shape[0])
                engine.feed(part)
                engine.run_rounds(drain_below=2 * hp)
            runs = engine.flush()
            chains = [
                [list(map(repr, chain)) for chain in bucket_chains]
                for bucket_chains in engine.matrices.L
            ]
        buckets = []
        for run in runs:
            parts = [c.tobytes() for c in read_bucket_run(storage, run, free=True)]
            buckets.append(b"".join(parts))
    return rounds, chains, machine.stats.snapshot(), buckets


class TestEngineRoundIdentity:
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_rounds_matrices_chains_and_buckets(self, backend):
        fused = drive_engine(None, backend=backend)
        unfused = drive_engine("0", backend=backend)
        f_rounds, f_chains, f_io, f_buckets = fused
        u_rounds, u_chains, u_io, u_buckets = unfused
        assert len(f_rounds) > 0
        assert f_rounds == u_rounds  # info + X + A at every boundary
        assert f_chains == u_chains  # the L location chains
        assert f_io == u_io          # logical parallel-I/O accounting
        assert f_buckets == u_buckets  # record payloads, byte for byte

    def test_window_one_equals_off(self):
        assert drive_engine("1") == drive_engine("0")


# -------------------------------------------------- obs-attached identity


class TestObservedSortIdentity:
    """balance_sort_pdm with Observation + TheoryAuditor attached."""

    def _run(self, plan):
        with env(REPRO_IO_PLAN=plan):
            obs = Observation()
            auditor = TheoryAuditor().install(obs)
            machine = ParallelDiskMachine(memory=512, block=4, disks=8)
            data = workloads.by_name("uniform", 2000, seed=3)
            res = balance_sort_pdm(machine, data, obs=obs)
            audit = auditor.finish_pdm(machine, res)
            obs.close()
            events = [
                {k: v for k, v in ev.items() if k not in ("ts", "wall_s")}
                for ev in obs.tracer.events
            ]
            return dict(
                io=res.io_stats,
                cpu=res.cpu,
                rounds=res.engine_rounds,
                swapped=res.blocks_swapped,
                balance_factor=res.max_balance_factor,
                audit=audit.to_dict(),
                metrics=obs.registry.export(),
                events=events,
            )

    def test_observed_run_identical(self):
        fused = self._run(None)
        unfused = self._run("0")
        assert json.dumps(fused, sort_keys=True, default=str) == \
            json.dumps(unfused, sort_keys=True, default=str)
        assert fused["audit"]["ok"] is True


# ------------------------------------------------- plan stats out of band


class TestPlanStatsOutOfBand:
    def test_plans_fire_and_stay_out_of_payload(self):
        with env(REPRO_IO_PLAN=None):
            machine = ParallelDiskMachine(memory=512, block=4, disks=8)
            data = workloads.by_name("uniform", 2000, seed=0)
            balance_sort_pdm(machine, data)
        snap = machine.plan_stats.snapshot()
        assert snap["deferred_write_rounds"] > 0
        assert snap["write_flushes"] > 0
        assert snap["max_write_flush_blocks"] > 0
        # The payload schema must not mention plan execution anywhere:
        # physical fusion is telemetry, not a result.
        payload = payload_json(None)
        assert "plan_stats" not in payload
        assert "deferred_write_rounds" not in payload

    def test_plans_disabled_under_checksums(self):
        with env(REPRO_IO_PLAN=None):
            machine = ParallelDiskMachine(
                memory=512, block=4, disks=8, checksums=True
            )
            data = workloads.by_name("uniform", 1000, seed=0)
            balance_sort_pdm(machine, data)
        snap = machine.plan_stats.snapshot()
        assert snap["deferred_write_rounds"] == 0
        assert snap["write_flushes"] == 0

    def test_ambient_collector_and_merge(self):
        """collect_plan_stats gathers every machine; merge sums/maxes."""
        from repro.pdm.machine import collect_plan_stats, merge_plan_snapshots

        with env(REPRO_IO_PLAN=None), collect_plan_stats() as collected:
            for n in (1000, 2000):
                machine = ParallelDiskMachine(memory=512, block=4, disks=8)
                balance_sort_pdm(machine, workloads.uniform(n, seed=0))
        assert len(collected) == 2
        snaps = [s.snapshot() for s in collected]
        merged = merge_plan_snapshots(snaps)
        assert merged["write_flushes"] == sum(
            s["write_flushes"] for s in snaps)
        assert merged["deferred_write_rounds"] == sum(
            s["deferred_write_rounds"] for s in snaps)
        assert merged["max_write_flush_blocks"] == max(
            s["max_write_flush_blocks"] for s in snaps)
        # Outside the context, machines no longer register.
        before = len(collected)
        ParallelDiskMachine(memory=512, block=4, disks=8)
        assert len(collected) == before

    def test_runner_folds_plan_stats_out_of_band(self, tmp_path):
        """The sweep runner aggregates per-cell plan telemetry without
        ever letting the sidecar key reach a payload or the cache."""
        from repro.exec.runner import ParallelRunner, RunSpec

        runner = ParallelRunner(cache_dir=str(tmp_path / "cache"))
        specs = [RunSpec("sort_pdm", {"n": 1000, "disks": 4})]
        with env(REPRO_IO_PLAN=None):
            results = runner.map(specs)
        assert not results[0].failed
        assert "_plan_stats" not in results[0].payload
        totals = runner.stats["io_plan"]
        assert totals["write_flushes"] > 0
        # A cache-served rerun contributes nothing new (no simulation).
        rerun = ParallelRunner(cache_dir=str(tmp_path / "cache"))
        with env(REPRO_IO_PLAN=None):
            again = rerun.map(specs)
        assert again[0].cached
        assert "_plan_stats" not in again[0].payload
        assert not any(rerun.stats["io_plan"].values())
