"""Tests for the operational radix sort and the disk timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConcurrencyViolation, ParameterError
from repro.pdm import DISK_1993, DISK_MODERN_HDD, DISK_NVME, DiskTimingModel, IOStats
from repro.pram import PRAM
from repro.pram.radix import radix_pass_count, radix_sort
from repro.records import composite_keys, make_records


def crcw(p=8):
    return PRAM(p, variant="CRCW")


class TestRadixSort:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 64, 257, 1000])
    def test_sorts_plain_arrays(self, n):
        rng = np.random.default_rng(n)
        a = rng.integers(0, 1 << 40, size=n, dtype=np.uint64)
        out = radix_sort(crcw(), a, key_bits=40)
        assert np.array_equal(out, np.sort(a))

    def test_sorts_records_stably(self):
        r = make_records(np.array([7, 7, 1, 7, 1], dtype=np.uint64))
        out = radix_sort(crcw(), r)
        assert out["key"].tolist() == [1, 1, 7, 7, 7]
        assert out["rid"].tolist() == [2, 4, 0, 1, 3]

    def test_requires_crcw(self):
        with pytest.raises(ConcurrencyViolation):
            radix_sort(PRAM(4, variant="EREW"), np.arange(8, dtype=np.uint64))

    def test_pass_count(self):
        assert radix_pass_count(64, 8) == 8
        assert radix_pass_count(40, 16) == 3
        with pytest.raises(ValueError):
            radix_pass_count(64, 0)

    def test_work_is_linear_in_n(self):
        m1, m2 = crcw(), crcw()
        radix_sort(m1, np.arange(1000, dtype=np.uint64)[::-1].copy(), key_bits=32)
        radix_sort(m2, np.arange(4000, dtype=np.uint64)[::-1].copy(), key_bits=32)
        # 4x the data: work within ~4.5x (the 2^r histogram term amortizes)
        assert m2.work < 4.5 * m1.work

    def test_fewer_bits_fewer_passes_less_work(self):
        a = np.random.default_rng(0).integers(0, 1 << 16, size=2000, dtype=np.uint64)
        m16, m64 = crcw(), crcw()
        radix_sort(m16, a.copy(), key_bits=16)
        radix_sort(m64, a.copy(), key_bits=64)
        assert m16.work < m64.work

    @given(st.lists(st.integers(0, 2**39), max_size=300), st.sampled_from([4, 8, 11]))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_numpy(self, xs, digit_bits):
        a = np.array(xs, dtype=np.uint64)
        out = radix_sort(crcw(), a, key_bits=40, digit_bits=digit_bits)
        assert np.array_equal(out, np.sort(a))

    def test_agrees_with_composite_order_on_records(self):
        r = make_records(
            np.random.default_rng(1).integers(0, 1 << 30, size=400, dtype=np.uint64)
        )
        out = radix_sort(crcw(), r)
        ck = composite_keys(out)
        assert np.all(ck[:-1] <= ck[1:])


class TestTimingModels:
    def test_validation(self):
        with pytest.raises(ParameterError):
            DiskTimingModel("bad", seek_ms=-1, rotational_ms=1, transfer_mb_per_s=1)
        with pytest.raises(ParameterError):
            DiskTimingModel("bad", seek_ms=1, rotational_ms=1, transfer_mb_per_s=0)

    def test_io_time_composition(self):
        m = DiskTimingModel("t", seek_ms=10, rotational_ms=5, transfer_mb_per_s=1,
                            record_bytes=1000)
        # 1000 records of 1KB at 1 MB/s = 1000 ms transfer
        assert m.io_ms(1000) == pytest.approx(15 + 1000)

    def test_estimate_scales_with_ios(self):
        m = DISK_1993
        s1 = IOStats(read_ios=10, write_ios=10)
        s2 = IOStats(read_ios=20, write_ios=20)
        assert m.estimate_seconds(s2, 64) == pytest.approx(2 * m.estimate_seconds(s1, 64))

    def test_blocking_advantage_motivates_blocks(self):
        # Section 1's motivation: with positioning dominating a record's
        # transfer time, blocked access wins by orders of magnitude — on
        # every medium with a per-operation fixed cost.  What changed since
        # 1993 is the *absolute* positioning cost, not the blocking logic.
        assert DISK_1993.blocking_advantage(1024) > 100
        assert DISK_NVME.blocking_advantage(1024) > 100
        assert DISK_NVME.fixed_ms < DISK_1993.fixed_ms / 100
        assert DISK_NVME.io_ms(1024) < DISK_1993.io_ms(1024) / 50

    def test_modern_hdd_faster_than_1993(self):
        s = IOStats(read_ios=100, write_ios=100)
        assert DISK_MODERN_HDD.estimate_seconds(s, 256) < DISK_1993.estimate_seconds(s, 256)

    def test_profiles_have_names(self):
        assert DISK_1993.name and DISK_NVME.name and DISK_MODERN_HDD.name
