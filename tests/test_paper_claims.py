"""Fast, CI-scale regressions of the paper's headline claims.

The benchmark suite (E1–E13) verifies these at full scale; the versions
here are deliberately small so the default `pytest tests/` run re-checks
every headline claim in seconds.
"""

import numpy as np
import pytest

from repro import (
    ParallelDiskMachine,
    ParallelHierarchies,
    balance_sort_hierarchy,
    balance_sort_pdm,
    workloads,
)
from repro.analysis import bounds
from repro.baselines import randomized_distribution_sort, striped_merge_sort
from repro.hierarchies import PowerCost


def test_claim_deterministic_optimal_io():
    """Theorem 1: I/O within a constant of the bound, identically every run."""
    counts = []
    for _ in range(2):
        m = ParallelDiskMachine(memory=512, block=4, disks=8)
        res = balance_sort_pdm(m, workloads.uniform(6000, seed=200), check_invariants=False)
        counts.append(res.total_ios)
    assert counts[0] == counts[1]
    assert counts[0] < 16 * bounds.sort_io_bound(6000, 512, 4, 8)


def test_claim_simultaneous_cpu_optimality():
    """Theorem 1: CPU work ~ N log N alongside the optimal I/O."""
    m = ParallelDiskMachine(memory=512, block=4, disks=8, processors=4)
    res = balance_sort_pdm(m, workloads.uniform(6000, seed=201), check_invariants=False)
    n = 6000
    assert res.cpu["work"] < 60 * n * np.log2(n)


def test_claim_factor_2_balance_worst_case():
    """Theorem 4: even the lane adversary cannot skew a bucket past ~2x."""
    m = ParallelDiskMachine(memory=512, block=4, disks=8)
    res = balance_sort_pdm(m, workloads.adversarial_striping(6000, seed=202, period=4))
    assert res.max_balance_factor <= 2.5


def test_claim_matching_floor_always_met():
    """Theorem 5: the deterministic matcher never fell back."""
    m = ParallelDiskMachine(memory=512, block=4, disks=8)
    res = balance_sort_pdm(m, workloads.adversarial_striping(6000, seed=203, period=4))
    assert res.match_calls > 0  # the adversary did force rebalancing
    assert res.match_fallbacks == 0


def test_claim_striping_pays_a_log_factor():
    """Section 1: striped merge sort's ratio-to-bound grows as DB → M,
    while Balance Sort's stays flat (the crossover itself falls at larger N
    — E3 locates it at DB = M/8 with N = 48 000)."""
    data = workloads.uniform(12_000, seed=204)

    def ratios(d, b, vd):
        m1 = ParallelDiskMachine(memory=512, block=b, disks=d)
        striped = striped_merge_sort(m1, data).total_ios
        m2 = ParallelDiskMachine(memory=512, block=b, disks=d)
        balanced = balance_sort_pdm(
            m2, data, buckets=16, virtual_disks=vd, check_invariants=False
        ).total_ios
        bound = bounds.sort_io_bound(12_000, 512, b, d)
        return striped / bound, balanced / bound

    s_narrow, b_narrow = ratios(2, 4, None)
    s_wide, b_wide = ratios(64, 2, 32)
    assert s_wide > 2.0 * s_narrow  # striped degrades with striping width
    assert b_wide < 2.0 * b_narrow  # balance does not


def test_claim_derandomizes_vitter_shriver():
    """Section 1/3: same distribution-sort I/O order as randomized [ViSa]."""
    data = workloads.uniform(6000, seed=205)
    m1 = ParallelDiskMachine(memory=512, block=4, disks=8)
    det = balance_sort_pdm(m1, data, check_invariants=False).total_ios
    m2 = ParallelDiskMachine(memory=512, block=4, disks=8)
    ran = randomized_distribution_sort(m2, data).total_ios
    assert 0.5 < det / ran < 2.0


def test_claim_one_engine_every_model():
    """Section 3: the same deterministic engine sorts on every machine."""
    data = workloads.uniform(1500, seed=206)
    m = ParallelDiskMachine(memory=512, block=4, disks=8)
    balance_sort_pdm(m, data)
    for model in ["hmm", "bt", "umh"]:
        ph = ParallelHierarchies(27, model=model,
                                 cost_fn=None if model == "umh" else PowerCost(alpha=0.5))
        res = balance_sort_hierarchy(ph, data)
        assert res.match_fallbacks == 0


def test_claim_bt_touch_advantage():
    """Section 4.4: block transfer beats HMM for sublinear alpha."""
    data = workloads.uniform(3000, seed=207)
    t_hmm = balance_sort_hierarchy(
        ParallelHierarchies(64, model="hmm", cost_fn=PowerCost(alpha=0.5)), data
    ).memory_time
    t_bt = balance_sort_hierarchy(
        ParallelHierarchies(64, model="bt", cost_fn=PowerCost(alpha=0.5)), data
    ).memory_time
    assert t_bt < t_hmm
