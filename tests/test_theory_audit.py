"""Tests for the theory auditor: bounds, invariants, gauges, exit codes.

The acceptance contract from the issue: ``repro audit`` on a default PDM
sort reports the measured/Theorem-1 I/O ratio and confirms Invariants
1 & 2 held in every round and the Theorem-4 read-parallelism factor
stayed ≤ ~2 — with zero violations.  These tests pin that behaviour at
the library level (:class:`TheoryAuditor`), the report level
(:class:`AuditReport` / ``repro.audit/1``), the sweep level
(:func:`record_cell_audit` gauges), and the CLI exit-code level.
"""

import json

import numpy as np
import pytest

from repro import workloads
from repro.analysis import bounds
from repro.core.sort_hierarchy import balance_sort_hierarchy
from repro.core.sort_pdm import balance_sort_pdm
from repro.hierarchies import ParallelHierarchies
from repro.obs import (
    AUDIT_SCHEMA,
    AuditCheck,
    AuditReport,
    Observation,
    TheoryAuditor,
    record_cell_audit,
)
from repro.pdm import ParallelDiskMachine


def _pdm_audit(n=2000, disks=8, **kwargs):
    machine = ParallelDiskMachine(memory=512, block=4, disks=disks)
    data = workloads.by_name("uniform", n, seed=0)
    obs = Observation()
    auditor = TheoryAuditor(**kwargs).install(obs)
    res = balance_sort_pdm(machine, data, obs=obs, check_invariants=False)
    report = auditor.finish_pdm(machine, res)
    return machine, res, report, obs


class TestAuditorPdm:
    def test_clean_run_passes(self):
        machine, res, report, _ = _pdm_audit()
        assert report.ok
        assert report.violations == []
        assert report.target == "pdm"
        assert report.rounds_checked > 0

    def test_theorem1_ratio_matches_bound(self):
        machine, res, report, _ = _pdm_audit()
        check = report.check("theorem1.parallel_ios")
        bound = bounds.sort_io_bound(res.n_records, machine.M, machine.B,
                                     machine.D)
        assert check.bound == round(bound, 2)
        assert check.ratio == round(res.io_stats["total_ios"] / bound, 4)
        # Informational: no limit, so a large constant can't fail the audit.
        assert check.limit is None and check.ok

    def test_theorem4_within_two(self):
        _, res, report, _ = _pdm_audit()
        check = report.check("theorem4.read_parallelism")
        assert check.limit == 2.0
        assert check.measured <= 2.0 + 1e-9
        assert check.ok

    def test_invariants_zero_violations(self):
        _, _, report, _ = _pdm_audit()
        for name in ("invariant1", "invariant2"):
            check = report.check(name)
            assert check.kind == "invariant"
            assert check.measured == 0
            assert check.limit == 0
            assert check.ok

    def test_rounds_checked_counts_every_engine(self):
        # The auditor hooks every BalanceEngine (all recursion levels), so
        # the round count must cover at least every match call of the run.
        _, res, report, _ = _pdm_audit()
        assert report.rounds_checked >= res.match_calls > 0

    def test_round_observations_do_not_change_measurements(self):
        machine_a = ParallelDiskMachine(memory=512, block=4, disks=8)
        machine_b = ParallelDiskMachine(memory=512, block=4, disks=8)
        data = workloads.by_name("uniform", 2000, seed=0)
        res_plain = balance_sort_pdm(machine_a, data)
        obs = Observation()
        TheoryAuditor().install(obs)
        res_audited = balance_sort_pdm(machine_b, data, obs=obs,
                                       check_invariants=False)
        assert res_audited.total_ios == res_plain.total_ios
        assert res_audited.io_stats == res_plain.io_stats

    def test_gauges_emitted_under_audit_scope(self):
        _, _, report, obs = _pdm_audit()
        gauges = obs.registry.export()["audit"]["gauges"]
        assert gauges["ok"]["value"] == 1
        assert gauges["rounds_checked"]["value"] == report.rounds_checked
        ratio = report.check("theorem1.parallel_ios").ratio
        assert gauges["theorem1.parallel_ios.ratio"]["value"] == ratio
        assert gauges["invariant1.violations"]["value"] == 0

    def test_tightened_limit_fails_the_report(self):
        # An absurdly tight Theorem-4 limit must flip ok to False through
        # the violation path, not an exception.
        _, _, report, obs = _pdm_audit(theorem4_limit=0.5)
        assert not report.ok
        assert any(v["check"] == "theorem4" for v in report.violations)
        audit = obs.registry.export()["audit"]
        assert audit["counters"]["violations"] > 0
        assert audit["gauges"]["ok"]["value"] == 0
        # Violations also land in the trace as audit.violation events.
        names = [e.get("name") for e in obs.tracer.events
                 if e.get("ev") == "event"]
        assert "audit.violation" in names


class TestAuditorHierarchy:
    def _run(self, model="hmm", cost="log", interconnect="pram", n=1200, h=27):
        from repro.hierarchies import LogCost, PowerCost, UMHCost

        cost_fn = {"log": LogCost(), "umh": UMHCost()}.get(cost)
        if cost_fn is None:
            cost_fn = PowerCost(alpha=float(cost))
        machine = ParallelHierarchies(h, model=model, cost_fn=cost_fn,
                                      interconnect=interconnect)
        data = workloads.by_name("uniform", n, seed=0)
        obs = Observation()
        auditor = TheoryAuditor().install(obs)
        res = balance_sort_hierarchy(machine, data, obs=obs)
        return auditor.finish_hierarchy(machine, res), res

    def test_hmm_log_uses_theorem2(self):
        report, res = self._run()
        assert report.ok
        check = report.check("theorem2.total_time")
        assert check.ratio is not None
        assert check.bound == round(
            bounds.theorem2_log_bound(res.n_records, 27), 2)

    def test_bt_uses_theorem3(self):
        report, res = self._run(model="bt", cost="0.5")
        check = report.check("theorem3.total_time")
        assert check.ratio is not None
        assert check.bound == round(
            bounds.theorem3_bound(res.n_records, 27, 0.5), 2)

    def test_umh_cost_has_no_closed_form_ratio(self):
        report, _ = self._run(model="umh", cost="umh")
        check = report.check("theorem2.total_time")
        assert check.ratio is None and check.bound is None
        assert "no closed-form bound" in check.detail
        assert check.ok  # informational only — never gates

    def test_hypercube_adds_interconnect_check(self):
        report, res = self._run(interconnect="hypercube", n=900, h=16)
        check = report.check("theorem2.hypercube_extra")
        assert check.bound == round(
            bounds.theorem2_hypercube_extra(res.n_records, 16), 2)
        # pram runs must not grow the check.
        pram_report, _ = self._run(n=900, h=16)
        with pytest.raises(KeyError):
            pram_report.check("theorem2.hypercube_extra")

    def test_theorem4_and_invariants_present(self):
        report, _ = self._run()
        assert report.check("theorem4.read_parallelism").ok
        assert report.check("invariant1").measured == 0
        assert report.check("invariant2").measured == 0


class TestAuditReportShape:
    def test_to_dict_schema_and_roundtrip(self):
        _, _, report, _ = _pdm_audit()
        d = report.to_dict()
        assert d["schema"] == AUDIT_SCHEMA
        assert d["ok"] is True and d["violations"] == []
        names = {c["name"] for c in d["checks"]}
        assert {"theorem1.parallel_ios", "theorem1.cpu_work",
                "theorem4.read_parallelism", "invariant1",
                "invariant2"} <= names
        json.loads(json.dumps(d))  # JSON-safe end to end

    def test_check_to_dict_omits_none_fields(self):
        d = AuditCheck(name="x", kind="invariant", measured=0).to_dict()
        assert "bound" not in d and "ratio" not in d and "limit" not in d

    def test_tables_render(self):
        _, _, report, _ = _pdm_audit()
        tables = report.tables()
        text = "\n".join(t.render() for t in tables)
        assert "theory audit" in text and "PASS" in text

    def test_violation_table_rendered_on_failure(self):
        _, _, report, _ = _pdm_audit(theorem4_limit=0.5)
        text = "\n".join(t.render() for t in report.tables())
        assert "violations" in text and "FAIL" in text

    def test_check_lookup_keyerror(self):
        report = AuditReport(target="pdm")
        with pytest.raises(KeyError):
            report.check("nope")


class TestRecordCellAudit:
    def test_gauges_merge_as_watermarks(self):
        # Two cells with different ratios through one registry must leave
        # min/max watermarks covering both — the sweep-merge contract.
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        for ratio in (3.5, 7.5):
            obs = Observation(registry=registry)
            report = AuditReport(
                target="pdm",
                checks=[AuditCheck(name="theorem1.parallel_ios", kind="bound",
                                   measured=1.0, bound=1.0, ratio=ratio)],
                rounds_checked=1,
            )
            record_cell_audit(obs, report)
        gauge = registry.export()["audit"]["gauges"][
            "theorem1.parallel_ios.ratio"]
        assert gauge["min"] == 3.5 and gauge["max"] == 7.5


class TestAuditCli:
    def test_pdm_audit_exit_zero_and_ratio_printed(self, capsys):
        from repro.cli import main

        rc = main(["audit", "--n", "2000", "--disks", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "theorem1.parallel_ios" in out
        assert "audit: PASS" in out

    def test_hierarchy_audit_exit_zero(self, capsys):
        from repro.cli import main

        rc = main(["audit", "--target", "hierarchy", "--n", "1200",
                   "--h", "27"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "theorem2.total_time" in out

    def test_failing_limit_exits_nonzero(self, capsys):
        from repro.cli import main

        rc = main(["audit", "--n", "2000", "--disks", "4",
                   "--theorem4-limit", "0.5"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "audit: FAIL" in out

    def test_emit_json_carries_audit_section(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "audit.json"
        rc = main(["audit", "--n", "2000", "--disks", "4",
                   "--emit-json", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["audit"]["schema"] == AUDIT_SCHEMA
        assert doc["audit"]["ok"] is True
        assert doc["audit"]["violations"] == []

    def test_sort_report_includes_audit(self, capsys):
        from repro.cli import main

        rc = main(["sort", "--n", "2000", "--disks", "4", "--emit-json", "-"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["audit"]["ok"] is True
        names = {c["name"] for c in doc["audit"]["checks"]}
        assert "theorem1.parallel_ios" in names


class TestExecTaskAudit:
    def test_sort_pdm_payload_carries_audit_gauges(self):
        from repro.exec import run_task

        payload = run_task("sort_pdm", {"n": 2000, "disks": 4})
        gauges = payload["metrics"]["audit"]["gauges"]
        assert gauges["ok"]["value"] == 1
        assert gauges["theorem1.parallel_ios.ratio"]["value"] > 1.0
        assert gauges["rounds_checked"]["value"] > 0

    def test_hierarchy_payload_carries_audit_gauges(self):
        from repro.exec import run_task

        payload = run_task("hierarchy_sort", {"n": 1200, "h": 27})
        gauges = payload["metrics"]["audit"]["gauges"]
        assert gauges["ok"]["value"] == 1
        assert gauges["theorem2.total_time.ratio"]["value"] > 0
