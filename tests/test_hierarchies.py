"""Unit tests for HMM, BT, UMH machines and the parallel hierarchies."""

import numpy as np
import pytest

from repro.exceptions import AddressError, DiskContentionError, ParameterError
from repro.hierarchies import (
    BT,
    HMM,
    UMH,
    LogCost,
    ParallelHierarchies,
    PowerCost,
    VirtualHierarchies,
    well_behaved,
)
from repro.hierarchies.bt import touch_cost, transpose_cost
from repro.hierarchies.cost import ConstantCost, paper_log
from repro.hierarchies.parallel import default_virtual_hierarchy_count
from repro.records import make_records


class TestCostFunctions:
    def test_paper_log_floors_at_one(self):
        assert paper_log(1) == 1.0
        assert paper_log(2) == 1.0
        assert paper_log(8) == 3.0

    def test_log_cost(self):
        f = LogCost()
        assert f(np.array([16]))[0] == 4.0

    def test_power_cost(self):
        f = PowerCost(alpha=2.0)
        assert f(np.array([3]))[0] == 9.0

    def test_power_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            PowerCost(alpha=0)

    def test_scan_cost_sums_locations(self):
        f = PowerCost(alpha=1.0)
        # locations 1..4 cost 1+2+3+4
        assert f.scan_cost(0, 4) == 10.0

    def test_well_behaved_factory(self):
        assert isinstance(well_behaved("log"), LogCost)
        assert isinstance(well_behaved(0.5), PowerCost)
        assert isinstance(well_behaved("constant"), ConstantCost)
        with pytest.raises(ValueError):
            well_behaved("bogus")


class TestHMM:
    def test_write_read_roundtrip_and_cost(self):
        h = HMM(PowerCost(alpha=1.0))
        r = make_records(np.array([5, 6], dtype=np.uint64))
        h.write(np.array([0, 3]), r)
        assert h.cost == 1 + 4  # f(1) + f(4)
        out = h.read(np.array([3]))
        assert out["key"][0] == 6
        assert h.cost == 1 + 4 + 4

    def test_read_unwritten_raises(self):
        h = HMM()
        with pytest.raises(AddressError):
            h.read(np.array([0]))

    def test_negative_address_raises(self):
        h = HMM()
        with pytest.raises(AddressError):
            h.write(np.array([-1]), make_records(np.array([1], dtype=np.uint64)))

    def test_load_initial_is_free(self):
        h = HMM()
        h.load_initial(make_records(np.arange(10, dtype=np.uint64)))
        assert h.cost == 0.0
        assert h.read(np.array([9]))["key"][0] == 9

    def test_growth_beyond_initial_capacity(self):
        h = HMM()
        addr = HMM.GROWTH * 3
        h.write(np.array([addr]), make_records(np.array([1], dtype=np.uint64)))
        assert h.read(np.array([addr]))["key"][0] == 1

    def test_log_cost_hierarchy_far_access_costs_more(self):
        h = HMM(LogCost())
        r = make_records(np.array([1], dtype=np.uint64))
        h.write(np.array([0]), r)
        near = h.cost
        h.write(np.array([10**6]), r)
        assert h.cost - near > near


class TestBT:
    def test_block_read_cost_f_plus_length(self):
        bt = BT(PowerCost(alpha=1.0))
        r = make_records(np.arange(8, dtype=np.uint64))
        bt.load_initial(r)
        bt.read_block(high_address=7, length=8)
        assert bt.cost == 8 + 7  # f(8) + (8-1)

    def test_block_write_roundtrip(self):
        bt = BT(LogCost())
        r = make_records(np.arange(4, dtype=np.uint64))
        bt.write_block(high_address=9, records=r)
        out = bt.read_block(high_address=9, length=4)
        assert np.array_equal(out["key"], r["key"])

    def test_block_below_zero_raises(self):
        bt = BT()
        with pytest.raises(AddressError):
            bt.read_block(high_address=2, length=5)

    def test_touch_cost_shapes(self):
        n = 1 << 16
        # alpha < 1: n loglog n
        assert touch_cost(n, PowerCost(alpha=0.5)) == pytest.approx(n * 4.0)
        # alpha = 1: n log n
        assert touch_cost(n, PowerCost(alpha=1.0)) == pytest.approx(n * 16.0)
        # alpha > 1: n^alpha
        assert touch_cost(n, PowerCost(alpha=2.0)) == pytest.approx(float(n) ** 2)
        assert touch_cost(0, PowerCost(alpha=0.5)) == 0.0

    def test_transpose_cost_shape(self):
        n = 1 << 16
        assert transpose_cost(n, PowerCost(alpha=0.5)) == pytest.approx(n * 4.0**4)

    def test_charge_touch_accumulates(self):
        bt = BT(PowerCost(alpha=0.5))
        bt.charge_touch(256)
        assert bt.cost > 0


class TestUMH:
    def test_level_geometry(self):
        u = UMH(rho=2, alpha=2, levels=5)
        assert u.levels[3].block_size == 8
        assert u.levels[3].n_blocks == 16
        assert u.capacity(3) == 128

    def test_transfer_down_and_up(self):
        u = UMH(rho=2, alpha=2, levels=4)
        block = make_records(np.arange(2, dtype=np.uint64))
        u.put_block(1, 0, block)
        u.transfer(bus=0, lower_frame=0, upper_frame=0, sub_index=1, direction="down")
        sub = u.get_block(0, 0)
        assert sub["key"][0] == 1  # second half of the level-1 block
        u.transfer(bus=0, lower_frame=0, upper_frame=1, sub_index=0, direction="up")
        upper = u.get_block(1, 1)
        assert upper["key"][0] == 1

    def test_bus_time_accounting(self):
        u = UMH(rho=2, alpha=2, levels=4)
        u.put_block(2, 0, make_records(np.arange(4, dtype=np.uint64)))
        u.transfer(bus=1, lower_frame=0, upper_frame=0, sub_index=0, direction="down")
        assert u.bus_time[1] == 2.0  # level-1 block of 2 items / b=1
        assert u.time == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            UMH(rho=1)
        with pytest.raises(ParameterError):
            UMH(alpha=0)

    def test_bad_direction(self):
        u = UMH(levels=3)
        u.put_block(1, 0, make_records(np.arange(2, dtype=np.uint64)))
        with pytest.raises(ParameterError):
            u.transfer(0, 0, 0, 0, direction="sideways")

    def test_fetch_cost_monotone(self):
        u = UMH(rho=2, alpha=2, levels=10)
        assert u.fetch_cost(4) < u.fetch_cost(64)


class TestParallelHierarchies:
    def test_construction_and_models(self):
        ph = ParallelHierarchies(4, model="bt", cost_fn=PowerCost(alpha=0.5))
        assert all(isinstance(h, BT) for h in ph.hierarchies)
        with pytest.raises(ParameterError):
            ParallelHierarchies(4, model="nope")
        with pytest.raises(ParameterError):
            ParallelHierarchies(4, interconnect="torus")

    def test_parallel_step_charges_max(self):
        ph = ParallelHierarchies(4)
        ph.parallel_step([1.0, 5.0, 2.0])
        assert ph.memory_time == 5.0
        assert ph.parallel_steps == 1

    def test_base_sort_charge_pram_vs_hypercube(self):
        pram = ParallelHierarchies(64, interconnect="pram")
        cube = ParallelHierarchies(64, interconnect="hypercube")
        pram.charge_base_sort()
        cube.charge_base_sort()
        assert pram.interconnect_time == 6.0  # log2 64
        assert cube.interconnect_time > pram.interconnect_time

    def test_total_time_sums(self):
        ph = ParallelHierarchies(4)
        ph.parallel_step([2.0])
        ph.charge_interconnect(3.0)
        assert ph.total_time == 5.0

    def test_default_virtual_hierarchy_count(self):
        assert default_virtual_hierarchy_count(64) == 4
        assert default_virtual_hierarchy_count(27) == 3
        assert default_virtual_hierarchy_count(8) == 2


class TestVirtualHierarchies:
    def _vh(self, h=8, n_virtual=2, cost=None):
        ph = ParallelHierarchies(h, cost_fn=cost or PowerCost(alpha=1.0))
        return ph, VirtualHierarchies(ph, n_virtual)

    def test_virtual_block_size(self):
        _, vh = self._vh(8, 2)
        assert vh.virtual_block_size == 4  # H/H' records

    def test_write_read_roundtrip(self):
        ph, vh = self._vh()
        d0 = make_records(np.arange(4, dtype=np.uint64))
        d1 = make_records(np.arange(4, dtype=np.uint64) + 50)
        addrs = vh.parallel_write([(0, d0), (1, d1)])
        out = vh.parallel_read(addrs)
        assert np.array_equal(out[0]["key"], d0["key"])
        assert np.array_equal(out[1]["key"], d1["key"])

    def test_one_parallel_step_per_op(self):
        ph, vh = self._vh()
        d = make_records(np.arange(4, dtype=np.uint64))
        vh.parallel_write([(0, d), (1, d)])
        assert ph.parallel_steps == 1

    def test_step_cost_is_max_f_of_address(self):
        ph, vh = self._vh(cost=PowerCost(alpha=1.0))
        d = make_records(np.arange(4, dtype=np.uint64))
        vh.parallel_write([(0, d)])  # address 0 -> f(1) = 1 per record
        assert ph.memory_time == 1.0
        vh.parallel_write([(0, d)])  # address 1 -> f(2) = 2
        assert ph.memory_time == 3.0

    def test_contention_rejected(self):
        _, vh = self._vh()
        d = make_records(np.arange(4, dtype=np.uint64))
        with pytest.raises(DiskContentionError):
            vh.parallel_write([(0, d), (0, d)])

    def test_address_recycling_lowest_first(self):
        _, vh = self._vh()
        d = make_records(np.arange(4, dtype=np.uint64))
        a0 = vh.parallel_write([(0, d)])[0]
        a1 = vh.parallel_write([(0, d)])[0]
        assert (a0.slot, a1.slot) == (0, 1)
        vh.free([a0])
        a2 = vh.parallel_write([(0, d)])[0]
        assert a2.slot == 0  # lowest free address reused

    def test_divisibility_required(self):
        ph = ParallelHierarchies(8)
        with pytest.raises(ParameterError):
            VirtualHierarchies(ph, 3)

    def test_wrong_block_size_rejected(self):
        _, vh = self._vh()
        with pytest.raises(ParameterError):
            vh.parallel_write([(0, make_records(np.arange(2, dtype=np.uint64)))])
