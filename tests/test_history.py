"""Round-trip and query-surface tests for the run-history index.

The contract under test (docs/observability.md): ingest is
content-detected and deduplicating, stored artifacts round-trip
value-identical through ``load_artifact``, the index itself follows the
ledger's durability conventions (append order kept, torn tail
forgiven), and the query surface filters by kind / series / commit
prefix / host key.
"""

import gzip
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import __version__
from repro.obs import INDEX_SCHEMA, RunHistory
from repro.obs.ledger import make_entry


def _report(ios=3128, n=8000):
    return {
        "schema": "repro.run_report/1",
        "command": "sort",
        "result": {"records": n, "parallel_ios": ios, "ratio": 1.61,
                   "verified": True},
        "phases": [
            {"name": "partition", "wall_s": 0.012, "read_ios": 378,
             "write_ios": 378},
            {"name": "distribute", "wall_s": 0.074, "read_ios": 924,
             "write_ios": 924},
        ],
        "host": {"key": "h" * 12, "system": "Linux", "machine": "x86_64",
                 "python": "3.12.1", "usable_cores": 4, "platform": "x"},
    }


def _trace_lines():
    return [
        {"ev": "begin", "span": 1, "name": "sort", "parent": None, "ts": 0.0},
        {"ev": "begin", "span": 2, "name": "distribute", "parent": 1,
         "ts": 0.1, "attrs": {"level": 0}},
        {"ev": "event", "span": 2, "name": "io.read", "ts": 0.2,
         "attrs": {"width": 4}},
        {"ev": "end", "span": 2, "name": "distribute", "parent": 1,
         "ts": 0.5, "wall_s": 0.4},
        {"ev": "end", "span": 1, "name": "sort", "parent": None,
         "ts": 0.6, "wall_s": 0.6},
    ]


class TestIngestDoc:
    def test_index_record_shape(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        record = history.ingest_doc(_report(), source="r.json",
                                    commit="abc1234", series="s1")
        assert record["schema"] == INDEX_SCHEMA
        assert record["kind"] == "report"
        assert record["schema_of"] == "repro.run_report/1"
        assert record["id"].startswith("report-")
        assert record["commit"] == "abc1234"
        assert record["series"] == "s1"
        assert record["host_key"] == "h" * 12
        assert record["artifact"] == f"runs/{record['id']}.json"
        assert record["summary"]["parallel_ios"] == 3128

    def test_round_trip_is_value_identical(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        doc = _report()
        record = history.ingest_doc(doc)
        assert history.load_artifact(record) == doc

    def test_dedup_by_content(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        first = history.ingest_doc(_report())
        again = history.ingest_doc(_report())
        assert again["duplicate"] is True
        assert again["id"] == first["id"]
        assert len(history.read()) == 1
        # A different doc is a different id.
        other = history.ingest_doc(_report(ios=9999))
        assert other["id"] != first["id"]
        assert len(history.read()) == 2

    def test_unknown_schema_refused(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        with pytest.raises(ValueError, match="unrecognized artifact schema"):
            history.ingest_doc({"schema": "repro.nonsense/9"})
        with pytest.raises(ValueError, match="unrecognized artifact schema"):
            history.ingest_doc({"no_schema": True})

    def test_require_version_gates_bench_points(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        bench = {"schema": "repro.bench_point/1", "name": "x"}
        with pytest.raises(ValueError, match="repro_version"):
            history.ingest_doc(bench, require_version=True)
        stamped = {**bench, "repro_version": __version__}
        record = history.ingest_doc(stamped, require_version=True)
        assert record["kind"] == "bench"
        assert record["summary"]["repro_version"] == __version__
        # Non-bench kinds are not subject to the stamp requirement.
        history.ingest_doc(_report(), require_version=True)

    @settings(max_examples=25, deadline=None)
    @given(
        seconds=st.floats(min_value=0.001, max_value=1e4),
        records=st.integers(min_value=1, max_value=10**9),
        series=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1, max_size=12,
        ),
    )
    def test_ledger_point_round_trip_property(self, tmp_path_factory,
                                              seconds, records, series):
        root = tmp_path_factory.mktemp("hist")
        history = RunHistory(str(root))
        host = {"key": "k" * 12, "system": "Linux", "machine": "x86_64",
                "python": "3.12.1", "usable_cores": 4, "platform": "x"}
        entry = make_entry(series, seconds, records, grid="g", cells=1,
                           host=host, when=1000.0)
        record = history.ingest_doc(entry)
        assert record["kind"] == "ledger"
        assert record["series"] == series
        assert history.load_artifact(record) == entry
        assert record["summary"]["seconds"] == entry["seconds"]


class TestIngestPath:
    def test_single_doc_file(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(_report(), indent=2))
        history = RunHistory(str(tmp_path / "h"))
        records = history.ingest_path(str(path))
        assert len(records) == 1
        assert records[0]["kind"] == "report"
        assert records[0]["source"] == str(path)
        assert history.load_artifact(records[0]) == _report()

    def test_ledger_jsonl_ingests_every_point(self, tmp_path):
        host = {"key": "k" * 12, "system": "Linux", "machine": "x86_64",
                "python": "3.12.1", "usable_cores": 4, "platform": "x"}
        entries = [
            make_entry("e1", 1.0 + i, 1000, grid="g", cells=1, host=host,
                       when=1000.0 + i)
            for i in range(3)
        ]
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in entries)
        )
        history = RunHistory(str(tmp_path / "h"))
        records = history.ingest_path(str(path))
        assert [r["kind"] for r in records] == ["ledger"] * 3
        assert [history.load_artifact(r) for r in records] == entries

    def test_trace_is_profiled_on_ingest(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            for line in _trace_lines():
                fh.write(json.dumps(line) + "\n")
        history = RunHistory(str(tmp_path / "h"))
        records = history.ingest_path(str(path))
        assert len(records) == 1
        assert records[0]["kind"] == "profile"
        profile = history.load_artifact(records[0])
        assert profile["schema"] == "repro.profile/1"
        assert profile["io"]["rounds"]["total"] == 1

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        history = RunHistory(str(tmp_path / "h"))
        with pytest.raises(ValueError, match="empty artifact"):
            history.ingest_path(str(path))

    def test_config_env_and_explicit_merge(self, tmp_path, monkeypatch):
        # The snapshot reads the ambient environment, so clear every
        # captured knob first — CI legitimately runs the whole suite
        # under e.g. REPRO_KERNEL_BACKEND=compiled.
        from repro.obs.history import _CONFIG_ENV

        for env_name, _ in _CONFIG_ENV:
            monkeypatch.delenv(env_name, raising=False)
        monkeypatch.setenv("REPRO_IO_PLAN", "0")
        history = RunHistory(str(tmp_path / "h"))
        record = history.ingest_doc(_report(), config={"extra": "1"})
        assert record["config"] == {"io_plan": "0", "extra": "1"}


class TestQuery:
    def _seed(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        history.ingest_doc(_report(ios=1), commit="aaaa1111deadbeef",
                           series="s1", when=1.0)
        history.ingest_doc(_report(ios=2), commit="bbbb2222deadbeef",
                           series="s1", when=2.0)
        history.ingest_doc(_report(ios=3), commit="bbbb2222deadbeef",
                           series="s2", when=3.0)
        return history

    def test_filters(self, tmp_path):
        history = self._seed(tmp_path)
        assert len(history.records()) == 3
        assert len(history.records(series="s1")) == 2
        assert len(history.records(commit="bbbb")) == 2
        # Prefix matching works both directions (short queries long).
        assert len(history.records(commit="aaaa1111deadbeefcafe")) == 1
        assert len(history.records(host_key="h" * 12)) == 3
        assert len(history.records(host_key="nope")) == 0
        newest = history.records(limit=1)
        assert len(newest) == 1
        assert newest[0]["summary"]["parallel_ios"] == 3

    def test_get_by_prefix_and_ambiguity(self, tmp_path):
        history = self._seed(tmp_path)
        full_id = history.records(limit=1)[0]["id"]
        assert history.get(full_id)["id"] == full_id
        assert history.get(full_id[:10])["id"] == full_id
        with pytest.raises(KeyError, match="ambiguous|no indexed run"):
            history.get("report-")  # matches all three (or none)
        with pytest.raises(KeyError, match="no indexed run"):
            history.get("zzz")

    def test_torn_tail_forgiven(self, tmp_path):
        history = self._seed(tmp_path)
        with open(history.index_path, "a") as fh:
            fh.write('{"schema": "repro.run_ind')  # torn final line
        assert len(history.read()) == 3

    def test_stats(self, tmp_path):
        history = self._seed(tmp_path)
        stats = history.stats
        assert stats["records"] == 3
        assert stats["kinds"] == {"report": 3}
        assert stats["repro_version"] == __version__
