"""Property tier: Invariants 1 & 2 and Theorem 4, after *every* round.

The unit/integration tier checks the engine's end state; this tier uses
Hypothesis to drive randomly shaped block streams (workload shape, bucket
count, channel count, feed chunking, kernel backend) through
:class:`~repro.core.balance.BalanceEngine` and asserts the paper's safety
properties at every round boundary via a round observer:

* **Invariant 1** — every overloaded bucket (a row with an ``A == 2``
  entry) still has at least ``ceil(H'/2)`` channels it may be placed on;
* **Invariant 2** — after rebalancing, no auxiliary-matrix entry exceeds
  1 (each bucket within one block of perfectly even);
* **Theorem 4** — the balance factor (worst-case reads over the optimal
  ``ceil(count/H')``) stays ≤ ~2 throughout the pass, not just at flush.

Both kernel backends (scalar reference and vectorized) must uphold the
properties; the differential tier separately proves them bit-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.core.balance import BalanceEngine, read_bucket_run
from repro.core.kernels import use_backend
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys

WORKLOADS = [
    "uniform",
    "adversarial_striping",
    "adversarial_bucket_skew",
    "few_distinct",
    "sorted",
]

# Strategy: the machine/engine shape space the properties must hold over.
engine_shapes = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**31 - 1),
        "n": st.integers(1, 900),
        "s": st.integers(2, 6),
        "hp": st.sampled_from([2, 4, 8]),
        "workload": st.sampled_from(WORKLOADS),
        "chunk": st.sampled_from([16, 48, 128]),
        "backend": st.sampled_from(["scalar", "vectorized"]),
    }
)


def pivots_for(records: np.ndarray, s: int) -> np.ndarray:
    ck = np.sort(composite_keys(records))
    ranks = np.linspace(0, ck.size - 1, s + 1).astype(int)[1:-1]
    return ck[ranks]


def build(shape):
    machine = ParallelDiskMachine(memory=8192, block=2, disks=8)
    storage = VirtualDisks(machine, shape["hp"])
    data = workloads.by_name(shape["workload"], shape["n"], seed=shape["seed"])
    s = min(shape["s"], max(2, data.shape[0]))
    piv = pivots_for(data, s)
    engine = BalanceEngine(
        storage, piv, rng=np.random.default_rng(shape["seed"]),
        check_invariants=False,  # we assert explicitly, per round
    )
    return machine, storage, data, piv, engine


def install_per_round_assertions(engine) -> dict:
    """Observer asserting Invariants 1 & 2 + Theorem 4 after every round."""
    seen = {"rounds": 0}

    @engine.add_round_observer
    def _check(engine, info):
        seen["rounds"] += 1
        m = engine.matrices
        # Invariant 2: rebalancing brought every aux entry back to <= 1.
        m.check_invariant_2()
        # Invariant 1: vacuous post-round unless a bucket is overloaded,
        # but must never raise.
        m.check_invariant_1()
        # Theorem 4: within a factor of ~2 of the optimal read cost at
        # every round boundary (small additive slack for tiny buckets).
        slack = 2.0 / max(1, int(m.X.max(initial=0)))
        assert info["max_balance_factor"] <= 2.0 + slack, (
            f"round {info['round']}: balance factor "
            f"{info['max_balance_factor']:.3f} breaks Theorem 4"
        )

    return seen


@given(engine_shapes)
@settings(max_examples=40, deadline=None)
def test_invariants_hold_after_every_round(shape):
    machine, storage, data, piv, engine = build(shape)
    seen = install_per_round_assertions(engine)
    with use_backend(shape["backend"]):
        for i in range(0, data.shape[0], shape["chunk"]):
            part = data[i : i + shape["chunk"]]
            machine.mem_acquire(part.shape[0])
            engine.feed(part)
            engine.run_rounds(drain_below=2 * engine.n_channels)
        runs = engine.flush()

    # The stream actually exercised the round machinery...
    assert seen["rounds"] == engine.stats.rounds
    # ...and the final state still satisfies everything it did per round.
    engine.matrices.check_invariant_1()
    engine.matrices.check_invariant_2()
    assert sum(r.n_records for r in runs) == data.shape[0]


@given(engine_shapes)
@settings(max_examples=15, deadline=None)
def test_partition_correct_under_random_streams(shape):
    """Every record lands in its bucket, for either backend."""
    machine, storage, data, piv, engine = build(shape)
    with use_backend(shape["backend"]):
        for i in range(0, data.shape[0], shape["chunk"]):
            part = data[i : i + shape["chunk"]]
            machine.mem_acquire(part.shape[0])
            engine.feed(part)
            engine.run_rounds(drain_below=2 * engine.n_channels)
        runs = engine.flush()
    seen = 0
    for b, run in enumerate(runs):
        for chunk in read_bucket_run(storage, run, free=True):
            buckets = np.searchsorted(piv, composite_keys(chunk), side="right")
            assert np.all(buckets == b)
            seen += chunk.shape[0]
            machine.mem_release(chunk.shape[0])
    assert seen == data.shape[0]


# ----------------------------------------------- fused round planner tier

# Strategy: the fused-execution space — random I/O-plan windows over full
# recursive sorts.  The properties must hold after every round at every
# recursion level no matter how rounds are physically batched.
planner_shapes = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**31 - 1),
        "n": st.integers(600, 2500),
        "window": st.sampled_from([0, 1, 2, 3, 7, 64, 256]),
        "workload": st.sampled_from(WORKLOADS),
        "backend": st.sampled_from(["scalar", "vectorized"]),
    }
)


@given(planner_shapes)
@settings(max_examples=25, deadline=None)
def test_invariants_hold_under_fused_plans_at_every_level(shape):
    """Invariants 1 & 2 + Theorem 4 after every fused round, every level.

    Runs the whole recursive PDM sort (not a single engine) under a
    randomly drawn ``REPRO_IO_PLAN`` window, hooking every recursion
    level's engine through ``obs.engine_observers`` — the same seam the
    TheoryAuditor uses — and asserting the paper's safety properties at
    each round boundary.  Window 0 is the unfused reference execution,
    so the strategy itself pins fused == unfused on the property level.
    """
    from repro.core.sort_pdm import balance_sort_pdm
    from repro.obs import Observation
    from repro.records import sort_records

    import os

    saved = os.environ.get("REPRO_IO_PLAN")
    os.environ["REPRO_IO_PLAN"] = str(shape["window"])
    seen = {"rounds": 0}

    def check(engine, info):
        seen["rounds"] += 1
        m = engine.matrices
        m.check_invariant_1()
        m.check_invariant_2()
        slack = 2.0 / max(1, int(m.X.max(initial=0)))
        assert info["max_balance_factor"] <= 2.0 + slack, (
            f"round {info['round']}: balance factor "
            f"{info['max_balance_factor']:.3f} breaks Theorem 4 "
            f"(window={shape['window']})"
        )

    try:
        obs = Observation()
        obs.engine_observers.append(check)
        machine = ParallelDiskMachine(memory=512, block=4, disks=8)
        data = workloads.by_name(shape["workload"], shape["n"], seed=shape["seed"])
        with use_backend(shape["backend"]):
            res = balance_sort_pdm(machine, data, obs=obs)
        obs.close()
    finally:
        if saved is None:
            os.environ.pop("REPRO_IO_PLAN", None)
        else:
            os.environ["REPRO_IO_PLAN"] = saved
    assert seen["rounds"] == res.engine_rounds > 0
    assert res.max_balance_factor <= 2.0 + 2.0 / max(1, data.shape[0] // 100)
    # The sorted output is exactly the input, reordered.
    from repro.core.streams import peek_run

    out = peek_run(res.storage, res.output)
    assert np.array_equal(out, sort_records(data))


@pytest.mark.parametrize("backend", ["scalar", "vectorized"])
def test_theorem4_worst_case_workloads(backend):
    """Deterministic spot-check: the adversarial workloads stay ≤ ~2."""
    for workload in ["adversarial_striping", "adversarial_bucket_skew"]:
        machine = ParallelDiskMachine(memory=8192, block=2, disks=8)
        storage = VirtualDisks(machine, 4)
        data = workloads.by_name(workload, 1000, seed=13)
        engine = BalanceEngine(storage, pivots_for(data, 4))
        install_per_round_assertions(engine)
        with use_backend(backend):
            machine.mem_acquire(data.shape[0])
            engine.feed(data)
            engine.run_rounds(drain_below=0)
            engine.flush()
        assert engine.stats.rounds > 0
