"""Tests for the Chrome trace-event / Perfetto export bridge.

The acceptance bar from the issue: a telemetry-enabled run's trace must
export to a Perfetto-loadable JSON, validated here against the
trace-event format's documented shape — the object form with a
``traceEvents`` list whose entries carry ``ph``/``ts``/``pid``/``tid``,
duration events as ``ph: "X"`` with ``dur``, instants as ``ph: "i"``,
counters as ``ph: "C"``, and track-naming metadata as ``ph: "M"``.
"""

import gzip
import json

import pytest

from repro.obs import EXPORT_SCHEMA, export_chrome_trace, write_chrome_trace


def _begin(span, parent, name, ts, **attrs):
    return {"ev": "begin", "span": span, "parent": parent, "name": name,
            "ts": ts, "attrs": attrs}


def _end(span, parent, name, ts, wall, **attrs):
    return {"ev": "end", "span": span, "parent": parent, "name": name,
            "ts": ts, "wall_s": wall, "attrs": attrs}


def _event(span, name, ts, **attrs):
    return {"ev": "event", "span": span, "name": name, "ts": ts,
            "attrs": attrs}


def _wall_trace():
    """root(2s) -> sort(1s) with I/O rounds, a fault instant, a balance
    sample — recorded under a real clock (positive timestamps)."""
    return [
        _begin(1, None, "root", 10.0),
        _begin(2, 1, "sort", 10.5, level=0),
        _event(2, "io.read", 10.6, width=4),
        _event(2, "io.write", 10.7, width=4),
        _event(2, "fault.injected", 10.8, site="store.read"),
        _event(2, "balance.round", 10.9, max_balance_factor=1.25),
        _end(2, 1, "sort", 11.5, 1.0, reads=1, writes=1),
        _end(1, None, "root", 12.0, 2.0),
    ]


def _by_ph(doc):
    out = {}
    for ev in doc["traceEvents"]:
        out.setdefault(ev["ph"], []).append(ev)
    return out


class TestTraceEventShape:
    """The trace-event JSON shape every exported doc must satisfy."""

    def test_object_form_and_other_data(self):
        doc = export_chrome_trace(_wall_trace(), source="unit")
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        other = doc["otherData"]
        assert other["schema"] == EXPORT_SCHEMA
        assert other["clock"] == "wall"
        assert other["events"] == len(_wall_trace())
        assert other["source"] == "unit"

    def test_every_event_carries_required_keys(self):
        doc = export_chrome_trace(_wall_trace())
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            assert ev["ph"] in {"X", "i", "C", "M"}
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float))
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] in {"t", "p", "g"}
        # The whole doc must be plain-JSON serializable.
        json.dumps(doc)

    def test_spans_become_complete_events_at_begin_ts(self):
        doc = export_chrome_trace(_wall_trace())
        spans = {ev["name"]: ev for ev in _by_ph(doc)["X"]}
        assert spans["root"]["ts"] == pytest.approx(10.0 * 1e6)
        assert spans["root"]["dur"] == pytest.approx(2.0 * 1e6)
        assert spans["sort"]["ts"] == pytest.approx(10.5 * 1e6)
        assert spans["sort"]["dur"] == pytest.approx(1.0 * 1e6)
        # End-side attrs ride along as args.
        assert spans["sort"]["args"] == {"reads": 1, "writes": 1}

    def test_point_events_become_thread_instants(self):
        doc = export_chrome_trace(_wall_trace())
        instants = {ev["name"]: ev for ev in _by_ph(doc)["i"]}
        assert set(instants) == {"fault.injected"}
        fault = instants["fault.injected"]
        assert fault["args"] == {"site": "store.read"}
        assert fault["s"] == "t"

    def test_rounds_and_balance_become_counters(self):
        doc = export_chrome_trace(_wall_trace(), counter_every=1)
        counters = _by_ph(doc)["C"]
        names = {ev["name"] for ev in counters}
        assert {"I/O rounds", "balance factor"} <= names
        io_samples = [ev for ev in counters if ev["name"] == "I/O rounds"]
        # counter_every=1 → a sample per round event, plus the final one.
        assert [s["args"] for s in io_samples][:2] == [
            {"io.read": 1, "io.write": 0, "mem.step": 0},
            {"io.read": 1, "io.write": 1, "mem.step": 0},
        ]
        assert io_samples[-1]["args"]["io.read"] == 1
        balance = [ev for ev in counters if ev["name"] == "balance factor"]
        assert balance[0]["args"] == {"max_balance_factor": 1.25}

    def test_counter_sampling_stride(self):
        events = [_begin(1, None, "root", 0.0)]
        events += [_event(1, "io.read", 0.0) for _ in range(10)]
        events.append(_end(1, None, "root", 0.0, 0.0))
        doc = export_chrome_trace(events, counter_every=4)
        io_samples = [ev for ev in _by_ph(doc)["C"]
                      if ev["name"] == "I/O rounds"]
        # Samples at rounds 4 and 8, plus the final total.
        assert [s["args"]["io.read"] for s in io_samples] == [4, 8, 10]

    def test_metadata_names_process_and_threads(self):
        doc = export_chrome_trace(_wall_trace())
        meta = _by_ph(doc)["M"]
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"] == {"name": "repro"}
        threads = {ev["tid"]: ev["args"]["name"] for ev in meta
                   if ev["name"] == "thread_name"}
        assert threads[1] == "main"

    def test_error_end_rides_in_args(self):
        events = [
            _begin(1, None, "root", 1.0),
            {"ev": "end", "span": 1, "parent": None, "name": "root",
             "ts": 2.0, "wall_s": 1.0, "attrs": {}, "error": "KeyError: 'x'"},
        ]
        doc = export_chrome_trace(events)
        span = _by_ph(doc)["X"][0]
        assert span["args"]["error"] == "KeyError: 'x'"


class TestClockModes:
    def test_zero_clock_trace_gets_virtual_time(self):
        events = [
            _begin(1, None, "root", 0.0),
            _begin(2, 1, "child", 0.0),
            _end(2, 1, "child", 0.0, 0.0),
            _end(1, None, "root", 0.0, 0.0),
        ]
        doc = export_chrome_trace(events)
        assert doc["otherData"]["clock"] == "virtual"
        spans = {ev["name"]: ev for ev in _by_ph(doc)["X"]}
        # 1 record = 1 µs: nesting and ordering survive the pinned clock.
        assert spans["root"]["ts"] == 0.0 and spans["root"]["dur"] == 3.0
        assert spans["child"]["ts"] == 1.0 and spans["child"]["dur"] == 1.0
        assert spans["child"]["ts"] > spans["root"]["ts"]

    def test_wall_trace_keeps_wall_time(self):
        doc = export_chrome_trace(_wall_trace())
        assert doc["otherData"]["clock"] == "wall"


class TestMergedTraces:
    def _merged(self):
        """Two merged runs under synthetic ``run:*`` roots (exec.merge)."""
        return [
            _begin(1, None, "run:sort_pdm[0]", 0.0),
            _begin(2, 1, "sort", 0.0),
            _end(2, 1, "sort", 0.0, 0.0),
            _end(1, None, "run:sort_pdm[0]", 0.0, 0.0),
            _begin(3, None, "run:sort_pdm[1]", 0.0),
            _begin(4, 3, "sort", 0.0),
            _end(4, 3, "sort", 0.0, 0.0),
            _end(3, None, "run:sort_pdm[1]", 0.0, 0.0),
        ]

    def test_each_run_root_gets_its_own_named_track(self):
        doc = export_chrome_trace(self._merged())
        spans = _by_ph(doc)["X"]
        tid_of = {}
        for ev in spans:
            tid_of.setdefault(ev["name"], set()).add(ev["tid"])
        (tid0,) = tid_of["run:sort_pdm[0]"]
        (tid1,) = tid_of["run:sort_pdm[1]"]
        assert tid0 != tid1
        # Children inherit the run root's track.
        assert tid_of["sort"] == {tid0, tid1}
        threads = {ev["tid"]: ev["args"]["name"]
                   for ev in _by_ph(doc)["M"] if ev["name"] == "thread_name"}
        assert threads[tid0] == "run:sort_pdm[0]"
        assert threads[tid1] == "run:sort_pdm[1]"


class TestTruncatedTraces:
    def test_unclosed_spans_closed_and_tagged(self):
        events = [
            _begin(1, None, "root", 1.0),
            _begin(2, 1, "work", 2.0),
            _event(2, "io.read", 3.0),
            # killed: no end records
        ]
        doc = export_chrome_trace(events)
        spans = {ev["name"]: ev for ev in _by_ph(doc)["X"]}
        assert spans["root"]["args"] == {"truncated": True}
        assert spans["work"]["args"] == {"truncated": True}
        max_ts = 3.0 * 1e6
        assert spans["root"]["ts"] + spans["root"]["dur"] == pytest.approx(
            max_ts)
        assert spans["work"]["ts"] + spans["work"]["dur"] == pytest.approx(
            max_ts)

    def test_empty_trace_exports_metadata_only(self):
        doc = export_chrome_trace([])
        assert all(ev["ph"] == "M" for ev in doc["traceEvents"])
        assert doc["otherData"]["events"] == 0


class TestMetricsCounters:
    def test_numeric_leaves_become_one_counter_per_scope(self):
        metrics = {
            "pdm": {"read_ios": 10, "write_ios": 7, "label": "not-numeric"},
            "sort": {"levels": {"count": 2}},
            "scalar": 3,  # not a dict scope: skipped
        }
        doc = export_chrome_trace(_wall_trace(), metrics=metrics)
        counters = {ev["name"]: ev for ev in _by_ph(doc)["C"]}
        assert counters["metrics:pdm"]["args"] == {
            "read_ios": 10, "write_ios": 7}
        assert counters["metrics:sort"]["args"] == {"levels.count": 2}
        assert "metrics:scalar" not in counters


class TestWriteChromeTrace:
    def _write_gz_trace(self, path, events, torn=False):
        with gzip.open(path, "wt") as fh:
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
            if torn:
                fh.write('{"ev": "end", "span": 1')

    def test_round_trip_from_gz_file(self, tmp_path):
        trace = str(tmp_path / "t.jsonl.gz")
        out = str(tmp_path / "t.perfetto.json")
        self._write_gz_trace(trace, _wall_trace())
        doc = write_chrome_trace(trace, out)
        assert doc["otherData"]["source"] == trace
        on_disk = json.loads(open(out).read())
        assert on_disk == doc

    def test_torn_tail_forgiven(self, tmp_path):
        trace = str(tmp_path / "t.jsonl.gz")
        out = str(tmp_path / "t.json")
        self._write_gz_trace(trace, _wall_trace()[:3], torn=True)
        doc = write_chrome_trace(trace, out)
        spans = {ev["name"]: ev for ev in _by_ph(doc)["X"]}
        assert spans["root"]["args"] == {"truncated": True}


class TestCliExportTrace:
    """The acceptance criterion, end to end: a run's trace exports to a
    Perfetto-loadable trace-event JSON."""

    def _validate_trace_event_doc(self, doc):
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phs = set()
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            phs.add(ev["ph"])
            if ev["ph"] == "X":
                assert ev["dur"] >= 0 and "ts" in ev
        assert {"X", "M", "C"} <= phs

    def test_export_real_run_trace(self, capsys, tmp_path):
        from repro.cli import main

        trace = str(tmp_path / "t.jsonl.gz")
        rc = main(["sort", "--n", "1000", "--disks", "4",
                   "--trace-out", trace])
        capsys.readouterr()
        assert rc == 0
        out = str(tmp_path / "t.perfetto.json")
        rc = main(["export-trace", trace, "-o", out])
        captured = capsys.readouterr()
        assert rc == 0
        assert "perfetto" in captured.out
        doc = json.loads(open(out).read())
        self._validate_trace_event_doc(doc)
        assert doc["otherData"]["clock"] == "wall"

    def test_default_output_name_strips_suffixes(self, capsys, tmp_path):
        from repro.cli import main

        trace = str(tmp_path / "t.jsonl.gz")
        rc = main(["sort", "--n", "1000", "--disks", "4",
                   "--trace-out", trace])
        capsys.readouterr()
        assert rc == 0
        rc = main(["export-trace", trace])
        capsys.readouterr()
        assert rc == 0
        expected = str(tmp_path / "t.perfetto.json")
        doc = json.loads(open(expected).read())
        self._validate_trace_event_doc(doc)
