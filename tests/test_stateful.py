"""Hypothesis stateful tests: the engine and the allocator under random drives.

Rule-based state machines explore interleavings that fixed scenarios miss:
arbitrary feed sizes, partial drains, flush timing, mixed park/low
allocations with frees.  The invariants checked after every rule are the
paper's (Invariants 1–2, conservation, Theorem 4) plus simulator-integrity
properties (no double allocation, ledger balance).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro import workloads
from repro.core.balance import BalanceEngine
from repro.hierarchies import ParallelHierarchies, VirtualHierarchies
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys, make_records


class EngineMachine(RuleBasedStateMachine):
    """Drive a Balance engine with random feeds/drains; check the paper's
    invariants at every step."""

    def __init__(self):
        super().__init__()
        self.machine = ParallelDiskMachine(memory=1 << 17, block=2, disks=8)
        self.storage = VirtualDisks(self.machine, 4)
        keyspace = 1 << 20
        self.pivots = (
            np.sort(
                np.random.default_rng(0).integers(1, keyspace, size=5, dtype=np.uint64)
            )
            << np.uint64(24)
        )
        self.engine = BalanceEngine(self.storage, self.pivots, check_invariants=True)
        self.fed = 0
        self.rng = np.random.default_rng(1)
        self.flushed = False

    @precondition(lambda self: not self.flushed and self.fed < 3000)
    @rule(n=st.integers(1, 300), skew=st.sampled_from(["uniform", "one-bucket", "lanes"]))
    def feed(self, n, skew):
        if skew == "uniform":
            keys = self.rng.integers(0, 1 << 20, size=n, dtype=np.uint64)
        elif skew == "one-bucket":
            keys = self.rng.integers(0, 64, size=n, dtype=np.uint64)
        else:
            lane = np.arange(n, dtype=np.uint64) % 6
            keys = lane * np.uint64((1 << 20) // 6) + 1
        records = make_records(keys)
        records["rid"] += self.fed  # keep rids globally unique
        self.machine.mem_acquire(n)
        self.engine.feed(records)
        self.fed += n

    @rule(level=st.integers(0, 12))
    def drain(self, level):
        # safe after flush too: the queue is empty, so this is a no-op —
        # which also keeps at least one rule enabled in the final state
        self.engine.run_rounds(drain_below=level)

    @precondition(lambda self: not self.flushed)
    @rule()
    def flush(self):
        runs = self.engine.flush()
        self.flushed = True
        # conservation at the end of the pass
        assert sum(r.n_records for r in runs) == self.fed
        self.engine.matrices.check_invariant_2()
        assert self.engine.matrices.max_balance_factor() <= 2.5

    @invariant()
    def histogram_consistent(self):
        # X row sums equal placed blocks per bucket
        placed = self.engine.matrices.X.sum()
        assert placed == self.engine.stats.blocks_placed - 0  # all placements counted

    @invariant()
    def aux_entries_bounded(self):
        assert int(self.engine.matrices.A.max(initial=0)) <= 2


class AllocatorMachine(RuleBasedStateMachine):
    """Mixed park/low allocations and frees on the dual-ended pool."""

    def __init__(self):
        super().__init__()
        machine = ParallelHierarchies(8)
        self.vh = VirtualHierarchies(machine, 2)
        self.payload = make_records(np.arange(4, dtype=np.uint64))
        self.live: list = []

    @rule(park=st.booleans(), channel=st.integers(0, 1))
    def allocate(self, park, channel):
        addr = self.vh.parallel_write([(channel, self.payload)], park=park)[0]
        assert addr not in self.live, "double allocation"
        self.live.append(addr)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        self.vh.free([self.live.pop(idx)])

    @invariant()
    def no_shared_slots(self):
        slots = [(a.vdisk, a.slot) for a in self.live]
        assert len(set(slots)) == len(slots)

    @invariant()
    def all_live_blocks_readable(self):
        for a in self.live[-3:]:  # spot-check the most recent
            self.vh.peek(a)


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)

TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
