"""Tests for the [Arg] alternative auxiliary-matrix rule (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.core.aux_variants import ArgeBalanceMatrices, compute_aux_arge
from repro.core.balance import BalanceEngine
from repro.exceptions import InvariantViolation
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys


class TestComputeAuxArge:
    def test_zero_at_or_below_even_share(self):
        X = np.array([[2, 2, 2, 2]])  # even share = 2
        assert compute_aux_arge(X).tolist() == [[0, 0, 0, 0]]

    def test_two_above_twice_even_share(self):
        X = np.array([[9, 1, 1, 1]])  # total 12, even share ceil(12/4)=3
        aux = compute_aux_arge(X)
        assert aux[0, 0] == 2  # 9 > 6
        assert aux[0, 1] == 0

    def test_one_in_between(self):
        X = np.array([[5, 1, 1, 1]])  # even share 2; 2 < 5 <= ... 5 > 4 -> 2
        aux = compute_aux_arge(X)
        assert aux[0, 0] == 2
        X = np.array([[4, 2, 1, 1]])  # even share 2; 4 <= 4 -> 1
        aux = compute_aux_arge(X)
        assert aux[0, 0] == 1

    def test_empty_row(self):
        X = np.zeros((1, 4), dtype=np.int64)
        assert compute_aux_arge(X).tolist() == [[0, 0, 0, 0]]

    @given(
        st.lists(
            st.lists(st.integers(0, 30), min_size=4, max_size=4),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_marks_exactly_the_overloads(self, rows):
        X = np.array(rows)
        aux = compute_aux_arge(X)
        even = -(-X.sum(axis=1, keepdims=True) // X.shape[1])
        assert np.array_equal(aux == 2, X > 2 * even)
        assert np.array_equal(aux == 0, X <= even)


class TestArgeEngineRun:
    def _run(self, workload, seed):
        machine = ParallelDiskMachine(memory=65536, block=4, disks=16)
        storage = VirtualDisks(machine, 8)
        data = workloads.by_name(workload, 4000, seed=seed)
        ck = np.sort(composite_keys(data))
        pivots = ck[np.linspace(0, ck.size - 1, 9).astype(int)[1:-1]]
        engine = BalanceEngine(storage, pivots, matcher="greedy", check_invariants=False)
        engine.matrices = ArgeBalanceMatrices(engine.n_buckets, engine.n_channels)
        for i in range(0, data.shape[0], 512):
            part = data[i : i + 512]
            machine.mem_acquire(part.shape[0])
            engine.feed(part)
            engine.run_rounds(drain_below=16)
        engine.flush()
        return engine

    @pytest.mark.parametrize("workload", ["uniform", "adversarial_bucket_skew", "zipf"])
    def test_balance_within_factor_2(self, workload):
        engine = self._run(workload, seed=120)
        assert engine.matrices.max_balance_factor() <= 2.6

    def test_invariant_2_analogue(self):
        engine = self._run("adversarial_striping", seed=121)
        engine.matrices.check_invariant_2()  # nothing above 2x even share

    def test_conservation(self):
        engine = self._run("uniform", seed=122)
        assert engine.bucket_record_counts.sum() == 4000
