"""Tests for Greed Sort's approximate mode (the original NoV pipeline shape)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.baselines import greed_sort
from repro.core.streams import peek_run
from repro.exceptions import ParameterError
from repro.pdm import ParallelDiskMachine
from repro.util import assert_is_permutation, assert_sorted


def machine(M=512, B=4, D=8):
    return ParallelDiskMachine(memory=M, block=B, disks=D)


class TestApproximateMode:
    @pytest.mark.parametrize(
        "workload", ["uniform", "sorted", "reverse", "few_distinct", "zipf"]
    )
    def test_sorts_workloads(self, workload):
        m = machine()
        data = workloads.by_name(workload, 3000, seed=180)
        res = greed_sort(m, data, mode="approximate")
        out = peek_run(res.storage, res.output)
        assert_sorted(out, workload)
        assert_is_permutation(out, data, workload)
        assert m.memory_in_use == 0

    @pytest.mark.parametrize("d,b", [(2, 4), (8, 4), (32, 2)])
    def test_wide_configs(self, d, b):
        m = machine(D=d, B=b)
        data = workloads.uniform(6000, seed=181)
        res = greed_sort(m, data, mode="approximate")
        assert_sorted(peek_run(res.storage, res.output))

    def test_fallback_counter_exposed(self):
        m = machine()
        data = workloads.uniform(2000, seed=182)
        res = greed_sort(m, data, mode="approximate")
        assert res.cleanup_fallbacks >= 0  # counted (possibly zero)

    def test_bad_mode_rejected(self):
        m = machine()
        with pytest.raises(ParameterError):
            greed_sort(m, workloads.uniform(100, seed=0), mode="psychic")

    def test_exact_and_approximate_agree(self):
        data = workloads.uniform(4000, seed=183)
        m1, m2 = machine(), machine()
        out1 = peek_run(*(lambda r: (r.storage, r.output))(greed_sort(m1, data, mode="exact")))
        out2 = peek_run(*(lambda r: (r.storage, r.output))(greed_sort(m2, data, mode="approximate")))
        assert np.array_equal(out1["key"], out2["key"])
        assert np.array_equal(out1["rid"], out2["rid"])

    def test_deterministic(self):
        ios = []
        for _ in range(2):
            m = machine()
            res = greed_sort(m, workloads.uniform(3000, seed=184), mode="approximate")
            ios.append((res.total_ios, res.cleanup_fallbacks))
        assert ios[0] == ios[1]

    @given(st.integers(0, 10**6), st.integers(0, 3000))
    @settings(max_examples=6, deadline=None)
    def test_property_random_sizes(self, seed, n):
        m = machine()
        data = workloads.uniform(n, seed=seed)
        res = greed_sort(m, data, mode="approximate")
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)
        assert m.memory_in_use == 0
