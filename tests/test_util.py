"""Unit tests for order statistics, the pairwise space, and validators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.records import make_records
from repro.util import (
    PairwiseSpace,
    assert_is_permutation,
    assert_sorted,
    is_permutation,
    is_sorted,
    median_of_medians,
    next_prime,
    paper_median,
    select_kth,
)
from repro.util.order_stats import paper_median_rows


class TestPaperMedian:
    def test_odd_length(self):
        assert paper_median(np.array([5, 1, 3])) == 3

    def test_even_length_takes_lower_middle(self):
        # paper convention: ⌈4/2⌉ = 2nd smallest, not the average
        assert paper_median(np.array([1, 2, 3, 4])) == 2

    def test_single(self):
        assert paper_median(np.array([42])) == 42

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            paper_median(np.array([]))

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_matches_sorted_definition(self, xs):
        expected = sorted(xs)[(len(xs) + 1) // 2 - 1]
        assert paper_median(np.array(xs)) == expected


class TestSelectKth:
    def test_bounds(self):
        with pytest.raises(ValueError):
            select_kth(np.array([1, 2]), 0)
        with pytest.raises(ValueError):
            select_kth(np.array([1, 2]), 3)

    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=50),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_sort(self, xs, data):
        k = data.draw(st.integers(1, len(xs)))
        assert select_kth(np.array(xs), k) == sorted(xs)[k - 1]


class TestMedianOfMedians:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200), st.data())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_sort(self, xs, data):
        k = data.draw(st.integers(1, len(xs)))
        assert median_of_medians(xs, k) == sorted(xs)[k - 1]

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            median_of_medians([1, 2, 3], 4)


class TestPaperMedianRows:
    def test_rows(self):
        m = np.array([[3, 1, 2], [10, 10, 0]])
        assert paper_median_rows(m).tolist() == [2, 10]

    def test_even_row_width(self):
        m = np.array([[4, 1, 3, 2]])
        assert paper_median_rows(m).tolist() == [2]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            paper_median_rows(np.array([1, 2, 3]))


class TestPairwiseSpace:
    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 2
        assert next_prime(8) == 11
        assert next_prime(13) == 13
        assert next_prime(14) == 17

    def test_size(self):
        sp = PairwiseSpace(5)
        assert sp.p == 5
        assert sp.size == 25

    def test_evaluate_matches_formula(self):
        sp = PairwiseSpace(7)
        u = np.arange(7)
        assert np.array_equal(sp.evaluate(3, 2, u), (3 * u + 2) % 7)

    def test_evaluate_all_shape_and_agreement(self):
        sp = PairwiseSpace(5)
        u = np.array([0, 1, 4])
        table = sp.evaluate_all(u)
        assert table.shape == (5, 5, 3)
        for a in range(5):
            for b in range(5):
                assert np.array_equal(table[a, b], sp.evaluate(a, b, u))

    def test_pairwise_independence(self):
        # For fixed u1 != u2 and targets v1, v2, exactly one (a,b) pair maps
        # (u1 -> v1, u2 -> v2): the defining property of the family.
        sp = PairwiseSpace(5)
        u = np.array([1, 3])
        table = sp.evaluate_all(u)
        for v1 in range(5):
            for v2 in range(5):
                hits = np.sum((table[:, :, 0] == v1) & (table[:, :, 1] == v2))
                assert hits == 1

    def test_points_enumeration(self):
        sp = PairwiseSpace(3)
        pts = list(sp.points())
        assert len(pts) == 9
        assert pts[0] == (0, 0) and pts[-1] == (2, 2)


class TestValidators:
    def test_is_sorted_and_assert(self):
        r = make_records(np.array([1, 2, 3], dtype=np.uint64))
        assert is_sorted(r)
        assert_sorted(r)

    def test_not_sorted_message(self):
        r = make_records(np.array([3, 1], dtype=np.uint64))
        assert not is_sorted(r)
        with pytest.raises(AssertionError, match="inversion at index 0"):
            assert_sorted(r)

    def test_permutation_detects_key_swap(self):
        a = make_records(np.array([1, 2], dtype=np.uint64))
        b = a.copy()
        assert is_permutation(b, a)
        b["key"][0] = 99
        assert not is_permutation(b, a)
        with pytest.raises(AssertionError):
            assert_is_permutation(b, a)

    def test_permutation_allows_reorder(self):
        a = make_records(np.array([1, 2, 3], dtype=np.uint64))
        b = a[::-1].copy()
        assert is_permutation(b, a)

    def test_permutation_size_mismatch(self):
        a = make_records(np.array([1, 2], dtype=np.uint64))
        assert not is_permutation(a[:1], a)
