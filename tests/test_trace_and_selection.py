"""Tests for the trace tooling, selection pivots, write-width stats, and the
engine's no-progress (livelock) guard."""

import numpy as np
import pytest

from repro import workloads
from repro.analysis.trace import BalanceTracer, RoundSnapshot, render_matrix
from repro.core.balance import BalanceEngine
from repro.core.partition import pdm_partition_elements, selection_partition_elements
from repro.core.streams import load_ordered_run
from repro.exceptions import ParameterError
from repro.pdm import ParallelDiskMachine, VirtualDisks
from repro.records import composite_keys


def pivots_for(records, s):
    ck = np.sort(composite_keys(records))
    return ck[np.linspace(0, ck.size - 1, s + 1).astype(int)[1:-1]]


class TestTracer:
    def _run_traced(self, n=1200, chunk=32):
        machine = ParallelDiskMachine(memory=65536, block=4, disks=8)
        storage = VirtualDisks(machine, 4)
        data = workloads.adversarial_striping(n, seed=170, period=4)
        engine = BalanceEngine(storage, pivots_for(data, 4))
        tracer = BalanceTracer.attach(engine)
        for i in range(0, n, chunk):
            part = data[i : i + chunk]
            machine.mem_acquire(part.shape[0])
            engine.feed(part)
            engine.run_rounds(drain_below=0)
        engine.flush()
        return engine, tracer

    def test_snapshot_per_round(self):
        engine, tracer = self._run_traced()
        assert tracer.n_rounds == engine.stats.rounds
        assert all(isinstance(s, RoundSnapshot) for s in tracer.snapshots)

    def test_aux_always_binary_over_full_trace(self):
        _, tracer = self._run_traced()
        assert tracer.aux_always_binary()

    def test_worst_balance_factor_within_theorem4(self):
        _, tracer = self._run_traced()
        assert 1.0 <= tracer.worst_balance_factor() <= 2.5

    def test_swaps_per_round_sum(self):
        engine, tracer = self._run_traced()
        assert sum(tracer.swaps_per_round()) == engine.stats.blocks_swapped

    def test_summary_keys(self):
        _, tracer = self._run_traced(n=400)
        s = tracer.summary()
        assert set(s) == {
            "rounds", "worst_balance_factor", "total_swaps",
            "total_unprocessed", "aux_always_binary",
        }

    def test_histogram_snapshots_are_copies(self):
        engine, tracer = self._run_traced(n=400)
        tracer.snapshots[0].histogram[0, 0] = 999
        assert engine.matrices.X[0, 0] != 999

    def test_double_attach_returns_same_tracer(self):
        # Regression: attach() used to wrap _round a second time, silently
        # stacking observers and recording every round twice.
        machine = ParallelDiskMachine(memory=65536, block=4, disks=8)
        storage = VirtualDisks(machine, 4)
        data = workloads.adversarial_striping(400, seed=170, period=4)
        engine = BalanceEngine(storage, pivots_for(data, 4))
        t1 = BalanceTracer.attach(engine)
        t2 = BalanceTracer.attach(engine)
        assert t1 is t2
        machine.mem_acquire(400)
        engine.feed(data)
        engine.run_rounds(drain_below=0)
        engine.flush()
        assert t1.n_rounds == engine.stats.rounds  # no duplicate snapshots

    def test_tracer_coexists_with_obs(self):
        # The tracer rides the observer API, so it composes with attach_obs
        # without either seeing duplicated rounds.
        from repro.obs import Observation

        machine = ParallelDiskMachine(memory=65536, block=4, disks=8)
        storage = VirtualDisks(machine, 4)
        data = workloads.adversarial_striping(400, seed=171, period=4)
        engine = BalanceEngine(storage, pivots_for(data, 4))
        obs = Observation()
        engine.attach_obs(obs)
        tracer = BalanceTracer.attach(engine)
        machine.mem_acquire(400)
        engine.feed(data)
        engine.run_rounds(drain_below=0)
        engine.flush()
        assert tracer.n_rounds == engine.stats.rounds
        assert (
            obs.scope("balance").counter("rounds").value == engine.stats.rounds
        )


class TestRenderMatrix:
    def test_renders_zeros_as_dots(self):
        text = render_matrix(np.array([[0, 2], [1, 0]]))
        assert "·" in text
        assert "b0" in text and "b1" in text

    def test_row_and_column_sums(self):
        text = render_matrix(np.array([[1, 2], [3, 4]]))
        assert "| 3" in text  # row 0 sum
        assert text.splitlines()[-1].split() == ["4", "6"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_matrix(np.array([1, 2, 3]))

    def test_empty_matrix(self):
        text = render_matrix(np.zeros((0, 0), dtype=int))
        assert isinstance(text, str)  # degenerate input must not crash

    def test_single_row(self):
        text = render_matrix(np.array([[5, 0, 7]]))
        lines = text.splitlines()
        assert lines[0].startswith("b0 |")
        assert lines[0].rstrip().endswith("12")  # row sum
        assert lines[-1].split() == ["5", "0", "7"]  # column sums

    def test_no_bucket_labels_alignment(self):
        text = render_matrix(np.array([[1, 10], [100, 1]]), bucket_labels=False)
        lines = text.splitlines()
        assert not any(line.startswith("b0") for line in lines)
        # both body rows share the same width (aligned columns)
        assert len(lines[0]) == len(lines[1])


class TestSelectionPivots:
    def setup_io(self, n=3000, seed=171):
        machine = ParallelDiskMachine(memory=1024, block=4, disks=8)
        storage = VirtualDisks(machine, 2)
        data = workloads.by_name("zipf", n, seed=seed)
        run = load_ordered_run(storage, data)
        return machine, storage, data, run

    def test_identical_to_sorting_based_pivots(self):
        machine, storage, data, run = self.setup_io()
        p1 = pdm_partition_elements(machine, storage, run, 5, memoryload=512)
        machine2, storage2, _, run2 = self.setup_io()
        p2 = selection_partition_elements(machine2, storage2, run2, 5, memoryload=512)
        assert np.array_equal(p1, p2)

    def test_same_io_cost_different_cpu(self):
        machine, storage, data, run = self.setup_io()
        pdm_partition_elements(machine, storage, run, 5, memoryload=512)
        ios_sorting = machine.stats.total_ios

        machine2, storage2, _, run2 = self.setup_io()
        selection_partition_elements(machine2, storage2, run2, 5, memoryload=512)
        assert machine2.stats.total_ios == ios_sorting  # same streaming pass

    def test_parameter_validation(self):
        machine, storage, data, run = self.setup_io(n=200)
        with pytest.raises(ParameterError):
            selection_partition_elements(machine, storage, run, 1, memoryload=512)
        with pytest.raises(ParameterError):
            selection_partition_elements(machine, storage, run, 8, memoryload=16)


class TestWriteWidthStats:
    def test_no_writes_reports_zero_not_perfect(self):
        """0/0 full-stripe writes is 0.0: an empty run demonstrated no
        full-stripe behaviour and must not score a perfect 1.0 (the old
        behaviour, which let do-nothing runs top the Section-6 metric)."""
        from repro.pdm.machine import IOStats

        stats = IOStats()
        assert stats.write_ios == 0
        assert stats.write_width_fraction == 0.0
        assert stats.snapshot()["write_width_fraction"] == 0.0
        # A fresh machine (reads allowed, no writes) reports the same.
        m = ParallelDiskMachine(memory=64, block=2, disks=4)
        assert m.stats.write_width_fraction == 0.0

    def test_full_width_counted(self):
        from repro.records import make_records

        m = ParallelDiskMachine(memory=64, block=2, disks=4)
        from repro.pdm import BlockAddress

        blocks = [
            (BlockAddress(d, 0), make_records(np.arange(2, dtype=np.uint64)))
            for d in range(4)
        ]
        m.mem_acquire(8)
        m.write_blocks(blocks)
        assert m.stats.full_width_writes == 1
        assert m.stats.write_width_fraction == 1.0
        m.mem_acquire(2)
        m.write_blocks(blocks[:1])
        assert m.stats.full_width_writes == 1
        assert m.stats.write_width_fraction == 0.5

    def test_sorts_mostly_full_width(self):
        # The input/output streaming dominates: most write I/Os are full
        # stripes (the Section 6 ECC-friendliness observation).
        from repro.core.sort_pdm import balance_sort_pdm

        m = ParallelDiskMachine(memory=512, block=4, disks=8)
        balance_sort_pdm(m, workloads.uniform(8000, seed=172), check_invariants=False)
        assert m.stats.write_width_fraction > 0.5


class TestLivelockGuard:
    def test_run_rounds_terminates_at_any_drain_level(self):
        # Without the no-progress guard this configuration loops forever:
        # a single tail block whose placement creates a 2 below the
        # Rebalance threshold is re-queued indefinitely.
        machine = ParallelDiskMachine(memory=65536, block=4, disks=8)
        storage = VirtualDisks(machine, 4)
        data = workloads.adversarial_striping(64, seed=173, period=4)
        engine = BalanceEngine(storage, pivots_for(data, 4))
        machine.mem_acquire(64)
        engine.feed(data)
        engine.run_rounds(drain_below=0)  # must terminate
        assert engine.queued_blocks == 0
