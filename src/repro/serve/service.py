"""The sort service: an asyncio JSONL front-end over the exec layer.

``SortService`` binds a TCP port (``asyncio.start_server``; port 0 =
ephemeral) and speaks the one-JSON-object-per-line protocol of
:mod:`repro.serve.protocol`.  Many concurrent clients submit sort /
compare / hierarchy jobs; the service runs them through a
:class:`~repro.exec.JobRunner` with the full admission pipeline::

    draining? → quota (token bucket, new executions only) → coalesce /
    cache / bounded queue (deterministic load shedding) → execute →
    journal checkpoint → respond

Robustness properties, all testable deterministically:

* **Load shedding** — with a queue bound of Q, exactly the submissions
  beyond the Q active jobs receive ``repro.reject/1`` (reason
  ``queue_full``); an admitted job is never dropped: it completes,
  fails with a structured record, is cancelled on request, or — after a
  SIGTERM drain — is resumed from the journal by the next incarnation.
* **Coalescing** — the job id is the spec fingerprint, so identical
  in-flight submissions share one execution and warm specs are served
  straight from the content-hashed ResultCache.
* **Chaos drills** — attach a seeded ``FaultPlan`` to the runner and
  every response payload stays bit-identical to the fault-free serial
  sweep (``repro diff --threshold 0 --strict``), because payloads are
  pure functions of ``(task, params)`` and faults are pure functions of
  ``(plan, cell, attempt)``.
* **Graceful drain** — SIGTERM (wired by the CLI) stops accepting,
  waits up to ``drain_grace`` seconds for in-flight work, and exits;
  queued jobs stay ``admitted`` in the journal and are resubmitted on
  restart (``repro serve --journal DIR --resume``).

Observability: ``serve.*`` counters and a ``queue_depth`` gauge under
the obs registry, one ``serve.job`` span per executed job (request
timelines in ``repro export-trace``), a ``repro.serve/1`` structured
log (:class:`~repro.obs.telemetry.TelemetryWriter` JSONL), and the
``repro.serve_stats/1`` counter document for ``--stats-json``, the
run-history index, and the dashboard's service-health section.

Blocking-call note: admission touches the cache (one small JSON read)
and the journal (one fsynced append) on the event-loop thread.  Both
are tiny compared to a simulation and keep the service stdlib-only and
single-threaded on the control path — the documented trade.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from ..exec import JobRunner, RunSpec, task_names
from ..obs.telemetry import TelemetryWriter
from .protocol import (
    JOB_SCHEMA,
    REJECT_SCHEMA,
    SERVE_SCHEMA,
    SERVE_STATS_SCHEMA,
    job_record,
    reject,
    response,
)
from .quota import FairShareScheduler, TokenBucket

__all__ = ["SortService", "ServiceThread", "serve_in_thread"]

#: Longest accepted request line (bytes); longer lines are rejected.
LINE_LIMIT = 1 << 20

#: Statuses that end a job's life.
_TERMINAL = ("done", "failed", "cancelled")


class SortService:
    """One service instance wrapping a :class:`~repro.exec.JobRunner`.

    Parameters mirror the ``repro serve`` CLI surface; see the module
    docstring for semantics.  ``hold=True`` is the admission-only mode
    used by drain/resume drills and the deterministic shedding tests:
    jobs queue and journal but the execution driver never starts.
    """

    def __init__(
        self,
        runner: JobRunner,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        quota_burst: int | None = None,
        quota_rate: float = 0.0,
        obs=None,
        log_path: str | None = None,
        journal=None,
        resume: bool = False,
        drain_grace: float = 30.0,
        retry_after: float = 1.0,
        hold: bool = False,
        port_file: str | None = None,
    ):
        self.runner = runner
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.quota_burst = quota_burst
        self.quota_rate = quota_rate
        self.journal = journal
        self.resume = resume
        self.drain_grace = drain_grace
        self.retry_after = retry_after
        self.hold = hold
        self.port_file = port_file
        self._obs = obs
        self._scope = obs.scope("serve") if obs is not None else None
        self._log = TelemetryWriter(log_path, source="serve") if log_path else None
        self._buckets: dict[str, TokenBucket] = {}
        self._tenants: dict[str, dict] = {}
        self._waiters: dict[str, list] = {}
        self._spans: dict[str, object] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._drain_task = None
        self.draining = False
        self.drain_seconds: float | None = None
        self.resumed = 0
        self.started_at: float | None = None
        self._ready = threading.Event()
        #: Optional zero-arg callback invoked once the socket is bound
        #: (the CLI prints its "listening" line here).
        self.on_ready = None
        # Service-level counters (event-loop thread only).
        self.counters = {
            "requests": 0,
            "submitted": 0,
            "admitted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "shed": 0,
            "quota_rejected": 0,
            "bad_requests": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }
        runner.add_listener(self._on_job_transition)

    # ------------------------------------------------------------ plumbing

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        if self._scope is not None:
            self._scope.counter(name).inc(n)

    def _gauge_depth(self) -> None:
        if self._scope is not None:
            self._scope.gauge("queue_depth").set(self.runner.active_count())

    def _event(self, name: str, **fields) -> None:
        if self._obs is not None:
            self._obs.event(name, **fields)
        if self._log is not None:
            self._log.emit(name, **fields)

    def _tenant(self, doc: dict) -> str:
        tenant = doc.get("tenant")
        return tenant if isinstance(tenant, str) and tenant else "anon"

    def _tenant_count(self, tenant: str, name: str) -> None:
        bucket = self._tenants.setdefault(tenant, {})
        bucket[name] = bucket.get(name, 0) + 1

    # -------------------------------------------------- runner transitions

    def _on_job_transition(self, job, status: str) -> None:
        """Runner listener (driver thread, runner lock held): hop to the loop."""
        if status not in _TERMINAL:
            return
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._job_terminal, job.key, status)
        except RuntimeError:  # pragma: no cover - loop tearing down
            pass

    def _job_terminal(self, key: str, status: str) -> None:
        """Loop-thread bookkeeping for one finished job."""
        if status == "done":
            self._count("completed")
        elif status == "failed":
            self._count("failed")
        else:
            self._count("cancelled")
        span = self._spans.pop(key, None)
        if span is not None:
            span.__exit__(None, None, None)
        self._event("job_finish", key=key[:16], status=status)
        self._gauge_depth()
        for fut in self._waiters.pop(key, []):
            if not fut.done():
                fut.set_result(True)

    async def _wait_job(self, key: str, timeout: float | None):
        job = self.runner.poll(key)
        if job is None or job.terminal:
            return job
        fut = self._loop.create_future()
        self._waiters.setdefault(key, []).append(fut)
        try:
            await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            waiters = self._waiters.get(key, [])
            if fut in waiters:
                waiters.remove(fut)
        return self.runner.poll(key)

    # ----------------------------------------------------------- admission

    def _admit(self, doc: dict) -> dict:
        """The submit pipeline: drain → validate → quota → runner.submit."""
        if self.draining:
            return reject(
                "submit", "draining",
                "service is draining; resubmit to the next incarnation",
                retry_after=self.drain_grace,
            )
        task = doc.get("task")
        params = doc.get("params", {})
        if task not in task_names():
            self._count("bad_requests")
            return reject(
                "submit", "bad_request",
                f"unknown task {task!r} (expected one of {sorted(task_names())})",
            )
        if not isinstance(params, dict):
            self._count("bad_requests")
            return reject("submit", "bad_request", "params must be an object")
        spec = RunSpec(task, params)
        try:
            key = spec.fingerprint()
        except (TypeError, ValueError) as exc:
            self._count("bad_requests")
            return reject("submit", "bad_request", f"unfingerprintable params: {exc}")
        tenant = self._tenant(doc)
        self._count("submitted")
        self._tenant_count(tenant, "submitted")
        # Quotas charge only work that will consume execution capacity:
        # coalesced joins and warm cache hits are free.  All submissions
        # run on the loop thread, so probe → submit cannot interleave
        # with another admission.
        if self.quota_burst is not None and self.runner.probe(key) is None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.quota_burst, self.quota_rate
                )
            ok, retry = bucket.take(time.monotonic())
            if not ok:
                self._count("quota_rejected")
                self._tenant_count(tenant, "quota_rejected")
                self._event("quota_reject", tenant=tenant, key=key[:16])
                return reject(
                    "submit", "quota",
                    f"tenant {tenant!r} is out of quota "
                    f"(burst {self.quota_burst}, rate {self.quota_rate}/s)",
                    retry_after=retry,
                )
        job, disposition = self.runner.submit(
            spec, meta={"tenant": tenant}, limit=self.queue_limit
        )
        if disposition == "shed":
            self._count("shed")
            self._tenant_count(tenant, "shed")
            self._event("shed", tenant=tenant, key=key[:16])
            self._gauge_depth()
            return reject(
                "submit", "queue_full",
                f"admission queue is full ({self.queue_limit} active jobs)",
                retry_after=self.retry_after,
            )
        self._count(
            {"new": "admitted", "coalesced": "coalesced", "cached": "cache_hits"}[
                disposition
            ]
        )
        self._tenant_count(tenant, disposition)
        self._event(
            "admit", tenant=tenant, key=key[:16], disposition=disposition
        )
        self._gauge_depth()
        if disposition == "new" and self._obs is not None:
            span = self._obs.span("serve.job", key=key[:16], tenant=tenant)
            span.__enter__()
            self._spans[key] = span
        return response(
            "submit",
            job=job_record(job, disposition, include=doc.get("include", "result")),
        )

    # ------------------------------------------------------------ requests

    async def _handle_request(self, doc: dict) -> dict:
        self._count("requests")
        op = doc.get("op")
        if op == "submit":
            resp = self._admit(doc)
            if resp.get("ok") and doc.get("wait"):
                key = resp["job"]["id"]
                timeout = doc.get("timeout", 60.0)
                job = await self._wait_job(key, timeout)
                if job is not None:
                    resp["job"] = job_record(
                        job,
                        resp["job"].get("disposition"),
                        include=doc.get("include", "result"),
                    )
            return resp
        if op in ("poll", "wait", "cancel"):
            key = doc.get("id")
            if not isinstance(key, str):
                return reject(op, "bad_request", "missing job id")
            if op == "wait":
                job = await self._wait_job(key, doc.get("timeout", 60.0))
            elif op == "cancel":
                job = self.runner.cancel(key)
            else:
                job = self.runner.poll(key)
            if job is None:
                return reject(op, "unknown_job", f"no job {key[:16]}… on this service")
            return response(
                op, job=job_record(job, include=doc.get("include", "result"))
            )
        if op == "healthz":
            return response("healthz", health=self.healthz())
        if op == "readyz":
            ready, reason = self.readyz()
            return response("readyz", ready=ready, reason=reason)
        if op == "stats":
            return response("stats", stats=self.stats())
        if op == "drain":
            self.request_drain()
            return response("drain", draining=True, grace=self.drain_grace)
        self._count("bad_requests")
        return reject(str(op), "bad_request", f"unknown op {op!r}")

    async def _send(self, writer: asyncio.StreamWriter, doc: dict) -> None:
        writer.write(json.dumps(doc, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._count("bad_requests")
                    await self._send(
                        writer,
                        reject("?", "bad_request", "request line too long"),
                    )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    if not isinstance(doc, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    self._count("bad_requests")
                    await self._send(
                        writer, reject("?", "bad_request", f"bad request: {exc}")
                    )
                    continue
                try:
                    resp = await self._handle_request(doc)
                except Exception as exc:  # noqa: BLE001 - never kill the conn loop
                    resp = reject(
                        str(doc.get("op")), "bad_request",
                        f"{type(exc).__name__}: {exc}",
                    )
                await self._send(writer, resp)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass

    # -------------------------------------------------------------- probes

    def healthz(self) -> dict:
        """Liveness: the process is up; counters ride along."""
        return {
            "ok": True,
            "draining": self.draining,
            "uptime": (
                round(time.monotonic() - self.started_at, 3)
                if self.started_at is not None
                else None
            ),
            "counters": dict(self.counters),
            "cache": self.runner.cache.stats,
        }

    def readyz(self) -> tuple[bool, str]:
        """Readiness: accepting *and* able to make progress."""
        if self.draining:
            return False, "draining"
        if not self.runner.driver_alive:
            if self.runner.driver_error:
                return False, f"driver died: {self.runner.driver_error}"
            return False, "held" if self.hold else "driver not started"
        return True, "ok"

    def stats(self) -> dict:
        """The ``repro.serve_stats/1`` counter document."""
        doc = {
            "schema": SERVE_STATS_SCHEMA,
            "serve": {
                **self.counters,
                "queue_depth": self.runner.active_count(),
                "queue_limit": self.queue_limit,
                "quota_burst": self.quota_burst,
                "quota_rate": self.quota_rate,
                "draining": self.draining,
                "drain_seconds": self.drain_seconds,
                "resumed": self.resumed,
                "port": self.port,
            },
            "tenants": {t: dict(c) for t, c in sorted(self._tenants.items())},
            "runner": self.runner.stats,
        }
        if self.journal is not None:
            doc["journal"] = self.journal.stats
        return doc

    # ---------------------------------------------------------- lifecycle

    def resume_pending(self) -> int:
        """Resubmit every admitted-but-unfinished journalled job."""
        if self.journal is None:
            return 0
        resumed = 0
        for record in self.journal.pending_jobs():
            task = record.get("task")
            if task not in task_names():
                continue
            spec = RunSpec(task, dict(record.get("params") or {}))
            meta = dict(record.get("meta") or {})
            job, disposition = self.runner.submit(spec, meta=meta)
            resumed += 1
            self._event(
                "resume", key=job.key[:16], disposition=disposition,
                tenant=meta.get("tenant", "anon"),
            )
        self.resumed = resumed
        return resumed

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; loop thread only)."""
        if self._drain_task is None and self._loop is not None:
            self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        t0 = time.monotonic()
        self.draining = True
        self._event("drain_begin", active=self.runner.active_count())
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = t0 + self.drain_grace
        while time.monotonic() < deadline and self.runner.active_count() > 0:
            await asyncio.sleep(0.02)
        self.drain_seconds = round(time.monotonic() - t0, 3)
        self._event(
            "drain_end",
            seconds=self.drain_seconds,
            remaining=self.runner.active_count(),
        )
        if self._stopped is not None:
            self._stopped.set()

    def stop(self) -> None:
        """Stop serving without a drain (tests; loop thread only)."""
        if self._stopped is not None:
            self._stopped.set()

    async def run(self) -> None:
        """Bind, serve, and block until stopped or drained."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self.started_at = time.monotonic()
        if not self.hold:
            self.runner.start()
        if self.resume:
            self.resume_pending()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.host, port=self.port, limit=LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.port_file:
            with open(self.port_file, "w") as fh:
                fh.write(f"{self.port}\n")
        self._event(
            "serve_start",
            schema=SERVE_SCHEMA,
            host=self.host,
            port=self.port,
            queue_limit=self.queue_limit,
            quota_burst=self.quota_burst,
            quota_rate=self.quota_rate,
            hold=self.hold,
            resumed=self.resumed,
        )
        self._ready.set()
        if self.on_ready is not None:
            self.on_ready()
        try:
            await self._stopped.wait()
        finally:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            # End any job spans still open so the trace is well-formed.
            for key in list(self._spans):
                span = self._spans.pop(key)
                span.__exit__(None, None, None)
            self._event("serve_stop", counters=dict(self.counters))
            if self._log is not None:
                self._log.close()
            self._ready.clear()

    # ------------------------------------------------- cross-thread helpers

    def call_threadsafe(self, fn, *args) -> None:
        """Schedule ``fn(*args)`` on the service loop from any thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(fn, *args)


class ServiceThread:
    """Run a :class:`SortService` on a background thread (test harness)."""

    def __init__(self, service: SortService):
        self.service = service
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._error: BaseException | None = None

    def _run(self) -> None:
        try:
            asyncio.run(self.service.run())
        except BaseException as exc:  # pragma: no cover - surfaced on join
            self._error = exc

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        """Start the thread and wait until the service is listening."""
        self._thread.start()
        if not self.service._ready.wait(timeout):
            raise RuntimeError(f"service did not become ready: {self._error!r}")
        return self

    @property
    def port(self) -> int:
        return self.service.port

    def drain(self) -> None:
        """Request a graceful drain from any thread."""
        self.service.call_threadsafe(self.service.request_drain)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop without draining and join the thread."""
        self.service.call_threadsafe(self.service.stop)
        self.join(timeout)

    def join(self, timeout: float = 10.0) -> None:
        """Join the thread, re-raising any error the service hit."""
        self._thread.join(timeout)
        if self._error is not None:
            raise self._error


def serve_in_thread(service: SortService, timeout: float = 10.0) -> ServiceThread:
    """Start ``service`` on a daemon thread and wait until it is listening."""
    return ServiceThread(service).start(timeout)
