"""Sort-as-a-service: admission control over the deterministic exec layer.

The robustness shell that lets many concurrent clients hammer the
Nodine–Vitter reproduction engine without compromising its bit-identical
payload guarantees:

* :mod:`repro.serve.protocol` — the JSONL wire schemas
  (``repro.serve/1``, ``repro.reject/1``, ``repro.job/1``,
  ``repro.serve_stats/1``);
* :mod:`repro.serve.quota` — per-tenant token buckets and the
  fair-share scheduler hook;
* :mod:`repro.serve.service` — :class:`SortService`, the asyncio
  front-end (``repro serve``) with bounded admission, deterministic
  load shedding, request coalescing, graceful SIGTERM drain, and
  journal-backed resume;
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  client behind ``repro submit`` and the CI canary.

See ``docs/resilience.md`` ("Running as a service") for the lifecycle
and the chaos-drill walkthrough.
"""

from .client import Rejected, ServeClient, ServeError
from .protocol import (
    JOB_SCHEMA,
    REJECT_REASONS,
    REJECT_SCHEMA,
    SERVE_SCHEMA,
    SERVE_STATS_SCHEMA,
    job_record,
    reject,
    response,
)
from .quota import FairShareScheduler, TokenBucket
from .service import ServiceThread, SortService, serve_in_thread

__all__ = [
    "JOB_SCHEMA",
    "REJECT_REASONS",
    "REJECT_SCHEMA",
    "SERVE_SCHEMA",
    "SERVE_STATS_SCHEMA",
    "FairShareScheduler",
    "Rejected",
    "ServeClient",
    "ServeError",
    "ServiceThread",
    "SortService",
    "TokenBucket",
    "job_record",
    "reject",
    "response",
    "serve_in_thread",
]
