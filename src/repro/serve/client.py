"""A minimal blocking JSONL client for the sort service.

Used by ``repro submit`` (and the CI smoke) so nothing hand-rolls
sockets: one connection, one JSON object per line each way.  The client
honours ``repro.reject/1`` responses — :meth:`submit_admitted` backs off
by the server's ``retry_after`` hint and retries until admitted (or the
bounded retry budget runs out), which is what lets a canary loop hammer
a quota-limited, load-shedding service and still account for every job.
"""

from __future__ import annotations

import json
import socket
import time

from .protocol import REJECT_SCHEMA

__all__ = ["ServeClient", "ServeError", "Rejected"]


class ServeError(RuntimeError):
    """Transport-level failure talking to the service."""


class Rejected(RuntimeError):
    """A request was refused (``repro.reject/1``) beyond the retry budget."""

    def __init__(self, doc: dict):
        super().__init__(doc.get("message", doc.get("reason", "rejected")))
        self.doc = doc

    @property
    def reason(self) -> str:
        return self.doc.get("reason", "")


class ServeClient:
    """One connection to a :class:`~repro.serve.SortService`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant: str = "anon",
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._fh = None
        #: Client-side accounting (the ``repro submit`` stats surface).
        self.counters = {
            "requests": 0,
            "rejects": 0,
            "reject_retries": 0,
        }

    # -------------------------------------------------------------- wiring

    def connect(self) -> "ServeClient":
        """Open the TCP connection (idempotent); returns ``self``."""
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                raise ServeError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
            self._fh = self._sock.makefile("rw", encoding="utf-8", newline="\n")
        return self

    def close(self) -> None:
        """Close the connection (safe to call twice or never-opened)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - peer already gone
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(self, doc: dict) -> dict:
        """One request → one response (raises :class:`ServeError` on EOF)."""
        self.connect()
        self.counters["requests"] += 1
        try:
            self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
            self._fh.flush()
            line = self._fh.readline()
        except OSError as exc:
            raise ServeError(f"service connection failed: {exc}") from exc
        if not line:
            raise ServeError("service closed the connection")
        resp = json.loads(line)
        if resp.get("schema") == REJECT_SCHEMA:
            self.counters["rejects"] += 1
        return resp

    # ----------------------------------------------------------------- ops

    def submit(
        self,
        task: str,
        params: dict,
        wait: bool = False,
        include: str = "result",
        timeout: float | None = None,
    ) -> dict:
        """One ``submit`` request; returns the raw response document."""
        doc = {
            "op": "submit",
            "task": task,
            "params": params,
            "tenant": self.tenant,
            "wait": wait,
            "include": include,
        }
        if timeout is not None:
            doc["timeout"] = timeout
        return self.request(doc)

    def submit_admitted(
        self,
        task: str,
        params: dict,
        wait: bool = False,
        include: str = "result",
        timeout: float | None = None,
        retries: int = 50,
        max_sleep: float = 2.0,
    ) -> dict:
        """Submit, honouring reject retry-after hints, until admitted.

        Raises :class:`Rejected` once ``retries`` refusals have been
        absorbed — a shed or quota'd job is *never* silently dropped on
        the client side either.
        """
        attempt = 0
        while True:
            resp = self.submit(
                task, params, wait=wait, include=include, timeout=timeout
            )
            if resp.get("ok"):
                return resp
            if attempt >= retries:
                raise Rejected(resp)
            attempt += 1
            self.counters["reject_retries"] += 1
            time.sleep(min(resp.get("retry_after", 0.1) or 0.1, max_sleep))

    def poll(self, job_id: str, include: str = "result") -> dict:
        """Fetch a job record without waiting."""
        return self.request({"op": "poll", "id": job_id, "include": include})

    def wait(
        self, job_id: str, timeout: float = 60.0, include: str = "result"
    ) -> dict:
        """Block server-side until the job is terminal (or ``timeout``)."""
        return self.request(
            {"op": "wait", "id": job_id, "timeout": timeout, "include": include}
        )

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued (or best-effort a running) job."""
        return self.request({"op": "cancel", "id": job_id})

    def healthz(self) -> dict:
        """Liveness probe (always ``ok`` while the process serves)."""
        return self.request({"op": "healthz"})

    def readyz(self) -> dict:
        """Readiness probe (false while draining/held, with the reason)."""
        return self.request({"op": "readyz"})

    def stats(self) -> dict:
        """The ``repro.serve_stats/1`` counter document."""
        return self.request({"op": "stats"})

    def drain(self) -> dict:
        """Ask the service to begin a graceful drain."""
        return self.request({"op": "drain"})
