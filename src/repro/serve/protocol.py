"""The sort-as-a-service wire protocol: JSONL requests over one socket.

Every request is one JSON object on one line; every response is one JSON
object on one line, stamped with a schema tag so ``repro diff`` can gate
it like any other result surface:

* ``repro.serve/1`` — an accepted operation's response envelope;
* ``repro.reject/1`` — a 429-style refusal (load shed, quota, drain,
  malformed request) carrying a ``retry_after`` hint in seconds;
* ``repro.job/1`` — a job-status record embedded in responses (the job
  id is the spec's content fingerprint, so identical submissions from
  different clients name the same job);
* ``repro.serve_stats/1`` — the service counter document (``stats`` op,
  ``--stats-json``, and the run-history/dashboard ingest surface).

Operations: ``submit`` (task + params, optional ``wait``), ``poll`` /
``wait`` / ``cancel`` (by job id), ``healthz`` / ``readyz`` / ``stats``
/ ``drain``.  Responses to ``submit`` carry a ``disposition`` —
``new`` (admitted), ``coalesced`` (joined an in-flight twin), or
``cached`` (served from the content-hashed ResultCache) — which is how
tests and CI assert admission behaviour without scraping logs.
"""

from __future__ import annotations

__all__ = [
    "SERVE_SCHEMA",
    "REJECT_SCHEMA",
    "JOB_SCHEMA",
    "SERVE_STATS_SCHEMA",
    "REJECT_REASONS",
    "OPS",
    "job_record",
    "response",
    "reject",
]

SERVE_SCHEMA = "repro.serve/1"
REJECT_SCHEMA = "repro.reject/1"
JOB_SCHEMA = "repro.job/1"
SERVE_STATS_SCHEMA = "repro.serve_stats/1"

#: The operations a client may request.
OPS = ("submit", "poll", "wait", "cancel", "healthz", "readyz", "stats", "drain")

#: Why a request can be refused (the ``reason`` field of a reject).
REJECT_REASONS = ("queue_full", "quota", "draining", "bad_request", "unknown_job")


def job_record(job, disposition: str | None = None, include: str = "result") -> dict:
    """The ``repro.job/1`` status record for one runner job.

    ``include`` controls how much of a finished payload rides along:
    ``"status"`` (none), ``"result"`` (the task's result summary —
    the default), or ``"payload"`` (the full payload, for bit-identity
    gates).  Failure records always include the structured error.
    """
    record: dict = {
        "schema": JOB_SCHEMA,
        "id": job.key,
        "task": job.spec.task,
        "status": job.status,
        "attempts": job.attempt + (1 if job.status != "queued" else 0),
        "cached": job.cached,
    }
    tenant = (job.meta or {}).get("tenant")
    if tenant is not None:
        record["tenant"] = tenant
    if disposition is not None:
        record["disposition"] = disposition
    payload = job.payload
    if payload is not None:
        if job.status == "failed":
            record["error"] = payload.get("error")
            record["failure"] = payload
        elif job.status == "done" and include == "result":
            record["result"] = payload.get("result")
        elif job.status == "done" and include == "payload":
            record["payload"] = payload
    return record


def response(op: str, **fields) -> dict:
    """A ``repro.serve/1`` success envelope."""
    doc = {"schema": SERVE_SCHEMA, "ok": True, "op": op}
    doc.update(fields)
    return doc


def reject(op: str, reason: str, message: str, retry_after: float | None = None) -> dict:
    """A ``repro.reject/1`` refusal with an optional retry-after hint."""
    doc: dict = {
        "schema": REJECT_SCHEMA,
        "ok": False,
        "op": op,
        "reason": reason,
        "message": message,
    }
    if retry_after is not None:
        doc["retry_after"] = round(float(retry_after), 3)
    return doc
