"""Per-tenant admission quotas and fair-share scheduling.

Two small deterministic mechanisms keep one tenant from starving the
rest of a shared sort service:

* :class:`TokenBucket` — the classic burst + refill-rate quota, charged
  only for submissions that will consume execution capacity (coalesced
  joins and warm cache hits are free).  With ``rate=0`` the bucket never
  refills, which is what makes quota tests exact: a tenant gets
  precisely ``burst`` new executions, then deterministic rejects.
* :class:`FairShareScheduler` — a pick-next hook for
  :class:`~repro.exec.JobRunner` that round-robins across the tenants
  with runnable jobs (FIFO within a tenant, ties broken by tenant name),
  so a tenant with one job never waits behind another tenant's backlog.
"""

from __future__ import annotations

import time

__all__ = ["TokenBucket", "FairShareScheduler"]


class TokenBucket:
    """A deterministic token bucket: ``burst`` capacity, ``rate`` tokens/s.

    :meth:`take` is driven by an explicit clock value so the service (and
    tests) control time; the returned ``retry_after`` is the seconds
    until one full token will have accrued (None when ``rate=0`` —
    the bucket will never refill).
    """

    def __init__(self, burst: int, rate: float = 0.0):
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.burst = int(burst)
        self.rate = float(rate)
        self.tokens = float(burst)
        self._updated: float | None = None

    def take(self, now: float | None = None) -> tuple[bool, float | None]:
        """Try to spend one token; ``(ok, retry_after_seconds_or_None)``."""
        if now is None:
            now = time.monotonic()
        if self._updated is None:
            self._updated = now
        if self.rate > 0 and now > self._updated:
            self.tokens = min(
                float(self.burst), self.tokens + (now - self._updated) * self.rate
            )
        self._updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, None
        if self.rate <= 0:
            return False, None
        return False, (1.0 - self.tokens) / self.rate


class FairShareScheduler:
    """Round-robin across tenants; FIFO within one tenant.

    Instances are stateful (they remember which tenant went last) and are
    only ever called from the runner's driver thread, so no locking is
    needed.  Jobs without a tenant annotation share the ``"anon"`` lane.
    """

    def __init__(self):
        self._served: dict[str, int] = {}
        self._turn = 0

    def __call__(self, ready):
        by_tenant: dict[str, list] = {}
        for job in ready:  # ready arrives in admission (seq) order
            tenant = (job.meta or {}).get("tenant", "anon")
            by_tenant.setdefault(tenant, []).append(job)
        tenant = min(
            by_tenant, key=lambda t: (self._served.get(t, -1), t)
        )
        self._turn += 1
        self._served[tenant] = self._turn
        return by_tenant[tenant][0]
