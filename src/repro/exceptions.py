"""Exception hierarchy for the Balance Sort reproduction.

Every machine simulator in this package *enforces* its model's rules (one
block per disk per I/O, internal-memory capacity, EREW access exclusivity,
hypercube adjacency, ...) rather than trusting callers.  Violations raise
subclasses of :class:`ModelViolation` so tests can assert that illegal
schedules are rejected, not silently mis-counted.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ModelViolation(ReproError):
    """An operation violated the rules of the machine model being simulated."""


class DiskContentionError(ModelViolation):
    """More than one block was addressed to a single disk in one parallel I/O."""


class CapacityError(ModelViolation):
    """Internal memory (or a storage region) would exceed its capacity."""


class AddressError(ModelViolation):
    """An address is outside the allocated region or misaligned to a block."""


class ConcurrencyViolation(ModelViolation):
    """An EREW PRAM step attempted concurrent access to one memory cell."""


class TopologyError(ModelViolation):
    """A message was sent between processors that are not adjacent."""


class InvariantViolation(ReproError):
    """A Balance Sort invariant (Invariant 1 or 2 of the paper) failed."""


class ParameterError(ReproError, ValueError):
    """Machine or algorithm parameters are out of the model's legal range."""


class BlockCorruptionError(ReproError):
    """A stored block's content no longer matches its recorded checksum.

    Raised by the checksum-enabled block stores (:mod:`repro.pdm.store`)
    when a read or peek observes bit rot — in practice, a ``corrupt``-mode
    fault injected by a :class:`~repro.resilience.FaultPlan`.  The failed
    operation has **no partial effects**: a fused ``read(free=True)`` that
    detects corruption frees nothing, on either backend.
    """


class ResilienceError(ReproError):
    """Base class for the fault-injection / recovery subsystem errors."""


class InjectedFault(ResilienceError):
    """Base class for faults fired deterministically by a FaultPlan."""


class InjectedIOError(InjectedFault):
    """A deterministically injected (transient or permanent) I/O failure."""


class InjectedWorkerCrash(InjectedFault):
    """Serial-mode surrogate for a worker-process crash.

    In process-pool mode a ``crash``-effect fault calls ``os._exit`` in
    the worker (the real thing — the parent sees ``BrokenProcessPool``);
    in serial mode the same plan raises this instead so serial and pool
    sweeps converge on identical retry behaviour.
    """


class PoisonedPayloadError(ResilienceError):
    """A worker returned a payload that failed schema/shape validation."""


class TaskTimeout(ResilienceError):
    """A grid cell exceeded the runner's per-task timeout."""
