"""Command-line interface: run sorts and comparisons without writing code.

Examples::

    python -m repro sort --n 20000 --memory 1024 --block 4 --disks 8
    python -m repro sort --n 20000 --emit-json report.json --trace-out trace.jsonl
    python -m repro sort --n 20000 --matcher randomized --workload zipf
    python -m repro compare --n 20000 --memory 512 --block 4 --disks 8
    python -m repro sweep --task sort --n 4000,16000 --disks 4,8 --jobs 4
    python -m repro sweep --task compare --n 24000 --cache-dir .repro-cache
    python -m repro hierarchy --n 8000 --h 64 --model bt --cost 0.5
    python -m repro report trace.jsonl
    python -m repro audit --n 20000 --disks 8
    python -m repro audit --target hierarchy --n 8000 --h 64 --model bt
    python -m repro profile trace.jsonl.gz --top 10
    python -m repro diff results/a.json results/b.json --threshold 2.0
    python -m repro workloads

Every command prints an aligned table (the same formatter the benchmark
harness uses) plus the Theorem 1/2/3 reference bound where applicable, and
verifies the output before reporting.  ``--emit-json`` writes the
machine-readable :class:`~repro.obs.RunReport` (``-`` = stdout, suppressing
the human table), ``--trace-out`` streams the span/event trace as JSONL,
and ``repro report <trace.jsonl>`` summarizes a saved trace offline — see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import workloads
from .analysis import bounds
from .analysis.reporting import Table
from .baselines import (
    greed_sort,
    randomized_distribution_sort,
    striped_merge_sort,
)
from .core.sort_hierarchy import balance_sort_hierarchy
from .core.sort_pdm import balance_sort_pdm
from .core.streams import peek_run
from .hierarchies import LogCost, ParallelHierarchies, PowerCost, UMHCost
from .obs import (
    NULL_TRACER,
    MemoryTelemetry,
    Observation,
    RunReport,
    TheoryAuditor,
    diff_runs,
    memory_telemetry_enabled,
    peak_rss_kb,
    profile_trace,
    render_profile,
    render_report,
    summarize_trace,
)
from .pdm import ParallelDiskMachine
from .util import assert_is_permutation, assert_sorted

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Balance Sort (Nodine & Vitter, SPAA'93) — simulators and sorts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_args(p):
        p.add_argument("--n", type=int, default=20_000, help="records to sort")
        p.add_argument("--memory", type=int, default=1024, help="M: records in internal memory")
        p.add_argument("--block", type=int, default=4, help="B: records per block")
        p.add_argument("--disks", type=int, default=8, help="D: number of disks")
        p.add_argument("--workload", default="uniform", choices=sorted(workloads.GENERATORS))
        p.add_argument("--seed", type=int, default=0)

    def add_obs_args(p):
        p.add_argument(
            "--emit-json", metavar="PATH", default=None,
            help="write the machine-readable run report as JSON ('-' = stdout, "
                 "suppresses the table)",
        )
        p.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="stream the span/event trace to a JSONL file (see `repro report`)",
        )

    p_sort = sub.add_parser("sort", help="Balance Sort on the parallel disk model")
    add_machine_args(p_sort)
    add_obs_args(p_sort)
    p_sort.add_argument(
        "--matcher", default="derandomized",
        choices=["derandomized", "randomized", "greedy", "mincost"],
    )
    p_sort.add_argument("--processors", type=int, default=1, help="P: CPUs")
    p_sort.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress informational stderr chatter (the [io-plan] "
             "summary line); chatter is also withheld when stderr is "
             "not a terminal",
    )
    p_sort.add_argument("--buckets", type=int, default=None, help="override S")
    p_sort.add_argument("--virtual-disks", type=int, default=None, help="override D'")

    p_cmp = sub.add_parser("compare", help="all four PDM algorithms side by side")
    add_machine_args(p_cmp)
    add_obs_args(p_cmp)

    p_h = sub.add_parser("hierarchy", help="Balance Sort on P-HMM / P-BT / P-UMH")
    p_h.add_argument("--n", type=int, default=8_000)
    p_h.add_argument("--h", type=int, default=64, help="H: number of hierarchies")
    p_h.add_argument("--model", default="hmm", choices=["hmm", "bt", "umh"])
    p_h.add_argument("--cost", default="log",
                     help="'log', 'umh', or a float exponent alpha for x^alpha")
    p_h.add_argument("--interconnect", default="pram", choices=["pram", "hypercube"])
    p_h.add_argument("--workload", default="uniform", choices=sorted(workloads.GENERATORS))
    p_h.add_argument("--seed", type=int, default=0)
    add_obs_args(p_h)

    def add_grid_args(p):
        """The sweep-grid surface, shared by ``sweep`` and ``bench record``."""
        p.add_argument(
            "--task", default="sort", choices=["sort", "compare", "hierarchy"],
            help="which registered task each grid cell runs",
        )
        for name, default, help_text in [
            ("--n", "8000", "records to sort (comma list sweeps the axis)"),
            ("--memory", "512", "M: records in internal memory (comma list)"),
            ("--block", "4", "B: records per block (comma list)"),
            ("--disks", "8", "D: number of disks (comma list)"),
            ("--seed", "0", "workload seed (comma list)"),
        ]:
            p.add_argument(name, default=default, help=help_text)
        p.add_argument("--workload", default="uniform",
                       help="workload generator name (comma list)")
        p.add_argument("--matcher", default="derandomized",
                       help="[sort] rebalancing matcher (comma list)")
        p.add_argument("--buckets", type=int, default=None, help="[sort] override S")
        p.add_argument("--virtual-disks", type=int, default=None,
                       help="[sort/compare balance] override D'")
        p.add_argument("--verify", action="store_true",
                       help="[sort] verify each cell's output (extra reads)")
        p.add_argument("--algorithms", default="balance,greed,randomized,striped",
                       help="[compare] algorithms to run (comma list)")
        p.add_argument("--h", default="64", help="[hierarchy] H (comma list)")
        p.add_argument("--model", default="hmm",
                       help="[hierarchy] hmm/bt/umh (comma list)")
        p.add_argument("--cost", default="log",
                       help="[hierarchy] 'log', 'umh', or a float exponent")
        p.add_argument("--interconnect", default="pram",
                       help="[hierarchy] pram/hypercube (comma list)")
        p.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes (default: serial; 0/1 = serial in-process)",
        )

    p_sw = sub.add_parser(
        "sweep",
        help="run a parameter grid (optionally sharded across cores and cached)",
    )
    add_grid_args(p_sw)
    p_sw.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-hashed result cache directory (hits skip simulation)",
    )
    p_sw.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per cell after the first (default 0: fail fast "
             "into a structured repro.failures/1 record)",
    )
    p_sw.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget (pool mode; a hung worker "
             "triggers a pool rebuild and the cell is charged a retry)",
    )
    p_sw.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="deterministic exponential backoff base: attempt k sleeps "
             "backoff*2^k before retrying (default 0.05)",
    )
    p_sw.add_argument(
        "--backoff-max", type=float, default=5.0, metavar="SECONDS",
        help="cap on the cumulative backoff sleep per cell (default 5.0), "
             "so permanent-fault plans with deep retry budgets cannot "
             "stall the sweep unboundedly; negative disables the cap",
    )
    p_sw.add_argument(
        "--fault-plan", default=None, metavar="PATH|JSON",
        help="seeded chaos plan (repro.fault_plan/1 JSON file, or inline "
             "JSON starting with '{'); see docs/resilience.md",
    )
    p_sw.add_argument(
        "--journal", default=None, metavar="DIR",
        help="checkpoint completed cells to DIR (journal.jsonl + payload "
             "store) so --resume re-executes only the missing ones",
    )
    p_sw.add_argument(
        "--resume", action="store_true",
        help="serve cells already completed in --journal DIR from the "
             "checkpoint (grid fingerprint must match)",
    )
    p_sw.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="stream repro.progress/1 live-progress events to PATH "
             "(line-buffered JSONL; tail it with `repro top PATH`)",
    )
    p_sw.add_argument(
        "--live", action="store_true",
        help="render an in-place live progress view on stderr (uses "
             "--telemetry PATH if given, else a temporary stream)",
    )
    p_sw.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write the runner/journal stats (the stderr summary table) "
             "as JSON to PATH ('-' = stdout)",
    )
    add_obs_args(p_sw)

    p_srv = sub.add_parser(
        "serve",
        help="run the sort service: JSONL-over-TCP jobs through the exec "
             "layer with admission control, quotas, and graceful drain",
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; see --port-file)",
    )
    p_srv.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH once listening (readiness "
             "signal for scripts and CI)",
    )
    p_srv.add_argument(
        "--queue", type=int, default=64, metavar="Q",
        help="bounded admission queue: submissions beyond Q active jobs "
             "are shed with a repro.reject/1 response (default 64)",
    )
    p_srv.add_argument(
        "--quota-burst", type=int, default=None, metavar="N",
        help="per-tenant token-bucket burst: each tenant may have N new "
             "executions outstanding before quota rejects (default: no "
             "quotas; coalesced and cached submissions are never charged)",
    )
    p_srv.add_argument(
        "--quota-rate", type=float, default=0.0, metavar="PER_SEC",
        help="token refill rate per tenant (default 0 = no refill, "
             "which makes quota tests exact)",
    )
    p_srv.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: serial in-process driver)",
    )
    p_srv.add_argument("--retries", type=int, default=0,
                       help="extra attempts per job after the first")
    p_srv.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-attempt budget (pool mode; hung workers "
                            "trigger a pool rebuild)")
    p_srv.add_argument("--backoff", type=float, default=0.05, metavar="SECONDS",
                       help="deterministic exponential backoff base")
    p_srv.add_argument("--backoff-max", type=float, default=5.0,
                       metavar="SECONDS",
                       help="cumulative backoff cap per job (negative "
                            "disables)")
    p_srv.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-hashed result cache (warm hits answer instantly; "
             "defaults to the journal's cells/ store when --journal is set)",
    )
    p_srv.add_argument(
        "--journal", default=None, metavar="DIR",
        help="job-granular checkpoint log: admitted jobs survive SIGTERM "
             "and are resubmitted by `repro serve --resume`",
    )
    p_srv.add_argument(
        "--resume", action="store_true",
        help="resubmit the journal's admitted-but-unfinished jobs on start",
    )
    p_srv.add_argument(
        "--fault-plan", default=None, metavar="PATH|JSON",
        help="live chaos drill: seeded faults injected into the running "
             "service (responses stay bit-identical; docs/resilience.md)",
    )
    p_srv.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="SIGTERM drain: stop accepting, wait this long for in-flight "
             "jobs, then exit (queued jobs resume via the journal)",
    )
    p_srv.add_argument(
        "--hold", action="store_true",
        help="admission-only mode: queue and journal jobs without starting "
             "the execution driver (drain/resume and shedding drills)",
    )
    p_srv.add_argument(
        "--log", default=None, metavar="PATH",
        help="append repro.serve/1 structured lifecycle events as JSONL",
    )
    p_srv.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="stream serve.job spans + serve.* events to a JSONL trace "
             "(request timelines via `repro export-trace`)",
    )
    p_srv.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write the repro.serve_stats/1 counter document on exit "
             "('-' = stdout)",
    )

    p_sub = sub.add_parser(
        "submit",
        help="submit a parameter grid to a running `repro serve` instance "
             "(the CLI client used by tests and CI)",
    )
    add_grid_args(p_sub)
    p_sub.add_argument("--host", default="127.0.0.1", help="service address")
    p_sub.add_argument("--port", type=int, required=True, help="service port")
    p_sub.add_argument("--tenant", default="anon", help="quota/fair-share lane")
    p_sub.add_argument(
        "--wait-timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-job completion wait budget (default 120)",
    )
    p_sub.add_argument(
        "--submit-retries", type=int, default=50, metavar="N",
        help="how many repro.reject/1 refusals to absorb per job "
             "(honouring retry-after hints) before giving up",
    )
    p_sub.add_argument(
        "--no-wait", action="store_true",
        help="enqueue only: exit after admission without waiting for "
             "completion (drain/resume drills; jobs finish server-side)",
    )
    p_sub.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write client + service counters as JSON ('-' = stdout), "
             "parity with `repro sweep --stats-json`",
    )
    add_obs_args(p_sub)

    p_rep = sub.add_parser("report", help="summarize a saved JSONL trace")
    p_rep.add_argument("trace",
                       help="path to a trace.jsonl[.gz] written with --trace-out")
    p_rep.add_argument(
        "--emit-json", metavar="PATH", default=None,
        help="also write the summary as JSON ('-' = stdout, suppresses the tables)",
    )

    p_audit = sub.add_parser(
        "audit",
        help="run a sort and score it against the paper's bounds "
             "(Theorems 1-4, Invariants 1 & 2); exit 1 on any violation",
    )
    p_audit.add_argument("--target", default="pdm", choices=["pdm", "hierarchy"])
    add_machine_args(p_audit)
    p_audit.add_argument(
        "--matcher", default="derandomized",
        choices=["derandomized", "randomized", "greedy", "mincost"],
    )
    p_audit.add_argument("--processors", type=int, default=1, help="[pdm] P: CPUs")
    p_audit.add_argument("--buckets", type=int, default=None, help="[pdm] override S")
    p_audit.add_argument("--virtual-disks", type=int, default=None,
                         help="[pdm] override D'")
    p_audit.add_argument("--h", type=int, default=64, help="[hierarchy] H")
    p_audit.add_argument("--model", default="hmm", choices=["hmm", "bt", "umh"],
                         help="[hierarchy] machine model")
    p_audit.add_argument("--cost", default="log",
                         help="[hierarchy] 'log', 'umh', or a float exponent alpha")
    p_audit.add_argument("--interconnect", default="pram",
                         choices=["pram", "hypercube"], help="[hierarchy]")
    p_audit.add_argument(
        "--theorem4-limit", type=float, default=2.0,
        help="max allowed read-parallelism balance factor (Theorem 4; default 2.0)",
    )
    add_obs_args(p_audit)

    p_prof = sub.add_parser(
        "profile",
        help="profile a saved trace: hotspot self-times, critical path, "
             "I/O round-trip attribution",
    )
    p_prof.add_argument("trace", help="path to a trace.jsonl[.gz]")
    p_prof.add_argument("--top", type=int, default=None,
                        help="show only the top-K hotspots (default: all)")
    p_prof.add_argument("--bins", type=int, default=20,
                        help="utilization-timeline resolution (default 20)")
    p_prof.add_argument(
        "--emit-json", metavar="PATH", default=None,
        help="write the profile as JSON ('-' = stdout, suppresses the tables)",
    )
    p_prof.add_argument(
        "--memory", metavar="PATH", default=None,
        help="attach a memory-telemetry snapshot (a sweep --stats-json "
             "file, or any JSON dict of gauges) to the profile",
    )

    p_diff = sub.add_parser(
        "diff",
        help="diff two JSON run documents (reports, bench sidecars, "
             "summaries) with relative thresholds; exit 1 past threshold",
    )
    p_diff.add_argument("a", help="baseline JSON document")
    p_diff.add_argument("b", help="candidate JSON document")
    p_diff.add_argument(
        "--threshold", type=float, default=0.0,
        help="default allowed relative increase (0.0 = bit-identical numbers; "
             "2.0 allows up to 3x)",
    )
    p_diff.add_argument(
        "--rule", action="append", default=[], metavar="PATTERN=THRESHOLD",
        help="per-path override (fnmatch pattern on the dotted path; "
             "first match wins; repeatable)",
    )
    p_diff.add_argument(
        "--ignore", action="append", default=[], metavar="PATTERN",
        help="drop matching paths from the comparison (repeatable)",
    )
    p_diff.add_argument(
        "--strict", action="store_true",
        help="also fail on added/removed paths and non-numeric changes",
    )
    p_diff.add_argument(
        "--emit-json", metavar="PATH", default=None,
        help="write the diff result as JSON ('-' = stdout, suppresses the tables)",
    )

    p_top = sub.add_parser(
        "top",
        help="inspect a repro.progress/1 telemetry stream: a snapshot by "
             "default, or tail a running sweep with --follow",
    )
    p_top.add_argument("telemetry",
                       help="telemetry JSONL written by `repro sweep --telemetry`")
    p_top.add_argument(
        "-f", "--follow", action="store_true",
        help="keep tailing until the stream records sweep_end",
    )
    p_top.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="--follow poll interval (default 0.5)",
    )

    p_exp = sub.add_parser(
        "export-trace",
        help="convert a JSONL/gz trace to Chrome trace-event / Perfetto "
             "JSON (open it in ui.perfetto.dev)",
    )
    p_exp.add_argument("trace", help="path to a trace.jsonl[.gz]")
    p_exp.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="output path (default: <trace>.perfetto.json)",
    )
    p_exp.add_argument(
        "--counter-every", type=int, default=64, metavar="N",
        help="sample the cumulative I/O-rounds counter every N round "
             "events (default 64)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="perf-trajectory ledger: record grid wall-clock points and "
             "gate them against their per-host baseline",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_br = bench_sub.add_parser(
        "record",
        help="run a grid fresh (no cache), append one repro.bench_series/1 "
             "point to the ledger",
    )
    add_grid_args(p_br)
    p_br.add_argument("--series", required=True,
                      help="series name the point belongs to (e.g. e1-smoke)")
    p_br.add_argument(
        "--min-of", type=int, default=1, metavar="N",
        help="run the whole grid N times and record the minimum wall "
             "clock (noise floor); the methodology is stamped on the "
             "point and compare refuses to gate across methodologies",
    )
    p_br.add_argument("--ledger", default="BENCH_ledger.jsonl", metavar="PATH",
                      help="ledger file to append to (default BENCH_ledger.jsonl)")
    p_br.add_argument("--commit", default=None,
                      help="commit id to stamp (default: $GITHUB_SHA or git HEAD)")
    p_br.add_argument("--notes", default="", help="free-form provenance note")
    p_bc = bench_sub.add_parser(
        "compare",
        help="gate the newest point of a series against its predecessor "
             "on the same host class; exit 1 past threshold",
    )
    p_bc.add_argument("--series", required=True, help="series name to gate")
    p_bc.add_argument("--ledger", default="BENCH_ledger.jsonl", metavar="PATH")
    p_bc.add_argument(
        "--threshold", type=float, default=2.0,
        help="allowed relative increase in seconds/µs-per-record "
             "(default 2.0 = the CI 3x wall-clock window)",
    )
    p_bc.add_argument(
        "--host-key", default=None,
        help="gate within this host class (default: the current host's key)",
    )
    p_bc.add_argument(
        "--attribute", action="store_true",
        help="on gate failure, look both commits up in the run-history "
             "index and print the ranked regression attribution",
    )
    p_bc.add_argument(
        "--history", default=".repro-history", metavar="DIR",
        help="[--attribute] run-history index directory "
             "(default .repro-history)",
    )
    p_bl = bench_sub.add_parser(
        "list",
        help="enumerate the ledger's series × host × methodology with "
             "point counts and latest values",
    )
    p_bl.add_argument("--ledger", default="BENCH_ledger.jsonl", metavar="PATH")
    p_bl.add_argument(
        "--emit-json", metavar="PATH", default=None,
        help="write the listing as JSON ('-' = stdout, suppresses the table)",
    )

    p_hist = sub.add_parser(
        "history",
        help="cross-run history index: ingest run artifacts (reports, "
             "audits, profiles, ledger points, traces) and query them",
    )
    hist_sub = p_hist.add_subparsers(dest="history_command", required=True)

    def add_history_dir(p):
        p.add_argument(
            "--history", default=".repro-history", metavar="DIR",
            help="index directory (default .repro-history)",
        )

    p_hi = hist_sub.add_parser(
        "ingest",
        help="index one or more artifact files (content-detected; "
             "traces are profiled on ingest)",
    )
    add_history_dir(p_hi)
    p_hi.add_argument("paths", nargs="+", help="artifact files to ingest")
    p_hi.add_argument("--commit", default="",
                      help="commit id to stamp on the records")
    p_hi.add_argument("--series", default="",
                      help="series name to stamp on the records")
    p_hi.add_argument(
        "--config", action="append", default=[], metavar="KEY=VALUE",
        help="extra config knob to stamp (repeatable; REPRO_* env vars "
             "set at ingest time are captured automatically)",
    )
    p_hi.add_argument(
        "--require-version", action="store_true",
        help="refuse bench points lacking a repro_version stamp "
             "(the recorded-file shape gate)",
    )
    p_hl = hist_sub.add_parser("list", help="list indexed runs")
    add_history_dir(p_hl)
    p_hl.add_argument("--kind", default=None,
                      help="filter: report/audit/profile/ledger/bench/stats")
    p_hl.add_argument("--limit", type=int, default=None,
                      help="keep only the newest N records")
    p_hs = hist_sub.add_parser(
        "show", help="print one indexed run's verbatim artifact as JSON"
    )
    add_history_dir(p_hs)
    p_hs.add_argument("id", help="run id (unique prefix accepted)")
    p_hq = hist_sub.add_parser(
        "query", help="query index records as JSON (the scripting surface)"
    )
    add_history_dir(p_hq)
    p_hq.add_argument("--kind", default=None)
    p_hq.add_argument("--series", default=None)
    p_hq.add_argument("--commit", default=None,
                      help="commit filter (prefix match, both directions)")
    p_hq.add_argument("--host-key", default=None)
    p_hq.add_argument("--limit", type=int, default=None)
    p_hq.add_argument(
        "--emit-json", metavar="PATH", default="-",
        help="output path (default '-' = stdout)",
    )

    p_attr = sub.add_parser(
        "attribute",
        help="regression attribution: diff two runs at the profile level "
             "and rank the per-span deltas with round-count verdicts",
    )
    p_attr.add_argument(
        "a", help="baseline run: an index id (prefix ok) or a "
                  "report/profile JSON or trace file path",
    )
    p_attr.add_argument("b", help="candidate run (same forms as A)")
    p_attr.add_argument(
        "--history", default=".repro-history", metavar="DIR",
        help="index directory ids are resolved in (default .repro-history)",
    )
    p_attr.add_argument("--top", type=int, default=None,
                        help="keep only the top-K spans by |Δ|")
    p_attr.add_argument(
        "--emit-json", metavar="PATH", default=None,
        help="write the repro.attrib/1 report as JSON ('-' = stdout, "
             "suppresses the tables)",
    )

    p_dash = sub.add_parser(
        "dashboard",
        help="render the run-history index as one self-contained static "
             "HTML page (no external requests, no JS)",
    )
    p_dash.add_argument(
        "--history", default=".repro-history", metavar="DIR",
        help="index directory (default .repro-history)",
    )
    p_dash.add_argument(
        "-o", "--out", default="dashboard.html", metavar="PATH",
        help="output HTML path ('-' = stdout; default dashboard.html)",
    )
    p_dash.add_argument("--title", default="repro perf dashboard")

    sub.add_parser("workloads", help="list the available workload generators")
    return parser


def _make_obs(args) -> Observation | None:
    """An Observation when any sink was requested on the CLI, else None."""
    if args.emit_json is None and args.trace_out is None:
        return None
    memory = MemoryTelemetry() if memory_telemetry_enabled() else None
    return Observation(trace_path=args.trace_out, memory=memory)


def _emit(args, obs: Observation | None, command: str, result: dict,
          audit: dict | None = None) -> bool:
    """Finalize observability output; returns True if the table should print."""
    if obs is None:
        return True
    obs.close()
    params = {
        k: v for k, v in vars(args).items()
        if k not in ("command", "emit_json", "trace_out")
    }
    report = RunReport.from_observation(
        obs, command=command, params=params, result=result, audit=audit
    )
    if args.emit_json:
        report.write(args.emit_json)
    return args.emit_json != "-"


def _cost_fn(spec: str):
    if spec == "log":
        return LogCost()
    if spec == "umh":
        return UMHCost()
    return PowerCost(alpha=float(spec))


def cmd_sort(args) -> int:
    """Run Balance Sort on a PDM machine and print the measurements."""
    machine = ParallelDiskMachine(
        memory=args.memory, block=args.block, disks=args.disks, processors=args.processors
    )
    obs = _make_obs(args)
    auditor = TheoryAuditor().install(obs) if obs is not None else None
    data = workloads.by_name(args.workload, args.n, seed=args.seed)
    res = balance_sort_pdm(
        machine, data, matcher=args.matcher, buckets=args.buckets,
        virtual_disks=args.virtual_disks, obs=obs,
    )
    out = peek_run(res.storage, res.output)
    assert_sorted(out)
    assert_is_permutation(out, data)
    plan = machine.plan_stats.snapshot()
    if (
        (plan["write_flushes"] or plan["read_gathers"])
        and not args.quiet
        and sys.stderr.isatty()
    ):
        # Out-of-band on purpose: payloads and stdout are a pure function
        # of (task, params); physical fusion shape is telemetry only.
        # Interactive chatter only: --quiet and redirected stderr both
        # silence it (scripts get the counters via sweep --stats-json).
        print(
            f"[io-plan] {plan['deferred_write_rounds']} write rounds fused "
            f"into {plan['write_flushes']} flushes "
            f"(max {plan['max_write_flush_blocks']} blocks); "
            f"{plan['prefetched_read_rounds']} read rounds gathered "
            f"in {plan['read_gathers']} batches "
            f"(max {plan['max_read_gather_blocks']} blocks)",
            file=sys.stderr,
        )
    if not args.quiet and sys.stderr.isatty() and memory_telemetry_enabled():
        # Same out-of-band discipline as [io-plan]: memory gauges are
        # telemetry, never part of the deterministic stdout/payloads.
        mem = machine.mem_snapshot()
        print(
            f"[mem] arena high-water {mem['high_water_blocks']} blocks "
            f"(slab {mem['slab_bytes']} bytes, {mem['grow_events']} grows); "
            f"ledger high-water {mem['ledger_high_water_records']} records; "
            f"peak RSS {peak_rss_kb()} kB",
            file=sys.stderr,
        )
    audit = auditor.finish_pdm(machine, res).to_dict() if auditor else None
    bound = bounds.sort_io_bound(args.n, args.memory, args.block, args.disks)
    result = {
        "records": res.n_records,
        "workload": args.workload,
        "parallel_ios": res.total_ios,
        "theorem1_bound": round(bound, 1),
        "ratio": round(res.total_ios / bound, 4),
        "cpu_work": res.cpu["work"],
        "cpu_time": res.cpu["time"],
        "recursion_depth": res.recursion_depth,
        "blocks_swapped": res.blocks_swapped,
        "blocks_unprocessed": res.blocks_unprocessed,
        "match_calls": res.match_calls,
        "balance_factor": round(res.max_balance_factor, 4),
        "io": res.io_stats,
        "verified": True,
    }
    if _emit(args, obs, "sort", result, audit=audit):
        t = Table(["metric", "value"], title="Balance Sort (parallel disk model)")
        t.add("records", res.n_records)
        t.add("workload", args.workload)
        t.add("parallel I/Os", res.total_ios)
        t.add("Theorem 1 bound", round(bound, 1))
        t.add("ratio", round(res.total_ios / bound, 2))
        t.add("CPU work / time", f"{res.cpu['work']} / {res.cpu['time']}")
        t.add("recursion depth", res.recursion_depth)
        t.add("blocks swapped", res.blocks_swapped)
        t.add("balance factor", round(res.max_balance_factor, 2))
        t.add("full-stripe write fraction", round(res.io_stats["write_width_fraction"], 2))
        t.add("output verified", True)
        t.print()
    return 0


def cmd_compare(args) -> int:
    """Run the four PDM algorithms on one input and print the comparison."""
    from .pdm import DISK_1993, DISK_NVME

    obs = _make_obs(args)
    tracer = obs.tracer if obs is not None else NULL_TRACER
    data = workloads.by_name(args.workload, args.n, seed=args.seed)
    bound = bounds.sort_io_bound(args.n, args.memory, args.block, args.disks)
    algs = [
        ("balance", "balance (this paper)",
         lambda m: balance_sort_pdm(m, data, check_invariants=False)),
        ("greed", "greed sort [NoV]", lambda m: greed_sort(m, data)),
        ("randomized", "randomized [ViSa]",
         lambda m: randomized_distribution_sort(m, data)),
        ("striped-merge", "striped merge sort", lambda m: striped_merge_sort(m, data)),
    ]
    t = Table(
        ["algorithm", "parallel I/Os", "ratio to bound",
         "est. 1993 HDD", "est. NVMe", "verified"],
        title=f"N={args.n} M={args.memory} B={args.block} D={args.disks} ({args.workload})",
    )
    rows = []
    for slug, name, fn in algs:
        machine = ParallelDiskMachine(
            memory=args.memory, block=args.block, disks=args.disks
        )
        if obs is not None:
            # Each algorithm gets its own metrics scope; the baselines do
            # not accept obs themselves, so the machine-level hooks are the
            # instrumentation surface here.
            machine.attach_obs(obs, scope=f"algo.{slug}")
        with tracer.span(f"algo:{slug}") as span:
            res = fn(machine)
            span.annotate(ios=res.total_ios)
        out = peek_run(res.storage, res.output)
        assert_sorted(out, name)
        hdd_s = DISK_1993.estimate_seconds(machine.stats, args.block)
        nvme_s = DISK_NVME.estimate_seconds(machine.stats, args.block)
        rows.append({
            "algorithm": slug,
            "parallel_ios": res.total_ios,
            "ratio": round(res.total_ios / bound, 4),
            "est_1993_hdd_s": round(hdd_s, 3),
            "est_nvme_s": round(nvme_s, 6),
            "verified": True,
        })
        t.add(
            name, res.total_ios, round(res.total_ios / bound, 2),
            f"{hdd_s:.1f}s", f"{nvme_s * 1e3:.0f}ms", True,
        )
    result = {
        "records": args.n,
        "workload": args.workload,
        "theorem1_bound": round(bound, 1),
        "algorithms": rows,
    }
    if _emit(args, obs, "compare", result):
        t.print()
    return 0


def cmd_hierarchy(args) -> int:
    """Run Balance Sort on a parallel memory hierarchy machine."""
    machine = ParallelHierarchies(
        args.h, model=args.model, cost_fn=_cost_fn(args.cost),
        interconnect=args.interconnect,
    )
    obs = _make_obs(args)
    auditor = TheoryAuditor().install(obs) if obs is not None else None
    data = workloads.by_name(args.workload, args.n, seed=args.seed)
    res = balance_sort_hierarchy(machine, data, obs=obs)
    out = peek_run(res.storage, res.output)
    assert_sorted(out)
    assert_is_permutation(out, data)
    audit = auditor.finish_hierarchy(machine, res).to_dict() if auditor else None
    result = {
        "records": res.n_records,
        "workload": args.workload,
        "model": args.model,
        "memory_time": round(res.memory_time, 3),
        "interconnect_time": round(res.interconnect_time, 3),
        "total_time": round(res.total_time, 3),
        "parallel_steps": res.parallel_steps,
        "recursion_depth": res.recursion_depth,
        "base_case_calls": res.base_case_calls,
        "blocks_swapped": res.blocks_swapped,
        "match_calls": res.match_calls,
        "balance_factor": round(res.max_balance_factor, 4),
        "verified": True,
    }
    if _emit(args, obs, "hierarchy", result, audit=audit):
        t = Table(["metric", "value"],
                  title=f"Balance Sort (P-{args.model.upper()}, f={args.cost}, {args.interconnect})")
        t.add("records", res.n_records)
        t.add("memory time", round(res.memory_time, 1))
        t.add("interconnect time", round(res.interconnect_time, 1))
        t.add("total time", round(res.total_time, 1))
        t.add("parallel steps", res.parallel_steps)
        t.add("base-case calls", res.base_case_calls)
        t.add("balance factor", round(res.max_balance_factor, 2))
        t.add("output verified", True)
        t.print()
    return 0


def _axis(value, cast=str) -> list:
    """Parse a comma-separated CLI axis into a list of ``cast`` values."""
    if isinstance(value, (int, float)):
        return [cast(value)]
    return [cast(v) for v in str(value).split(",") if v != ""]


def _sweep_specs(args) -> tuple[str, list]:
    """Build the (task name, RunSpec list) for a ``repro sweep`` grid."""
    from .exec import RunSpec, grid

    common = dict(
        workload=_axis(args.workload),
        n=_axis(args.n, int),
        memory=_axis(args.memory, int),
        block=_axis(args.block, int),
        disks=_axis(args.disks, int),
        seed=_axis(args.seed, int),
    )
    if args.task == "sort":
        cells = grid(**common, matcher=_axis(args.matcher))
        for cell in cells:
            if args.buckets is not None:
                cell["buckets"] = args.buckets
            if args.virtual_disks is not None:
                cell["virtual_disks"] = args.virtual_disks
            if args.verify:
                cell["verify"] = True
        return "sort_pdm", [RunSpec("sort_pdm", c) for c in cells]
    if args.task == "compare":
        cells = grid(algorithm=_axis(args.algorithms), **common)
        for cell in cells:
            if cell["algorithm"] == "balance":
                if args.buckets is not None:
                    cell["buckets"] = args.buckets
                if args.virtual_disks is not None:
                    cell["virtual_disks"] = args.virtual_disks
        return "compare_pdm", [RunSpec("compare_pdm", c) for c in cells]
    cells = grid(
        model=_axis(args.model),
        cost=_axis(args.cost),
        interconnect=_axis(args.interconnect),
        h=_axis(args.h, int),
        n=_axis(args.n, int),
        workload=_axis(args.workload),
        seed=_axis(args.seed, int),
    )
    return "hierarchy_sort", [RunSpec("hierarchy_sort", c) for c in cells]


_SWEEP_COLUMNS = {
    "sort_pdm": (
        ["workload", "n", "memory", "block", "disks", "seed", "matcher",
         "ios", "bound", "ratio", "depth", "balance", "cached"],
        lambda p, r, cached: [
            p["workload"], p["n"], p["memory"], p["block"], p["disks"],
            p["seed"], p.get("matcher", "derandomized"), r["parallel_ios"],
            r["theorem1_bound"], round(r["ratio"], 2), r["recursion_depth"],
            round(r["balance_factor"], 2), cached,
        ],
    ),
    "compare_pdm": (
        ["algorithm", "workload", "n", "memory", "block", "disks", "seed",
         "ios", "ratio", "cached"],
        lambda p, r, cached: [
            r["algorithm"], p["workload"], p["n"], p["memory"], p["block"],
            p["disks"], p["seed"], r["parallel_ios"], round(r["ratio"], 2),
            cached,
        ],
    ),
    "hierarchy_sort": (
        ["model", "cost", "h", "n", "workload", "seed", "total time",
         "steps", "balance", "cached"],
        lambda p, r, cached: [
            r["model"], p.get("cost", "log"), p["h"], p["n"], p["workload"],
            p["seed"], round(r["total_time"], 1), r["parallel_steps"],
            round(r["balance_factor"], 2), cached,
        ],
    ),
}


#: Sweep CLI flags that never enter the report params: execution-shape
#: knobs (jobs, cache) and the whole resilience surface.  Excluding the
#: chaos flags is what lets ``repro diff --threshold 0`` compare a chaos
#: run's report against the fault-free run — the chaos-determinism gate.
_SWEEP_PARAM_EXCLUDES = (
    "command", "emit_json", "trace_out", "jobs", "cache_dir",
    "retries", "timeout", "backoff", "backoff_max", "fault_plan",
    "journal", "resume", "telemetry", "live", "stats_json",
)

#: ``repro submit`` keeps the same report-params surface as ``sweep`` —
#: the transport flags are excluded so a submit report diffs clean
#: against the serial sweep of the same grid (the service canary gate).
_SUBMIT_PARAM_EXCLUDES = _SWEEP_PARAM_EXCLUDES + (
    "host", "port", "tenant", "wait_timeout", "submit_retries", "no_wait",
)


def cmd_sweep(args) -> int:
    """Run a parameter grid through the ParallelRunner and print the table.

    Grid cells are independent seeded simulations: ``--jobs N`` shards
    them across worker processes, ``--cache-dir`` serves repeated cells
    from the content-hashed result cache, and results always come back in
    grid order — the table is bit-identical whether the sweep ran
    serially, on a pool, or from cache.  Runner statistics go to stderr
    so stdout stays deterministic.

    Resilience: ``--retries/--timeout/--backoff`` make faults (injected
    via ``--fault-plan`` or real) survivable; cells that exhaust their
    budget become ``repro.failures/1`` records in the report and a
    failures table on stderr-adjacent output.  ``--journal DIR``
    checkpoints completed cells; ``--resume`` serves them back.

    Exit codes: 0 when every cell succeeded, 2 on usage errors (bad
    fault plan, ``--resume`` without ``--journal``, grid mismatch), 3
    when any cell exhausted its retries — mirroring ``repro diff``'s
    documented contract.
    """
    import os
    import tempfile

    from .exceptions import ParameterError
    from .exec import ParallelRunner, merge_metrics, merge_trace_events, write_merged_trace
    from .obs import LiveProgressView, TelemetryWriter, summarize_trace
    from .resilience import FaultPlan, SweepJournal, inject_cache_faults

    task, specs = _sweep_specs(args)
    keys = [spec.fingerprint() for spec in specs]

    plan = None
    if args.fault_plan:
        try:
            plan = FaultPlan.load(args.fault_plan)
        except ParameterError as exc:
            print(f"[sweep] error: {exc}", file=sys.stderr)
            return 2

    if args.resume and not args.journal:
        print("[sweep] error: --resume requires --journal DIR", file=sys.stderr)
        return 2
    journal = None
    cache_dir = args.cache_dir
    if args.journal:
        journal = SweepJournal(args.journal)
        # A journal belongs to one grid: attaching a different grid —
        # resuming or not — would orphan the recorded checkpoints and
        # poison later resumes, so both paths refuse with the same
        # both-fingerprints diagnostic.
        recorded, requested = journal.verify_grid(keys)
        if recorded is not None and recorded != requested:
            verb = "resume" if args.resume else "attach"
            print(
                f"[sweep] error: journal {args.journal} records a "
                f"different grid (fingerprint {recorded} != "
                f"{requested}); refusing to {verb} (use a fresh "
                f"--journal DIR for a new grid)",
                file=sys.stderr,
            )
            return 2
        if args.resume:
            key_set = set(keys)
            journal.resumed = sum(
                1 for k, st in journal.completed().items()
                if st == "done" and k in key_set
            )
        if cache_dir is None:
            cache_dir = journal.cells_dir
        journal.begin(task, keys)

    if plan is not None and cache_dir:
        damaged = inject_cache_faults(cache_dir, plan)
        if damaged:
            print(
                f"[sweep] fault plan damaged {damaged} cache entr"
                f"{'y' if damaged == 1 else 'ies'}",
                file=sys.stderr,
            )

    telemetry_path = args.telemetry
    temp_telemetry = None
    if args.live and telemetry_path is None:
        fd, telemetry_path = tempfile.mkstemp(
            prefix="repro-telemetry-", suffix=".jsonl"
        )
        os.close(fd)
        temp_telemetry = telemetry_path
    writer = TelemetryWriter(telemetry_path) if telemetry_path else None

    runner = ParallelRunner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        retries=args.retries,
        timeout=args.timeout,
        backoff=args.backoff,
        backoff_max=None if args.backoff_max < 0 else args.backoff_max,
        fault_plan=plan,
        journal=journal,
        telemetry=writer,
    )
    live = LiveProgressView(telemetry_path).start() if args.live else None
    try:
        results = runner.map(specs)
    finally:
        if live is not None:
            live.stop()
        if writer is not None:
            writer.close()
        if temp_telemetry is not None:
            try:
                os.unlink(temp_telemetry)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    if args.telemetry:
        print(f"[sweep] telemetry={args.telemetry}", file=sys.stderr)
    ok_payloads = [r.payload for r in results if not r.failed]

    columns, row_fn = _SWEEP_COLUMNS[task]
    t = Table(columns, title=f"sweep · {task} · {len(results)} cells")
    rows = []
    failures = []
    for res in results:
        if res.failed:
            failures.append({
                "params": dict(res.spec.params),
                "error": res.payload["error"],
                "attempts": res.payload["attempts"],
                "key": res.key,
            })
            continue
        cells = row_fn(res.spec.params, res.result, res.cached)
        t.add(*cells)
        rows.append({**res.result, "params": dict(res.spec.params),
                     "cached": res.cached})

    if args.trace_out:
        write_merged_trace(ok_payloads, args.trace_out)

    show_table = True
    if args.emit_json is not None or args.trace_out is not None:
        report = RunReport(
            command="sweep",
            params={
                k: v for k, v in vars(args).items()
                if k not in _SWEEP_PARAM_EXCLUDES
            },
            result={
                "task": task,
                "n_cells": len(results),
                "rows": rows,
                "n_failed": len(failures),
                "failures": failures,
            },
            metrics=merge_metrics(ok_payloads).export(),
            trace_summary=summarize_trace(merge_trace_events(ok_payloads)),
        )
        if args.emit_json:
            report.write(args.emit_json)
            show_table = args.emit_json != "-"
    if show_table:
        t.print()
        if failures:
            ft = Table(
                ["task", "error", "message", "attempts"],
                title=f"failed cells · {len(failures)}",
            )
            for f in failures:
                ft.add(
                    task, f["error"]["type"],
                    f["error"]["message"][:60], f["attempts"],
                )
            ft.print()
    stats = runner.stats
    if stats["jobs"] != stats["jobs_requested"]:
        print(
            f"[sweep] --jobs {stats['jobs_requested']} clamped to "
            f"{stats['jobs']} usable cores (oversubscription only adds "
            f"pickling and contention)",
            file=sys.stderr,
        )
    print(
        f"[sweep] jobs={stats['jobs']} executed={stats['executed']} "
        f"cached={stats['served_from_cache']} "
        f"cache_hits={stats['cache']['hits']} "
        f"retried={stats['retried']} failed={stats['failed']} "
        f"corrupt={stats['cache']['corrupt']}",
        file=sys.stderr,
    )
    journal_stats = None
    if journal is not None:
        journal_stats = journal.stats
        print(
            f"[sweep] journal={journal.directory} "
            f"resumed={journal_stats['resumed']} "
            f"recorded_done={journal_stats['recorded_done']} "
            f"recorded_failed={journal_stats['recorded_failed']} "
            f"total_done={journal_stats['total_done']}",
            file=sys.stderr,
        )
    print(_sweep_stats_table(stats, journal_stats).render(), file=sys.stderr)
    if args.stats_json:
        import json

        doc = {
            "schema": "repro.sweep_stats/1",
            "runner": stats,
            "journal": journal_stats,
        }
        text = json.dumps(doc, indent=2)
        if args.stats_json == "-":
            print(text)
        else:
            with open(args.stats_json, "w") as fh:
                fh.write(text + "\n")
    return 3 if stats["failed"] else 0


def _sweep_stats_table(stats: dict, journal_stats: dict | None = None) -> Table:
    """The aligned execution/resilience/cache counter table for stderr.

    Complements (does not replace) the grep-friendly ``[sweep] key=value``
    one-liners: scripts and CI parse those, humans read this.
    """
    t = Table(["counter", "value"], title="sweep stats")
    t.add("jobs (effective)", stats["jobs"])
    t.add("jobs (requested)", stats["jobs_requested"])
    t.add("cells executed", stats["executed"])
    t.add("cells from cache", stats["served_from_cache"])
    t.add("cells failed", stats["failed"])
    t.add("retries", stats["retried"])
    t.add("timeouts", stats["timeouts"])
    t.add("pool rebuilds", stats["pool_rebuilds"])
    backoff_max = stats.get("backoff_max")
    t.add("backoff cap (s)", "off" if backoff_max is None else backoff_max)
    t.add("backoff slept (s)", stats.get("backoff_slept", 0))
    t.add("backoff capped", stats.get("backoff_capped", 0))
    cache = stats["cache"]
    t.add("cache hits", cache["hits"])
    t.add("cache misses", cache["misses"])
    t.add("cache stores", cache["stores"])
    t.add("cache corrupt", cache["corrupt"])
    io_plan = stats.get("io_plan")
    if io_plan and any(io_plan.values()):
        t.add("plan write rounds fused", io_plan["deferred_write_rounds"])
        t.add("plan write flushes", io_plan["write_flushes"])
        t.add("plan max flush blocks", io_plan["max_write_flush_blocks"])
        t.add("plan read rounds gathered", io_plan["prefetched_read_rounds"])
        t.add("plan read gathers", io_plan["read_gathers"])
        t.add("plan max gather blocks", io_plan["max_read_gather_blocks"])
    memory = stats.get("memory")
    if memory and any(memory.values()):
        t.add("mem high-water blocks", memory.get("high_water_blocks", 0))
        t.add("mem slab bytes", memory.get("slab_bytes", 0))
        t.add("mem slab grow events", memory.get("grow_events", 0))
        t.add("mem ledger high-water records",
              memory.get("ledger_high_water_records", 0))
        t.add("mem peak RSS kB", memory.get("peak_rss_kb", 0))
    if journal_stats is not None:
        t.add("journal resumed", journal_stats["resumed"])
        t.add("journal recorded done", journal_stats["recorded_done"])
        t.add("journal recorded failed", journal_stats["recorded_failed"])
        t.add("journal total done", journal_stats["total_done"])
    return t


def cmd_serve(args) -> int:
    """Run the sort service until SIGTERM/SIGINT drains it.

    The exec layer behind ``repro sweep`` — runner, cache, retries,
    fault plans, journal — wrapped in the admission pipeline of
    :class:`~repro.serve.SortService`.  Exit codes: 0 after a clean
    drain, 2 on usage errors (bad fault plan, ``--resume`` without
    ``--journal``).
    """
    import asyncio
    import json
    import signal

    from .exceptions import ParameterError
    from .exec import JobRunner
    from .resilience import FaultPlan, SweepJournal, inject_cache_faults
    from .serve import FairShareScheduler, SortService

    plan = None
    if args.fault_plan:
        try:
            plan = FaultPlan.load(args.fault_plan)
        except ParameterError as exc:
            print(f"[serve] error: {exc}", file=sys.stderr)
            return 2
    if args.resume and not args.journal:
        print("[serve] error: --resume requires --journal DIR", file=sys.stderr)
        return 2
    journal = None
    cache_dir = args.cache_dir
    if args.journal:
        journal = SweepJournal(args.journal)
        if cache_dir is None:
            cache_dir = journal.cells_dir
    if plan is not None and cache_dir:
        damaged = inject_cache_faults(cache_dir, plan)
        if damaged:
            print(
                f"[serve] fault plan damaged {damaged} cache entr"
                f"{'y' if damaged == 1 else 'ies'}",
                file=sys.stderr,
            )
    obs = Observation(trace_path=args.trace_out)
    runner = JobRunner(
        jobs=args.jobs,
        cache_dir=cache_dir,
        obs=obs,
        retries=args.retries,
        timeout=args.timeout,
        backoff=args.backoff,
        backoff_max=None if args.backoff_max < 0 else args.backoff_max,
        fault_plan=plan,
        journal=journal,
        scheduler=FairShareScheduler(),
    )
    service = SortService(
        runner,
        host=args.host,
        port=args.port,
        queue_limit=args.queue,
        quota_burst=args.quota_burst,
        quota_rate=args.quota_rate,
        obs=obs,
        log_path=args.log,
        journal=journal,
        resume=args.resume,
        drain_grace=args.drain_grace,
        hold=args.hold,
        port_file=args.port_file,
    )
    service.on_ready = lambda: print(
        f"[serve] listening on {service.host}:{service.port} "
        f"queue={args.queue} jobs={runner.jobs or 1} "
        f"quota={args.quota_burst or 'off'} "
        f"{'HOLD ' if args.hold else ''}"
        f"{'chaos ' if plan is not None else ''}"
        f"(SIGTERM drains; grace {args.drain_grace}s)",
        file=sys.stderr,
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, service.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await service.run()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    runner.close()
    stats = service.stats()
    if service.resumed:
        print(f"[serve] resumed {service.resumed} journalled jobs", file=sys.stderr)
    c = stats["serve"]
    print(
        f"[serve] drained in {c['drain_seconds']}s: "
        f"admitted={c['admitted']} coalesced={c['coalesced']} "
        f"cache_hits={c['cache_hits']} shed={c['shed']} "
        f"quota_rejected={c['quota_rejected']} completed={c['completed']} "
        f"failed={c['failed']} cancelled={c['cancelled']} "
        f"pending={c['queue_depth']}",
        file=sys.stderr,
    )
    obs.close()
    if args.stats_json:
        text = json.dumps(stats, indent=2)
        if args.stats_json == "-":
            print(text)
        else:
            with open(args.stats_json, "w") as fh:
                fh.write(text + "\n")
    return 0


def cmd_submit(args) -> int:
    """Submit a grid to a running service and print the sweep-shaped table.

    The result/metrics/trace sections of ``--emit-json`` are built
    exactly like ``repro sweep``'s, so a submit report diffs at
    threshold 0 against the serial sweep of the same grid (ignore
    ``command`` and ``*.cached``) — the service canary gate.  Exit
    codes: 0 all jobs done, 2 transport/usage errors (including a job
    shed beyond the retry budget), 3 when any job failed.
    """
    import json

    from .exec import merge_metrics, merge_trace_events, write_merged_trace
    from .serve import Rejected, ServeClient, ServeError

    task, specs = _sweep_specs(args)
    client = ServeClient(
        host=args.host, port=args.port, tenant=args.tenant,
        timeout=max(args.wait_timeout, 10.0),
    )
    admitted: list[tuple] = []  # (spec, job id, disposition)
    rows = []
    failures = []
    ok_payloads = []
    dispositions = {"new": 0, "coalesced": 0, "cached": 0}
    try:
        client.connect()
        for spec in specs:
            resp = client.submit_admitted(
                spec.task, dict(spec.params), retries=args.submit_retries
            )
            job = resp["job"]
            dispositions[job.get("disposition", "new")] += 1
            admitted.append((spec, job["id"]))
        if args.no_wait:
            print(
                f"[submit] enqueued jobs={len(specs)} "
                f"new={dispositions['new']} "
                f"coalesced={dispositions['coalesced']} "
                f"cached={dispositions['cached']} (not waiting)",
                file=sys.stderr,
            )
            if args.stats_json:
                doc = {
                    "schema": "repro.submit_stats/1",
                    "client": {**client.counters,
                               "dispositions": dispositions, "failed": 0},
                    "serve": client.stats()["stats"],
                }
                text = json.dumps(doc, indent=2)
                if args.stats_json == "-":
                    print(text)
                else:
                    with open(args.stats_json, "w") as fh:
                        fh.write(text + "\n")
            return 0
        for spec, job_id in admitted:
            resp = client.wait(
                job_id, timeout=args.wait_timeout, include="payload"
            )
            job = resp.get("job", {})
            status = job.get("status")
            if status == "done":
                payload = job.get("payload") or {"result": job.get("result")}
                ok_payloads.append(payload)
                rows.append({
                    **payload["result"], "params": dict(spec.params),
                    "cached": bool(job.get("cached")),
                })
            elif status == "failed":
                failure = job.get("failure", {})
                failures.append({
                    "params": dict(spec.params),
                    "error": job.get("error"),
                    "attempts": failure.get("attempts"),
                    "key": job_id,
                })
            else:
                failures.append({
                    "params": dict(spec.params),
                    "error": {
                        "type": "Incomplete",
                        "message": f"job {status} after {args.wait_timeout}s wait",
                    },
                    "attempts": job.get("attempts"),
                    "key": job_id,
                })
        stats_doc = client.stats()["stats"] if args.stats_json else None
    except (ServeError, Rejected) as exc:
        print(f"[submit] error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()

    columns, row_fn = _SWEEP_COLUMNS[task]
    t = Table(columns, title=f"submit · {task} · {len(specs)} jobs")
    for row in rows:
        params = row["params"]
        t.add(*row_fn(params, row, row["cached"]))

    if args.trace_out:
        write_merged_trace(ok_payloads, args.trace_out)
    show_table = True
    if args.emit_json is not None or args.trace_out is not None:
        report = RunReport(
            command="submit",
            params={
                k: v for k, v in vars(args).items()
                if k not in _SUBMIT_PARAM_EXCLUDES
            },
            result={
                "task": task,
                "n_cells": len(specs),
                "rows": rows,
                "n_failed": len(failures),
                "failures": failures,
            },
            metrics=merge_metrics(ok_payloads).export(),
            trace_summary=summarize_trace(merge_trace_events(ok_payloads)),
        )
        if args.emit_json:
            report.write(args.emit_json)
            show_table = args.emit_json != "-"
    if show_table:
        t.print()
        if failures:
            ft = Table(
                ["task", "error", "message", "attempts"],
                title=f"failed jobs · {len(failures)}",
            )
            for f in failures:
                err = f.get("error") or {}
                ft.add(
                    task, err.get("type"),
                    str(err.get("message", ""))[:60], f.get("attempts"),
                )
            ft.print()
    print(
        f"[submit] jobs={len(specs)} new={dispositions['new']} "
        f"coalesced={dispositions['coalesced']} cached={dispositions['cached']} "
        f"reject_retries={client.counters['reject_retries']} "
        f"failed={len(failures)}",
        file=sys.stderr,
    )
    if args.stats_json:
        doc = {
            "schema": "repro.submit_stats/1",
            "client": {**client.counters, "dispositions": dispositions,
                       "failed": len(failures)},
            "serve": stats_doc,
        }
        text = json.dumps(doc, indent=2)
        if args.stats_json == "-":
            print(text)
        else:
            with open(args.stats_json, "w") as fh:
                fh.write(text + "\n")
    return 3 if failures else 0


def cmd_report(args) -> int:
    """Summarize a saved JSONL trace: phases, balance timeline, stripes."""
    import json

    summary = summarize_trace(args.trace)
    report = {
        "schema": "repro.trace_summary/1",
        "command": "report",
        "trace": args.trace,
        **summary,
    }
    if args.emit_json:
        text = json.dumps(report, indent=2)
        if args.emit_json == "-":
            print(text)
            return 0
        with open(args.emit_json, "w") as fh:
            fh.write(text + "\n")
    tables = render_report(report)
    if not tables:
        print(f"{args.trace}: {summary['n_events']} events, no phase spans")
        return 0
    for t in tables:
        t.print()
        print()
    return 0


def cmd_audit(args) -> int:
    """Run a sort under the TheoryAuditor and score it against the bounds.

    The engine's own ``check_invariants`` raising is disabled — the
    auditor *observes* instead, checking Invariants 1 & 2 and the Theorem
    4 balance factor after every matching round without aborting the run.
    Exit code 0 iff every limited check passed with zero violations.
    """
    obs = _make_obs(args) or Observation()
    auditor = TheoryAuditor(theorem4_limit=args.theorem4_limit).install(obs)
    data = workloads.by_name(args.workload, args.n, seed=args.seed)
    if args.target == "pdm":
        machine = ParallelDiskMachine(
            memory=args.memory, block=args.block, disks=args.disks,
            processors=args.processors,
        )
        res = balance_sort_pdm(
            machine, data, matcher=args.matcher, buckets=args.buckets,
            virtual_disks=args.virtual_disks, obs=obs, check_invariants=False,
        )
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)
        report = auditor.finish_pdm(machine, res)
        result = {
            "records": res.n_records, "workload": args.workload,
            "parallel_ios": res.total_ios, "verified": True,
        }
    else:
        machine = ParallelHierarchies(
            args.h, model=args.model, cost_fn=_cost_fn(args.cost),
            interconnect=args.interconnect,
        )
        res = balance_sort_hierarchy(
            machine, data, matcher=args.matcher, obs=obs, check_invariants=False
        )
        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)
        report = auditor.finish_hierarchy(machine, res)
        result = {
            "records": res.n_records, "workload": args.workload,
            "total_time": round(res.total_time, 3), "verified": True,
        }
    if _emit(args, obs, "audit", result, audit=report.to_dict()):
        for t in report.tables():
            t.print()
            print()
        verdict = "PASS" if report.ok else "FAIL"
        print(f"audit: {verdict} ({len(report.violations)} violations, "
              f"{report.rounds_checked} rounds checked)")
    return 0 if report.ok else 1


def cmd_profile(args) -> int:
    """Profile a saved trace: hotspots, critical path, I/O attribution."""
    import json

    memory = None
    if args.memory:
        with open(args.memory, encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("schema") == "repro.sweep_stats/1":
            # A sweep --stats-json dump: the gauges live under runner.
            memory = (doc.get("runner") or {}).get("memory")
        elif isinstance(doc, dict):
            memory = doc
        if not memory or not any(memory.values()):
            print(
                f"[profile] {args.memory} holds no memory gauges "
                "(was the sweep run with REPRO_MEM_TELEMETRY off?)",
                file=sys.stderr,
            )
            memory = None
    profile = profile_trace(args.trace, top=args.top, bins=args.bins,
                            memory=memory)
    if args.emit_json:
        text = json.dumps(profile, indent=2)
        if args.emit_json == "-":
            print(text)
            return 0
        with open(args.emit_json, "w") as fh:
            fh.write(text + "\n")
    for t in render_profile(profile):
        t.print()
        print()
    return 0


def cmd_diff(args) -> int:
    """Diff two JSON run documents; exit 1 when a path regresses."""
    import json

    rules = []
    for spec in args.rule:
        pattern, sep, threshold = spec.rpartition("=")
        if not sep or not pattern:
            print(f"bad --rule {spec!r} (expected PATTERN=THRESHOLD)",
                  file=sys.stderr)
            return 2
        rules.append((pattern, float(threshold)))
    result = diff_runs(
        args.a, args.b, threshold=args.threshold, rules=rules,
        ignore=args.ignore, strict=args.strict,
    )
    show = True
    if args.emit_json:
        text = json.dumps(result.to_dict(), indent=2)
        if args.emit_json == "-":
            print(text)
            show = False
        else:
            with open(args.emit_json, "w") as fh:
                fh.write(text + "\n")
    if show:
        tables = result.tables()
        for t in tables:
            t.print()
            print()
        verdict = "OK" if result.ok else "REGRESSION"
        print(f"diff: {verdict} ({result.n_compared} paths compared, "
              f"{len(result.regressions)} regressions, "
              f"{len(result.changes)} changes, "
              f"threshold {args.threshold})")
    return 0 if result.ok else 1


def cmd_top(args) -> int:
    """Inspect (or tail) a ``repro.progress/1`` telemetry stream.

    The default is a snapshot: aggregate whatever the stream holds —
    including the remains of a SIGKILLed sweep; a torn final line is
    forgiven like the journal's — into summary + running-cell tables.
    ``--follow`` keeps polling until the stream records ``sweep_end``.
    """
    import os
    import time as _time

    from .obs.telemetry import (
        aggregate_progress,
        progress_tables,
        read_telemetry,
        render_progress_line,
    )

    if not os.path.exists(args.telemetry):
        print(f"[top] no telemetry file at {args.telemetry}", file=sys.stderr)
        return 2
    if args.follow:
        last = ""
        while True:
            state = aggregate_progress(read_telemetry(args.telemetry))
            line = render_progress_line(state)
            if line != last:
                print(line, flush=True)
                last = line
            if state["finished"]:
                return 0
            _time.sleep(args.interval)
    events = read_telemetry(args.telemetry)
    if not events:
        print(f"[top] {args.telemetry} is empty", file=sys.stderr)
        return 0
    state = aggregate_progress(events)
    for t in progress_tables(state):
        t.print()
        print()
    print(render_progress_line(state))
    return 0


def cmd_export_trace(args) -> int:
    """Convert a saved trace to Chrome trace-event / Perfetto JSON."""
    from .obs import write_chrome_trace

    out = args.out
    if out is None:
        stem = args.trace
        for suffix in (".gz", ".jsonl"):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
        out = stem + ".perfetto.json"
    doc = write_chrome_trace(
        args.trace, out, counter_every=args.counter_every
    )
    other = doc["otherData"]
    print(
        f"wrote {out} ({len(doc['traceEvents'])} traceEvents from "
        f"{other['events']} records, clock={other['clock']}) — open in "
        f"ui.perfetto.dev"
    )
    return 0


def _current_commit(explicit: str | None) -> str:
    """Best-effort commit id for a ledger point (never fails the record)."""
    import os
    import subprocess

    if explicit:
        return explicit
    env = os.environ.get("GITHUB_SHA", "")
    if env:
        return env[:12]
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if head.returncode == 0:
            return head.stdout.strip()[:12]
    except Exception:  # noqa: BLE001 - provenance only, never fatal
        pass
    return "unknown"


def cmd_bench(args) -> int:
    """Dispatch ``repro bench record`` / ``repro bench compare``."""
    import time as _time

    from .obs.ledger import BenchLedger, compare_entries, make_entry
    from .resilience import grid_fingerprint
    from .util import host_key

    if args.bench_command == "record":
        from .exec import ParallelRunner

        task, specs = _sweep_specs(args)
        keys = [spec.fingerprint() for spec in specs]
        reps = max(1, int(args.min_of))
        seconds = None
        runner = None
        for rep in range(reps):
            # No cache on purpose: a trajectory point is an honest, fresh
            # wall-clock measurement of every cell, every repetition.
            runner = ParallelRunner(jobs=args.jobs)
            t0 = _time.perf_counter()
            results = runner.map(specs)
            elapsed = _time.perf_counter() - t0
            failed = [r for r in results if r.failed]
            if failed:
                print(
                    f"[bench] {len(failed)} cell(s) failed"
                    + (f" (rep {rep + 1}/{reps})" if reps > 1 else "")
                    + "; not recording a ledger point",
                    file=sys.stderr,
                )
                return 3
            seconds = elapsed if seconds is None else min(seconds, elapsed)
        records = sum(int(spec.params.get("n", 0)) for spec in specs)
        entry = make_entry(
            args.series,
            seconds,
            records,
            grid=grid_fingerprint(keys),
            cells=len(specs),
            cache=runner.stats["cache"],
            commit=_current_commit(args.commit),
            notes=args.notes,
            min_of=reps,
        )
        BenchLedger(args.ledger).append(entry)
        t = Table(["field", "value"], title=f"bench point · {args.series}")
        t.add("task", task)
        t.add("cells", entry["cells"])
        t.add("grid", entry["grid"])
        t.add("records", entry["records"])
        t.add("seconds", entry["seconds"])
        t.add("min of", entry["min_of"])
        t.add("records/sec", entry["records_per_sec"])
        t.add("commit", entry["commit"])
        t.add("host key", entry["host_key"])
        t.add("ledger", args.ledger)
        t.print()
        return 0

    if args.bench_command == "list":
        import json

        ledger = BenchLedger(args.ledger)
        groups: dict[tuple, list[dict]] = {}
        for entry in ledger.read():
            gk = (
                entry.get("series", "?"),
                entry.get("host_key", "?"),
                int(entry.get("min_of", 1) or 1),
            )
            groups.setdefault(gk, []).append(entry)
        rows = []
        for (series, hk, min_of), entries in sorted(groups.items()):
            latest = entries[-1]
            rows.append({
                "series": series,
                "host_key": hk,
                "min_of": min_of,
                "points": len(entries),
                "latest_seconds": latest.get("seconds"),
                "latest_records_per_sec": latest.get("records_per_sec"),
                "latest_us_per_record": latest.get("us_per_record"),
                "latest_commit": latest.get("commit"),
            })
        doc = {"schema": "repro.bench_list/1", "ledger": args.ledger,
               "groups": rows}
        show = True
        if args.emit_json:
            text = json.dumps(doc, indent=2)
            if args.emit_json == "-":
                print(text)
                show = False
            else:
                with open(args.emit_json, "w") as fh:
                    fh.write(text + "\n")
        if show:
            t = Table(
                ["series", "host", "min of", "points", "latest s",
                 "rec/s", "µs/rec", "commit"],
                title=f"bench ledger · {args.ledger}",
            )
            for r in rows:
                t.add(
                    r["series"], r["host_key"], r["min_of"], r["points"],
                    r["latest_seconds"], r["latest_records_per_sec"],
                    r["latest_us_per_record"], r["latest_commit"],
                )
            t.print()
            if not rows:
                print(f"[bench] {args.ledger} holds no points",
                      file=sys.stderr)
        return 0

    # bench compare
    ledger = BenchLedger(args.ledger)
    key = args.host_key or host_key()
    latest = ledger.latest(args.series, key)
    if latest is None:
        print(
            f"[bench] no points for series {args.series!r} on host {key} "
            f"in {args.ledger}; nothing to gate",
            file=sys.stderr,
        )
        return 0
    baseline = ledger.baseline(
        args.series, key, min_of=latest.get("min_of", 1)
    )
    if baseline is None:
        print(
            f"[bench] series {args.series!r} on host {key} has a single "
            f"point of its methodology (commit {latest.get('commit')}, "
            f"min_of {latest.get('min_of', 1)}); no baseline yet",
            file=sys.stderr,
        )
        return 0
    try:
        result = compare_entries(baseline, latest, threshold=args.threshold)
    except ValueError as exc:
        # The methodology-aware baseline above should make this
        # unreachable for min_of; grid/series drift still lands here.
        print(f"[bench] refusing to gate: {exc}", file=sys.stderr)
        return 2
    for t in result.tables():
        t.print()
        print()
    verdict = "OK" if result.ok else "REGRESSION"
    # min_of and host_key are identical across the two points by
    # construction (compare_entries refuses to gate across them).
    print(
        f"bench compare: {verdict} ({args.series} @ {latest.get('commit')} "
        f"vs {baseline.get('commit')}: {baseline.get('seconds')}s -> "
        f"{latest.get('seconds')}s, min_of={latest.get('min_of', 1)}, "
        f"host={latest.get('host_key', '?')}, threshold {args.threshold})"
    )
    if not result.ok and getattr(args, "attribute", False):
        _bench_attribute(args, baseline, latest)
    return 0 if result.ok else 1


def _bench_attribute(args, baseline: dict, latest: dict) -> None:
    """Best-effort attribution of a failed gate from the history index.

    Looks the two ledger commits up in the run-history index (profiles
    preferred, reports accepted) and prints the ranked attribution; a
    missing index or missing runs degrade to a pointer, never an error —
    the gate's exit code is the compare's, not the attribution's.
    """
    from .obs import RunHistory, attribute_runs, render_attrib

    history = RunHistory(args.history)

    def _find_run(commit: str):
        for kind in ("profile", "report"):
            records = history.records(kind=kind, commit=commit or None)
            if records:
                return records[-1]
        return None

    rec_a = _find_run(baseline.get("commit", ""))
    rec_b = _find_run(latest.get("commit", ""))
    if rec_a is None or rec_b is None:
        missing = [
            c for c, r in (
                (baseline.get("commit"), rec_a), (latest.get("commit"), rec_b),
            ) if r is None
        ]
        print(
            f"[bench] no indexed profile/report for commit(s) "
            f"{', '.join(str(c) for c in missing)} in {args.history}; "
            "ingest run artifacts with `repro history ingest --commit ...` "
            "to enable attribution",
            file=sys.stderr,
        )
        return
    attrib = attribute_runs(
        history.load_artifact(rec_a), history.load_artifact(rec_b),
        a_meta=rec_a, b_meta=rec_b, top=10,
    )
    print("attribution (from run-history index):")
    for t in render_attrib(attrib):
        t.print()
        print()
    for finding in attrib["findings"]:
        print(f"  - {finding}")


def cmd_history(args) -> int:
    """Dispatch ``repro history ingest|list|show|query``."""
    import json

    from .obs import RunHistory

    history = RunHistory(args.history)

    if args.history_command == "ingest":
        config = {}
        for spec in args.config:
            key, sep, value = spec.partition("=")
            if not sep or not key:
                print(f"bad --config {spec!r} (expected KEY=VALUE)",
                      file=sys.stderr)
                return 2
            config[key] = value
        new = dup = 0
        for path in args.paths:
            try:
                records = history.ingest_path(
                    path, commit=args.commit, series=args.series,
                    config=config, require_version=args.require_version,
                )
            except (ValueError, OSError) as exc:
                print(f"[history] error ingesting {path}: {exc}",
                      file=sys.stderr)
                return 2
            for record in records:
                if record.get("duplicate"):
                    dup += 1
                else:
                    new += 1
                    print(f"indexed {record['id']} ({record['kind']}) "
                          f"from {path}")
        stats = history.stats
        print(
            f"[history] {new} new, {dup} duplicate; index now holds "
            f"{stats['records']} records in {args.history}",
            file=sys.stderr,
        )
        return 0

    if args.history_command == "list":
        records = history.records(kind=args.kind, limit=args.limit)
        t = Table(
            ["id", "kind", "commit", "series", "host", "summary"],
            title=f"run history · {args.history}",
        )
        for r in records:
            summary = r.get("summary") or {}
            brief = ", ".join(
                f"{k}={summary[k]}" for k in list(summary)[:3]
            )
            t.add(
                r["id"], r["kind"], r.get("commit") or "-",
                r.get("series") or "-", r.get("host_key") or "-",
                brief[:48],
            )
        t.print()
        if not records:
            print(f"[history] no records in {args.history}", file=sys.stderr)
        return 0

    if args.history_command == "show":
        try:
            record = history.get(args.id)
        except KeyError as exc:
            print(f"[history] {exc.args[0]}", file=sys.stderr)
            return 2
        print(json.dumps(
            {"record": record, "artifact": history.load_artifact(record)},
            indent=2,
        ))
        return 0

    # query
    records = history.records(
        kind=args.kind, series=args.series, commit=args.commit,
        host_key=args.host_key, limit=args.limit,
    )
    doc = {
        "schema": "repro.run_index_query/1",
        "root": args.history,
        "n": len(records),
        "records": records,
    }
    text = json.dumps(doc, indent=2)
    if args.emit_json == "-":
        print(text)
    else:
        with open(args.emit_json, "w") as fh:
            fh.write(text + "\n")
    return 0


def _resolve_attrib_input(history, ref: str, label: str):
    """(doc, meta) for one ``repro attribute`` operand.

    A path wins over an id: report/profile JSON loads directly, anything
    line-oriented is treated as a trace and profiled on the fly.  Ids
    (unique prefixes accepted) resolve through the history index.
    """
    import json
    import os

    if os.path.exists(ref):
        with open(ref, "rb") as fh:
            head = fh.read(2)
        if head[:2] == b"\x1f\x8b":  # gzip: a trace for sure
            return profile_trace(ref), {"source": ref}
        with open(ref, encoding="utf-8") as fh:
            first_line = fh.readline()
            try:
                doc = json.loads(first_line + fh.read())
            except json.JSONDecodeError:
                doc = None
        if isinstance(doc, dict) and doc.get("schema"):
            return doc, {"source": ref}
        try:
            first = json.loads(first_line)
        except json.JSONDecodeError:
            first = None
        if isinstance(first, dict) and "ev" in first:
            return profile_trace(ref), {"source": ref}
        raise ValueError(
            f"{label} ({ref}): not a schema-stamped JSON document or trace"
        )
    record = history.get(ref)  # KeyError with a useful message on miss
    return history.load_artifact(record), record


def cmd_attribute(args) -> int:
    """Attribute a perf delta between two runs, ranked by |Δ self time|."""
    import json

    from .obs import RunHistory, attribute_runs, render_attrib

    history = RunHistory(args.history)
    try:
        a_doc, a_meta = _resolve_attrib_input(history, args.a, "run A")
        b_doc, b_meta = _resolve_attrib_input(history, args.b, "run B")
        attrib = attribute_runs(
            a_doc, b_doc, a_meta=a_meta, b_meta=b_meta, top=args.top
        )
    except (KeyError, ValueError) as exc:
        print(f"[attribute] error: {exc.args[0]}", file=sys.stderr)
        return 2
    show = True
    if args.emit_json:
        text = json.dumps(attrib, indent=2)
        if args.emit_json == "-":
            print(text)
            show = False
        else:
            with open(args.emit_json, "w") as fh:
                fh.write(text + "\n")
    if show:
        for t in render_attrib(attrib):
            t.print()
            print()
        for finding in attrib["findings"]:
            print(f"  - {finding}")
        if not attrib["findings"]:
            total = attrib["total"]
            print(f"no finding above the noise floor "
                  f"(total {total['a_s']}s -> {total['b_s']}s)")
    return 0


def cmd_dashboard(args) -> int:
    """Render the history index as one self-contained HTML page."""
    from .obs import RunHistory, render_dashboard

    history = RunHistory(args.history)
    html = render_dashboard(history, title=args.title)
    if args.out == "-":
        print(html, end="")
        return 0
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html)
    stats = history.stats
    print(
        f"wrote {args.out} ({len(html)} bytes, self-contained) from "
        f"{stats['records']} indexed records in {args.history}"
    )
    return 0


def cmd_workloads(_args) -> int:
    """List the available workload generators with a sample."""
    t = Table(["name", "sample keys (n=6, seed=0)"], title="workload generators")
    for name in sorted(workloads.GENERATORS):
        sample = workloads.by_name(name, 6, seed=0)["key"]
        t.add(name, " ".join(str(int(k) % 10**6) for k in sample))
    t.print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "sort": cmd_sort,
        "compare": cmd_compare,
        "hierarchy": cmd_hierarchy,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "report": cmd_report,
        "audit": cmd_audit,
        "profile": cmd_profile,
        "diff": cmd_diff,
        "top": cmd_top,
        "export-trace": cmd_export_trace,
        "bench": cmd_bench,
        "history": cmd_history,
        "attribute": cmd_attribute,
        "dashboard": cmd_dashboard,
        "workloads": cmd_workloads,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
