"""Command-line interface: run sorts and comparisons without writing code.

Examples::

    python -m repro sort --n 20000 --memory 1024 --block 4 --disks 8
    python -m repro sort --n 20000 --matcher randomized --workload zipf
    python -m repro compare --n 20000 --memory 512 --block 4 --disks 8
    python -m repro hierarchy --n 8000 --h 64 --model bt --cost 0.5
    python -m repro workloads

Every command prints an aligned table (the same formatter the benchmark
harness uses) plus the Theorem 1/2/3 reference bound where applicable, and
verifies the output before reporting.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import workloads
from .analysis import bounds
from .analysis.reporting import Table
from .baselines import (
    greed_sort,
    randomized_distribution_sort,
    striped_merge_sort,
)
from .core.sort_hierarchy import balance_sort_hierarchy
from .core.sort_pdm import balance_sort_pdm
from .core.streams import peek_run
from .hierarchies import LogCost, ParallelHierarchies, PowerCost, UMHCost
from .pdm import ParallelDiskMachine
from .util import assert_is_permutation, assert_sorted

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Balance Sort (Nodine & Vitter, SPAA'93) — simulators and sorts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_args(p):
        p.add_argument("--n", type=int, default=20_000, help="records to sort")
        p.add_argument("--memory", type=int, default=1024, help="M: records in internal memory")
        p.add_argument("--block", type=int, default=4, help="B: records per block")
        p.add_argument("--disks", type=int, default=8, help="D: number of disks")
        p.add_argument("--workload", default="uniform", choices=sorted(workloads.GENERATORS))
        p.add_argument("--seed", type=int, default=0)

    p_sort = sub.add_parser("sort", help="Balance Sort on the parallel disk model")
    add_machine_args(p_sort)
    p_sort.add_argument(
        "--matcher", default="derandomized",
        choices=["derandomized", "randomized", "greedy", "mincost"],
    )
    p_sort.add_argument("--processors", type=int, default=1, help="P: CPUs")
    p_sort.add_argument("--buckets", type=int, default=None, help="override S")
    p_sort.add_argument("--virtual-disks", type=int, default=None, help="override D'")

    p_cmp = sub.add_parser("compare", help="all four PDM algorithms side by side")
    add_machine_args(p_cmp)

    p_h = sub.add_parser("hierarchy", help="Balance Sort on P-HMM / P-BT / P-UMH")
    p_h.add_argument("--n", type=int, default=8_000)
    p_h.add_argument("--h", type=int, default=64, help="H: number of hierarchies")
    p_h.add_argument("--model", default="hmm", choices=["hmm", "bt", "umh"])
    p_h.add_argument("--cost", default="log",
                     help="'log', 'umh', or a float exponent alpha for x^alpha")
    p_h.add_argument("--interconnect", default="pram", choices=["pram", "hypercube"])
    p_h.add_argument("--workload", default="uniform", choices=sorted(workloads.GENERATORS))
    p_h.add_argument("--seed", type=int, default=0)

    sub.add_parser("workloads", help="list the available workload generators")
    return parser


def _cost_fn(spec: str):
    if spec == "log":
        return LogCost()
    if spec == "umh":
        return UMHCost()
    return PowerCost(alpha=float(spec))


def cmd_sort(args) -> int:
    """Run Balance Sort on a PDM machine and print the measurements."""
    machine = ParallelDiskMachine(
        memory=args.memory, block=args.block, disks=args.disks, processors=args.processors
    )
    data = workloads.by_name(args.workload, args.n, seed=args.seed)
    res = balance_sort_pdm(
        machine, data, matcher=args.matcher, buckets=args.buckets,
        virtual_disks=args.virtual_disks,
    )
    out = peek_run(res.storage, res.output)
    assert_sorted(out)
    assert_is_permutation(out, data)
    bound = bounds.sort_io_bound(args.n, args.memory, args.block, args.disks)
    t = Table(["metric", "value"], title="Balance Sort (parallel disk model)")
    t.add("records", res.n_records)
    t.add("workload", args.workload)
    t.add("parallel I/Os", res.total_ios)
    t.add("Theorem 1 bound", round(bound, 1))
    t.add("ratio", round(res.total_ios / bound, 2))
    t.add("CPU work / time", f"{res.cpu['work']} / {res.cpu['time']}")
    t.add("recursion depth", res.recursion_depth)
    t.add("blocks swapped", res.blocks_swapped)
    t.add("balance factor", round(res.max_balance_factor, 2))
    t.add("output verified", True)
    t.print()
    return 0


def cmd_compare(args) -> int:
    """Run the four PDM algorithms on one input and print the comparison."""
    from .pdm import DISK_1993, DISK_NVME

    data = workloads.by_name(args.workload, args.n, seed=args.seed)
    bound = bounds.sort_io_bound(args.n, args.memory, args.block, args.disks)
    algs = [
        ("balance (this paper)", lambda m: balance_sort_pdm(m, data, check_invariants=False)),
        ("greed sort [NoV]", lambda m: greed_sort(m, data)),
        ("randomized [ViSa]", lambda m: randomized_distribution_sort(m, data)),
        ("striped merge sort", lambda m: striped_merge_sort(m, data)),
    ]
    t = Table(
        ["algorithm", "parallel I/Os", "ratio to bound",
         "est. 1993 HDD", "est. NVMe", "verified"],
        title=f"N={args.n} M={args.memory} B={args.block} D={args.disks} ({args.workload})",
    )
    for name, fn in algs:
        machine = ParallelDiskMachine(
            memory=args.memory, block=args.block, disks=args.disks
        )
        res = fn(machine)
        out = peek_run(res.storage, res.output)
        assert_sorted(out, name)
        t.add(
            name, res.total_ios, round(res.total_ios / bound, 2),
            f"{DISK_1993.estimate_seconds(machine.stats, args.block):.1f}s",
            f"{DISK_NVME.estimate_seconds(machine.stats, args.block) * 1e3:.0f}ms",
            True,
        )
    t.print()
    return 0


def cmd_hierarchy(args) -> int:
    """Run Balance Sort on a parallel memory hierarchy machine."""
    machine = ParallelHierarchies(
        args.h, model=args.model, cost_fn=_cost_fn(args.cost),
        interconnect=args.interconnect,
    )
    data = workloads.by_name(args.workload, args.n, seed=args.seed)
    res = balance_sort_hierarchy(machine, data)
    out = peek_run(res.storage, res.output)
    assert_sorted(out)
    assert_is_permutation(out, data)
    t = Table(["metric", "value"],
              title=f"Balance Sort (P-{args.model.upper()}, f={args.cost}, {args.interconnect})")
    t.add("records", res.n_records)
    t.add("memory time", round(res.memory_time, 1))
    t.add("interconnect time", round(res.interconnect_time, 1))
    t.add("total time", round(res.total_time, 1))
    t.add("parallel steps", res.parallel_steps)
    t.add("base-case calls", res.base_case_calls)
    t.add("balance factor", round(res.max_balance_factor, 2))
    t.add("output verified", True)
    t.print()
    return 0


def cmd_workloads(_args) -> int:
    """List the available workload generators with a sample."""
    t = Table(["name", "sample keys (n=6, seed=0)"], title="workload generators")
    for name in sorted(workloads.GENERATORS):
        sample = workloads.by_name(name, 6, seed=0)["key"]
        t.add(name, " ".join(str(int(k) % 10**6) for k in sample))
    t.print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "sort": cmd_sort,
        "compare": cmd_compare,
        "hierarchy": cmd_hierarchy,
        "workloads": cmd_workloads,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
