"""Parallel execution backend: shard simulation grids across CPU cores.

The repo's benchmarks and CLI sweeps are embarrassingly parallel — every
grid cell is an independent, seeded, deterministic simulation.  This
package turns that shape into throughput without giving up determinism:

* :class:`RunSpec` / :class:`ParallelRunner` — process-pool sharding of
  registered tasks with results returned in spec order (tables are
  bit-identical to serial runs);
* :mod:`~repro.exec.fingerprint` / :class:`ResultCache` — content-hashed
  run cache (config fingerprint → payload JSON) so repeated grid cells
  are served without re-simulating;
* :mod:`~repro.exec.tasks` — the registered task functions
  (``sort_pdm``, ``compare_pdm``, ``hierarchy_sort``), each executed
  under a zero-clock observation so payloads are pure functions of their
  params;
* :mod:`~repro.exec.merge` — fold per-run metrics/traces back into one
  :class:`~repro.obs.MetricsRegistry` / one JSONL trace, keeping the
  ``repro.run_report/1`` schema stable.

With ``retries``/``timeout``/``fault_plan``/``journal`` configured the
runner additionally survives worker crashes, hangs, poisoned payloads,
and injected I/O faults — failed cells become structured
``repro.failures/1`` records instead of tracebacks (see
``docs/resilience.md`` and :mod:`repro.resilience`).

Entry points: ``repro sweep --jobs N --cache-dir ...`` on the CLI and
``parallel_sweep`` in ``benchmarks/_harness.py``.  See
``docs/testing.md`` for the testing tiers that pin the determinism
guarantees.
"""

from .cache import CACHE_ENTRY_SCHEMA, ResultCache, payload_digest
from .fingerprint import SCHEMA_SALT, canonical_params, fingerprint
from .merge import merge_metrics, merge_trace_events, write_merged_trace
from .runner import (
    DEFAULT_BACKOFF_MAX,
    FAILURES_SCHEMA,
    Job,
    JobRunner,
    ParallelRunner,
    RunResult,
    RunSpec,
    default_jobs,
    grid,
)
from .tasks import get_task, run_task, task, task_names

__all__ = [
    "CACHE_ENTRY_SCHEMA",
    "DEFAULT_BACKOFF_MAX",
    "FAILURES_SCHEMA",
    "Job",
    "JobRunner",
    "ResultCache",
    "SCHEMA_SALT",
    "payload_digest",
    "canonical_params",
    "fingerprint",
    "merge_metrics",
    "merge_trace_events",
    "write_merged_trace",
    "ParallelRunner",
    "RunResult",
    "RunSpec",
    "default_jobs",
    "grid",
    "get_task",
    "run_task",
    "task",
    "task_names",
]
