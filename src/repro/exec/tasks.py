"""Registered simulation tasks — the units the parallel runner shards.

A *task* is a named, picklable function ``fn(params, obs) -> result
dict``.  The registry makes grid cells self-describing: a
:class:`~repro.exec.runner.RunSpec` carries only ``(task name, params)``,
which is what the fingerprint hashes and what a worker process needs to
reproduce the run from scratch.

Every execution goes through :func:`run_task`, which wraps the task in a
**deterministic observation**: a metrics registry plus a tracer whose
clock is pinned to zero.  Simulated costs (parallel I/Os, CPU work, model
time) are exact and reproducible; wall-clock is not, so pinning the clock
makes the whole payload — result, metrics, and trace events — a pure
function of ``(task, params)``.  That is what lets payloads be content-
cached, diffed against golden files, and compared bit-for-bit between the
serial and process-pool runners.

Payload schema (``repro.exec_payload/1``)::

    {"schema": "repro.exec_payload/1", "task": str, "params": {...},
     "result": {...},        # task-specific summary (JSON-safe scalars)
     "metrics": {...},       # MetricsRegistry.export()
     "trace": [...]}         # tracer events (begin/end/event dicts)
"""

from __future__ import annotations

import json
from typing import Callable

import numpy as np

from .. import workloads
from ..analysis import bounds
from ..obs import Observation, Tracer
from ..obs.telemetry import ProgressSink, active_telemetry
from .fingerprint import SCHEMA_SALT

__all__ = ["task", "get_task", "task_names", "run_task"]

_TASKS: dict[str, Callable] = {}


def task(name: str) -> Callable:
    """Register ``fn(params, obs) -> dict`` under ``name`` (decorator)."""

    def register(fn: Callable) -> Callable:
        if name in _TASKS:
            raise ValueError(f"task {name!r} already registered")
        _TASKS[name] = fn
        return fn

    return register


def get_task(name: str) -> Callable:
    """Look up a registered task; raises ``KeyError`` with the known names."""
    try:
        return _TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown task {name!r} (known: {sorted(_TASKS)})"
        ) from None


def task_names() -> list[str]:
    """All registered task names, sorted."""
    return sorted(_TASKS)


def _zero_clock() -> float:
    """Pinned tracer clock: every ``ts`` / ``wall_s`` is exactly 0.0."""
    return 0.0


def run_task(name: str, params: dict) -> dict:
    """Execute one task under a deterministic observation; return the payload.

    The payload round-trips through JSON before returning so cached and
    freshly executed payloads are the *same* Python shape (plain lists /
    ints / floats — no numpy scalars, no tuples).

    When an ambient telemetry channel is active (``repro sweep --live``
    / ``--telemetry``), a :class:`~repro.obs.telemetry.ProgressSink` is
    attached as the tracer's *sink*: it observes the same event stream
    and streams throttled phase progress, while the payload keeps being
    built from the tracer's in-memory events — so payload bytes are
    bit-identical with telemetry on or off.
    """
    fn = get_task(name)
    channel = active_telemetry()
    sink = ProgressSink(channel) if channel is not None else None
    obs = Observation(tracer=Tracer(sink=sink, clock=_zero_clock))
    result = fn(dict(params), obs)
    obs.close()
    trace, trace_safe = obs.tracer.payload_events()
    payload = {
        "schema": SCHEMA_SALT,
        "task": name,
        "params": dict(params),
        "result": result,
        "metrics": obs.registry.export(),
    }
    if trace_safe:
        # Columnar tracer: every trace value is a plain scalar (appender
        # contract, literals checked), so json.loads(json.dumps(trace))
        # would reproduce the exact same value tree — skip it and
        # round-trip only the small head of the payload.  `trace` is
        # assigned after the round-trip so the payload's key order (and
        # therefore any insertion-ordered serialization) is unchanged.
        payload = json.loads(json.dumps(payload, default=_jsonable))
        payload["trace"] = list(trace)
        return payload
    payload["trace"] = list(trace)
    return json.loads(json.dumps(payload, default=_jsonable))


def _jsonable(value):
    for attr in ("item", "tolist"):
        fn = getattr(value, attr, None)
        if fn is not None:
            return fn()
    return str(value)


# --------------------------------------------------------------------------
# Built-in tasks
# --------------------------------------------------------------------------


@task("sort_pdm")
def sort_pdm(params: dict, obs: Observation) -> dict:
    """Balance Sort on the PDM — one E1-style grid cell.

    Params: ``n`` (required), ``memory`` (512), ``block`` (4), ``disks``
    (8), ``workload`` ("uniform"), ``seed`` (0), ``matcher``
    ("derandomized"), ``buckets`` / ``virtual_disks`` (paper defaults),
    ``processors`` (1), ``internal`` ("cole"), ``check_invariants``
    (False — grid cells favour speed; the invariant tier covers safety),
    ``verify`` (False — full output verification costs extra reads).
    """
    from ..core.sort_pdm import balance_sort_pdm
    from ..pdm import ParallelDiskMachine

    from ..obs import TheoryAuditor

    n = int(params["n"])
    memory = int(params.get("memory", 512))
    block = int(params.get("block", 4))
    disks = int(params.get("disks", 8))
    machine = ParallelDiskMachine(
        memory=memory, block=block, disks=disks,
        processors=int(params.get("processors", 1)),
    )
    data = workloads.by_name(
        params.get("workload", "uniform"), n, seed=int(params.get("seed", 0))
    )
    auditor = TheoryAuditor().install(obs)
    res = balance_sort_pdm(
        machine,
        data,
        matcher=params.get("matcher", "derandomized"),
        buckets=params.get("buckets"),
        virtual_disks=params.get("virtual_disks"),
        internal=params.get("internal", "cole"),
        check_invariants=bool(params.get("check_invariants", False)),
        obs=obs,
    )
    # Per-cell theory audit: deterministic measured/bound ratios land as
    # gauges under the "audit" scope and merge across the sweep like any
    # other metric (grid-wide min/max watermarks per theorem).
    auditor.finish_pdm(machine, res)
    verified = None
    if params.get("verify", False):
        from ..core.streams import peek_run
        from ..util import assert_is_permutation, assert_sorted

        out = peek_run(res.storage, res.output)
        assert_sorted(out)
        assert_is_permutation(out, data)
        verified = True
    bound = bounds.sort_io_bound(n, memory, block, disks)
    return {
        "records": res.n_records,
        "workload": params.get("workload", "uniform"),
        "parallel_ios": res.total_ios,
        "theorem1_bound": round(bound, 1),
        "ratio": round(res.total_ios / bound, 4),
        "cpu_work": res.cpu["work"],
        "cpu_time": res.cpu["time"],
        "recursion_depth": res.recursion_depth,
        "blocks_swapped": res.blocks_swapped,
        "blocks_unprocessed": res.blocks_unprocessed,
        "match_calls": res.match_calls,
        "balance_factor": round(res.max_balance_factor, 4),
        "io": res.io_stats,
        "verified": verified,
    }


@task("compare_pdm")
def compare_pdm(params: dict, obs: Observation) -> dict:
    """One algorithm × one config — an E3-style comparison cell.

    Params: ``algorithm`` ∈ {"balance", "greed", "randomized",
    "striped"} (required) plus the machine/workload params of
    ``sort_pdm`` (``rng_seed`` seeds the randomized baseline).
    """
    from ..baselines import (
        greed_sort,
        randomized_distribution_sort,
        striped_merge_sort,
    )
    from ..core.sort_pdm import balance_sort_pdm
    from ..pdm import ParallelDiskMachine

    algorithm = params["algorithm"]
    n = int(params["n"])
    memory = int(params.get("memory", 512))
    block = int(params.get("block", 4))
    disks = int(params.get("disks", 8))
    machine = ParallelDiskMachine(memory=memory, block=block, disks=disks)
    machine.attach_obs(obs, scope=f"algo.{algorithm}")
    data = workloads.by_name(
        params.get("workload", "uniform"), n, seed=int(params.get("seed", 0))
    )
    with obs.span(f"algo:{algorithm}") as span:
        if algorithm == "balance":
            res = balance_sort_pdm(
                machine, data,
                buckets=params.get("buckets"),
                virtual_disks=params.get("virtual_disks"),
                check_invariants=bool(params.get("check_invariants", False)),
            )
        elif algorithm == "greed":
            res = greed_sort(machine, data)
        elif algorithm == "randomized":
            rng = (
                np.random.default_rng(int(params["rng_seed"]))
                if "rng_seed" in params
                else None  # the baseline's own fixed default seed
            )
            res = randomized_distribution_sort(machine, data, rng=rng)
        elif algorithm == "striped":
            res = striped_merge_sort(machine, data)
        else:
            raise KeyError(f"unknown algorithm {algorithm!r}")
        span.annotate(ios=res.total_ios)
    bound = bounds.sort_io_bound(n, memory, block, disks)
    return {
        "algorithm": algorithm,
        "records": n,
        "parallel_ios": res.total_ios,
        "theorem1_bound": round(bound, 1),
        "ratio": round(res.total_ios / bound, 4),
        "io": machine.stats.snapshot(),
    }


@task("hierarchy_sort")
def hierarchy_sort(params: dict, obs: Observation) -> dict:
    """Balance Sort on P-HMM / P-BT / P-UMH — a hierarchy grid cell.

    Params: ``n`` (required), ``h`` (64), ``model`` ("hmm"), ``cost``
    ("log" | "umh" | float exponent), ``interconnect`` ("pram"),
    ``workload`` ("uniform"), ``seed`` (0).
    """
    from ..core.sort_hierarchy import balance_sort_hierarchy
    from ..hierarchies import LogCost, ParallelHierarchies, PowerCost, UMHCost

    cost = params.get("cost", "log")
    if cost == "log":
        cost_fn = LogCost()
    elif cost == "umh":
        cost_fn = UMHCost()
    else:
        cost_fn = PowerCost(alpha=float(cost))
    machine = ParallelHierarchies(
        int(params.get("h", 64)),
        model=params.get("model", "hmm"),
        cost_fn=cost_fn,
        interconnect=params.get("interconnect", "pram"),
    )
    from ..obs import TheoryAuditor

    data = workloads.by_name(
        params.get("workload", "uniform"),
        int(params["n"]),
        seed=int(params.get("seed", 0)),
    )
    auditor = TheoryAuditor().install(obs)
    res = balance_sort_hierarchy(machine, data, obs=obs)
    # Per-cell theory audit (see sort_pdm): ratios become "audit" gauges.
    auditor.finish_hierarchy(machine, res)
    return {
        "records": res.n_records,
        "model": params.get("model", "hmm"),
        "memory_time": round(res.memory_time, 3),
        "interconnect_time": round(res.interconnect_time, 3),
        "total_time": round(res.total_time, 3),
        "parallel_steps": res.parallel_steps,
        "recursion_depth": res.recursion_depth,
        "base_case_calls": res.base_case_calls,
        "blocks_swapped": res.blocks_swapped,
        "match_calls": res.match_calls,
        "balance_factor": round(res.max_balance_factor, 4),
    }
