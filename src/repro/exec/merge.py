"""Merging per-run observability payloads into one registry / one trace.

The parallel runner executes every grid cell under its own deterministic
:class:`~repro.obs.Observation` (metrics registry + zero-clock tracer).
To keep downstream consumers schema-stable — ``repro report``, the
``repro.run_report/1`` JSON, the trace tooling — the per-run payloads are
folded back into *one* registry and *one* event stream:

* **metrics** merge additively via
  :meth:`~repro.obs.MetricsRegistry.merge_export` (counters sum,
  histograms re-accumulate, gauge watermarks widen), so the merged export
  has exactly the shape of a single run's export;
* **traces** concatenate with span-ids re-based and each run wrapped in a
  synthetic ``run:<task>[<index>]`` span, so the merged stream is a valid
  trace (unique span ids, well-formed begin/end nesting) that
  :func:`~repro.obs.summarize_trace` and ``repro report`` consume
  unchanged.

Because every run's clock is pinned to zero, the merged trace is a pure
function of the specs — byte-identical between serial and process-pool
execution and across repeat runs.
"""

from __future__ import annotations

from typing import Sequence

from ..obs import MetricsRegistry
from ..obs.tracer import JsonlSink

__all__ = ["merge_metrics", "merge_trace_events", "write_merged_trace"]


def merge_metrics(
    payloads: Sequence[dict], registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Fold every payload's ``metrics`` export into one registry."""
    registry = registry if registry is not None else MetricsRegistry()
    for payload in payloads:
        exported = payload.get("metrics") or {}
        if exported:
            registry.merge_export(exported)
    return registry


def merge_trace_events(payloads: Sequence[dict]) -> list[dict]:
    """Concatenate per-run traces into one well-formed event stream.

    Each run's events keep their relative order and attributes; span ids
    are re-based to stay unique across runs, and a wrapping
    ``run:<task>[<index>]`` span (carrying the run index and cached flag)
    brackets each run so per-run boundaries survive in the merged stream.
    """
    merged: list[dict] = []
    next_id = 1
    for index, payload in enumerate(payloads):
        events = payload.get("trace") or []
        label = f"run:{payload.get('task', 'task')}[{index}]"
        root = next_id
        next_id += 1
        attrs = {"index": index}
        if "cached" in payload:
            attrs["cached"] = payload["cached"]
        merged.append(
            {"ev": "begin", "span": root, "parent": None, "name": label,
             "ts": 0.0, "attrs": dict(attrs)}
        )
        base = next_id - 1  # old span ids start at 1 → new = base + old
        max_old = 0
        for ev in events:
            rebased = dict(ev)
            old_span = rebased.get("span")
            if old_span is not None:
                rebased["span"] = base + int(old_span)
                max_old = max(max_old, int(old_span))
            if "parent" in rebased:
                old_parent = rebased["parent"]
                rebased["parent"] = (
                    root if old_parent is None else base + int(old_parent)
                )
            merged.append(rebased)
        next_id = base + max_old + 1
        merged.append(
            {"ev": "end", "span": root, "parent": None, "name": label,
             "ts": 0.0, "wall_s": 0.0, "attrs": dict(attrs)}
        )
    return merged


def write_merged_trace(payloads: Sequence[dict], path: str) -> int:
    """Write the merged trace as JSONL; returns the number of events."""
    events = merge_trace_events(payloads)
    sink = JsonlSink(path)
    try:
        for ev in events:
            sink.emit(ev)
    finally:
        sink.close()
    return len(events)
