"""Content-addressed result cache for the parallel runner.

Each entry maps a config fingerprint (see
:mod:`repro.exec.fingerprint`) to the run's full payload — result
summary, metrics export, and trace events — stored as one JSON file
``<digest>.json`` in the cache directory.  Repeated grid cells (the same
``N × D × S × seed`` point appearing in several sweeps, or a re-run after
an interrupted benchmark) are then served without re-simulating.

``ResultCache(None)`` keeps entries in memory only — useful for
deduplicating *within* one sweep without touching disk.  All writes are
atomic (``os.replace`` of a temp file), so a crashed worker can never
leave a truncated JSON behind.

Integrity (schema ``repro.cache_entry/1``)
------------------------------------------
On-disk entries are wrapped as ``{"schema", "sha256", "payload"}`` where
``sha256`` digests the canonical JSON of the payload.  A read that finds
unparseable JSON, a missing wrapper field, or a digest mismatch
**quarantines** the file (rename to ``<key>.json.quarantine``), bumps the
``corrupt`` counter, and reports a miss — so bit rot (or an injected
``cache.entry`` fault) costs one re-execution, never a wrong result.
Legacy bare-payload entries (no wrapper) are still accepted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

try:  # optional C canonical-JSON encoder (byte-identical, see _speedups.c)
    from .. import _speedups as _speedups
except ImportError:
    _speedups = None

__all__ = ["ResultCache", "CACHE_ENTRY_SCHEMA", "payload_digest"]

CACHE_ENTRY_SCHEMA = "repro.cache_entry/1"


def payload_digest(payload: dict) -> str:
    """sha256 over the canonical (sorted, compact) JSON of ``payload``."""
    if _speedups is not None:
        try:
            text = _speedups.dumps(payload, True)
        except (TypeError, ValueError, RecursionError):
            # Non-scalar values (a hand-built payload in a test, say):
            # the stdlib encoder defines the bytes.
            text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    else:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Fingerprint → payload store (directory-backed or in-memory)."""

    def __init__(self, directory: str | None = None):
        self.directory = directory
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------ lookups

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")  # type: ignore[arg-type]

    def _quarantine(self, key: str, obs=None) -> None:
        """Move a damaged entry aside (``*.quarantine``) and count it.

        Only the reader whose ``os.replace`` actually moved the file
        counts the corruption: two readers racing on the same damaged
        entry both report a miss, but exactly one quarantine file
        results and ``corrupt`` increments once.
        """
        path = self._path(key)
        try:
            os.replace(path, path + ".quarantine")
        except OSError:
            return  # a racing reader (or unlink) already moved it; miss either way
        self.corrupt += 1
        if obs is not None:
            obs.event("cache.quarantined", key=key[:16])
            obs.scope("resilience").counter("cache.quarantined").inc()

    def _load_entry(self, key: str, obs=None) -> dict | None:
        """Read + verify one on-disk entry; quarantine anything damaged."""
        try:
            with open(self._path(key)) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            # A flipped byte can break JSON *or* UTF-8; either way the
            # entry is damaged and gets quarantined.
            self._quarantine(key, obs)
            return None
        if not isinstance(doc, dict):
            self._quarantine(key, obs)
            return None
        if doc.get("schema") != CACHE_ENTRY_SCHEMA:
            # Legacy bare payload (pre-integrity format): accept as-is.
            return doc
        payload = doc.get("payload")
        if not isinstance(payload, dict) or payload_digest(payload) != doc.get("sha256"):
            self._quarantine(key, obs)
            return None
        return payload

    def get(self, key: str, obs=None) -> dict | None:
        """The cached payload for ``key``, or None (counts hit/miss).

        Damaged on-disk entries are quarantined (renamed to
        ``<key>.json.quarantine``), counted in :attr:`corrupt`, and
        reported as misses — the caller simply re-executes.
        """
        payload = self._memory.get(key)
        if payload is None and self.directory:
            payload = self._load_entry(key, obs)
            if payload is not None:
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (atomic + integrity-wrapped on disk)."""
        self._memory[key] = payload
        self.stores += 1
        if not self.directory:
            return
        entry = {
            "schema": CACHE_ENTRY_SCHEMA,
            "sha256": payload_digest(payload),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Hit/miss/store/corrupt counters plus the backing directory."""
        return {
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return bool(self.directory) and os.path.exists(self._path(key))

    def __len__(self) -> int:
        if not self.directory:
            return len(self._memory)
        return sum(1 for n in os.listdir(self.directory) if n.endswith(".json"))
