"""Content-addressed result cache for the parallel runner.

Each entry maps a config fingerprint (see
:mod:`repro.exec.fingerprint`) to the run's full payload — result
summary, metrics export, and trace events — stored as one JSON file
``<digest>.json`` in the cache directory.  Repeated grid cells (the same
``N × D × S × seed`` point appearing in several sweeps, or a re-run after
an interrupted benchmark) are then served without re-simulating.

``ResultCache(None)`` keeps entries in memory only — useful for
deduplicating *within* one sweep without touching disk.  All writes are
atomic (``os.replace`` of a temp file), so a crashed worker can never
leave a truncated JSON behind.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["ResultCache"]


class ResultCache:
    """Fingerprint → payload store (directory-backed or in-memory)."""

    def __init__(self, directory: str | None = None):
        self.directory = directory
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------ lookups

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")  # type: ignore[arg-type]

    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or None (counts hit/miss)."""
        payload = self._memory.get(key)
        if payload is None and self.directory:
            try:
                with open(self._path(key)) as fh:
                    payload = json.load(fh)
                self._memory[key] = payload
            except FileNotFoundError:
                payload = None
            except json.JSONDecodeError:
                payload = None  # treat a corrupt entry as a miss; put() rewrites it
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (atomic on disk)."""
        self._memory[key] = payload
        self.stores += 1
        if not self.directory:
            return
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Hit/miss/store counters plus the backing directory."""
        return {
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return bool(self.directory) and os.path.exists(self._path(key))

    def __len__(self) -> int:
        if not self.directory:
            return len(self._memory)
        return sum(1 for n in os.listdir(self.directory) if n.endswith(".json"))
