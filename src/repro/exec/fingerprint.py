"""Content fingerprints for simulation configurations.

A grid cell is identified by ``(task name, parameter dict)``.  The
fingerprint is a SHA-256 digest of the canonical JSON form of that pair
plus a schema salt, so:

* the same config always hashes to the same key (dict insertion order,
  numpy scalar types, and tuples vs lists do not matter);
* any change to the payload schema (:data:`SCHEMA_SALT`) invalidates
  every cached entry at once — a cache can never serve a stale shape.

Only JSON-representable parameter values participate; numpy scalars and
arrays are coerced through ``item()`` / ``tolist()`` first.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["SCHEMA_SALT", "canonical_params", "fingerprint"]

#: Bump whenever the task payload schema changes shape.
SCHEMA_SALT = "repro.exec_payload/1"


def _coerce(value):
    """Make a parameter value canonically JSON-serializable."""
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    for attr in ("item",):  # numpy scalars
        fn = getattr(value, attr, None)
        if fn is not None and not isinstance(value, (int, float, bool, str)):
            return fn()
    tolist = getattr(value, "tolist", None)
    if tolist is not None and not isinstance(value, (int, float, bool, str)):
        return tolist()
    return value


def canonical_params(params: dict) -> str:
    """The canonical JSON form of a parameter dict (sorted keys, compact)."""
    return json.dumps(_coerce(dict(params)), sort_keys=True, separators=(",", ":"))


def fingerprint(task: str, params: dict, salt: str = SCHEMA_SALT) -> str:
    """SHA-256 hex digest identifying one ``(task, params)`` grid cell."""
    payload = f"{salt}\n{task}\n{canonical_params(params)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
