"""The ParallelRunner: shard independent simulation runs across cores.

Every benchmark grid (E1–E13), ``repro compare`` sweep, and workload
matrix is a list of *independent* deterministic simulations — exactly the
shape Rahn–Sanders–Singler exploit when they turn an external-sort
algorithm into a system: the engineering is in the execution layer, not
the algorithm.  :class:`ParallelRunner` is that layer for this repo:

* **sharding** — grid cells run in a ``ProcessPoolExecutor`` (``jobs``
  workers); each worker re-creates the simulation from its
  :class:`RunSpec` (task name + params), so nothing unpicklable crosses
  the process boundary;
* **content-hashed cache** — every cell is fingerprinted
  (:mod:`repro.exec.fingerprint`); hits skip execution entirely
  (:mod:`repro.exec.cache`);
* **deterministic ordering** — results come back in spec order no matter
  which worker finished first, so tables and reports are bit-identical
  to a serial run;
* **observability merging** — per-run metrics/trace payloads fold into a
  single registry / trace via :mod:`repro.exec.merge`;
* **failure isolation** — with ``retries``/``timeout`` configured, a
  fault (injected or real) in one cell never takes down the sweep: the
  attempt is retried with deterministic exponential backoff, a crashed
  worker triggers a pool rebuild that resubmits innocent cells *at the
  same attempt number* (crash attribution via
  :func:`~repro.resilience.exec_decision`), and a cell that exhausts its
  budget becomes a structured ``repro.failures/1`` payload instead of a
  traceback.  Failure payloads are **never cached** — a re-run retries
  them.

``jobs=None`` or ``jobs<=1`` runs serially in-process (no pool, no
pickling) but through the same cache, retry, and payload path, which is
what makes serial-vs-parallel bit-identity testable — including under a
seeded :class:`~repro.resilience.FaultPlan` (the chaos-determinism gate
of ``docs/resilience.md``).

Completed payloads are written to the cache **as each future lands**, so
a ``KeyboardInterrupt`` (or SIGKILL) mid-sweep leaves every finished
cell cached: the interrupted sweep is warm on restart.  The interrupt
handler additionally drains any already-completed-but-unprocessed
futures into the cache before shutting the pool down with
``cancel_futures=True`` and re-raising.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Iterable

from ..exceptions import InjectedWorkerCrash, PoisonedPayloadError, TaskTimeout
from ..obs.memory import memory_telemetry_enabled, peak_rss_kb
from ..obs.telemetry import PROGRESS_SCHEMA, TelemetryWriter, activate_telemetry
from ..pdm.machine import (
    collect_mem_stats,
    collect_plan_stats,
    merge_mem_snapshots,
    merge_plan_snapshots,
)
from ..resilience import FaultInjector, activate, exec_decision, grid_fingerprint
from .cache import ResultCache
from .fingerprint import SCHEMA_SALT, fingerprint
from .tasks import run_task

__all__ = ["RunSpec", "RunResult", "ParallelRunner", "grid", "FAILURES_SCHEMA"]

#: Schema tag of the structured payload a cell gets when it exhausts its
#: retry budget.  Failure payloads are never cached and never carry a
#: ``result`` — downstream consumers must branch on :attr:`RunResult.failed`.
FAILURES_SCHEMA = "repro.failures/1"

#: Schema tag a ``corrupt``-mode ``exec.task`` fault stamps on its poisoned
#: payload — guaranteed to fail the runner's schema validation.
_POISON_SCHEMA = "repro.poisoned/0"


@dataclass(frozen=True)
class RunSpec:
    """One grid cell: a registered task name plus its parameter dict."""

    task: str
    params: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """The cell's content hash (cache key)."""
        return fingerprint(self.task, self.params)


@dataclass
class RunResult:
    """One executed (or cache-served) grid cell, in spec order.

    ``failed=True`` marks a cell that exhausted its retry budget; its
    ``payload`` is then a ``repro.failures/1`` record (no ``result``).
    """

    spec: RunSpec
    payload: dict
    cached: bool = False
    key: str = ""
    failed: bool = False

    @property
    def result(self) -> dict:
        """The task's result summary (``payload["result"]``)."""
        return self.payload["result"]

    @property
    def error(self) -> dict | None:
        """The final-attempt error of a failed cell (or None)."""
        return self.payload.get("error") if self.failed else None


def grid(**axes) -> list[dict]:
    """The cartesian product of parameter axes, in deterministic order.

    ``grid(n=[4000, 16000], disks=[4, 8])`` yields four dicts; the last
    axis varies fastest (row-major over the axes in keyword order).
    Scalar values are broadcast as single-value axes.
    """
    cells: list[dict] = [{}]
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)):
            values = [values]
        cells = [{**cell, name: v} for cell in cells for v in values]
    return cells


def _execute(
    task: str,
    params: dict,
    plan=None,
    cell: str = "",
    attempt: int = 0,
    in_worker: bool = False,
    telemetry: str | None = None,
) -> dict:
    """Worker entry point (top-level, hence picklable).

    With a fault plan attached, one :class:`FaultInjector` scoped to this
    ``(cell, attempt)`` is installed as the ambient injector for the
    duration of the task: the exec gate fires first (raise / crash /
    hang), then every :class:`~repro.pdm.machine.ParallelDiskMachine` the
    task builds picks the injector up for ``store.*`` faults.  The
    injector deliberately carries **no observation** — task payloads must
    stay pure functions of ``(task, params)``, so chaos instrumentation
    never leaks into them (the chaos-determinism guarantee).

    With a ``telemetry`` path attached, a per-attempt
    :class:`~repro.obs.telemetry.TelemetryWriter` (its own append handle
    on the shared progress file) is installed as the ambient channel, so
    :func:`run_task` tees throttled phase progress into it.  Telemetry is
    an *observer* of the tracer stream, never an input — the payload is
    byte-identical with it on or off.

    Physical I/O-plan counters of every machine the task builds are
    collected ambiently and ride back under the reserved ``_plan_stats``
    key; the runner pops that key before the payload is validated,
    cached, or returned, so payload purity is untouched (cache bytes and
    results never see it).  Memory gauges (arena occupancy high waters,
    the internal-memory ledger peak, worker peak RSS) ride the same way
    under ``_mem_stats`` when ``REPRO_MEM_TELEMETRY`` is on.
    """
    gate = None
    mem_fns = None
    with ExitStack() as outer:
        plan_stats = outer.enter_context(collect_plan_stats())
        if memory_telemetry_enabled():
            mem_fns = outer.enter_context(collect_mem_stats())
        if plan is None and telemetry is None:
            payload = run_task(task, params)
        else:
            with ExitStack() as stack:
                if telemetry is not None:
                    writer = stack.enter_context(
                        TelemetryWriter(telemetry, source=f"cell:{cell[:16]}")
                    )
                    stack.enter_context(activate_telemetry(writer))
                if plan is not None:
                    injector = FaultInjector(plan, cell=cell, attempt=attempt)
                    stack.enter_context(activate(injector))
                    gate = injector.exec_gate(in_worker=in_worker)
                payload = run_task(task, params)
    if gate == "poison":
        return {"schema": _POISON_SCHEMA, "task": task}
    fused = merge_plan_snapshots(s.snapshot() for s in plan_stats)
    if any(fused.values()):
        payload["_plan_stats"] = fused
    if mem_fns is not None:
        mem = merge_mem_snapshots(fn() for fn in mem_fns)
        mem["peak_rss_kb"] = peak_rss_kb()
        if any(mem.values()):
            payload["_mem_stats"] = mem
    return payload


def _payload_rounds(payload: dict) -> int:
    """I/O round trips recorded in a payload's trace (for telemetry)."""
    return sum(
        1 for event in payload.get("trace", ())
        if event.get("ev") == "event"
        and event.get("name") in ("io.read", "io.write", "mem.step")
    )


def _validate_payload(payload, task: str) -> None:
    """Schema/shape check on a worker's payload (poison detection)."""
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != SCHEMA_SALT
        or "result" not in payload
    ):
        raise PoisonedPayloadError(
            f"worker returned an invalid payload for task {task!r}"
        )


class ParallelRunner:
    """Run specs across a process pool with caching and stable ordering.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None``, 0, or 1 → serial in-process
        execution (identical results; no pool overhead).
    cache_dir:
        Directory for the content-hashed result cache; ``None`` keeps an
        in-memory cache (still deduplicates repeated specs in one
        process).
    cache:
        Pass an existing :class:`ResultCache` to share across runners.
    obs:
        Optional :class:`~repro.obs.Observation`; retries, pool
        rebuilds, timeouts, and cell failures then emit ``retry.*`` /
        ``runner.*`` trace events and counters under the ``resilience``
        metrics scope (run-level only — never inside task payloads).
    retries:
        Extra attempts per cell after the first (default 0: one attempt,
        the legacy fail-fast behaviour surfaced as a failure record).
    timeout:
        Per-attempt wall-clock budget in seconds (pool mode only; a hung
        worker cannot be cancelled, so an expiry rebuilds the pool and
        resubmits the innocent in-flight cells at their same attempt).
    backoff:
        Base of the deterministic exponential backoff: attempt ``k``
        (0-based) sleeps ``backoff · 2^k`` before its retry.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; every attempt of
        every cell then runs under its own deterministic
        :class:`~repro.resilience.FaultInjector`.
    journal:
        Optional :class:`~repro.resilience.SweepJournal`; each cell's
        terminal state (``done`` / ``failed``) is checkpointed as it
        completes.
    telemetry:
        Optional live-progress channel: a
        :class:`~repro.obs.telemetry.TelemetryWriter` or a path to the
        JSONL file one should append to.  The runner then streams
        ``repro.progress/1`` lifecycle events (sweep/cell start+finish,
        retries, pool rebuilds) and workers tee throttled phase progress
        into the same file — run-level observability only; payload bytes
        are identical with telemetry on or off.

    ``jobs`` is clamped to the *usable* core count
    (:func:`default_jobs`): worker processes beyond the cores the
    scheduler will actually grant only add pickling and contention —
    on a 1-core host, ``--jobs 4`` measured ~0.63× the serial
    wall-clock before the clamp.  The requested and effective values
    are both reported in :attr:`stats`.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | None = None,
        cache: ResultCache | None = None,
        obs=None,
        retries: int = 0,
        timeout: float | None = None,
        backoff: float = 0.05,
        fault_plan=None,
        journal=None,
        telemetry=None,
    ):
        requested = int(jobs) if jobs else 0
        usable = default_jobs()
        self.jobs_requested = requested
        self.jobs = min(requested, usable) if requested > 1 else requested
        if requested > usable and obs is not None:
            obs.event(
                "runner.jobs_clamped", requested=requested, usable=usable
            )
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache or cache_dir, not both")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.retries = int(retries)
        self.timeout = timeout
        self.backoff = float(backoff)
        self.fault_plan = fault_plan
        self.journal = journal
        if isinstance(telemetry, str):
            telemetry = TelemetryWriter(telemetry)
        self.telemetry = telemetry
        self._telemetry_path = telemetry.path if telemetry is not None else None
        self._cell_started: dict[int, float] = {}
        self.executed = 0
        self.served_from_cache = 0
        self.retried = 0
        self.failed = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self._obs = obs
        self._scope = obs.scope("resilience") if obs is not None else None
        self._failed_payloads: dict[str, dict] = {}
        self._plan_snaps: list[dict] = []
        self._mem_snaps: list[dict] = []

    # ------------------------------------------------------- obs plumbing

    def _event(self, name: str, **fields) -> None:
        if self._obs is not None:
            self._obs.event(name, **fields)

    def _count(self, name: str, n: int = 1) -> None:
        if self._scope is not None:
            self._scope.counter(name).inc(n)

    def _tel(self, ev: str, **fields) -> None:
        """Emit one live-telemetry line (no-op without a channel)."""
        if self.telemetry is not None:
            self.telemetry.emit(ev, **fields)

    def _tel_finish(
        self, i: int, key: str, payload: dict, cached: bool, failed: bool,
        records=None,
    ) -> None:
        """The ``cell_finish`` telemetry line for one terminal cell state."""
        if self.telemetry is None:
            return
        fields = {"key": key, "index": i, "cached": cached, "failed": failed}
        started = self._cell_started.pop(i, None)
        if started is not None:
            seconds = time.monotonic() - started
            fields["seconds"] = round(seconds, 4)
            if not failed and records:
                fields["records"] = records
                if seconds > 0:
                    fields["records_per_sec"] = round(records / seconds, 1)
        if not failed:
            fields["rounds"] = _payload_rounds(payload)
        self.telemetry.emit("cell_finish", **fields)

    # ---------------------------------------------------------------- map

    def map(self, specs: Iterable[RunSpec]) -> list[RunResult]:
        """Execute every spec; results return in spec order.

        Cache hits are served without execution; duplicate specs within
        one call execute once (the second occurrence is a cache hit even
        with an in-memory cache).  Misses run serially or on the pool
        depending on ``jobs``; either way the returned list is ordered by
        input position, so downstream tables are bit-identical to a
        serial sweep.  Cells that exhaust their retry budget come back
        with ``failed=True`` and a ``repro.failures/1`` payload.
        """
        specs = list(specs)
        keys = [spec.fingerprint() for spec in specs]
        results: list[RunResult | None] = [None] * len(specs)
        t_sweep = time.monotonic()
        self._tel(
            "sweep_start",
            schema=PROGRESS_SCHEMA,
            task=specs[0].task if specs else "",
            cells=len(specs),
            jobs=self.jobs or 1,
            grid=grid_fingerprint(keys),
        )

        # Serve cache hits; collect the first occurrence of each missing key.
        pending: dict[str, int] = {}
        order: list[int] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if key in pending:
                continue  # duplicate of an in-flight miss; filled below
            payload = self.cache.get(key, obs=self._obs)
            if payload is not None:
                results[i] = RunResult(spec=spec, payload=payload, cached=True, key=key)
                self.served_from_cache += 1
                self._tel_finish(i, key, payload, cached=True, failed=False)
            else:
                pending[key] = i
                order.append(i)

        # Execute the misses (pool when jobs > 1, else inline).
        if order:
            if self.jobs > 1:
                self._map_pool(specs, keys, order, results)
            else:
                for i in order:
                    self._cell_started[i] = time.monotonic()
                    self._tel("cell_start", key=keys[i], index=i, attempt=0)
                    payload, failed = self._run_cell_serial(specs[i], keys[i])
                    self._finish(i, specs[i], keys[i], payload, failed, results)

        # Fill duplicates / late cache hits from the now-warm cache.
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if results[i] is None:
                failure = self._failed_payloads.get(key)
                if failure is not None:
                    results[i] = RunResult(
                        spec=spec, payload=failure, cached=False, key=key, failed=True
                    )
                    self._tel_finish(i, key, failure, cached=False, failed=True)
                    continue
                payload = self.cache.get(key, obs=self._obs)
                assert payload is not None  # just stored above
                results[i] = RunResult(spec=spec, payload=payload, cached=True, key=key)
                self.served_from_cache += 1
                self._tel_finish(i, key, payload, cached=True, failed=False)
        self._tel(
            "sweep_end",
            cells=len(specs),
            executed=self.executed,
            cached=self.served_from_cache,
            failed=self.failed,
            retried=self.retried,
            seconds=round(time.monotonic() - t_sweep, 3),
        )
        return results  # type: ignore[return-value]

    def _absorb_plan(self, payload) -> None:
        """Pop a cell's out-of-band sidecars (``_plan_stats``, ``_mem_stats``).

        Must run before the payload is validated, cached, or exposed in
        a result: plan shape and memory gauges are telemetry, and a
        cached serve must be byte-identical to a fresh execution.
        """
        if isinstance(payload, dict):
            side = payload.pop("_plan_stats", None)
            if side:
                self._plan_snaps.append(side)
            mem = payload.pop("_mem_stats", None)
            if mem:
                self._mem_snaps.append(mem)
                self._tel(
                    "cell_mem",
                    **{k: mem[k] for k in (
                        "high_water_blocks", "slab_bytes",
                        "ledger_high_water_records", "peak_rss_kb",
                    ) if k in mem},
                )

    # ------------------------------------------------------ cell plumbing

    def _finish(self, i, spec, key, payload, failed, results) -> None:
        """Record one cell's terminal state (cache, journal, counters)."""
        if failed:
            self.failed += 1
            self._failed_payloads[key] = payload
            results[i] = RunResult(
                spec=spec, payload=payload, cached=False, key=key, failed=True
            )
            self._event(
                "runner.cell_failed",
                key=key[:16],
                attempts=payload.get("attempts"),
                error=payload.get("error", {}).get("type"),
            )
            self._count("cell_failed")
        else:
            self.cache.put(key, payload)  # incremental: interrupts stay warm
            results[i] = RunResult(spec=spec, payload=payload, cached=False, key=key)
            self.executed += 1
        self._tel_finish(
            i, key, payload, cached=False, failed=failed,
            records=spec.params.get("n"),
        )
        if self.journal is not None:
            self.journal.record(key, "failed" if failed else "done")

    def _failure_payload(self, spec: RunSpec, key: str, errors: list[dict]) -> dict:
        """The structured ``repro.failures/1`` record for an exhausted cell."""
        return {
            "schema": FAILURES_SCHEMA,
            "task": spec.task,
            "params": dict(spec.params),
            "key": key,
            "attempts": len(errors),
            "retries": self.retries,
            "error": errors[-1],
            "errors": errors,
        }

    @staticmethod
    def _error_record(attempt: int, exc: BaseException) -> dict:
        return {
            "attempt": attempt,
            "type": type(exc).__name__,
            "message": str(exc),
        }

    def _note_retry(self, key: str, attempt: int, exc: BaseException) -> None:
        """Count one retry and sleep its deterministic backoff slot."""
        self.retried += 1
        delay = self.backoff * (2 ** attempt)
        self._event(
            "retry.attempt",
            key=key[:16],
            attempt=attempt + 1,
            error=type(exc).__name__,
            backoff=delay,
        )
        self._count("retry.attempt")
        self._tel(
            "cell_retry", key=key, attempt=attempt + 1,
            error=type(exc).__name__,
        )
        if delay > 0:
            time.sleep(delay)

    # --------------------------------------------------------- serial path

    def _run_cell_serial(self, spec: RunSpec, key: str) -> tuple[dict, bool]:
        """Run one cell inline with the full retry loop.

        Serial mode cannot preempt a wedged task, so ``timeout`` is a
        pool-mode feature; ``hang``-effect faults self-release after
        their configured duration, which keeps serial and pool retry
        accounting identical.
        """
        errors: list[dict] = []
        attempt = 0
        while True:
            try:
                payload = _execute(
                    spec.task, spec.params, self.fault_plan, key, attempt,
                    False, self._telemetry_path,
                )
                self._absorb_plan(payload)
                _validate_payload(payload, spec.task)
                return payload, False
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                errors.append(self._error_record(attempt, exc))
                if attempt >= self.retries:
                    return self._failure_payload(spec, key, errors), True
                self._note_retry(key, attempt, exc)
                attempt += 1

    # ----------------------------------------------------------- pool path

    def _map_pool(self, specs, keys, order, results) -> None:
        """Dispatch pending cells on a process pool with recovery.

        Three failure surfaces are handled:

        * a future resolving to an exception (injected fault, poison, or
          a real bug) → per-cell retry with backoff;
        * ``BrokenProcessPool`` (a worker died — in chaos runs, a
          ``crash``-effect fault calling ``os._exit``) → rebuild the
          pool, charge the crash to the cell whose plan *says* it
          crashed (:func:`~repro.resilience.exec_decision`, a pure
          function of ``(plan, cell, attempt)``), and resubmit every
          innocent in-flight cell at its **same** attempt number, so
          pool and serial sweeps converge on identical retry accounting;
        * a per-attempt ``timeout`` expiring → hung workers cannot be
          cancelled, so this also rebuilds the pool; expired cells are
          charged a :class:`~repro.exceptions.TaskTimeout`, innocents
          resubmit unchanged.

        A bounded rebuild budget stops a genuinely broken environment
        (workers dying for non-injected reasons) from rebuilding
        forever: once exhausted, crashed cells are charged directly.
        """
        state = {i: {"attempt": 0, "errors": []} for i in order}
        inflight: dict = {}  # future -> (index, attempt)
        deadlines: dict = {}  # future -> monotonic deadline (or None)
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        rebuilds_left = self.jobs + (self.retries + 1) * len(order) + 2

        def submit(idx: int) -> None:
            st = state[idx]
            if idx not in self._cell_started:
                self._cell_started[idx] = time.monotonic()
            self._tel(
                "cell_start", key=keys[idx], index=idx, attempt=st["attempt"]
            )
            f = pool.submit(
                _execute,
                specs[idx].task,
                specs[idx].params,
                self.fault_plan,
                keys[idx],
                st["attempt"],
                True,
                self._telemetry_path,
            )
            inflight[f] = (idx, st["attempt"])
            deadlines[f] = (
                time.monotonic() + self.timeout if self.timeout else None
            )

        def charge(idx: int, attempt: int, exc: BaseException, resubmit: list) -> None:
            st = state[idx]
            st["errors"].append(self._error_record(attempt, exc))
            if attempt >= self.retries:
                payload = self._failure_payload(specs[idx], keys[idx], st["errors"])
                self._finish(idx, specs[idx], keys[idx], payload, True, results)
                return
            self._note_retry(keys[idx], attempt, exc)
            st["attempt"] = attempt + 1
            resubmit.append(idx)

        def settle(f, idx: int, attempt: int, resubmit: list) -> bool:
            """Process one completed future; True unless the pool broke."""
            try:
                payload = f.result()
                self._absorb_plan(payload)
                _validate_payload(payload, specs[idx].task)
            except BrokenProcessPool:
                return False
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                charge(idx, attempt, exc, resubmit)
                return True
            self._finish(idx, specs[idx], keys[idx], payload, False, results)
            return True

        def rebuild(reason: str):
            nonlocal pool, rebuilds_left
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=self.jobs)
            self.pool_rebuilds += 1
            rebuilds_left -= 1
            self._event("runner.pool_rebuilt", reason=reason)
            self._count("pool_rebuilds")
            self._tel("pool_rebuilt", reason=reason)

        try:
            for idx in order:
                submit(idx)
            while inflight:
                wait_for = None
                if self.timeout is not None:
                    now = time.monotonic()
                    nearest = min(d for d in deadlines.values() if d is not None)
                    wait_for = max(0.0, nearest - now) + 0.02
                done, _ = wait(
                    set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                resubmit: list[int] = []
                crashed: list[tuple[int, int]] = []
                for f in done:
                    idx, attempt = inflight.pop(f)
                    deadlines.pop(f, None)
                    if not settle(f, idx, attempt, resubmit):
                        crashed.append((idx, attempt))
                if crashed:
                    # The pool is broken: drain what finished, bucket the rest.
                    for f, (idx, attempt) in list(inflight.items()):
                        if f.done() and settle(f, idx, attempt, resubmit):
                            continue
                        crashed.append((idx, attempt))
                    inflight.clear()
                    deadlines.clear()
                    rebuild("crash")
                    for idx, attempt in crashed:
                        rule = (
                            exec_decision(self.fault_plan, keys[idx], attempt)
                            if self.fault_plan is not None
                            else None
                        )
                        if rule is not None and rule.effect == "crash":
                            charge(
                                idx,
                                attempt,
                                InjectedWorkerCrash(
                                    f"injected {rule.mode} worker crash "
                                    f"(attempt {attempt})"
                                ),
                                resubmit,
                            )
                        elif rebuilds_left <= 0:
                            charge(
                                idx,
                                attempt,
                                RuntimeError("worker process crashed"),
                                resubmit,
                            )
                        else:
                            resubmit.append(idx)  # innocent: same attempt
                elif self.timeout is not None and inflight:
                    now = time.monotonic()
                    if any(
                        d is not None and now > d for d in deadlines.values()
                    ):
                        # A wedged worker can't be cancelled: rebuild, charge
                        # the expired cells, resubmit the innocents as-is.
                        expired: list[tuple[int, int]] = []
                        for f, (idx, attempt) in list(inflight.items()):
                            d = deadlines.get(f)
                            if f.done():
                                if not settle(f, idx, attempt, resubmit):
                                    expired.append((idx, attempt))
                            elif d is not None and now > d:
                                expired.append((idx, attempt))
                            else:
                                resubmit.append(idx)
                        inflight.clear()
                        deadlines.clear()
                        rebuild("timeout")
                        for idx, attempt in expired:
                            self.timeouts += 1
                            self._count("timeouts")
                            charge(
                                idx,
                                attempt,
                                TaskTimeout(
                                    f"cell exceeded the {self.timeout}s "
                                    f"per-attempt timeout (attempt {attempt})"
                                ),
                                resubmit,
                            )
                for idx in resubmit:
                    submit(idx)
        except KeyboardInterrupt:
            # Persist every already-finished payload so restart is warm,
            # then cancel what never started and re-raise.
            for f, (idx, attempt) in inflight.items():
                if not f.done() or results[idx] is not None:
                    continue
                try:
                    payload = f.result()
                    self._absorb_plan(payload)
                    _validate_payload(payload, specs[idx].task)
                except BaseException:
                    continue
                self._finish(idx, specs[idx], keys[idx], payload, False, results)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown()

    # -------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Execution, cache, and resilience counters for reporting.

        ``jobs`` is the *effective* worker count after the usable-core
        clamp; ``jobs_requested`` preserves what the caller asked for.
        """
        return {
            "jobs": self.jobs or 1,
            "jobs_requested": self.jobs_requested or 1,
            "executed": self.executed,
            "served_from_cache": self.served_from_cache,
            "retried": self.retried,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "cache": self.cache.stats,
            # Physical-fusion telemetry summed over the freshly executed
            # cells (cache hits ran no simulation, so contribute nothing).
            "io_plan": merge_plan_snapshots(self._plan_snaps),
            # Memory gauges folded the same way (counters add, high
            # waters max); all-zero when REPRO_MEM_TELEMETRY is off.
            "memory": merge_mem_snapshots(self._mem_snaps),
        }


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the usable core count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
