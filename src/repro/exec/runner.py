"""The ParallelRunner: shard independent simulation runs across cores.

Every benchmark grid (E1–E13), ``repro compare`` sweep, and workload
matrix is a list of *independent* deterministic simulations — exactly the
shape Rahn–Sanders–Singler exploit when they turn an external-sort
algorithm into a system: the engineering is in the execution layer, not
the algorithm.  :class:`ParallelRunner` is that layer for this repo:

* **sharding** — grid cells run in a ``ProcessPoolExecutor`` (``jobs``
  workers); each worker re-creates the simulation from its
  :class:`RunSpec` (task name + params), so nothing unpicklable crosses
  the process boundary;
* **content-hashed cache** — every cell is fingerprinted
  (:mod:`repro.exec.fingerprint`); hits skip execution entirely
  (:mod:`repro.exec.cache`);
* **deterministic ordering** — results come back in spec order no matter
  which worker finished first, so tables and reports are bit-identical
  to a serial run;
* **observability merging** — per-run metrics/trace payloads fold into a
  single registry / trace via :mod:`repro.exec.merge`.

``jobs=None`` or ``jobs<=1`` runs serially in-process (no pool, no
pickling) but through the same cache and payload path, which is what
makes serial-vs-parallel bit-identity testable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .cache import ResultCache
from .fingerprint import fingerprint
from .tasks import run_task

__all__ = ["RunSpec", "RunResult", "ParallelRunner", "grid"]


@dataclass(frozen=True)
class RunSpec:
    """One grid cell: a registered task name plus its parameter dict."""

    task: str
    params: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """The cell's content hash (cache key)."""
        return fingerprint(self.task, self.params)


@dataclass
class RunResult:
    """One executed (or cache-served) grid cell, in spec order."""

    spec: RunSpec
    payload: dict
    cached: bool = False
    key: str = ""

    @property
    def result(self) -> dict:
        """The task's result summary (``payload["result"]``)."""
        return self.payload["result"]


def grid(**axes) -> list[dict]:
    """The cartesian product of parameter axes, in deterministic order.

    ``grid(n=[4000, 16000], disks=[4, 8])`` yields four dicts; the last
    axis varies fastest (row-major over the axes in keyword order).
    Scalar values are broadcast as single-value axes.
    """
    cells: list[dict] = [{}]
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)):
            values = [values]
        cells = [{**cell, name: v} for cell in cells for v in values]
    return cells


def _execute(task: str, params: dict) -> dict:
    """Worker entry point (top-level, hence picklable)."""
    return run_task(task, params)


class ParallelRunner:
    """Run specs across a process pool with caching and stable ordering.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None``, 0, or 1 → serial in-process
        execution (identical results; no pool overhead).
    cache_dir:
        Directory for the content-hashed result cache; ``None`` keeps an
        in-memory cache (still deduplicates repeated specs in one
        process).
    cache:
        Pass an existing :class:`ResultCache` to share across runners.
    obs:
        Optional :class:`~repro.obs.Observation`; an oversubscription
        clamp emits a ``runner.jobs_clamped`` trace event on it.

    ``jobs`` is clamped to the *usable* core count
    (:func:`default_jobs`): worker processes beyond the cores the
    scheduler will actually grant only add pickling and contention —
    on a 1-core host, ``--jobs 4`` measured ~0.63× the serial
    wall-clock before the clamp.  The requested and effective values
    are both reported in :attr:`stats`.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | None = None,
        cache: ResultCache | None = None,
        obs=None,
    ):
        requested = int(jobs) if jobs else 0
        usable = default_jobs()
        self.jobs_requested = requested
        self.jobs = min(requested, usable) if requested > 1 else requested
        if requested > usable and obs is not None:
            obs.event(
                "runner.jobs_clamped", requested=requested, usable=usable
            )
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache or cache_dir, not both")
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.executed = 0
        self.served_from_cache = 0

    # ---------------------------------------------------------------- map

    def map(self, specs: Iterable[RunSpec]) -> list[RunResult]:
        """Execute every spec; results return in spec order.

        Cache hits are served without execution; duplicate specs within
        one call execute once (the second occurrence is a cache hit even
        with an in-memory cache).  Misses run serially or on the pool
        depending on ``jobs``; either way the returned list is ordered by
        input position, so downstream tables are bit-identical to a
        serial sweep.
        """
        specs = list(specs)
        keys = [spec.fingerprint() for spec in specs]
        results: list[RunResult | None] = [None] * len(specs)

        # Serve cache hits; collect the first occurrence of each missing key.
        pending: dict[str, int] = {}
        order: list[int] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if key in pending:
                continue  # duplicate of an in-flight miss; filled below
            payload = self.cache.get(key)
            if payload is not None:
                results[i] = RunResult(spec=spec, payload=payload, cached=True, key=key)
                self.served_from_cache += 1
            else:
                pending[key] = i
                order.append(i)

        # Execute the misses (pool when jobs > 1, else inline).
        if order:
            if self.jobs > 1:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    futures = [
                        pool.submit(_execute, specs[i].task, specs[i].params)
                        for i in order
                    ]
                    payloads = [f.result() for f in futures]
            else:
                payloads = [
                    _execute(specs[i].task, specs[i].params) for i in order
                ]
            for i, payload in zip(order, payloads):
                self.cache.put(keys[i], payload)
                results[i] = RunResult(
                    spec=specs[i], payload=payload, cached=False, key=keys[i]
                )
                self.executed += 1

        # Fill duplicates / late cache hits from the now-warm cache.
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if results[i] is None:
                payload = self.cache.get(key)
                assert payload is not None  # just stored above
                results[i] = RunResult(spec=spec, payload=payload, cached=True, key=key)
                self.served_from_cache += 1
        return results  # type: ignore[return-value]

    # -------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Execution and cache counters for reporting.

        ``jobs`` is the *effective* worker count after the usable-core
        clamp; ``jobs_requested`` preserves what the caller asked for.
        """
        return {
            "jobs": self.jobs or 1,
            "jobs_requested": self.jobs_requested or 1,
            "executed": self.executed,
            "served_from_cache": self.served_from_cache,
            "cache": self.cache.stats,
        }


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the usable core count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
