"""The ParallelRunner: shard independent simulation runs across cores.

Every benchmark grid (E1–E13), ``repro compare`` sweep, and workload
matrix is a list of *independent* deterministic simulations — exactly the
shape Rahn–Sanders–Singler exploit when they turn an external-sort
algorithm into a system: the engineering is in the execution layer, not
the algorithm.  :class:`ParallelRunner` is that layer for this repo:

* **sharding** — grid cells run in a ``ProcessPoolExecutor`` (``jobs``
  workers); each worker re-creates the simulation from its
  :class:`RunSpec` (task name + params), so nothing unpicklable crosses
  the process boundary;
* **content-hashed cache** — every cell is fingerprinted
  (:mod:`repro.exec.fingerprint`); hits skip execution entirely
  (:mod:`repro.exec.cache`);
* **deterministic ordering** — results come back in spec order no matter
  which worker finished first, so tables and reports are bit-identical
  to a serial run;
* **observability merging** — per-run metrics/trace payloads fold into a
  single registry / trace via :mod:`repro.exec.merge`;
* **failure isolation** — with ``retries``/``timeout`` configured, a
  fault (injected or real) in one cell never takes down the sweep: the
  attempt is retried with deterministic exponential backoff, a crashed
  worker triggers a pool rebuild that resubmits innocent cells *at the
  same attempt number* (crash attribution via
  :func:`~repro.resilience.exec_decision`), and a cell that exhausts its
  budget becomes a structured ``repro.failures/1`` payload instead of a
  traceback.  Failure payloads are **never cached** — a re-run retries
  them.

``jobs=None`` or ``jobs<=1`` runs serially in-process (no pool, no
pickling) but through the same cache, retry, and payload path, which is
what makes serial-vs-parallel bit-identity testable — including under a
seeded :class:`~repro.resilience.FaultPlan` (the chaos-determinism gate
of ``docs/resilience.md``).

Completed payloads are written to the cache **as each future lands**, so
a ``KeyboardInterrupt`` (or SIGKILL) mid-sweep leaves every finished
cell cached: the interrupted sweep is warm on restart.  The interrupt
handler additionally drains any already-completed-but-unprocessed
futures into the cache before shutting the pool down with
``cancel_futures=True`` and re-raising.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..exceptions import InjectedWorkerCrash, PoisonedPayloadError, TaskTimeout
from ..obs.memory import memory_telemetry_enabled, peak_rss_kb
from ..obs.telemetry import PROGRESS_SCHEMA, TelemetryWriter, activate_telemetry
from ..pdm.machine import (
    collect_mem_stats,
    collect_plan_stats,
    merge_mem_snapshots,
    merge_plan_snapshots,
)
from ..resilience import FaultInjector, activate, exec_decision, grid_fingerprint
from .cache import ResultCache
from .fingerprint import SCHEMA_SALT, fingerprint
from .tasks import run_task

__all__ = [
    "RunSpec",
    "RunResult",
    "ParallelRunner",
    "Job",
    "JobRunner",
    "grid",
    "FAILURES_SCHEMA",
    "DEFAULT_BACKOFF_MAX",
    "error_record",
    "failure_payload",
]

#: Schema tag of the structured payload a cell gets when it exhausts its
#: retry budget.  Failure payloads are never cached and never carry a
#: ``result`` — downstream consumers must branch on :attr:`RunResult.failed`.
FAILURES_SCHEMA = "repro.failures/1"

#: Schema tag a ``corrupt``-mode ``exec.task`` fault stamps on its poisoned
#: payload — guaranteed to fail the runner's schema validation.
_POISON_SCHEMA = "repro.poisoned/0"

#: Default cap on the *total* deterministic-backoff sleep one cell may
#: accumulate across its retries.  Without a cap, a permanent-fault plan
#: with a generous retry budget sleeps ``backoff · (2^k - 1)`` per cell —
#: minutes of dead air for payloads that were never going to arrive.
DEFAULT_BACKOFF_MAX = 5.0


def error_record(attempt: int, exc: BaseException) -> dict:
    """One structured entry in a cell's error history."""
    return {
        "attempt": attempt,
        "type": type(exc).__name__,
        "message": str(exc),
    }


def failure_payload(
    task: str, params: dict, key: str, errors: list[dict], retries: int
) -> dict:
    """The structured ``repro.failures/1`` record for an exhausted cell."""
    return {
        "schema": FAILURES_SCHEMA,
        "task": task,
        "params": dict(params),
        "key": key,
        "attempts": len(errors),
        "retries": retries,
        "error": errors[-1],
        "errors": errors,
    }


@dataclass(frozen=True)
class RunSpec:
    """One grid cell: a registered task name plus its parameter dict."""

    task: str
    params: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """The cell's content hash (cache key)."""
        return fingerprint(self.task, self.params)


@dataclass
class RunResult:
    """One executed (or cache-served) grid cell, in spec order.

    ``failed=True`` marks a cell that exhausted its retry budget; its
    ``payload`` is then a ``repro.failures/1`` record (no ``result``).
    """

    spec: RunSpec
    payload: dict
    cached: bool = False
    key: str = ""
    failed: bool = False

    @property
    def result(self) -> dict:
        """The task's result summary (``payload["result"]``)."""
        return self.payload["result"]

    @property
    def error(self) -> dict | None:
        """The final-attempt error of a failed cell (or None)."""
        return self.payload.get("error") if self.failed else None


def grid(**axes) -> list[dict]:
    """The cartesian product of parameter axes, in deterministic order.

    ``grid(n=[4000, 16000], disks=[4, 8])`` yields four dicts; the last
    axis varies fastest (row-major over the axes in keyword order).
    Scalar values are broadcast as single-value axes.
    """
    cells: list[dict] = [{}]
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)):
            values = [values]
        cells = [{**cell, name: v} for cell in cells for v in values]
    return cells


def _execute(
    task: str,
    params: dict,
    plan=None,
    cell: str = "",
    attempt: int = 0,
    in_worker: bool = False,
    telemetry: str | None = None,
) -> dict:
    """Worker entry point (top-level, hence picklable).

    With a fault plan attached, one :class:`FaultInjector` scoped to this
    ``(cell, attempt)`` is installed as the ambient injector for the
    duration of the task: the exec gate fires first (raise / crash /
    hang), then every :class:`~repro.pdm.machine.ParallelDiskMachine` the
    task builds picks the injector up for ``store.*`` faults.  The
    injector deliberately carries **no observation** — task payloads must
    stay pure functions of ``(task, params)``, so chaos instrumentation
    never leaks into them (the chaos-determinism guarantee).

    With a ``telemetry`` path attached, a per-attempt
    :class:`~repro.obs.telemetry.TelemetryWriter` (its own append handle
    on the shared progress file) is installed as the ambient channel, so
    :func:`run_task` tees throttled phase progress into it.  Telemetry is
    an *observer* of the tracer stream, never an input — the payload is
    byte-identical with it on or off.

    Physical I/O-plan counters of every machine the task builds are
    collected ambiently and ride back under the reserved ``_plan_stats``
    key; the runner pops that key before the payload is validated,
    cached, or returned, so payload purity is untouched (cache bytes and
    results never see it).  Memory gauges (arena occupancy high waters,
    the internal-memory ledger peak, worker peak RSS) ride the same way
    under ``_mem_stats`` when ``REPRO_MEM_TELEMETRY`` is on.
    """
    gate = None
    mem_fns = None
    with ExitStack() as outer:
        plan_stats = outer.enter_context(collect_plan_stats())
        if memory_telemetry_enabled():
            mem_fns = outer.enter_context(collect_mem_stats())
        if plan is None and telemetry is None:
            payload = run_task(task, params)
        else:
            with ExitStack() as stack:
                if telemetry is not None:
                    writer = stack.enter_context(
                        TelemetryWriter(telemetry, source=f"cell:{cell[:16]}")
                    )
                    stack.enter_context(activate_telemetry(writer))
                if plan is not None:
                    injector = FaultInjector(plan, cell=cell, attempt=attempt)
                    stack.enter_context(activate(injector))
                    gate = injector.exec_gate(in_worker=in_worker)
                payload = run_task(task, params)
    if gate == "poison":
        return {"schema": _POISON_SCHEMA, "task": task}
    fused = merge_plan_snapshots(s.snapshot() for s in plan_stats)
    if any(fused.values()):
        payload["_plan_stats"] = fused
    if mem_fns is not None:
        mem = merge_mem_snapshots(fn() for fn in mem_fns)
        mem["peak_rss_kb"] = peak_rss_kb()
        if any(mem.values()):
            payload["_mem_stats"] = mem
    return payload


def _payload_rounds(payload: dict) -> int:
    """I/O round trips recorded in a payload's trace (for telemetry)."""
    return sum(
        1 for event in payload.get("trace", ())
        if event.get("ev") == "event"
        and event.get("name") in ("io.read", "io.write", "mem.step")
    )


def _validate_payload(payload, task: str) -> None:
    """Schema/shape check on a worker's payload (poison detection)."""
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != SCHEMA_SALT
        or "result" not in payload
    ):
        raise PoisonedPayloadError(
            f"worker returned an invalid payload for task {task!r}"
        )


class ParallelRunner:
    """Run specs across a process pool with caching and stable ordering.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None``, 0, or 1 → serial in-process
        execution (identical results; no pool overhead).
    cache_dir:
        Directory for the content-hashed result cache; ``None`` keeps an
        in-memory cache (still deduplicates repeated specs in one
        process).
    cache:
        Pass an existing :class:`ResultCache` to share across runners.
    obs:
        Optional :class:`~repro.obs.Observation`; retries, pool
        rebuilds, timeouts, and cell failures then emit ``retry.*`` /
        ``runner.*`` trace events and counters under the ``resilience``
        metrics scope (run-level only — never inside task payloads).
    retries:
        Extra attempts per cell after the first (default 0: one attempt,
        the legacy fail-fast behaviour surfaced as a failure record).
    timeout:
        Per-attempt wall-clock budget in seconds (pool mode only; a hung
        worker cannot be cancelled, so an expiry rebuilds the pool and
        resubmits the innocent in-flight cells at their same attempt).
    backoff:
        Base of the deterministic exponential backoff: attempt ``k``
        (0-based) sleeps ``backoff · 2^k`` before its retry.
    backoff_max:
        Cap on the *cumulative* backoff sleep per cell (seconds,
        default :data:`DEFAULT_BACKOFF_MAX`); once a cell has slept its
        budget, further retries fire immediately.  ``None`` disables
        the cap (the pre-cap behaviour, unbounded under permanent
        fault plans with high retry budgets).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; every attempt of
        every cell then runs under its own deterministic
        :class:`~repro.resilience.FaultInjector`.
    journal:
        Optional :class:`~repro.resilience.SweepJournal`; each cell's
        terminal state (``done`` / ``failed``) is checkpointed as it
        completes.
    telemetry:
        Optional live-progress channel: a
        :class:`~repro.obs.telemetry.TelemetryWriter` or a path to the
        JSONL file one should append to.  The runner then streams
        ``repro.progress/1`` lifecycle events (sweep/cell start+finish,
        retries, pool rebuilds) and workers tee throttled phase progress
        into the same file — run-level observability only; payload bytes
        are identical with telemetry on or off.

    ``jobs`` is clamped to the *usable* core count
    (:func:`default_jobs`): worker processes beyond the cores the
    scheduler will actually grant only add pickling and contention —
    on a 1-core host, ``--jobs 4`` measured ~0.63× the serial
    wall-clock before the clamp.  The requested and effective values
    are both reported in :attr:`stats`.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | None = None,
        cache: ResultCache | None = None,
        obs=None,
        retries: int = 0,
        timeout: float | None = None,
        backoff: float = 0.05,
        backoff_max: float | None = DEFAULT_BACKOFF_MAX,
        fault_plan=None,
        journal=None,
        telemetry=None,
    ):
        requested = int(jobs) if jobs else 0
        usable = default_jobs()
        self.jobs_requested = requested
        self.jobs = min(requested, usable) if requested > 1 else requested
        if requested > usable and obs is not None:
            obs.event(
                "runner.jobs_clamped", requested=requested, usable=usable
            )
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache or cache_dir, not both")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if backoff_max is not None and backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {backoff_max}")
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.retries = int(retries)
        self.timeout = timeout
        self.backoff = float(backoff)
        self.backoff_max = None if backoff_max is None else float(backoff_max)
        self.fault_plan = fault_plan
        self.journal = journal
        if isinstance(telemetry, str):
            telemetry = TelemetryWriter(telemetry)
        self.telemetry = telemetry
        self._telemetry_path = telemetry.path if telemetry is not None else None
        self._cell_started: dict[int, float] = {}
        self.executed = 0
        self.served_from_cache = 0
        self.retried = 0
        self.failed = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.backoff_capped = 0
        self._backoff_slept: dict[str, float] = {}
        self._obs = obs
        self._scope = obs.scope("resilience") if obs is not None else None
        self._failed_payloads: dict[str, dict] = {}
        self._plan_snaps: list[dict] = []
        self._mem_snaps: list[dict] = []

    # ------------------------------------------------------- obs plumbing

    def _event(self, name: str, **fields) -> None:
        if self._obs is not None:
            self._obs.event(name, **fields)

    def _count(self, name: str, n: int = 1) -> None:
        if self._scope is not None:
            self._scope.counter(name).inc(n)

    def _tel(self, ev: str, **fields) -> None:
        """Emit one live-telemetry line (no-op without a channel)."""
        if self.telemetry is not None:
            self.telemetry.emit(ev, **fields)

    def _tel_finish(
        self, i: int, key: str, payload: dict, cached: bool, failed: bool,
        records=None,
    ) -> None:
        """The ``cell_finish`` telemetry line for one terminal cell state."""
        if self.telemetry is None:
            return
        fields = {"key": key, "index": i, "cached": cached, "failed": failed}
        started = self._cell_started.pop(i, None)
        if started is not None:
            seconds = time.monotonic() - started
            fields["seconds"] = round(seconds, 4)
            if not failed and records:
                fields["records"] = records
                if seconds > 0:
                    fields["records_per_sec"] = round(records / seconds, 1)
        if not failed:
            fields["rounds"] = _payload_rounds(payload)
        self.telemetry.emit("cell_finish", **fields)

    # ---------------------------------------------------------------- map

    def map(self, specs: Iterable[RunSpec]) -> list[RunResult]:
        """Execute every spec; results return in spec order.

        Cache hits are served without execution; duplicate specs within
        one call execute once (the second occurrence is a cache hit even
        with an in-memory cache).  Misses run serially or on the pool
        depending on ``jobs``; either way the returned list is ordered by
        input position, so downstream tables are bit-identical to a
        serial sweep.  Cells that exhaust their retry budget come back
        with ``failed=True`` and a ``repro.failures/1`` payload.
        """
        specs = list(specs)
        keys = [spec.fingerprint() for spec in specs]
        results: list[RunResult | None] = [None] * len(specs)
        t_sweep = time.monotonic()
        self._tel(
            "sweep_start",
            schema=PROGRESS_SCHEMA,
            task=specs[0].task if specs else "",
            cells=len(specs),
            jobs=self.jobs or 1,
            grid=grid_fingerprint(keys),
        )

        # Serve cache hits; collect the first occurrence of each missing key.
        pending: dict[str, int] = {}
        order: list[int] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if key in pending:
                continue  # duplicate of an in-flight miss; filled below
            payload = self.cache.get(key, obs=self._obs)
            if payload is not None:
                results[i] = RunResult(spec=spec, payload=payload, cached=True, key=key)
                self.served_from_cache += 1
                self._tel_finish(i, key, payload, cached=True, failed=False)
            else:
                pending[key] = i
                order.append(i)

        # Execute the misses (pool when jobs > 1, else inline).
        if order:
            if self.jobs > 1:
                self._map_pool(specs, keys, order, results)
            else:
                for i in order:
                    self._cell_started[i] = time.monotonic()
                    self._tel("cell_start", key=keys[i], index=i, attempt=0)
                    payload, failed = self._run_cell_serial(specs[i], keys[i])
                    self._finish(i, specs[i], keys[i], payload, failed, results)

        # Fill duplicates / late cache hits from the now-warm cache.
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if results[i] is None:
                failure = self._failed_payloads.get(key)
                if failure is not None:
                    results[i] = RunResult(
                        spec=spec, payload=failure, cached=False, key=key, failed=True
                    )
                    self._tel_finish(i, key, failure, cached=False, failed=True)
                    continue
                payload = self.cache.get(key, obs=self._obs)
                assert payload is not None  # just stored above
                results[i] = RunResult(spec=spec, payload=payload, cached=True, key=key)
                self.served_from_cache += 1
                self._tel_finish(i, key, payload, cached=True, failed=False)
        self._tel(
            "sweep_end",
            cells=len(specs),
            executed=self.executed,
            cached=self.served_from_cache,
            failed=self.failed,
            retried=self.retried,
            seconds=round(time.monotonic() - t_sweep, 3),
        )
        return results  # type: ignore[return-value]

    def _absorb_plan(self, payload) -> None:
        """Pop a cell's out-of-band sidecars (``_plan_stats``, ``_mem_stats``).

        Must run before the payload is validated, cached, or exposed in
        a result: plan shape and memory gauges are telemetry, and a
        cached serve must be byte-identical to a fresh execution.
        """
        if isinstance(payload, dict):
            side = payload.pop("_plan_stats", None)
            if side:
                self._plan_snaps.append(side)
            mem = payload.pop("_mem_stats", None)
            if mem:
                self._mem_snaps.append(mem)
                self._tel(
                    "cell_mem",
                    **{k: mem[k] for k in (
                        "high_water_blocks", "slab_bytes",
                        "ledger_high_water_records", "peak_rss_kb",
                    ) if k in mem},
                )

    # ------------------------------------------------------ cell plumbing

    def _finish(self, i, spec, key, payload, failed, results) -> None:
        """Record one cell's terminal state (cache, journal, counters)."""
        if failed:
            self.failed += 1
            self._failed_payloads[key] = payload
            results[i] = RunResult(
                spec=spec, payload=payload, cached=False, key=key, failed=True
            )
            self._event(
                "runner.cell_failed",
                key=key[:16],
                attempts=payload.get("attempts"),
                error=payload.get("error", {}).get("type"),
            )
            self._count("cell_failed")
        else:
            self.cache.put(key, payload)  # incremental: interrupts stay warm
            results[i] = RunResult(spec=spec, payload=payload, cached=False, key=key)
            self.executed += 1
        self._tel_finish(
            i, key, payload, cached=False, failed=failed,
            records=spec.params.get("n"),
        )
        if self.journal is not None:
            self.journal.record(key, "failed" if failed else "done")

    def _failure_payload(self, spec: RunSpec, key: str, errors: list[dict]) -> dict:
        """The structured ``repro.failures/1`` record for an exhausted cell."""
        return failure_payload(spec.task, spec.params, key, errors, self.retries)

    @staticmethod
    def _error_record(attempt: int, exc: BaseException) -> dict:
        return error_record(attempt, exc)

    def _backoff_delay(self, key: str, attempt: int) -> float:
        """The capped deterministic backoff slot for one retry of ``key``.

        The exponential schedule ``backoff · 2^attempt`` is clipped so a
        cell's *cumulative* sleep never exceeds ``backoff_max`` — a
        permanent-fault plan with a deep retry budget then degrades to
        immediate retries instead of stalling the sweep unboundedly.
        """
        delay = self.backoff * (2 ** attempt)
        if self.backoff_max is not None:
            spent = self._backoff_slept.get(key, 0.0)
            budget = max(0.0, self.backoff_max - spent)
            if delay > budget:
                delay = budget
                self.backoff_capped += 1
        if delay > 0:
            self._backoff_slept[key] = self._backoff_slept.get(key, 0.0) + delay
        return delay

    def _note_retry(self, key: str, attempt: int, exc: BaseException) -> None:
        """Count one retry and sleep its deterministic backoff slot."""
        self.retried += 1
        delay = self._backoff_delay(key, attempt)
        self._event(
            "retry.attempt",
            key=key[:16],
            attempt=attempt + 1,
            error=type(exc).__name__,
            backoff=delay,
        )
        self._count("retry.attempt")
        self._tel(
            "cell_retry", key=key, attempt=attempt + 1,
            error=type(exc).__name__,
        )
        if delay > 0:
            time.sleep(delay)

    # --------------------------------------------------------- serial path

    def _run_cell_serial(self, spec: RunSpec, key: str) -> tuple[dict, bool]:
        """Run one cell inline with the full retry loop.

        Serial mode cannot preempt a wedged task, so ``timeout`` is a
        pool-mode feature; ``hang``-effect faults self-release after
        their configured duration, which keeps serial and pool retry
        accounting identical.
        """
        errors: list[dict] = []
        attempt = 0
        while True:
            try:
                payload = _execute(
                    spec.task, spec.params, self.fault_plan, key, attempt,
                    False, self._telemetry_path,
                )
                self._absorb_plan(payload)
                _validate_payload(payload, spec.task)
                return payload, False
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                errors.append(self._error_record(attempt, exc))
                if attempt >= self.retries:
                    return self._failure_payload(spec, key, errors), True
                self._note_retry(key, attempt, exc)
                attempt += 1

    # ----------------------------------------------------------- pool path

    def _map_pool(self, specs, keys, order, results) -> None:
        """Dispatch pending cells on a process pool with recovery.

        Three failure surfaces are handled:

        * a future resolving to an exception (injected fault, poison, or
          a real bug) → per-cell retry with backoff;
        * ``BrokenProcessPool`` (a worker died — in chaos runs, a
          ``crash``-effect fault calling ``os._exit``) → rebuild the
          pool, charge the crash to the cell whose plan *says* it
          crashed (:func:`~repro.resilience.exec_decision`, a pure
          function of ``(plan, cell, attempt)``), and resubmit every
          innocent in-flight cell at its **same** attempt number, so
          pool and serial sweeps converge on identical retry accounting;
        * a per-attempt ``timeout`` expiring → hung workers cannot be
          cancelled, so this also rebuilds the pool; expired cells are
          charged a :class:`~repro.exceptions.TaskTimeout`, innocents
          resubmit unchanged.

        A bounded rebuild budget stops a genuinely broken environment
        (workers dying for non-injected reasons) from rebuilding
        forever: once exhausted, crashed cells are charged directly.
        """
        state = {i: {"attempt": 0, "errors": []} for i in order}
        inflight: dict = {}  # future -> (index, attempt)
        deadlines: dict = {}  # future -> monotonic deadline (or None)
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        rebuilds_left = self.jobs + (self.retries + 1) * len(order) + 2

        def submit(idx: int) -> None:
            st = state[idx]
            if idx not in self._cell_started:
                self._cell_started[idx] = time.monotonic()
            self._tel(
                "cell_start", key=keys[idx], index=idx, attempt=st["attempt"]
            )
            f = pool.submit(
                _execute,
                specs[idx].task,
                specs[idx].params,
                self.fault_plan,
                keys[idx],
                st["attempt"],
                True,
                self._telemetry_path,
            )
            inflight[f] = (idx, st["attempt"])
            deadlines[f] = (
                time.monotonic() + self.timeout if self.timeout else None
            )

        def charge(idx: int, attempt: int, exc: BaseException, resubmit: list) -> None:
            st = state[idx]
            st["errors"].append(self._error_record(attempt, exc))
            if attempt >= self.retries:
                payload = self._failure_payload(specs[idx], keys[idx], st["errors"])
                self._finish(idx, specs[idx], keys[idx], payload, True, results)
                return
            self._note_retry(keys[idx], attempt, exc)
            st["attempt"] = attempt + 1
            resubmit.append(idx)

        def settle(f, idx: int, attempt: int, resubmit: list) -> bool:
            """Process one completed future; True unless the pool broke."""
            try:
                payload = f.result()
                self._absorb_plan(payload)
                _validate_payload(payload, specs[idx].task)
            except BrokenProcessPool:
                return False
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                charge(idx, attempt, exc, resubmit)
                return True
            self._finish(idx, specs[idx], keys[idx], payload, False, results)
            return True

        def rebuild(reason: str):
            nonlocal pool, rebuilds_left
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=self.jobs)
            self.pool_rebuilds += 1
            rebuilds_left -= 1
            self._event("runner.pool_rebuilt", reason=reason)
            self._count("pool_rebuilds")
            self._tel("pool_rebuilt", reason=reason)

        try:
            for idx in order:
                submit(idx)
            while inflight:
                wait_for = None
                if self.timeout is not None:
                    now = time.monotonic()
                    nearest = min(d for d in deadlines.values() if d is not None)
                    wait_for = max(0.0, nearest - now) + 0.02
                done, _ = wait(
                    set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                resubmit: list[int] = []
                crashed: list[tuple[int, int]] = []
                for f in done:
                    idx, attempt = inflight.pop(f)
                    deadlines.pop(f, None)
                    if not settle(f, idx, attempt, resubmit):
                        crashed.append((idx, attempt))
                if crashed:
                    # The pool is broken: drain what finished, bucket the rest.
                    for f, (idx, attempt) in list(inflight.items()):
                        if f.done() and settle(f, idx, attempt, resubmit):
                            continue
                        crashed.append((idx, attempt))
                    inflight.clear()
                    deadlines.clear()
                    rebuild("crash")
                    for idx, attempt in crashed:
                        rule = (
                            exec_decision(self.fault_plan, keys[idx], attempt)
                            if self.fault_plan is not None
                            else None
                        )
                        if rule is not None and rule.effect == "crash":
                            charge(
                                idx,
                                attempt,
                                InjectedWorkerCrash(
                                    f"injected {rule.mode} worker crash "
                                    f"(attempt {attempt})"
                                ),
                                resubmit,
                            )
                        elif rebuilds_left <= 0:
                            charge(
                                idx,
                                attempt,
                                RuntimeError("worker process crashed"),
                                resubmit,
                            )
                        else:
                            resubmit.append(idx)  # innocent: same attempt
                elif self.timeout is not None and inflight:
                    now = time.monotonic()
                    if any(
                        d is not None and now > d for d in deadlines.values()
                    ):
                        # A wedged worker can't be cancelled: rebuild, charge
                        # the expired cells, resubmit the innocents as-is.
                        expired: list[tuple[int, int]] = []
                        for f, (idx, attempt) in list(inflight.items()):
                            d = deadlines.get(f)
                            if f.done():
                                if not settle(f, idx, attempt, resubmit):
                                    expired.append((idx, attempt))
                            elif d is not None and now > d:
                                expired.append((idx, attempt))
                            else:
                                resubmit.append(idx)
                        inflight.clear()
                        deadlines.clear()
                        rebuild("timeout")
                        for idx, attempt in expired:
                            self.timeouts += 1
                            self._count("timeouts")
                            charge(
                                idx,
                                attempt,
                                TaskTimeout(
                                    f"cell exceeded the {self.timeout}s "
                                    f"per-attempt timeout (attempt {attempt})"
                                ),
                                resubmit,
                            )
                for idx in resubmit:
                    submit(idx)
        except KeyboardInterrupt:
            # Persist every already-finished payload so restart is warm,
            # then cancel what never started and re-raise.
            for f, (idx, attempt) in inflight.items():
                if not f.done() or results[idx] is not None:
                    continue
                try:
                    payload = f.result()
                    self._absorb_plan(payload)
                    _validate_payload(payload, specs[idx].task)
                except BaseException:
                    continue
                self._finish(idx, specs[idx], keys[idx], payload, False, results)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown()

    # -------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Execution, cache, and resilience counters for reporting.

        ``jobs`` is the *effective* worker count after the usable-core
        clamp; ``jobs_requested`` preserves what the caller asked for.
        """
        return {
            "jobs": self.jobs or 1,
            "jobs_requested": self.jobs_requested or 1,
            "executed": self.executed,
            "served_from_cache": self.served_from_cache,
            "retried": self.retried,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "backoff_max": self.backoff_max,
            "backoff_slept": round(sum(self._backoff_slept.values()), 4),
            "backoff_capped": self.backoff_capped,
            "cache": self.cache.stats,
            # Physical-fusion telemetry summed over the freshly executed
            # cells (cache hits ran no simulation, so contribute nothing).
            "io_plan": merge_plan_snapshots(self._plan_snaps),
            # Memory gauges folded the same way (counters add, high
            # waters max); all-zero when REPRO_MEM_TELEMETRY is off.
            "memory": merge_mem_snapshots(self._mem_snaps),
        }


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the usable core count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Incremental job API (submit / poll / cancel) — the service-facing runner.
# ---------------------------------------------------------------------------

#: Terminal job statuses; everything else is still in flight.
_TERMINAL = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One admitted unit of work in a :class:`JobRunner`.

    The job id **is** the spec's content fingerprint, which is what makes
    request coalescing natural: two clients submitting the same spec get
    the same job.  ``meta`` carries admission-side annotations (tenant,
    source connection) that never enter the payload — payloads stay pure
    functions of ``(task, params)``.
    """

    spec: RunSpec
    key: str
    seq: int
    meta: dict = field(default_factory=dict)
    status: str = "queued"
    attempt: int = 0
    errors: list = field(default_factory=list)
    payload: dict | None = None
    cached: bool = False
    subscribers: int = 1
    cancel_requested: bool = False
    #: Earliest monotonic time the next attempt may start (retry backoff).
    not_before: float = 0.0
    #: Cumulative backoff delay charged to this job (capped by the runner).
    slept: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    @property
    def failed(self) -> bool:
        return self.status == "failed"


class JobRunner:
    """Incremental submit/poll/cancel execution over the exec layer.

    Where :class:`ParallelRunner` maps a fixed spec list to completion,
    ``JobRunner`` is the long-running variant a service needs: jobs are
    **admitted** one at a time (with an optional capacity limit for
    deterministic load shedding), coalesced by content fingerprint,
    served from the shared :class:`ResultCache` when warm, and executed
    by a background driver thread that reuses the same retry / backoff /
    crash-attribution / pool-rebuild machinery as the batch runner —
    chaos payloads therefore stay bit-identical to a fault-free serial
    run (the service-grade chaos-determinism gate).

    Concurrency contract: every public method is safe to call from any
    thread.  Listeners registered with :meth:`add_listener` are invoked
    from the driver thread (or the submitting thread, for cache hits and
    queued-job cancels) **while the runner lock is held** — they must be
    non-blocking and must not call back into the runner (bridge to an
    event loop with ``call_soon_threadsafe``).

    ``scheduler`` is an optional pick-next hook: a callable given the
    list of runnable jobs (admission order) that returns the one to run
    next — the seam the serve layer uses for fair-share scheduling.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | None = None,
        cache: ResultCache | None = None,
        obs=None,
        retries: int = 0,
        timeout: float | None = None,
        backoff: float = 0.05,
        backoff_max: float | None = DEFAULT_BACKOFF_MAX,
        fault_plan=None,
        journal=None,
        scheduler: Callable[[list[Job]], Job] | None = None,
    ):
        requested = int(jobs) if jobs else 0
        usable = default_jobs()
        self.jobs_requested = requested
        self.jobs = min(requested, usable) if requested > 1 else requested
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache or cache_dir, not both")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if backoff_max is not None and backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {backoff_max}")
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.retries = int(retries)
        self.timeout = timeout
        self.backoff = float(backoff)
        self.backoff_max = None if backoff_max is None else float(backoff_max)
        self.fault_plan = fault_plan
        self.journal = journal
        self.scheduler = scheduler
        self._obs = obs
        self._scope = obs.scope("resilience") if obs is not None else None
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._queue: list[Job] = []
        self._running: set[str] = set()
        self._listeners: list[Callable[[Job, str], None]] = []
        self._seq = 0
        self._stop = False
        self._thread: threading.Thread | None = None
        self.driver_error: str | None = None
        # Counters (all mutated under the lock).
        self.admitted = 0
        self.coalesced = 0
        self.cache_hits = 0
        self.shed = 0
        self.executed = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.retried = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.backoff_capped = 0
        self._rebuilds_since_progress = 0

    # ----------------------------------------------------------- plumbing

    def _event(self, name: str, **fields) -> None:
        if self._obs is not None:
            self._obs.event(name, **fields)

    def _count(self, name: str, n: int = 1) -> None:
        if self._scope is not None:
            self._scope.counter(name).inc(n)

    def add_listener(self, fn: Callable[[Job, str], None]) -> None:
        """Register a transition callback ``fn(job, status)``.

        Fired on ``running`` and on every terminal transition, under the
        runner lock — see the class docstring for the contract.
        """
        with self._cond:
            self._listeners.append(fn)

    def _notify_locked(self, job: Job, status: str) -> None:
        for fn in list(self._listeners):
            try:
                fn(job, status)
            except Exception:  # noqa: BLE001 - listeners must not kill the driver
                pass

    def _journal_job(self, job: Job, status: str) -> None:
        if self.journal is None:
            return
        if status == "admitted":
            self.journal.job(
                job.key, "admitted", task=job.spec.task,
                params=dict(job.spec.params), meta=job.meta or None,
            )
        else:
            self.journal.job(job.key, status)

    # ---------------------------------------------------------- admission

    def _next_seq_locked(self) -> int:
        self._seq += 1
        return self._seq

    def active_count(self) -> int:
        """Jobs admitted but not yet terminal (queued + running)."""
        with self._cond:
            return len(self._queue) + len(self._running)

    def probe(self, key: str) -> str | None:
        """``"active"`` / ``"cached"`` / None — what a submit would find.

        Admission layers use this to decide whether a request will cost
        execution capacity *before* charging quotas: coalesced joins and
        warm cache hits are free.
        """
        with self._cond:
            job = self._jobs.get(key)
            if job is not None and not job.terminal:
                return "active"
        if key in self.cache:
            return "cached"
        return None

    def submit(
        self,
        spec: RunSpec,
        meta: dict | None = None,
        limit: int | None = None,
    ) -> tuple[Job | None, str]:
        """Admit one spec; returns ``(job, disposition)``.

        Dispositions:

        * ``"coalesced"`` — an identical spec is already in flight; the
          caller shares its job (no new capacity consumed);
        * ``"cached"`` — the content-hashed cache is warm; a terminal
          ``done`` job is returned immediately (no capacity consumed);
        * ``"new"`` — admitted to the queue (journalled when attached);
        * ``"shed"`` — ``limit`` active jobs already exist; ``job`` is
          None and nothing was admitted.  Shedding is deterministic:
          with a bound of Q, exactly the submissions beyond the Q
          currently-active jobs are shed, never an admitted one.
        """
        key = spec.fingerprint()
        with self._cond:
            job = self._jobs.get(key)
            if job is not None and not job.terminal:
                job.subscribers += 1
                self.coalesced += 1
                self._count("job.coalesced")
                return job, "coalesced"
            payload = self.cache.get(key, obs=self._obs)
            if payload is not None:
                job = Job(
                    spec=spec, key=key, seq=self._next_seq_locked(),
                    meta=dict(meta or {}), status="done",
                    payload=payload, cached=True,
                )
                self._jobs[key] = job
                self.cache_hits += 1
                self.completed += 1
                self._count("job.cache_hit")
                self._notify_locked(job, "done")
                return job, "cached"
            if limit is not None and len(self._queue) + len(self._running) >= limit:
                self.shed += 1
                self._count("job.shed")
                return None, "shed"
            job = Job(
                spec=spec, key=key, seq=self._next_seq_locked(),
                meta=dict(meta or {}),
            )
            self._jobs[key] = job
            self._queue.append(job)
            self.admitted += 1
            self._count("job.admitted")
            self._journal_job(job, "admitted")
            self._cond.notify_all()
            return job, "new"

    def poll(self, key: str) -> Job | None:
        """The job for ``key`` (terminal jobs stay addressable), or None."""
        with self._cond:
            return self._jobs.get(key)

    def wait(self, key: str, timeout: float | None = None) -> Job | None:
        """Block until ``key``'s job is terminal (or ``timeout`` elapses)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(key)
                if job is None or job.terminal:
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return job
                self._cond.wait(timeout=remaining)

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queue or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
            return True

    def cancel(self, key: str) -> Job | None:
        """Cancel a job: queued → cancelled now; running → best effort.

        A running job in pool mode is torn down through the same
        pool-rebuild machinery as a hung worker (the worker cannot be
        interrupted in place); in serial mode the current attempt runs
        to completion and the cancellation lands before the next one.
        """
        with self._cond:
            job = self._jobs.get(key)
            if job is None or job.terminal:
                return job
            job.cancel_requested = True
            if job.status == "queued":
                self._queue.remove(job)
                self._finish_locked(job, "cancelled")
            else:
                self._cond.notify_all()
            return job

    # ------------------------------------------------------------- driver

    def start(self) -> "JobRunner":
        """Launch the background driver thread (idempotent)."""
        with self._cond:
            if self._thread is not None:
                return self
            self._stop = False
            self._thread = threading.Thread(
                target=self._drive, name="repro-job-driver", daemon=True
            )
            self._thread.start()
        return self

    @property
    def driver_alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def close(self, timeout: float | None = 10.0) -> bool:
        """Stop the driver; queued jobs stay admitted (journalled) for resume.

        In-flight work is allowed to finish; returns False if the driver
        did not exit within ``timeout`` (it is a daemon thread, so a
        genuinely wedged worker cannot block process exit).
        """
        with self._cond:
            self._stop = True
            self._cond.notify_all()
            thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        return not thread.is_alive()

    def _finish_locked(self, job: Job, status: str, payload: dict | None = None) -> None:
        job.status = status
        if payload is not None:
            job.payload = payload
        if status == "done":
            self.completed += 1
        elif status == "failed":
            self.failed += 1
        elif status == "cancelled":
            self.cancelled += 1
        self._count(f"job.{status}")
        self._event("job.finished", key=job.key[:16], status=status)
        self._journal_job(job, status)
        self._notify_locked(job, status)
        self._cond.notify_all()

    def _charge_locked(self, job: Job, exc: BaseException) -> None:
        """Account one failed attempt: retry with capped backoff, or fail."""
        job.errors.append(error_record(job.attempt, exc))
        if job.cancel_requested:
            self._finish_locked(job, "cancelled")
            return
        if job.attempt >= self.retries:
            payload = failure_payload(
                job.spec.task, job.spec.params, job.key, job.errors, self.retries
            )
            self._finish_locked(job, "failed", payload=payload)
            return
        delay = self.backoff * (2 ** job.attempt)
        if self.backoff_max is not None:
            budget = max(0.0, self.backoff_max - job.slept)
            if delay > budget:
                delay = budget
                self.backoff_capped += 1
        job.slept += delay
        self.retried += 1
        self._count("retry.attempt")
        self._event(
            "retry.attempt", key=job.key[:16], attempt=job.attempt + 1,
            error=type(exc).__name__, backoff=delay,
        )
        job.attempt += 1
        job.status = "queued"
        job.not_before = time.monotonic() + delay
        self._queue.append(job)
        self._cond.notify_all()

    def _settle_locked(self, payload_or_exc, job: Job) -> None:
        """Terminal-ize one finished attempt (payload or exception)."""
        if isinstance(payload_or_exc, BaseException):
            self._charge_locked(job, payload_or_exc)
            return
        self.cache.put(job.key, payload_or_exc)
        self.executed += 1
        self._rebuilds_since_progress = 0
        self._finish_locked(job, "done", payload=payload_or_exc)

    def _absorb(self, payload) -> None:
        """Drop the out-of-band sidecars a worker may attach."""
        if isinstance(payload, dict):
            payload.pop("_plan_stats", None)
            payload.pop("_mem_stats", None)

    def _pick_locked(self, now: float) -> Job | None:
        ready = [j for j in self._queue if j.not_before <= now]
        if not ready:
            return None
        ready.sort(key=lambda j: j.seq)
        if self.scheduler is not None:
            job = self.scheduler(ready)
        else:
            job = ready[0]
        self._queue.remove(job)
        return job

    def _next_delay_locked(self, now: float) -> float | None:
        pending = [j.not_before - now for j in self._queue if j.not_before > now]
        return min(pending) if pending else None

    def _drive(self) -> None:
        try:
            if self.jobs > 1:
                self._drive_pool()
            else:
                self._drive_serial()
        except BaseException as exc:  # noqa: BLE001 - surfaced via readiness
            with self._cond:
                self.driver_error = f"{type(exc).__name__}: {exc}"
                self._cond.notify_all()
            raise

    def _drive_serial(self) -> None:
        while True:
            with self._cond:
                job = None
                while not self._stop:
                    now = time.monotonic()
                    job = self._pick_locked(now)
                    if job is not None:
                        break
                    self._cond.wait(timeout=self._next_delay_locked(now))
                if job is None:
                    return
                if job.cancel_requested:
                    self._finish_locked(job, "cancelled")
                    continue
                job.status = "running"
                self._running.add(job.key)
                self._notify_locked(job, "running")
            try:
                payload = _execute(
                    job.spec.task, job.spec.params, self.fault_plan,
                    job.key, job.attempt, False, None,
                )
                self._absorb(payload)
                _validate_payload(payload, job.spec.task)
                outcome = payload
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                outcome = exc
            with self._cond:
                self._running.discard(job.key)
                self._settle_locked(outcome, job)

    def _drive_pool(self) -> None:
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        inflight: dict = {}   # future -> job
        deadlines: dict = {}  # future -> monotonic deadline (or None)

        def rebuild_locked(reason: str):
            nonlocal pool
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=self.jobs)
            self.pool_rebuilds += 1
            self._rebuilds_since_progress += 1
            self._event("runner.pool_rebuilt", reason=reason)
            self._count("pool_rebuilds")

        def settle_future_locked(f, job: Job) -> bool:
            """Process one completed future; False iff the pool broke."""
            try:
                payload = f.result()
                self._absorb(payload)
                _validate_payload(payload, job.spec.task)
            except BrokenProcessPool:
                return False
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                self._settle_locked(exc, job)
                return True
            self._settle_locked(payload, job)
            return True

        def attribute_crash_locked(job: Job) -> None:
            rule = (
                exec_decision(self.fault_plan, job.key, job.attempt)
                if self.fault_plan is not None
                else None
            )
            if job.cancel_requested:
                self._finish_locked(job, "cancelled")
            elif rule is not None and rule.effect == "crash":
                self._charge_locked(
                    job,
                    InjectedWorkerCrash(
                        f"injected {rule.mode} worker crash "
                        f"(attempt {job.attempt})"
                    ),
                )
            elif self._rebuilds_since_progress > self.jobs + self.retries + 2:
                self._charge_locked(job, RuntimeError("worker process crashed"))
            else:
                job.status = "queued"  # innocent: resubmit at the same attempt
                self._queue.append(job)

        try:
            while True:
                with self._cond:
                    now = time.monotonic()
                    while not self._stop and len(inflight) < self.jobs:
                        job = self._pick_locked(now)
                        if job is None:
                            break
                        if job.cancel_requested:
                            self._finish_locked(job, "cancelled")
                            continue
                        job.status = "running"
                        self._running.add(job.key)
                        self._notify_locked(job, "running")
                        f = pool.submit(
                            _execute, job.spec.task, job.spec.params,
                            self.fault_plan, job.key, job.attempt, True, None,
                        )
                        inflight[f] = job
                        deadlines[f] = now + self.timeout if self.timeout else None
                    if not inflight:
                        if self._stop:
                            return
                        self._cond.wait(timeout=self._next_delay_locked(now))
                        continue
                done, _ = wait(set(inflight), timeout=0.05, return_when=FIRST_COMPLETED)
                with self._cond:
                    crashed: list[Job] = []
                    for f in done:
                        job = inflight.pop(f)
                        deadlines.pop(f, None)
                        self._running.discard(job.key)
                        if not settle_future_locked(f, job):
                            crashed.append(job)
                    if crashed:
                        # Pool is broken: drain what finished, bucket the rest.
                        for f, job in list(inflight.items()):
                            self._running.discard(job.key)
                            if f.done() and settle_future_locked(f, job):
                                continue
                            crashed.append(job)
                        inflight.clear()
                        deadlines.clear()
                        rebuild_locked("crash")
                        for job in crashed:
                            attribute_crash_locked(job)
                        continue
                    now = time.monotonic()
                    expired = any(
                        d is not None and now > d for d in deadlines.values()
                    )
                    cancels = any(j.cancel_requested for j in inflight.values())
                    if not (expired or cancels):
                        continue
                    # A wedged (or cancelled) worker can't be interrupted:
                    # rebuild, charge the victims, resubmit the innocents.
                    victims: list[tuple[Job, str]] = []
                    innocents: list[Job] = []
                    for f, job in list(inflight.items()):
                        d = deadlines.get(f)
                        self._running.discard(job.key)
                        if f.done():
                            if not settle_future_locked(f, job):
                                victims.append((job, "crash"))
                        elif job.cancel_requested:
                            victims.append((job, "cancel"))
                        elif d is not None and now > d:
                            victims.append((job, "timeout"))
                        else:
                            innocents.append(job)
                    inflight.clear()
                    deadlines.clear()
                    rebuild_locked("cancel" if cancels else "timeout")
                    for job, why in victims:
                        if why == "cancel":
                            self._finish_locked(job, "cancelled")
                        elif why == "timeout":
                            self.timeouts += 1
                            self._count("timeouts")
                            self._charge_locked(
                                job,
                                TaskTimeout(
                                    f"cell exceeded the {self.timeout}s "
                                    f"per-attempt timeout (attempt {job.attempt})"
                                ),
                            )
                        else:
                            attribute_crash_locked(job)
                    for job in innocents:
                        job.status = "queued"
                        self._queue.append(job)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # -------------------------------------------------------------- stats

    @property
    def stats(self) -> dict:
        """Admission + execution counters (service-facing superset)."""
        with self._cond:
            return {
                "jobs": self.jobs or 1,
                "jobs_requested": self.jobs_requested or 1,
                "admitted": self.admitted,
                "coalesced": self.coalesced,
                "cache_hits": self.cache_hits,
                "shed": self.shed,
                "executed": self.executed,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "retried": self.retried,
                "timeouts": self.timeouts,
                "pool_rebuilds": self.pool_rebuilds,
                "backoff_max": self.backoff_max,
                "backoff_capped": self.backoff_capped,
                "queued": len(self._queue),
                "running": len(self._running),
                "driver_alive": self.driver_alive,
                "driver_error": self.driver_error,
                "cache": self.cache.stats,
            }
