"""Balance Sort — deterministic distribution sort for parallel disks and
parallel memory hierarchies.

A from-scratch reproduction of

    Mark H. Nodine and Jeffrey Scott Vitter,
    "Deterministic Distribution Sort in Shared and Distributed Memory
    Multiprocessors" (extended abstract), SPAA 1993, pp. 120-129.

Quickstart::

    import numpy as np
    from repro import ParallelDiskMachine, balance_sort_pdm, workloads
    from repro.core.streams import peek_run

    machine = ParallelDiskMachine(memory=512, block=4, disks=8)
    data = workloads.uniform(50_000, seed=0)
    result = balance_sort_pdm(machine, data)
    print(result.total_ios, "parallel I/Os")
    sorted_records = peek_run(result.storage, result.output)

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.core` — Balance Sort itself (Algorithms 1-7).
* :mod:`repro.pdm` — the parallel disk model machine (Figure 2).
* :mod:`repro.pram` / :mod:`repro.hypercube` — the interconnects.
* :mod:`repro.hierarchies` — HMM / BT / UMH and P-HMM / P-BT (Figures 3-4).
* :mod:`repro.baselines` — striped merge sort, randomized [ViSa], Greed
  Sort [NoV].
* :mod:`repro.analysis` — Theorem 1-3 bounds, ratio fits, reporting.
* :mod:`repro.obs` — metrics registry, span tracer, run reports
  (``docs/observability.md``).
* :mod:`repro.workloads` — seeded input generators.
"""

# Defined before the subpackage imports: obs.history / obs.dashboard stamp
# artifacts with the package version at import time.
__version__ = "1.0.0"

from . import analysis, baselines, core, hierarchies, hypercube, obs, pdm, pram, records, util, workloads
from .core import balance_sort_hierarchy, balance_sort_pdm
from .hierarchies import ParallelHierarchies
from .pdm import ParallelDiskMachine
from .records import make_records

__all__ = [
    "analysis",
    "baselines",
    "core",
    "hierarchies",
    "hypercube",
    "obs",
    "pdm",
    "pram",
    "records",
    "util",
    "workloads",
    "balance_sort_pdm",
    "balance_sort_hierarchy",
    "ParallelDiskMachine",
    "ParallelHierarchies",
    "make_records",
    "__version__",
]
