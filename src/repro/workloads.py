"""Seeded workload generators for sorting experiments.

Each generator returns a record array (see :mod:`repro.records`).  Keys stay
below ``2**40`` so composite packing works, and record ids break ties, so any
generator — including ones with massive key duplication — yields a totally
ordered input as the paper requires (Section 4.1).

The ``adversarial_*`` generators construct the skew patterns that stress the
paper's load balancer: inputs whose natural block layout piles one bucket's
blocks onto one (virtual) disk, which is exactly the failure mode disk
striping and naive distribution suffer from.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .records import make_records

__all__ = [
    "uniform",
    "sorted_keys",
    "reverse_sorted",
    "few_distinct",
    "zipf_like",
    "gaussian",
    "runs",
    "organ_pipe",
    "adversarial_bucket_skew",
    "adversarial_striping",
    "GENERATORS",
    "by_name",
]

_KEY_SPACE = 1 << 40


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform(n: int, seed: int = 0) -> np.ndarray:
    """Uniform random keys over the full key space."""
    keys = _rng(seed).integers(0, _KEY_SPACE, size=n, dtype=np.uint64)
    return make_records(keys)


def sorted_keys(n: int, seed: int = 0) -> np.ndarray:
    """Already-sorted input (best case for merge-based baselines)."""
    keys = np.sort(_rng(seed).integers(0, _KEY_SPACE, size=n, dtype=np.uint64))
    return make_records(keys)


def reverse_sorted(n: int, seed: int = 0) -> np.ndarray:
    """Reverse-sorted input."""
    keys = np.sort(_rng(seed).integers(0, _KEY_SPACE, size=n, dtype=np.uint64))[::-1]
    return make_records(keys.copy())


def few_distinct(n: int, seed: int = 0, distinct: int = 8) -> np.ndarray:
    """Heavy duplication: only ``distinct`` key values.

    Stresses the distinctness handling (rid tie-break) and the partition
    element selection, which must still produce buckets of size < 2N/S.
    """
    values = np.sort(_rng(seed).integers(0, _KEY_SPACE, size=distinct, dtype=np.uint64))
    keys = values[_rng(seed + 1).integers(0, distinct, size=n)]
    return make_records(keys)


def zipf_like(n: int, seed: int = 0, a: float = 1.5) -> np.ndarray:
    """Zipf-skewed keys (many repeats of small ranks)."""
    gen = _rng(seed)
    ranks = gen.zipf(a, size=n).astype(np.uint64)
    # Spread ranks over the key space deterministically but non-linearly.
    keys = (ranks * np.uint64(2654435761)) % np.uint64(_KEY_SPACE)
    return make_records(keys)


def gaussian(n: int, seed: int = 0) -> np.ndarray:
    """Normally distributed keys, clipped to the key space."""
    gen = _rng(seed)
    vals = gen.normal(loc=_KEY_SPACE / 2, scale=_KEY_SPACE / 16, size=n)
    keys = np.clip(vals, 0, _KEY_SPACE - 1).astype(np.uint64)
    return make_records(keys)


def runs(n: int, seed: int = 0, run_length: int = 64) -> np.ndarray:
    """Concatenation of sorted runs (partially sorted input)."""
    gen = _rng(seed)
    keys = gen.integers(0, _KEY_SPACE, size=n, dtype=np.uint64)
    for start in range(0, n, run_length):
        keys[start : start + run_length].sort()
    return make_records(keys)


def organ_pipe(n: int, seed: int = 0) -> np.ndarray:
    """Ascending then descending ("organ pipe") key pattern."""
    half = n // 2
    up = np.sort(_rng(seed).integers(0, _KEY_SPACE, size=half, dtype=np.uint64))
    down = np.sort(_rng(seed + 1).integers(0, _KEY_SPACE, size=n - half, dtype=np.uint64))[::-1]
    return make_records(np.concatenate([up, down]))


def adversarial_bucket_skew(n: int, seed: int = 0, hot_fraction: float = 0.45) -> np.ndarray:
    """Most records fall in one narrow key range ("hot" bucket).

    A naive distribution pass would write nearly every block of the hot
    bucket in input order, piling them onto few disks; the balancer must
    still spread them so the bucket reads back with full parallelism.
    """
    gen = _rng(seed)
    n_hot = int(n * hot_fraction)
    hot_lo = _KEY_SPACE // 3
    hot = gen.integers(hot_lo, hot_lo + 1024, size=n_hot, dtype=np.uint64)
    cold = gen.integers(0, _KEY_SPACE, size=n - n_hot, dtype=np.uint64)
    keys = np.concatenate([hot, cold])
    gen.shuffle(keys)
    return make_records(keys)


def adversarial_striping(n: int, seed: int = 0, period: int = 8) -> np.ndarray:
    """Keys arranged so consecutive blocks cycle through key ranges.

    With ``period`` equal to the number of (virtual) disks, record ``i``'s key
    range is ``i mod period`` — so the *i*-th block written in input order is
    always from the same bucket as every other block on its disk.  Without
    rebalancing, each bucket lands entirely on one disk.
    """
    gen = _rng(seed)
    band = _KEY_SPACE // period
    lane = np.arange(n, dtype=np.uint64) % np.uint64(period)
    jitter = gen.integers(0, band, size=n, dtype=np.uint64)
    keys = lane * np.uint64(band) + jitter
    return make_records(keys)


GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform,
    "sorted": sorted_keys,
    "reverse": reverse_sorted,
    "few_distinct": few_distinct,
    "zipf": zipf_like,
    "gaussian": gaussian,
    "runs": runs,
    "organ_pipe": organ_pipe,
    "adversarial_bucket_skew": adversarial_bucket_skew,
    "adversarial_striping": adversarial_striping,
}


def by_name(name: str, n: int, seed: int = 0, **kwargs) -> np.ndarray:
    """Look up a generator by name and invoke it."""
    try:
        gen = GENERATORS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; choices: {sorted(GENERATORS)}") from None
    return gen(n, seed=seed, **kwargs)
