"""Measured-vs-bound ratio analysis over parameter sweeps.

An algorithm *matches* a Θ-bound when ``measured / bound`` stays within a
constant band as the swept parameter grows; it *misses* the bound when the
ratio drifts.  :func:`ratio_series` computes the band, :func:`loglog_slope`
fits the growth exponent (measured ~ n^slope on a log-log axis), and
:func:`is_flat` applies the tolerance the experiment suite uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["RatioSeries", "ratio_series", "loglog_slope", "is_flat"]


@dataclass
class RatioSeries:
    """Ratios of measured values against a closed-form bound."""

    xs: list
    measured: list
    bound: list
    ratios: list

    @property
    def spread(self) -> float:
        """max ratio / min ratio — 1.0 means perfectly proportional."""
        lo, hi = min(self.ratios), max(self.ratios)
        return hi / lo if lo > 0 else math.inf

    @property
    def trend(self) -> float:
        """last ratio / first ratio — > 1 means the bound is being outgrown."""
        return self.ratios[-1] / self.ratios[0] if self.ratios[0] > 0 else math.inf


def ratio_series(
    xs: Sequence, measured: Sequence[float], bound_fn: Callable[..., float]
) -> RatioSeries:
    """Evaluate ``bound_fn(x)`` per point and form measured/bound ratios.

    ``xs`` entries may be scalars or tuples (splatted into ``bound_fn``).
    """
    if len(xs) != len(measured) or not xs:
        raise ValueError("xs and measured must be equal-length and non-empty")
    bound = [
        bound_fn(*x) if isinstance(x, tuple) else bound_fn(x) for x in xs
    ]
    ratios = [m / b if b else math.inf for m, b in zip(measured, bound)]
    return RatioSeries(list(xs), list(measured), bound, ratios)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x (the growth exponent)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mx = sum(lx) / len(lx)
    my = sum(ly) / len(ly)
    num = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    den = sum((a - mx) ** 2 for a in lx)
    if den == 0:
        raise ValueError("xs are all equal")
    return num / den


def is_flat(series: RatioSeries, spread_tolerance: float = 3.0) -> bool:
    """True when the ratio band stays within ``spread_tolerance``×."""
    return series.spread <= spread_tolerance
