"""Closed-form bounds from the paper (Theorems 1–3 and Equation (1)).

All formulas use the paper's ``log z = max{1, log₂ z}`` (footnote 1) and
return the Θ-expression *without* constant factors — benchmarks report the
ratio ``measured / bound`` and check it stays bounded (optimal) or grows
(suboptimal baseline), which is what an asymptotic reproduction can verify.

Where the scanned extended abstract is ambiguous (parts of the Theorem 2
``f = log x`` line are garbled in every available scan), the encoding
follows the most natural reading of the recurrence in Section 4.3; the
benchmark reports shape trends, not constants, so the conclusions are
insensitive to the exact polylog reading — EXPERIMENTS.md records this.
"""

from __future__ import annotations

import math

__all__ = [
    "paper_log",
    "sort_io_bound",
    "striped_merge_sort_ios",
    "cpu_work_bound",
    "theorem2_power_bound",
    "theorem2_log_bound",
    "theorem2_hypercube_extra",
    "theorem3_bound",
    "T_H",
]

from ..hypercube.sharesort import T_H  # re-export: the T(H) the theorems use


def paper_log(x: float) -> float:
    """``log z = max{1, log₂ z}`` (footnote 1)."""
    return max(1.0, math.log2(max(x, 1.0)))


def sort_io_bound(n: int, m: int, b: int, d: int) -> float:
    """Equation (1) / Theorem 1: Θ((N/DB)·log(N/B)/log(M/B)) parallel I/Os."""
    if n <= 0:
        return 1.0
    return (n / (d * b)) * paper_log(n / b) / paper_log(m / b)


def striped_merge_sort_ios(n: int, m: int, b: int, d: int) -> float:
    """Disk-striped 2-way merge sort: Θ((N/DB)·log(N/M)) I/Os.

    Striping turns the D disks into one disk of block size ``B' = DB``;
    merge sort then pays a full read+write per merge level, and there are
    ``log₂(N/M)`` levels after run formation — larger than optimal by the
    ``log(M/B)``-ish factor Section 1 describes (the gap the paper's
    deterministic algorithm closes).
    """
    if n <= 0:
        return 1.0
    levels = 1.0 + max(0.0, math.log2(max(n / m, 1.0)))
    return (n / (d * b)) * levels


def cpu_work_bound(n: int, p: int = 1) -> float:
    """Theorem 1's internal processing: Θ((N/P)·log N) time, Θ(N log N) work."""
    if n <= 0:
        return 1.0
    return (n / p) * paper_log(n)


def theorem2_power_bound(n: int, h: int, alpha: float) -> float:
    """Theorem 2, ``f(x) = x^α``: Θ((N/H)^{α+1} + (N/H)·log N)."""
    if n <= 0:
        return 1.0
    nh = n / h
    return nh ** (alpha + 1) + nh * paper_log(n)


def theorem2_log_bound(n: int, h: int) -> float:
    """Theorem 2, ``f(x) = log x``: Θ((N/H)·log(N/H)·log N) (see module note)."""
    if n <= 0:
        return 1.0
    nh = n / h
    return nh * paper_log(nh) * paper_log(n)


def theorem2_hypercube_extra(n: int, h: int) -> float:
    """Hypercube T(H) term of Theorem 2: (N/(H log H))·log N·T(H)."""
    if n <= 0:
        return 1.0
    return (n / (h * paper_log(h))) * paper_log(n) * T_H(h)


def theorem3_bound(n: int, h: int, alpha: float | None) -> float:
    """Theorem 3 (P-BT with EREW PRAM), by cost-function regime.

    ``alpha=None`` means ``f = log x``.

    * ``f = log x``        → Θ((N/H)·log N)
    * ``x^α, 0 < α < 1``   → Θ((N/H)·log N)
    * ``x^α, α = 1``       → Θ((N/H)·(log²(N/H) + log N))
    * ``x^α, α > 1``       → Θ((N/H)^α + (N/H)·log N)
    """
    if n <= 0:
        return 1.0
    nh = n / h
    if alpha is None or alpha < 1:
        return nh * paper_log(n)
    if alpha == 1:
        return nh * (paper_log(nh) ** 2 + paper_log(n))
    return nh**alpha + nh * paper_log(n)
