"""Balance-engine tracing: watch the matrices evolve, round by round.

A :class:`BalanceTracer` wraps a live
:class:`~repro.core.balance.BalanceEngine` and snapshots the histogram
matrix ``X``, the auxiliary matrix ``A``, and the activity counters after
every placement round — the raw material for understanding *why* the
deterministic balancing works.  :func:`render_matrix` draws a matrix as
compact ASCII (the format `examples/balance_trace.py` animates), and
:meth:`BalanceTracer.summary` reduces a whole trace to the quantities the
paper's invariants speak about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundSnapshot", "BalanceTracer", "render_matrix"]


@dataclass
class RoundSnapshot:
    """State captured after one placement round."""

    round_index: int
    histogram: np.ndarray
    auxiliary: np.ndarray
    blocks_placed: int
    blocks_swapped: int
    blocks_unprocessed: int
    match_calls: int
    max_balance_factor: float


@dataclass
class BalanceTracer:
    """Record a snapshot after every round of a Balance engine.

    A thin adapter over :meth:`BalanceEngine.add_round_observer` (the
    first-class observer API — no monkey-patching).  Attaching twice to
    the same engine returns the *existing* tracer instead of registering a
    second observer, so snapshots are never duplicated.

    Usage::

        engine = BalanceEngine(storage, pivots)
        tracer = BalanceTracer.attach(engine)
        ... feed / run_rounds / flush ...
        print(tracer.summary())
    """

    snapshots: list = field(default_factory=list)

    @classmethod
    def attach(cls, engine) -> "BalanceTracer":
        """Register a round observer recording a snapshot per round.

        Idempotent per engine: a second ``attach`` on the same engine is a
        guarded no-op that returns the already-attached tracer (the old
        ``_round``-wrapping implementation silently stacked wrappers and
        recorded duplicate snapshots).
        """
        existing = getattr(engine, "_balance_tracer", None)
        if existing is not None:
            return existing
        tracer = cls()

        def _record(eng, info):
            tracer.snapshots.append(
                RoundSnapshot(
                    round_index=info["round"],
                    histogram=eng.matrices.X.copy(),
                    auxiliary=eng.matrices.A.copy(),
                    blocks_placed=info["placed"],
                    blocks_swapped=info["swapped"],
                    blocks_unprocessed=info["unprocessed"],
                    match_calls=info["match_calls"],
                    max_balance_factor=info["max_balance_factor"],
                )
            )

        engine.add_round_observer(_record)
        engine._balance_tracer = tracer
        return tracer

    @property
    def n_rounds(self) -> int:
        return len(self.snapshots)

    def worst_balance_factor(self) -> float:
        """Worst Theorem-4 factor observed at any round boundary."""
        return max((s.max_balance_factor for s in self.snapshots), default=1.0)

    def swaps_per_round(self) -> list:
        """Incremental swap counts (the matching's per-round activity)."""
        out = []
        prev = 0
        for s in self.snapshots:
            out.append(s.blocks_swapped - prev)
            prev = s.blocks_swapped
        return out

    def aux_always_binary(self) -> bool:
        """Invariant 2 across the whole trace (A binary after each round)."""
        return all(int(s.auxiliary.max(initial=0)) <= 1 for s in self.snapshots)

    def summary(self) -> dict:
        """The trace reduced to the paper's invariant-level quantities."""
        return {
            "rounds": self.n_rounds,
            "worst_balance_factor": self.worst_balance_factor(),
            "total_swaps": self.snapshots[-1].blocks_swapped if self.snapshots else 0,
            "total_unprocessed": (
                self.snapshots[-1].blocks_unprocessed if self.snapshots else 0
            ),
            "aux_always_binary": self.aux_always_binary(),
        }


def render_matrix(matrix: np.ndarray, bucket_labels: bool = True) -> str:
    """Draw a small integer matrix as aligned ASCII with row/column sums.

    Zeros print as ``·`` so the balance structure is visible at a glance::

        b0 | 3 2 3 2 | 10
        b1 | 1 2 1 1 |  5
           +---------+
             4 4 4 3
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    cells = [["·" if v == 0 else str(int(v)) for v in row] for row in matrix]
    width = max((len(c) for row in cells for c in row), default=1)
    col_sums = matrix.sum(axis=0)
    sum_width = max(len(str(int(matrix.sum(axis=1).max(initial=0)))), 1)
    lines = []
    for b, row in enumerate(cells):
        label = f"b{b} | " if bucket_labels else "| "
        body = " ".join(c.rjust(width) for c in row)
        lines.append(f"{label}{body} | {int(matrix[b].sum()):>{sum_width}}")
    bar = "-" * (len(lines[0]) - (5 if bucket_labels else 2)) if lines else ""
    lines.append(("   +" if bucket_labels else "+") + bar)
    footer = " ".join(str(int(v)).rjust(width) for v in col_sums)
    lines.append(("     " if bucket_labels else "  ") + footer)
    return "\n".join(lines)
