"""Aligned-text tables for the benchmark harness.

Every experiment bench prints its rows through :class:`Table`, so
EXPERIMENTS.md and the bench output share one format:

    N        D   measured   bound    ratio
    4096     8   186        151.7    1.23
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Table", "format_value"]


def format_value(v) -> str:
    """Compact human-readable formatting for table cells."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


class Table:
    """Column-aligned text table accumulated row by row."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add(self, *values) -> None:
        """Append one row (one value per column)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([format_value(v) for v in values])

    def add_dict(self, row: dict) -> None:
        """Append a row given as a mapping keyed by column name."""
        self.add(*[row[c] for c in self.columns])

    def to_dict(self) -> dict:
        """The table as a JSON-ready dict (title, columns, formatted rows)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
        }

    def render(self) -> str:
        """Format the table as aligned text."""
        widths = [
            max(len(c), *(len(r[i]) for r in self.rows)) if self.rows else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("-" * len(self.title))
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        for r in self.rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors render
        """Print the rendered table surrounded by blank lines."""
        print("\n" + self.render() + "\n")
