"""Closed-form bounds, optimality-ratio fits, reporting, and engine tracing."""

from . import bounds, optimality, reporting, trace

__all__ = ["bounds", "optimality", "reporting", "trace"]
