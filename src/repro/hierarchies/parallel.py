"""Parallel memory hierarchies (Figure 4): H hierarchies + an interconnect.

``H`` same-kind hierarchies (HMM, BT, or UMH-style cost accounting) have
their base levels attached to ``H`` processors connected as an EREW PRAM or
a hypercube.  Elapsed memory time is charged per *parallel step*: when the
hierarchies perform accesses simultaneously, the step costs the maximum of
the per-hierarchy access costs.  Interconnect time accumulates separately
(sorting H base-level items costs ``T(H)``: ``log H`` on a PRAM,
``log H (log log H)²`` on a hypercube — see
:func:`repro.hypercube.sharesort.T_H`).

:class:`VirtualHierarchies` implements the paper's **partial hierarchy
striping** (Section 4.1): the ``H`` hierarchies are grouped into
``H' = H^{1/3}`` *virtual hierarchies*, and a *virtual block* of
``H/H'`` records is striped one record per member hierarchy at a common
local address.  It exposes the same ``parallel_write`` / ``parallel_read``
interface as :class:`repro.pdm.striping.VirtualDisks`, so the Balance
engine (:mod:`repro.core.balance`) drives disks and hierarchies
identically — the paper's central portability claim.

Addresses are recycled lowest-first (a free-list per virtual hierarchy), so
a subproblem of n records occupies the first O(n/H') addresses — the
working-set assumption under which the paper's recurrences (Lemmas 2–4)
hold.
"""

from __future__ import annotations

import heapq
import math
from contextlib import contextmanager
from typing import NamedTuple, Sequence

import numpy as np

from ..exceptions import AddressError, DiskContentionError, ParameterError
from ..hypercube.sharesort import T_H
from ..pdm.store import make_store
from ..records import RECORD_DTYPE, argsort_records
from .bt import BT, touch_cost, transpose_cost
from .cost import CostFunction, LogCost
from .hmm import HMM

__all__ = [
    "ParallelHierarchies",
    "VirtualHierarchies",
    "VirtualBlockAddress",
    "EffectiveBTCost",
    "default_virtual_hierarchy_count",
]


def default_virtual_hierarchy_count(h: int) -> int:
    """The paper's ``H' = H^{1/3}`` (largest divisor of H not exceeding it)."""
    target = max(1, round(h ** (1.0 / 3.0)))
    for candidate in range(min(target, h), 0, -1):
        if h % candidate == 0:
            return candidate
    return 1


class VirtualBlockAddress(NamedTuple):
    """Address of one virtual block: virtual hierarchy and local address.

    A ``NamedTuple`` for the same reason as the PDM twin: per-block
    construction cost on the write path (see ``repro.pdm.striping``).
    """

    vdisk: int  # named vdisk for interface-compatibility with VirtualDisks
    slot: int


class ParallelHierarchies:
    """H hierarchies of one kind with an interconnect at the base level."""

    def __init__(
        self,
        h: int,
        model: str = "hmm",
        cost_fn: CostFunction | None = None,
        interconnect: str = "pram",
    ):
        if h < 1:
            raise ParameterError("H must be >= 1")
        if model not in ("hmm", "bt", "umh"):
            raise ParameterError(f"model must be 'hmm', 'bt' or 'umh', got {model!r}")
        if interconnect not in ("pram", "hypercube"):
            raise ParameterError(f"interconnect must be 'pram' or 'hypercube'")
        self.h = int(h)
        self.model = model
        if model == "umh" and cost_fn is None:
            from .cost import UMHCost

            cost_fn = UMHCost()
        self.cost_fn = cost_fn or LogCost()
        self.interconnect = interconnect
        cls = BT if model == "bt" else HMM
        self.hierarchies = [cls(self.cost_fn) for _ in range(self.h)]
        #: Elapsed memory time: sum over parallel steps of the max hierarchy cost.
        self.memory_time = 0.0
        #: Accumulated interconnect (sorting/routing/compute) time.
        self.interconnect_time = 0.0
        self.parallel_steps = 0
        # Observability (optional; None keeps the stepping paths untouched).
        self._obs = None
        self._obs_scope = None

    # ---------------------------------------------------------- observability

    def attach_obs(self, obs, scope: str = "hierarchy") -> None:
        """Attach an :class:`~repro.obs.Observation` to this machine.

        Under ``obs.scope(scope)``: counters ``parallel_steps`` /
        ``interconnect_charges``, gauges ``memory_time`` /
        ``interconnect_time`` (running totals with watermarks), and a
        ``step.cost`` histogram of per-parallel-step max access costs.  The
        member hierarchies share per-model access counters under a child
        scope (``hmm`` / ``bt``), so the access-path traffic aggregates
        across all H hierarchies.  Model-time totals stay bit-identical
        whether or not anything is attached.
        """
        self._obs = obs
        self._obs_scope = obs.scope(scope)
        sub = self._obs_scope.scope(self.model)
        for hier in self.hierarchies:
            hier.attach_obs(sub)

    def detach_obs(self) -> None:
        """Remove the attached observation (hooks become no-ops again)."""
        self._obs = self._obs_scope = None
        for hier in self.hierarchies:
            hier.detach_obs()

    # ----------------------------------------------------------- stepping

    def parallel_step(
        self, per_hierarchy_costs: Sequence[float], kind: str | None = None
    ) -> None:
        """Charge one simultaneous memory step: elapsed += max(costs).

        ``kind`` (``"read"`` / ``"write"``, optional) tags the emitted
        ``mem.step`` trace event with the access direction so offline
        profilers can build per-direction stripe-width histograms — it
        never affects the charged cost.
        """
        if per_hierarchy_costs:
            step = max(per_hierarchy_costs)
            self.memory_time += step
            self.parallel_steps += 1
            if self._obs_scope is not None:
                self._obs_scope.counter("parallel_steps").inc()
                self._obs_scope.gauge("memory_time").set(self.memory_time)
                self._obs_scope.histogram("step.width").observe(len(per_hierarchy_costs))
                self._obs_scope.histogram(
                    "step.cost", buckets=(1, 2, 4, 8, 16, 32, 64, 128)
                ).observe(step)
                if kind is None:
                    self._obs.event(
                        "mem.step", width=len(per_hierarchy_costs),
                        cost=round(step, 6),
                    )
                else:
                    self._obs.event(
                        "mem.step", width=len(per_hierarchy_costs),
                        cost=round(step, 6), kind=kind,
                    )

    def charge_interconnect(self, time: float) -> None:
        """Accumulate interconnect (sorting/routing/compute) time."""
        self.interconnect_time += float(time)
        if self._obs_scope is not None:
            self._obs_scope.counter("interconnect_charges").inc()
            self._obs_scope.gauge("interconnect_time").set(self.interconnect_time)

    def sort_time(self) -> float:
        """``T(H)`` for this interconnect."""
        return T_H(self.h, interconnect=self.interconnect)

    def charge_base_sort(self, rounds: int = 1) -> None:
        """Charge ``rounds`` interconnect sorts of H base-level items."""
        self.charge_interconnect(rounds * self.sort_time())

    @property
    def total_time(self) -> float:
        """The model's elapsed time: memory steps + interconnect activity."""
        return self.memory_time + self.interconnect_time

    def reset_costs(self) -> None:
        """Zero every cost counter and any attached metrics scope."""
        self.memory_time = 0.0
        self.interconnect_time = 0.0
        self.parallel_steps = 0
        for hier in self.hierarchies:
            hier.reset_cost()
        if self._obs_scope is not None:
            self._obs_scope.reset()

    def snapshot(self) -> dict:
        """Current counters as a plain dict (for reporting)."""
        return {
            "H": self.h,
            "model": self.model,
            "cost": self.cost_fn.name,
            "interconnect": self.interconnect,
            "memory_time": self.memory_time,
            "interconnect_time": self.interconnect_time,
            "total_time": self.total_time,
            "parallel_steps": self.parallel_steps,
        }


class EffectiveBTCost(CostFunction):
    """Per-record streaming cost on a BT hierarchy (Section 4.4).

    The [ACSa] "touch" pipeline streams ``n`` in-order records through the
    base at ``touch_cost(n)``, i.e. an *effective* per-record cost of
    ``log log x`` for ``f = x^α, α < 1`` (the case the paper concentrates
    on — "we get the same recurrence as for the P-HMM model, using an
    effective cost function f(x) = log log x"), ``log x`` for ``α = 1``,
    and ``x^{α−1}`` for ``α > 1``.  ``f = log x`` hierarchies stream at
    ``log log`` too (an upper-bound charge; see DESIGN.md §2).
    """

    def __init__(self, base: CostFunction):
        object.__setattr__(self, "name", f"bt-effective({base.name})")
        object.__setattr__(self, "base", base)

    def __call__(self, addresses) -> np.ndarray:
        x = np.maximum(np.asarray(addresses, dtype=np.float64), 2.0)
        alpha = getattr(self.base, "alpha", None)
        if alpha is None or alpha < 1:
            return np.maximum(1.0, np.log2(np.maximum(np.log2(x), 2.0)))
        if alpha == 1:
            return np.maximum(1.0, np.log2(x))
        return x ** (alpha - 1)


class VirtualHierarchies:
    """Partial striping of a :class:`ParallelHierarchies` into H' groups.

    Interface-compatible with :class:`repro.pdm.striping.VirtualDisks`:
    ``n_virtual``, ``virtual_block_size``, ``parallel_write``,
    ``parallel_read``, ``free``, ``load_initial`` — the contract the
    Balance engine consumes.

    A virtual block of ``H/H'`` records is striped one record per member
    hierarchy at a common local address, so a parallel step touching one
    block per channel costs ``max_blocks f(slot + 1)`` (the group's
    hierarchies work simultaneously, each accessing one location).  On a BT
    machine pass ``effective_cost=EffectiveBTCost(machine.cost_fn)`` to
    charge the touch-pipeline streaming rate instead of raw ``f``.
    """

    def __init__(
        self,
        machine: ParallelHierarchies,
        n_virtual: int | None = None,
        effective_cost: CostFunction | None = None,
    ):
        h = machine.h
        n_virtual = n_virtual or default_virtual_hierarchy_count(h)
        if n_virtual < 1 or h % n_virtual != 0:
            raise ParameterError(f"H={h} must be divisible by H'={n_virtual}")
        self.machine = machine
        self.n_virtual = int(n_virtual)
        self.group = h // self.n_virtual
        self.cost_fn = effective_cost or machine.cost_fn
        # Virtual-block payloads live in the same pluggable slab/dict
        # substrate as the disk machine ("channels" here are virtual
        # hierarchies, the block size is one record per member hierarchy);
        # $REPRO_PDM_STORE selects the backend for both simulators.
        self._store = make_store(None, self.n_virtual, self.group)
        # Dual-ended free pool per virtual hierarchy: low allocations
        # compact subproblems to the front (the working-set discipline the
        # paper's recurrences assume), "parked" allocations take the highest
        # recycled slot (or extend the frontier) so in-flight distribution
        # output and sorted results stay out of the compaction zone.
        self._free_min: list[list[int]] = [[] for _ in range(self.n_virtual)]
        self._free_max: list[list[int]] = [[] for _ in range(self.n_virtual)]
        self._free_set: list[set] = [set() for _ in range(self.n_virtual)]
        self._frontier = [0] * self.n_virtual

    @property
    def virtual_block_size(self) -> int:
        """Records per virtual block: one per member hierarchy = H/H'."""
        return self.group

    # ------------------------------------------------------------ I/O plans

    #: Fused I/O plans (``ParallelDiskMachine.io_plan``) never apply to
    #: hierarchy backends: the cost model charges every parallel step
    #: with *address-dependent* costs (``cost_fn(slots + 1)``), so rounds
    #: must execute one at a time.  Planned readers consult this and take
    #: the classic round-at-a-time path.
    io_plan_window = 0

    @contextmanager
    def io_plan(self, window: int | None = None):
        """Interface parity with :class:`~repro.pdm.striping.VirtualDisks`.

        A no-op scope: hierarchy execution is always round-at-a-time
        (see ``io_plan_window``), but sorts can open the scope uniformly
        on either backend.
        """
        yield None

    def _alloc(self, v: int, park: bool = False) -> int:
        """Take a free slot: lowest free (default) or highest free / frontier.

        The free *set* is authoritative; the two heaps are advisory indexes
        into it (entries going stale when the twin heap served the slot).
        """
        free = self._free_set[v]
        heap = self._free_max[v] if park else self._free_min[v]
        while heap:
            slot = -heap[0] if park else heap[0]
            if slot in free:
                heapq.heappop(heap)
                free.discard(slot)
                return slot
            heapq.heappop(heap)  # stale entry
        addr = self._frontier[v]
        self._frontier[v] += 1
        return addr

    def _check_block(self, v: int, data: np.ndarray) -> None:
        if not 0 <= v < self.n_virtual:
            raise ParameterError(f"virtual hierarchy {v} out of range")
        if data.shape[0] != self.group:
            raise ParameterError(
                f"virtual block must hold {self.group} records, got {data.shape[0]}"
            )

    def _step_costs(self, slots: np.ndarray) -> list[float]:
        """Per-channel access costs for one parallel step (one vector call)."""
        return [float(c) for c in self.cost_fn(slots + 1)]

    # ------------------------------------------------------ batched fast path

    def parallel_write_arr(
        self, vdisks: np.ndarray, data: np.ndarray, park: bool = False
    ) -> list[VirtualBlockAddress]:
        """Write ≤1 virtual block per virtual hierarchy — one parallel step.

        Batched flavour of :meth:`parallel_write`: ``data`` is one
        ``(k, virtual_block_size)`` record matrix whose rows may be views
        of caller buffers (the store scatters a copy).  ``park=True``
        places the blocks at the highest recycled addresses (or the
        frontier) — see :meth:`parallel_write`.
        """
        vdisks = np.asarray(vdisks, dtype=np.int64)
        k = vdisks.size
        if k == 0:
            return []
        if k > 1 and np.unique(vdisks).size != k:
            raise DiskContentionError("two virtual blocks addressed to one virtual hierarchy")
        if int(vdisks.min()) < 0 or int(vdisks.max()) >= self.n_virtual:
            bad = int(vdisks[(vdisks < 0) | (vdisks >= self.n_virtual)][0])
            raise ParameterError(f"virtual hierarchy {bad} out of range")
        if data.shape != (k, self.group):
            raise ParameterError(
                f"virtual block must hold {self.group} records, got "
                f"{data.shape[1] if data.ndim == 2 else data.shape[0]}"
            )
        slots = np.empty(k, dtype=np.int64)
        for i, v in enumerate(vdisks.tolist()):
            slots[i] = self._alloc(v, park=park)
        self._store.write_batch(vdisks, slots, data)
        addresses = [
            VirtualBlockAddress(vdisk=int(v), slot=int(s))
            for v, s in zip(vdisks.tolist(), slots.tolist())
        ]
        self.machine.parallel_step(self._step_costs(slots), kind="write")
        return addresses

    def parallel_read_arr(
        self, addresses: Sequence[VirtualBlockAddress], free: bool = False
    ) -> np.ndarray:
        """Read ≤1 virtual block per virtual hierarchy — one parallel step.

        Returns a freshly gathered ``(k, virtual_block_size)`` record
        matrix; never views into the store.  ``free=True`` recycles the
        addresses right after the gather (equivalent to a follow-up
        :meth:`free_arr`; the address pools still see every slot).
        """
        if not addresses:
            return np.empty((0, self.group), dtype=RECORD_DTYPE)
        k = len(addresses)
        vdisks = np.fromiter((a.vdisk for a in addresses), np.int64, k)
        slots = np.fromiter((a.slot for a in addresses), np.int64, k)
        if k > 1 and np.unique(vdisks).size != k:
            raise DiskContentionError("two virtual blocks read from one virtual hierarchy")
        try:
            matrix = self._store.read_batch(vdisks, slots)
        except AddressError:
            for a in addresses:
                if not self._store.has(a.vdisk, a.slot):
                    raise AddressError(f"read of unwritten virtual block {a}") from None
            raise  # pragma: no cover - read_batch raised for another reason
        self.machine.parallel_step(self._step_costs(slots), kind="read")
        if free:
            self.free(addresses)
        return matrix

    def free_arr(self, addresses: Sequence[VirtualBlockAddress]) -> None:
        """Batched alias of :meth:`free` (address pools need per-slot pushes)."""
        self.free(addresses)

    # --------------------------------------------------------- classic API

    def parallel_write(
        self, items: Sequence[tuple[int, np.ndarray]], park: bool = False
    ) -> list[VirtualBlockAddress]:
        """Write ≤1 virtual block per virtual hierarchy — one parallel step.

        ``park=True`` places the blocks at the highest recycled addresses
        (or the frontier): used for distribution output and sorted results
        so they stay clear of the front, where repositioned subproblems
        compact (DESIGN.md §4; the working-set discipline of the paper's
        recurrences).  Thin shim over :meth:`parallel_write_arr`.
        """
        if not items:
            return []
        k = len(items)
        vdisks = np.fromiter((v for v, _ in items), np.int64, k)
        matrix = np.empty((k, self.group), dtype=RECORD_DTYPE)
        for i, (v, data) in enumerate(items):
            self._check_block(v, data)
            matrix[i] = data
        return self.parallel_write_arr(vdisks, matrix, park=park)

    def parallel_read(self, addresses: Sequence[VirtualBlockAddress]) -> list[np.ndarray]:
        """Read ≤1 virtual block per virtual hierarchy — one parallel step.

        Thin shim over :meth:`parallel_read_arr`; the returned blocks are
        rows of the fresh batch matrix (safe to hold and mutate).
        """
        if not addresses:
            return []
        return list(self.parallel_read_arr(addresses))

    def free(self, addresses: Sequence[VirtualBlockAddress]) -> None:
        """Recycle virtual-block addresses (served from either pool end)."""
        for a in addresses:
            if self._store.has(a.vdisk, a.slot):
                self._store.free(a.vdisk, a.slot)
                if a.slot not in self._free_set[a.vdisk]:
                    self._free_set[a.vdisk].add(a.slot)
                    heapq.heappush(self._free_min[a.vdisk], a.slot)
                    heapq.heappush(self._free_max[a.vdisk], -a.slot)

    def load_initial(self, blocks: Sequence[tuple[int, np.ndarray]]) -> list[VirtualBlockAddress]:
        """Place input blocks without charging cost (the problem's given state)."""
        if not blocks:
            return []
        k = len(blocks)
        vdisks = np.empty(k, dtype=np.int64)
        slots = np.empty(k, dtype=np.int64)
        matrix = np.empty((k, self.group), dtype=RECORD_DTYPE)
        addresses = []
        for i, (v, data) in enumerate(blocks):
            self._check_block(v, data)
            slot = self._alloc(v)
            vdisks[i], slots[i] = v, slot
            matrix[i] = data
            addresses.append(VirtualBlockAddress(vdisk=v, slot=slot))
        self._store.write_batch(vdisks, slots, matrix)
        return addresses

    def peek(self, address: VirtualBlockAddress) -> np.ndarray:
        """Inspect a virtual block without charging (tests/validators only).

        Zero-copy read-only view under the arena backend; a defensive
        copy under ``REPRO_PDM_STORE=dict`` or ``REPRO_PDM_SAFE_COPIES=1``.
        """
        if not self._store.has(address.vdisk, address.slot):
            raise AddressError(f"peek of unwritten virtual block {address}") from None
        return self._store.peek(address.vdisk, address.slot)

    def footprint(self, v: int) -> int:
        """Current high-water address on channel v (working-set diagnostics)."""
        return self._frontier[v]

    # Ledger hooks (no-ops: HMM/BT have no hard memory capacity — the cost
    # function plays that role), present for engine/backend interchangeability.
    def acquire_memory(self, n_records: int) -> None:
        """No-op: the cost function, not a capacity, limits hierarchies."""
        pass

    def release_memory(self, n_records: int) -> None:
        """No-op counterpart of :meth:`acquire_memory`."""
        pass
