"""The Uniform Memory Hierarchy (UMH) of Alpern, Carter, and Feig [ACF].

``UMH_{α,ρ,b(l)}``: memory level ``l`` (l = 0, 1, ...) consists of
``α·ρ^l`` blocks, each of ``ρ^l`` items; the bus between level ``l`` and
level ``l+1`` moves one level-``l`` block in ``ρ^l / b(l)`` time, and all
buses can run simultaneously.  The paper's Balance Sort techniques also
derandomize the P-UMH algorithms of [ViN] (Section 3); the model here is
operational (block moves with per-bus time accounting) so the P-UMH variant
can be exercised, though — like the paper — we concentrate on P-HMM and
P-BT for the sort itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import AddressError, CapacityError, ParameterError
from ..records import RECORD_DTYPE

__all__ = ["UMH"]


@dataclass
class _Level:
    """One UMH level: ``n_blocks`` block frames of ``block_size`` items."""

    block_size: int
    n_blocks: int
    blocks: dict = field(default_factory=dict)  # frame index -> record array


class UMH:
    """A UMH machine with ``levels`` levels and aspect ratio ``alpha``.

    Parameters
    ----------
    rho:
        Branching factor ρ ≥ 2; level ``l`` has blocks of ``ρ^l`` items.
    alpha:
        Blocks per level = ``alpha·ρ^l``.
    bandwidth:
        ``b(l)``: bus ``l`` moves a level-l block in ``ρ^l / b(l)`` time.
        Defaults to 1 (the hardest case).
    """

    def __init__(
        self,
        rho: int = 2,
        alpha: int = 2,
        levels: int = 12,
        bandwidth: Callable[[int], float] | None = None,
    ):
        if rho < 2:
            raise ParameterError("rho must be >= 2")
        if alpha < 1 or levels < 1:
            raise ParameterError("alpha and levels must be >= 1")
        self.rho = rho
        self.alpha = alpha
        self.bandwidth = bandwidth or (lambda l: 1.0)
        self.levels = [
            _Level(block_size=rho**l, n_blocks=alpha * rho**l) for l in range(levels)
        ]
        #: Per-bus busy time; total time is the max (buses run in parallel).
        self.bus_time = np.zeros(levels - 1, dtype=np.float64)
        self.moves = 0
        # Optional shared metrics scope (see repro.obs); None = no-op.
        self._obs_scope = None

    def attach_obs(self, scope) -> None:
        """Aggregate bus-transfer counts into a metrics scope."""
        self._obs_scope = scope

    def detach_obs(self) -> None:
        """Stop streaming metrics (the machine's costs are unaffected)."""
        self._obs_scope = None

    def capacity(self, level: int) -> int:
        """Records that fit on one level."""
        lv = self.levels[level]
        return lv.block_size * lv.n_blocks

    # ------------------------------------------------------------- blocks

    def put_block(self, level: int, frame: int, records: np.ndarray) -> None:
        """Install a block at a level frame directly (initial placement)."""
        lv = self._level(level)
        self._check_frame(lv, frame)
        if records.shape[0] != lv.block_size:
            raise ParameterError(
                f"level {level} blocks hold {lv.block_size} items, got {records.shape[0]}"
            )
        lv.blocks[frame] = records.copy()

    def get_block(self, level: int, frame: int) -> np.ndarray:
        """Inspect a block without a bus transfer (tests)."""
        lv = self._level(level)
        if frame not in lv.blocks:
            raise AddressError(f"no block at level {level} frame {frame}")
        return lv.blocks[frame].copy()

    def transfer(self, bus: int, lower_frame: int, upper_frame: int, sub_index: int, direction: str) -> None:
        """Move one level-``bus`` block across bus ``bus``.

        ``direction="down"`` copies sub-block ``sub_index`` of the level-
        ``bus+1`` block in ``upper_frame`` into level-``bus`` frame
        ``lower_frame``; ``"up"`` copies the level-``bus`` block in
        ``lower_frame`` into sub-block ``sub_index`` of ``upper_frame``
        (creating the upper block zero-filled if absent).  Time charged on
        bus ``bus``: ``ρ^bus / b(bus)``.
        """
        if not 0 <= bus < len(self.levels) - 1:
            raise AddressError(f"bus {bus} out of range")
        lower, upper = self.levels[bus], self.levels[bus + 1]
        self._check_frame(lower, lower_frame)
        self._check_frame(upper, upper_frame)
        if not 0 <= sub_index < self.rho:
            raise AddressError(f"sub-block index {sub_index} out of range [0, {self.rho})")
        size = lower.block_size
        if direction == "down":
            if upper_frame not in upper.blocks:
                raise AddressError("transfer down from empty frame")
            src = upper.blocks[upper_frame][sub_index * size : (sub_index + 1) * size]
            lower.blocks[lower_frame] = src.copy()
        elif direction == "up":
            if lower_frame not in lower.blocks:
                raise AddressError("transfer up from empty frame")
            if upper_frame not in upper.blocks:
                blank = np.zeros(upper.block_size, dtype=RECORD_DTYPE)
                upper.blocks[upper_frame] = blank
            upper.blocks[upper_frame][sub_index * size : (sub_index + 1) * size] = (
                lower.blocks[lower_frame]
            )
        else:
            raise ParameterError(f"direction must be 'up' or 'down', got {direction!r}")
        self.bus_time[bus] += lower.block_size / float(self.bandwidth(bus))
        self.moves += 1
        if self._obs_scope is not None:
            self._obs_scope.counter("bus_moves").inc()
            self._obs_scope.histogram("bus.level").observe(bus)

    def _level(self, level: int) -> _Level:
        if not 0 <= level < len(self.levels):
            raise AddressError(f"level {level} out of range")
        return self.levels[level]

    @staticmethod
    def _check_frame(lv: _Level, frame: int) -> None:
        if not 0 <= frame < lv.n_blocks:
            raise CapacityError(f"frame {frame} out of range [0, {lv.n_blocks})")

    # --------------------------------------------------------------- cost

    @property
    def time(self) -> float:
        """Elapsed time: buses run simultaneously, so the busiest bus governs."""
        return float(self.bus_time.max()) if self.bus_time.size else 0.0

    @property
    def total_bus_work(self) -> float:
        return float(self.bus_time.sum())

    def fetch_cost(self, n: int) -> float:
        """Closed-form cost of pipelining n records from level ⌈log_ρ n⌉ to base."""
        if n <= 0:
            return 0.0
        top = max(1, math.ceil(math.log(max(n, self.rho), self.rho)))
        return sum((self.rho**l) / self.bandwidth(l) for l in range(top))
