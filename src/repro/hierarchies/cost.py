"""Access-cost functions for hierarchical memories.

The paper's theorems are stated for the "well-behaved" cost functions
``f(x) = log x`` (with ``log z = max{1, log₂ z}``, footnote 1) and
``f(x) = x^α`` for ``α > 0``.  Cost functions here are vectorized: they map
an array of addresses (0-indexed internally, converted to the paper's
1-indexed locations) to an array of access costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CostFunction",
    "LogCost",
    "PowerCost",
    "ConstantCost",
    "UMHCost",
    "well_behaved",
    "paper_log",
]


def paper_log(x) -> np.ndarray | float:
    """The paper's ``log z = max{1, log₂ z}`` (footnote 1), vectorized."""
    arr = np.maximum(np.asarray(x, dtype=np.float64), 1.0)
    return np.maximum(1.0, np.log2(np.maximum(arr, 1.0)))


@dataclass(frozen=True)
class CostFunction:
    """Base: cost of touching memory location ``x`` (1-indexed)."""

    name: str = "abstract"

    def __call__(self, addresses) -> np.ndarray:
        raise NotImplementedError

    def scan_cost(self, start: int, length: int) -> float:
        """Cost of touching locations start+1 .. start+length individually.

        ``start`` is 0-indexed; HMM charges each location separately.
        """
        if length <= 0:
            return 0.0
        locs = np.arange(start + 1, start + length + 1, dtype=np.float64)
        return float(self(locs).sum())


@dataclass(frozen=True)
class LogCost(CostFunction):
    """``f(x) = log x`` — the HMM_{log x} model of Figure 3a."""

    name: str = "log"

    def __call__(self, addresses) -> np.ndarray:
        return paper_log(addresses)


@dataclass(frozen=True)
class PowerCost(CostFunction):
    """``f(x) = x^α`` for ``α > 0``."""

    alpha: float = 1.0
    name: str = "power"

    def __post_init__(self):
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")

    def __call__(self, addresses) -> np.ndarray:
        return np.asarray(addresses, dtype=np.float64) ** self.alpha


@dataclass(frozen=True)
class ConstantCost(CostFunction):
    """``f(x) = 1`` — degenerates the hierarchy to a flat memory (tests)."""

    name: str = "constant"

    def __call__(self, addresses) -> np.ndarray:
        return np.ones_like(np.asarray(addresses, dtype=np.float64))


@dataclass(frozen=True)
class UMHCost(CostFunction):
    """Streaming access cost on a UMH hierarchy [ACF], per virtual block.

    In ``UMH_{α,ρ,b(l)=1}`` the s-th block (in capacity order) lives around
    level ``log_ρ s``; pipelining it through the buses to the base costs a
    geometric sum dominated by the top bus, i.e. ``Θ(1 + log_ρ s)`` time
    per block once transfers overlap.  This is the simplified streaming
    model under which the [ViN] P-UMH sorting bounds take the
    ``Θ((N/H)·log N)`` shape our techniques derandomize (Section 3);
    the bus-level :class:`~repro.hierarchies.umh.UMH` machine remains
    available for exact transfer simulation.
    """

    rho: int = 2
    name: str = "umh"

    def __post_init__(self):
        if self.rho < 2:
            raise ValueError(f"rho must be >= 2, got {self.rho}")

    def __call__(self, addresses) -> np.ndarray:
        x = np.maximum(np.asarray(addresses, dtype=np.float64), 1.0)
        return 1.0 + np.log(x) / math.log(self.rho)


def well_behaved(spec: str | float) -> CostFunction:
    """Build a cost function from a short spec: ``"log"`` or an exponent α."""
    if isinstance(spec, str):
        if spec == "log":
            return LogCost()
        if spec == "constant":
            return ConstantCost()
        if spec == "umh":
            return UMHCost()
        raise ValueError(f"unknown cost spec {spec!r}")
    return PowerCost(alpha=float(spec))
