"""The Hierarchical Memory Model (HMM) of Aggarwal et al. [AAC].

One address space; touching location ``x`` (1-indexed) costs ``f(x)``.
Figure 3a depicts ``HMM_{log x}``: each layer twice the previous, the n-th
layer costing n per access.  The machine stores records in a flat growable
array and charges ``f`` per touched location; there is no block transfer —
that is the BT model's extension.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AddressError
from ..records import RECORD_DTYPE
from .cost import CostFunction, LogCost

__all__ = ["HMM"]


class HMM:
    """A single HMM hierarchy with cost function ``f``.

    Attributes
    ----------
    cost:
        Accumulated access cost (the model's time).
    """

    GROWTH = 1024

    def __init__(self, cost_fn: CostFunction | None = None, capacity: int = 0):
        self.f = cost_fn or LogCost()
        self._data = np.zeros(max(capacity, self.GROWTH), dtype=RECORD_DTYPE)
        self._valid = np.zeros(self._data.shape[0], dtype=bool)
        self.cost = 0.0
        self.accesses = 0
        # Shared metrics scope (one per machine model, aggregated over all
        # H hierarchies by ParallelHierarchies.attach_obs); None = no-op.
        self._obs_scope = None

    def attach_obs(self, scope) -> None:
        """Aggregate access counts into a shared metrics scope."""
        self._obs_scope = scope

    def detach_obs(self) -> None:
        """Stop streaming metrics (the machine's costs are unaffected)."""
        self._obs_scope = None

    # --------------------------------------------------------------- store

    def _ensure(self, upto: int) -> None:
        if upto >= self._data.shape[0]:
            new_size = max(upto + 1, 2 * self._data.shape[0])
            data = np.zeros(new_size, dtype=RECORD_DTYPE)
            valid = np.zeros(new_size, dtype=bool)
            data[: self._data.shape[0]] = self._data
            valid[: self._valid.shape[0]] = self._valid
            self._data, self._valid = data, valid

    def write(self, addresses: np.ndarray, records: np.ndarray) -> None:
        """Store records at the given 0-indexed addresses, charging Σ f(x+1)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return
        if addresses.min() < 0:
            raise AddressError("negative address")
        self._ensure(int(addresses.max()))
        self._data[addresses] = records
        self._valid[addresses] = True
        self._charge(addresses)

    def read(self, addresses: np.ndarray) -> np.ndarray:
        """Fetch records from 0-indexed addresses, charging Σ f(x+1)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return np.empty(0, dtype=RECORD_DTYPE)
        if addresses.min() < 0 or int(addresses.max()) >= self._data.shape[0]:
            raise AddressError("address out of range")
        if not np.all(self._valid[addresses]):
            raise AddressError("read of unwritten HMM location")
        self._charge(addresses)
        # Fancy indexing already materializes a fresh array — no extra copy.
        return self._data[addresses]

    def load_initial(self, records: np.ndarray, start: int = 0) -> None:
        """Place input data without charging cost (the problem's given state)."""
        n = records.shape[0]
        self._ensure(start + n)
        self._data[start : start + n] = records
        self._valid[start : start + n] = True

    def peek(self, addresses: np.ndarray) -> np.ndarray:
        """Inspect without charging (tests/validators)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        return self._data[addresses]  # fancy indexing: already a fresh array

    # --------------------------------------------------------------- cost

    def _charge(self, addresses: np.ndarray) -> None:
        self.cost += float(self.f(addresses + 1).sum())
        self.accesses += int(addresses.size)
        if self._obs_scope is not None:
            self._obs_scope.counter("accesses").inc(int(addresses.size))

    def charge_scan(self, start: int, length: int) -> None:
        """Charge for touching ``length`` consecutive locations from ``start``."""
        self.cost += self.f.scan_cost(start, length)
        self.accesses += max(length, 0)
        if self._obs_scope is not None:
            self._obs_scope.counter("accesses").inc(max(length, 0))
            self._obs_scope.counter("scans").inc()

    def reset_cost(self) -> None:
        """Zero the access-cost counters (between experiment phases)."""
        self.cost = 0.0
        self.accesses = 0
