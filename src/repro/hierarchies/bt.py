"""The Block Transfer (BT) model of Aggarwal, Chandra, and Snir [ACSa].

Like HMM it has a cost function ``f(x)``, but it "simulates the effect of
block transfer by allowing the ℓ+1 locations x, x−1, ..., x−ℓ to be
accessed at cost f(x) + ℓ" (Section 2.2).  The BT machine therefore exposes
*block* reads/writes charged ``f(x) + ℓ`` and the [ACSa] **touch**
primitive: streaming ``n`` consecutive records through the base level costs
``Θ(n log log n)`` for ``f(x) = x^α, 0 < α < 1`` — the charge the P-BT sort
(Section 4.4) relies on for its in-order data-structure passes and bucket
repositioning (``O((N/H)(log log(N/H))⁴)`` via the generalized matrix
transposition of [ACSa]).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import AddressError
from ..records import RECORD_DTYPE
from .cost import CostFunction, PowerCost
from .hmm import HMM

__all__ = ["BT", "touch_cost", "transpose_cost"]


def _loglog(n: float) -> float:
    lg = max(2.0, math.log2(max(n, 2.0)))
    return max(1.0, math.log2(lg))


def touch_cost(n: int, cost_fn: CostFunction) -> float:
    """[ACSa] touch: pass n consecutive lowest-level records through the base.

    ``Θ(n log log n)`` for ``f(x) = x^α`` with ``0 < α < 1`` (the case
    Section 4.4 concentrates on); ``Θ(n log* n)``-like for ``f = log x`` is
    charged as ``n·log log n`` too (an upper bound, adequate for the
    recurrence shapes we verify); ``Θ(n log n)`` for ``α = 1`` and
    ``Θ(n^α)``-dominated for ``α > 1``.
    """
    if n <= 0:
        return 0.0
    alpha = getattr(cost_fn, "alpha", None)
    if alpha is None:  # log-cost hierarchy
        return n * _loglog(n)
    if alpha < 1:
        return n * _loglog(n)
    if alpha == 1:
        return n * max(1.0, math.log2(max(n, 2.0)))
    return float(n**alpha)


def transpose_cost(n: int, cost_fn: CostFunction) -> float:
    """[ACSa] generalized matrix transposition used to reposition buckets.

    Section 4.4: repositioning is "done using the cited algorithm in time
    O((N/H)(log log(N/H))⁴)" — we charge exactly that shape per hierarchy.
    """
    if n <= 0:
        return 0.0
    return n * _loglog(n) ** 4


class BT(HMM):
    """A single BT hierarchy: HMM plus block transfer and touch."""

    def read_block(self, high_address: int, length: int) -> np.ndarray:
        """Read locations high, high-1, ..., high-length+1 at cost f(high+1)+length-1.

        Returns the records in *ascending* address order.
        """
        if length <= 0:
            return np.empty(0, dtype=RECORD_DTYPE)
        lo = high_address - length + 1
        if lo < 0:
            raise AddressError("block extends below address 0")
        hi = high_address + 1
        if int(high_address) >= self._data.shape[0] or not np.all(self._valid[lo:hi]):
            raise AddressError("read of unwritten BT block")
        self.cost += float(self.f(np.array([high_address + 1])).sum()) + (length - 1)
        self.accesses += length
        if self._obs_scope is not None:
            self._obs_scope.counter("block_reads").inc()
            self._obs_scope.counter("accesses").inc(length)
        # Contiguous range: slice + one copy (the old arange fancy-index
        # materialized the range twice — index array and gathered copy).
        return self._data[lo:hi].copy()

    def write_block(self, high_address: int, records: np.ndarray) -> None:
        """Write a block ending at ``high_address`` at cost f(high+1)+len-1."""
        length = records.shape[0]
        if length == 0:
            return
        lo = high_address - length + 1
        if lo < 0:
            raise AddressError("block extends below address 0")
        self._ensure(high_address)
        self._data[lo : high_address + 1] = records
        self._valid[lo : high_address + 1] = True
        self.cost += float(self.f(np.array([high_address + 1])).sum()) + (length - 1)
        self.accesses += length
        if self._obs_scope is not None:
            self._obs_scope.counter("block_writes").inc()
            self._obs_scope.counter("accesses").inc(length)

    def charge_touch(self, n: int) -> None:
        """Charge the [ACSa] touch of n consecutive records."""
        self.cost += touch_cost(n, self.f)
        self.accesses += max(n, 0)
        if self._obs_scope is not None:
            self._obs_scope.counter("touches").inc()
            self._obs_scope.counter("accesses").inc(max(n, 0))

    def charge_transpose(self, n: int) -> None:
        """Charge the [ACSa] generalized transposition of n records."""
        self.cost += transpose_cost(n, self.f)
        self.accesses += max(n, 0)
        if self._obs_scope is not None:
            self._obs_scope.counter("transposes").inc()
            self._obs_scope.counter("accesses").inc(max(n, 0))
