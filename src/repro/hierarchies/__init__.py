"""Memory-hierarchy substrates: HMM, BT, UMH and their parallel variants.

Figure 3 of the paper shows the three multilevel hierarchy models:

* **HMM** [AAC] — access to memory location ``x`` costs ``f(x)``; the
  "well-behaved" cost functions are ``f(x) = log x`` and ``f(x) = x^α``.
* **BT** [ACSa] — HMM plus block transfer: locations ``x, x-1, ..., x-ℓ``
  for cost ``f(x) + ℓ``; also source of the "touch" pipeline the P-BT sort
  uses.
* **UMH** [ACF] — uniform levels: level ``l`` holds ``ρ^l`` blocks of
  ``ρ^l`` items; the bus between levels ``l`` and ``l+1`` moves one level-l
  block in ``ρ^l / b(l)`` time.

Figure 4's parallel variants (P-HMM, P-BT, P-UMH) attach ``H`` hierarchies
to ``H`` interconnected processors at the base level
(:class:`~repro.hierarchies.parallel.ParallelHierarchies`), with partial
striping into ``H' = H^{1/3}`` virtual hierarchies.
"""

from .cost import CostFunction, LogCost, PowerCost, UMHCost, well_behaved
from .hmm import HMM
from .bt import BT
from .umh import UMH
from .parallel import ParallelHierarchies, VirtualHierarchies

__all__ = [
    "CostFunction",
    "LogCost",
    "PowerCost",
    "UMHCost",
    "well_behaved",
    "HMM",
    "BT",
    "UMH",
    "ParallelHierarchies",
    "VirtualHierarchies",
]
