"""Fast deterministic partial matching (Section 4.2).

Rearrange (Algorithm 6) reduces rebalancing to bipartite matching: ``U`` is
the set of channels holding a 2 in the auxiliary matrix (at most ⌊H'/2⌋ per
call), ``V`` is all ``H'`` channels, and ``(u, v) ∈ E`` when bucket
``b[u]``'s row has a 0 at ``v`` — swapping ``u``'s block to ``v`` removes
the 2.  Invariant 1 guarantees every ``u`` has degree ≥ ⌈H'/2⌉.

Three matchers:

* :func:`greedy_match` — sequential greedy.  Because ``deg(u) ≥ ⌈H'/2⌉ >
  |U| − 1``, greedy always matches *every* vertex of ``U``; it is the
  correctness reference and the practical choice when parallel time is not
  being modelled (the paper's objection to simple matchers is their
  parallel *time*, not their quality).
* :func:`randomized_partial_match` — Algorithm 7 verbatim: every ``u``
  repeatedly picks a uniform vertex of ``V`` until it hits a neighbor, then
  conflicts are resolved in favour of the smallest-numbered ``u``
  (Lemma 1: ≥ H'/4 matched in expectation, O(1) picking rounds).
* :func:`derandomized_partial_match` — Theorem 5: the picks are drawn from
  the pairwise-independent space ``h_{a,b}(u) = (a·u + b) mod p``
  (:class:`repro.util.pairwise.PairwiseSpace`); all ``p² = O(H'²)`` sample
  points are evaluated — the paper runs these as ``(H')²`` parallel copies
  on its ``H = (H')³`` processors — and the first point matching at least
  ``⌈H'/4⌉`` vertices is used.  Luby's argument guarantees such a point
  exists; if a degenerate tiny instance ever lacked one we fall back to
  greedy (still deterministic) and count it in ``stats``.

All matchers also report the simulated parallel time of the matching step
(``O(T(H))``, Section 4.2: sort messages by destination, segmented prefix,
monotone route).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvariantViolation
from ..util.pairwise import PairwiseSpace
from .kernels import get_backend

__all__ = [
    "MatchingInstance",
    "MatchResult",
    "greedy_match",
    "greedy_mincost_match",
    "randomized_partial_match",
    "derandomized_partial_match",
]

#: Retry budget per vertex per sample point in the derandomized search.
DERAND_RETRIES = 8


@dataclass(frozen=True)
class MatchingInstance:
    """One Rearrange matching problem.

    ``u_channels[i]`` is the i-th overloaded channel; ``buckets[i]`` its
    unique 2-bucket; ``adjacency`` a boolean matrix of shape
    ``(|U|, H')`` with ``adjacency[i, v] = (a_{buckets[i], v} == 0)``.
    """

    u_channels: tuple
    buckets: tuple
    adjacency: np.ndarray
    n_channels: int

    @classmethod
    def from_matrices(cls, matrices, u_channels: list[int]) -> "MatchingInstance":
        """Build the instance Algorithm 6 constructs from the auxiliary matrix."""
        buckets = [matrices.bucket_with_two(h) for h in u_channels]
        adjacency = np.stack(
            [matrices.A[b] == 0 for b in buckets]
        ) if u_channels else np.zeros((0, matrices.n_channels), dtype=bool)
        return cls(
            u_channels=tuple(u_channels),
            buckets=tuple(buckets),
            adjacency=adjacency,
            n_channels=matrices.n_channels,
        )

    @property
    def size(self) -> int:
        return len(self.u_channels)

    def min_degree(self) -> int:
        """Smallest number of candidate targets over the U vertices."""
        if self.size == 0:
            return self.n_channels
        return int(self.adjacency.sum(axis=1).min())

    def check_degree_invariant(self) -> None:
        """Invariant 1 consequence: every u has ≥ ⌈H'/2⌉ candidate targets."""
        need = (self.n_channels + 1) // 2
        if self.size and self.min_degree() < need:
            raise InvariantViolation(
                f"matching degree {self.min_degree()} below ⌈H'/2⌉ = {need}"
            )


@dataclass
class MatchResult:
    """Outcome of one matching call: ``pairs[i] = (u_channel, v_channel)``."""

    pairs: list
    picking_rounds: int = 1
    sample_points_tried: int = 0
    used_fallback: bool = False

    @property
    def size(self) -> int:
        return len(self.pairs)


def _validate(instance: MatchingInstance, pairs: list) -> None:
    vs = [v for _, v in pairs]
    if len(set(vs)) != len(vs):
        raise InvariantViolation("matching assigned two blocks to one channel")
    u_index = {u: i for i, u in enumerate(instance.u_channels)}
    for u, v in pairs:
        if not instance.adjacency[u_index[u], v]:
            raise InvariantViolation(f"matched non-edge ({u}, {v})")


def greedy_match(instance: MatchingInstance) -> MatchResult:
    """Sequential greedy matching — perfect on these instances.

    Processes ``U`` in order; each vertex takes its lowest-numbered free
    neighbor.  Degree ≥ ⌈H'/2⌉ > |U| − 1 guarantees one exists.
    """
    taken = np.zeros(instance.n_channels, dtype=bool)
    pairs = []
    for i, u in enumerate(instance.u_channels):
        candidates = np.nonzero(instance.adjacency[i] & ~taken)[0]
        if candidates.size == 0:
            raise InvariantViolation(
                f"greedy matching stuck at u={u}: no free neighbor "
                f"(degree invariant broken upstream)"
            )
        v = int(candidates[0])
        taken[v] = True
        pairs.append((u, v))
    result = MatchResult(pairs=pairs)
    _validate(instance, pairs)
    return result


def greedy_mincost_match(instance: MatchingInstance, histogram: np.ndarray) -> MatchResult:
    """Min-cost flavour of greedy (Section 6 conjecture ablation).

    Each ``u`` takes the free neighbor whose histogram entry for ``u``'s
    bucket is smallest — steering blocks toward the channels where the
    bucket is rarest, the "greedy balance via min-cost matching on the
    placement matrix" the authors conjecture balances globally.
    """
    taken = np.zeros(instance.n_channels, dtype=bool)
    pairs = []
    for i, u in enumerate(instance.u_channels):
        mask = instance.adjacency[i] & ~taken
        candidates = np.nonzero(mask)[0]
        if candidates.size == 0:
            raise InvariantViolation(f"min-cost greedy stuck at u={u}")
        costs = histogram[instance.buckets[i], candidates]
        v = int(candidates[int(np.argmin(costs))])
        taken[v] = True
        pairs.append((u, v))
    result = MatchResult(pairs=pairs)
    _validate(instance, pairs)
    return result


def randomized_partial_match(
    instance: MatchingInstance,
    rng: np.random.Generator,
    max_rounds: int = 1000,
    backend: str | None = None,
) -> MatchResult:
    """Algorithm 7 verbatim (randomized).

    Step (1): each ``u`` keeps picking a uniform vertex of ``V`` until the
    pick is edge-adjacent.  Step (2): when several ``u`` pick the same
    vertex, the smallest-numbered wins.  Expected ≥ H'/4 matched (Lemma 1);
    the picking loop runs an expected ≤ 2 rounds since degree ≥ H'/2.
    """
    k = instance.size
    if k == 0:
        return MatchResult(pairs=[])
    picks = np.full(k, -1, dtype=np.int64)
    unresolved = np.arange(k)
    rounds = 0
    while unresolved.size and rounds < max_rounds:
        rounds += 1
        trial = rng.integers(0, instance.n_channels, size=unresolved.size)
        hit = instance.adjacency[unresolved, trial]
        picks[unresolved[hit]] = trial[hit]
        unresolved = unresolved[~hit]
    if unresolved.size:
        raise InvariantViolation("randomized matching failed to find neighbors")
    pairs = _resolve_conflicts(instance, picks, backend)
    result = MatchResult(pairs=pairs, picking_rounds=rounds)
    _validate(instance, pairs)
    return result


def _resolve_conflicts(
    instance: MatchingInstance, picks: np.ndarray, backend: str | None = None
) -> list:
    """Smallest-numbered u wins each contested v (Algorithm 7, step 2).

    Dispatched through the kernel backend (:mod:`repro.core.kernels`):
    the scalar reference loop and the vectorized ``np.unique`` kernel are
    bit-identical (same pairs, same order).
    """
    return get_backend(backend).resolve_conflicts(instance.u_channels, picks)


def derandomized_partial_match(
    instance: MatchingInstance, backend: str | None = None
) -> MatchResult:
    """Theorem 5: deterministic ≥ ⌈H'/4⌉ matching via the pairwise space.

    Every sample point ``(a, b) ∈ Z_p²`` deterministically drives the
    Algorithm 7 simulation (pick sequence ``(a·u + b + r) mod p`` for retry
    ``r``, rejecting values ≥ H' and non-neighbors, ``r <`` a constant
    budget); the first point matching the target is selected.  The paper
    evaluates all points simultaneously on its ``H = (H')³`` processors, so
    wall-clock there is still ``O(T(H))``.
    """
    k = instance.size
    if k == 0:
        return MatchResult(pairs=[])
    target = min(k, -(-instance.n_channels // 4))  # ⌈H'/4⌉ capped by |U|
    space = PairwiseSpace(instance.n_channels)
    if k <= 4 and instance.n_channels <= 8:
        return _derandomized_small(instance, space, target)
    u_ids = np.arange(k, dtype=np.int64)

    tried = 0
    for a, b in space.points():
        tried += 1
        picks = np.full(k, -1, dtype=np.int64)
        undecided = np.arange(k)
        for r in range(DERAND_RETRIES):
            cand = (a * u_ids[undecided] + b + r) % space.p
            ok = (cand < instance.n_channels) & instance.adjacency[
                undecided, np.minimum(cand, instance.n_channels - 1)
            ]
            picks[undecided[ok]] = cand[ok]
            undecided = undecided[~ok]
            if undecided.size == 0:
                break
        pairs = _resolve_conflicts(instance, picks, backend)
        if len(pairs) >= target:
            result = MatchResult(pairs=pairs, picking_rounds=DERAND_RETRIES, sample_points_tried=tried)
            _validate(instance, pairs)
            return result

    # Degenerate tiny instance: stay deterministic via greedy (perfect).
    result = greedy_match(instance)
    result.sample_points_tried = tried
    result.used_fallback = True
    return result


def _derandomized_small(
    instance: MatchingInstance, space: PairwiseSpace, target: int
) -> MatchResult:
    """Scalar evaluation of the pairwise-space search for tiny instances.

    Bit-identical to the vectorized loop in
    :func:`derandomized_partial_match` (same sample-point order, same
    per-vertex retry sequence, same smallest-``u``-wins conflict rule —
    the scalar kernel's reference semantics), just without the ~15 NumPy
    array constructions per sample point, which dominate when ``|U| ≤ 4``
    — the common case, since ``|U| ≤ ⌊H'/2⌋`` per Rearrange call.
    """
    k = instance.size
    adj = instance.adjacency.tolist()
    p = space.p
    n_ch = instance.n_channels
    u_channels = instance.u_channels
    tried = 0
    for a, b in space.points():
        tried += 1
        pairs = []
        seen = set()
        for i in range(k):
            row = adj[i]
            for r in range(DERAND_RETRIES):
                cand = (a * i + b + r) % p
                if cand < n_ch and row[cand]:
                    # Conflict rule folded in: i ascends, so the first
                    # claimant of a v is the smallest-numbered u.
                    if cand not in seen:
                        seen.add(cand)
                        pairs.append((u_channels[i], cand))
                    break
        if len(pairs) >= target:
            result = MatchResult(
                pairs=pairs, picking_rounds=DERAND_RETRIES, sample_points_tried=tried
            )
            _validate(instance, pairs)
            return result
    result = greedy_match(instance)
    result.sample_points_tried = tried
    result.used_fallback = True
    return result
