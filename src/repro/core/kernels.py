"""Selectable compute kernels for the Balance-engine hot paths.

The per-round bookkeeping of the Balance engine (Algorithm 3) and the
conflict-resolution step of the matchers (Algorithm 7, step 2) were
originally written as straightforward per-bucket / per-vertex Python
loops.  Those loops are exactly the "CPU work" the paper charges to its
PRAM — simulating them record-by-record in Python is where the wall-clock
of large grid sweeps goes.

This module provides interchangeable **kernel backends**:

* ``"scalar"`` — the original pure-Python loops, kept verbatim as the
  reference semantics;
* ``"vectorized"`` — NumPy formulations of the same computations;
* ``"compiled"`` — the vectorized backend with its per-round inner
  loops (round bookkeeping, bucket grouping) delegated to the optional
  ``repro._speedups`` C extension.  Present in :data:`BACKENDS` only
  when the extension is built (``python setup.py build_ext --inplace``)
  — membership *is* the build probe; without it, selection falls back
  to pure Python with identical results.

All backends are required (and tested, see
``tests/test_kernels_differential.py`` and
``tests/test_compiled_differential.py``) to be **bit-identical**: same
queue entries in the same order, same records in every emitted block, and
therefore the same I/O schedule, matrices, and ``IOStats`` on any seeded
run.  The vectorized backend is the default; select globally with
:func:`set_default_backend` / the ``REPRO_KERNEL_BACKEND`` environment
variable, per call site with the ``backend=`` parameters on
:class:`~repro.core.balance.BalanceEngine` and the matchers, or
temporarily with the :func:`use_backend` context manager.

Kernel surface
--------------
``bucket_chunks``
    Split a bucket-sorted record chunk into per-bucket sub-arrays
    (Algorithm 3 step 1's "collect into virtual blocks" feed path,
    previously the per-bucket loop in ``balance.feed``).
``carve_full_blocks``
    Carve every full virtual block out of a bucket's buffered partial
    chunks (previously ``BalanceEngine._carve_block`` in a while loop).
``tail_blocks``
    Slice a bucket's padded tail into (block, fill) pairs at flush time
    (previously the stripe-assembly loop in ``BalanceEngine.flush``).
``resolve_conflicts``
    Algorithm 7 step 2 — smallest-numbered ``u`` wins each contested
    ``v`` (previously the pick loop in ``matching._resolve_conflicts``).
``stream_batches``
    The round planner: split an ordered run's per-block channel sequence
    into maximal contention-free parallel-read rounds (greedy
    until-a-channel-repeats batching, previously an inline loop in
    ``streams.read_run_batches``).  Planned rounds are what the fused
    gather/scatter executor (``ParallelDiskMachine.io_plan``) prefetches.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

import numpy as np

from ..exceptions import ParameterError
from ..records import concat_records

__all__ = [
    "KernelBackend",
    "ScalarBackend",
    "VectorizedBackend",
    "BACKENDS",
    "get_backend",
    "default_backend_name",
    "set_default_backend",
    "use_backend",
]


class KernelBackend:
    """Interface of a kernel backend (see module docstring)."""

    name = "abstract"

    # -- feed path -------------------------------------------------------

    @staticmethod
    def bucket_chunks(sorted_recs, sorted_buckets, n_buckets):
        """Yield ``(bucket, chunk)`` for every non-empty bucket, ascending.

        ``sorted_recs`` holds the chunk's records stably sorted by bucket;
        ``sorted_buckets`` the matching bucket ids.
        """
        raise NotImplementedError

    @staticmethod
    def carve_full_blocks(parts, buffered, vb):
        """Carve full blocks from ``parts`` (arrival-ordered arrays).

        Returns ``(blocks, remainder_parts, remainder_size)`` where
        ``blocks`` is the list of exactly-``vb``-record arrays in carve
        order and ``remainder_parts`` the leftover (< ``vb`` records).
        """
        raise NotImplementedError

    # -- flush path ------------------------------------------------------

    @staticmethod
    def tail_blocks(padded, true_n, vb):
        """Slice a padded tail into ``(block, fill)`` pairs in order."""
        raise NotImplementedError

    # -- matching --------------------------------------------------------

    @staticmethod
    def resolve_conflicts(u_channels, picks):
        """Algorithm 7 step 2: smallest-numbered ``u`` wins each ``v``.

        ``picks[i]`` is vertex ``i``'s picked channel (−1 = no pick);
        returns ``[(u_channel, v), ...]`` ordered by vertex index.
        """
        raise NotImplementedError

    # -- round planning --------------------------------------------------

    @staticmethod
    def stream_batches(channels, n_virtual):
        """Greedy contention-free round boundaries over a channel sequence.

        ``channels`` is each block's channel in logical order; a round
        extends while its channels stay distinct and closes at the first
        repeat.  Returns the boundary list ``[0, b1, ..., len(channels)]``
        (round ``i`` spans ``[bounds[i], bounds[i+1])``); ``[0]`` for an
        empty sequence.
        """
        raise NotImplementedError


class ScalarBackend(KernelBackend):
    """The original pure-Python loops (reference semantics)."""

    name = "scalar"

    @staticmethod
    def bucket_chunks(sorted_recs, sorted_buckets, n_buckets):
        """Per-bucket loop over all S buckets, slicing at searchsorted edges."""
        boundaries = np.searchsorted(sorted_buckets, np.arange(n_buckets + 1))
        for b in range(n_buckets):
            chunk = sorted_recs[boundaries[b] : boundaries[b + 1]]
            if chunk.size == 0:
                continue
            yield b, chunk

    @staticmethod
    def carve_full_blocks(parts, buffered, vb):
        """Head-of-queue while-loop carving one ``vb``-record block at a time."""
        parts = list(parts)
        blocks = []
        while buffered >= vb:
            taken = []
            need = vb
            while need > 0:
                head = parts[0]
                if head.shape[0] <= need:
                    taken.append(head)
                    need -= head.shape[0]
                    parts.pop(0)
                else:
                    taken.append(head[:need])
                    parts[0] = head[need:]
                    need = 0
            buffered -= vb
            blocks.append(np.concatenate(taken) if len(taken) > 1 else taken[0].copy())
        return blocks, parts, buffered

    @staticmethod
    def tail_blocks(padded, true_n, vb):
        """Stride loop slicing ``vb``-wide windows with per-window fill."""
        out = []
        for i in range(0, padded.shape[0], vb):
            fill = min(vb, max(0, true_n - i))
            out.append((padded[i : i + vb], fill))
        return out

    @staticmethod
    def resolve_conflicts(u_channels, picks):
        """First-come loop over vertex indices with a seen-``v`` set."""
        pairs = []
        seen: set[int] = set()
        for i in range(picks.size):
            v = int(picks[i])
            if v >= 0 and v not in seen:
                seen.add(v)
                pairs.append((u_channels[i], v))
        return pairs

    @staticmethod
    def stream_batches(channels, n_virtual):
        """The original greedy loop: extend until a channel repeats."""
        if not channels:
            return [0]
        bounds = [0]
        seen: set[int] = set()
        for i, c in enumerate(channels):
            if c in seen:
                bounds.append(i)
                seen = {c}
            else:
                seen.add(c)
        bounds.append(len(channels))
        return bounds


class VectorizedBackend(KernelBackend):
    """NumPy formulations of the same kernels (bit-identical outputs)."""

    name = "vectorized"

    @staticmethod
    def bucket_chunks(sorted_recs, sorted_buckets, n_buckets):
        """One ``np.unique`` over the present buckets; slice between starts."""
        # Only the buckets actually present — one np.unique call instead of
        # an S-iteration Python loop (S can be ≫ the number of non-empty
        # buckets deep in the recursion).
        present, starts = np.unique(sorted_buckets, return_index=True)
        ends = np.append(starts[1:], sorted_buckets.size)
        for b, lo, hi in zip(present.tolist(), starts.tolist(), ends.tolist()):
            yield int(b), sorted_recs[lo:hi]

    @staticmethod
    def carve_full_blocks(parts, buffered, vb):
        """Single concatenate, then stride-slice every full block at once."""
        n_full = buffered // vb
        if n_full == 0:
            return [], list(parts), buffered
        buf = concat_records(parts) if len(parts) > 1 else parts[0]
        cut = n_full * vb
        blocks = [buf[i * vb : (i + 1) * vb] for i in range(n_full)]
        remainder = buf[cut:]
        rem_parts = [remainder] if remainder.shape[0] else []
        return blocks, rem_parts, buffered - cut

    @staticmethod
    def tail_blocks(padded, true_n, vb):
        """Vectorized window starts + ``np.clip`` fills, sliced in one pass."""
        starts = np.arange(0, padded.shape[0], vb)
        fills = np.clip(true_n - starts, 0, vb)
        return [
            (padded[s : s + vb], int(f))
            for s, f in zip(starts.tolist(), fills.tolist())
        ]

    @staticmethod
    def resolve_conflicts(u_channels, picks):
        """``np.unique(return_index=True)`` keeps each ``v``'s first claimant."""
        valid = np.nonzero(picks >= 0)[0]
        if valid.size == 0:
            return []
        vs = picks[valid]
        # np.unique's return_index is the *first* occurrence of each value
        # in `vs`; first occurrence == smallest vertex index because
        # `valid` is ascending.  Re-sorting the kept indices restores the
        # scalar loop's output order (by vertex index).
        _, first = np.unique(vs, return_index=True)
        keep = np.sort(first)
        return [
            (u_channels[int(valid[i])], int(vs[i]))
            for i in keep.tolist()
        ]

    @staticmethod
    def stream_batches(channels, n_virtual):
        """Round-robin fast path; falls back to the greedy loop otherwise.

        The dominant layout (round-robin runs from ``write_ordered_run``
        / ``load_ordered_run``) makes every aligned ``H'``-wide window a
        permutation of all ``H'`` channels — then each greedy round is
        exactly that window (a full palette forces the next channel to
        repeat), so the boundaries are just the aligned strides.  The
        permutation test is two vectorized comparisons; any other layout
        (e.g. concatenated sub-runs with phase breaks) takes the scalar
        reference loop.  Bit-identical by construction.
        """
        n = len(channels)
        if n == 0:
            return [0]
        h = int(n_virtual)
        if h > 1 and n >= h:
            arr = np.asarray(channels, dtype=np.int64)
            full = (n // h) * h
            windows = arr[:full].reshape(-1, h)
            ok = bool(
                (np.sort(windows, axis=1) == np.arange(h, dtype=np.int64)).all()
            )
            if ok and full < n:
                tail = arr[full:]
                ok = np.unique(tail).size == tail.size
            if ok:
                bounds = list(range(0, n, h))
                bounds.append(n)
                return bounds
        return ScalarBackend.stream_batches(channels, n_virtual)


BACKENDS: dict[str, KernelBackend] = {
    ScalarBackend.name: ScalarBackend(),
    VectorizedBackend.name: VectorizedBackend(),
}

try:  # the optional C extension (setup.py build_ext --inplace)
    from .. import _speedups as _speedups_mod
except ImportError:  # pure-Python install: "compiled" is simply absent
    _speedups_mod = None

if _speedups_mod is not None:

    class CompiledBackend(VectorizedBackend):
        """NumPy kernels plus the ``repro._speedups`` C hot paths.

        Inherits every vectorized kernel and additionally exposes the
        compiled hooks the Balance engine consults when this backend is
        the resolved one: ``round_ops`` (the incremental matrices
        bookkeeping, :class:`repro._speedups.RoundOps`) and
        ``group_small`` (the small-track feed grouping).  Both are
        bit-identical to the pure paths — same containers, same values,
        same error behaviour — which `tests/test_compiled_differential.py`
        gates on whole payloads.  Only registered when the extension
        imported, so ``BACKENDS`` membership is the build-presence probe.
        """

        name = "compiled"
        round_ops = staticmethod(_speedups_mod.RoundOps)
        group_small = staticmethod(_speedups_mod.group_indices)

    BACKENDS[CompiledBackend.name] = CompiledBackend()
    __all__.append("CompiledBackend")

_state = threading.local()


def default_backend_name() -> str:
    """The process-wide default backend name.

    Resolution order: :func:`set_default_backend` /
    :func:`use_backend` override → ``REPRO_KERNEL_BACKEND`` environment
    variable → ``"vectorized"``.
    """
    override = getattr(_state, "name", None)
    if override is not None:
        return override
    return os.environ.get("REPRO_KERNEL_BACKEND", VectorizedBackend.name)


def set_default_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend."""
    if name is not None and name not in BACKENDS:
        raise ParameterError(
            f"unknown kernel backend {name!r} (have {sorted(BACKENDS)})"
        )
    _state.name = name


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend: explicit ``name``, else the current default."""
    if name is None:
        name = default_backend_name()
    try:
        return BACKENDS[name]
    except KeyError:
        raise ParameterError(
            f"unknown kernel backend {name!r} (have {sorted(BACKENDS)})"
        ) from None


@contextmanager
def use_backend(name: str):
    """Temporarily make ``name`` the default backend (re-entrant)."""
    get_backend(name)  # validate eagerly
    prev = getattr(_state, "name", None)
    _state.name = name
    try:
        yield BACKENDS[name]
    finally:
        _state.name = prev
