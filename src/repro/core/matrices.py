"""The Balance Sort bookkeeping matrices (Section 4.1).

Three ``S × H'`` matrices steer the load balancer:

* the **histogram matrix** ``X = {x_bh}`` — how many virtual blocks of
  bucket ``b`` sit on virtual hierarchy/disk ``h``;
* the **auxiliary matrix** ``A = {a_bh}`` — ``a_bh = max(0, x_bh − m_b)``,
  where ``m_b`` is the paper-median (⌈H'/2⌉-th smallest) of row ``b`` of
  ``X`` (Algorithm 4, ``ComputeAux``);
* the **location matrix** ``L = {l_bh}`` — where bucket ``b``'s blocks live
  on channel ``h`` (the paper chains blocks by "last location written"; we
  store the chain explicitly).

The invariants the balancer maintains:

* **Invariant 1** — at least ⌈H'/2⌉ entries of every row of ``A`` are 0
  (a consequence of the median), which gives every overloaded block enough
  matching candidates;
* **Invariant 2** — after each track is (conceptually) processed, ``A`` is
  binary, so ``x_bh ≤ m_b + 1`` for all ``h``; by the definition of the
  median this caps any channel at roughly twice the bucket's fair share —
  **Theorem 4**: reading bucket ``b`` takes at most a factor of about 2
  more parallel reads than optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import InvariantViolation, ParameterError
from ..util.order_stats import paper_median_rows

__all__ = ["BalanceMatrices", "compute_aux"]


def compute_aux(histogram: np.ndarray) -> np.ndarray:
    """Algorithm 4 (``ComputeAux``): ``a_bh = max(0, x_bh − m_b)``.

    ``m_b`` is the ⌈H'/2⌉-th smallest entry of row ``b`` (paper footnote 3).
    """
    medians = paper_median_rows(histogram)
    return np.maximum(0, histogram - medians[:, None])


@dataclass
class BalanceMatrices:
    """State of one distribution pass: X, A, and L for S buckets × H' channels."""

    n_buckets: int
    n_channels: int

    def __post_init__(self) -> None:
        if self.n_buckets < 1 or self.n_channels < 1:
            raise ParameterError("need at least one bucket and one channel")
        self.X = np.zeros((self.n_buckets, self.n_channels), dtype=np.int64)
        self.A = np.zeros_like(self.X)
        # L: per (bucket, channel) chain of block addresses, newest last.
        self.L: list[list[list]] = [
            [[] for _ in range(self.n_channels)] for _ in range(self.n_buckets)
        ]

    # ------------------------------------------------------------ updates

    def add_block(self, bucket: int, channel: int) -> None:
        """Count a (tentative) placement of one block of ``bucket`` on ``channel``."""
        self.X[bucket, channel] += 1

    def remove_block(self, bucket: int, channel: int) -> None:
        """Withdraw a tentative placement (unprocessed block, or a swap source)."""
        if self.X[bucket, channel] <= 0:
            raise InvariantViolation(
                f"histogram underflow at bucket {bucket}, channel {channel}"
            )
        self.X[bucket, channel] -= 1

    def record_location(self, bucket: int, channel: int, address) -> None:
        """Append a written block's address to the L chain."""
        self.L[bucket][channel].append(address)

    def refresh_aux(self) -> np.ndarray:
        """Recompute ``A`` from ``X`` (Algorithm 4) and validate its range."""
        self.A = compute_aux(self.X)
        if int(self.A.max(initial=0)) > 2:
            raise InvariantViolation(
                "auxiliary matrix entry exceeds 2 — more than one new block "
                "per channel per round?"
            )
        return self.A

    # --------------------------------------------------------- inspection

    def channels_with_two(self) -> list[int]:
        """Channels whose column of ``A`` contains a 2 (each has exactly one).

        Raises if a channel has 2s in more than one bucket row, which would
        break the paper's uniqueness assumption (Algorithm 6's ``b[h]``).
        """
        rows, cols = np.nonzero(self.A == 2)
        if len(set(cols.tolist())) != cols.size:
            raise InvariantViolation("a channel holds 2s for two buckets at once")
        return cols.tolist()

    def bucket_with_two(self, channel: int) -> int:
        """The unique bucket ``b`` with ``a_b,channel == 2``."""
        rows = np.nonzero(self.A[:, channel] == 2)[0]
        if rows.size != 1:
            raise InvariantViolation(
                f"expected exactly one 2 on channel {channel}, found {rows.size}"
            )
        return int(rows[0])

    def zero_channels_for_bucket(self, bucket: int) -> np.ndarray:
        """Channels ``h'`` with ``a_b,h' == 0`` — legal swap targets."""
        return np.nonzero(self.A[bucket] == 0)[0]

    def bucket_sizes_blocks(self) -> np.ndarray:
        """Blocks per bucket (row sums of X)."""
        return self.X.sum(axis=1)

    # ---------------------------------------------------------- invariants

    def check_invariant_1(self) -> None:
        """≥ ⌈H'/2⌉ zeros in every row of A."""
        need = (self.n_channels + 1) // 2
        zeros = (self.A == 0).sum(axis=1)
        bad = np.nonzero(zeros < need)[0]
        if bad.size:
            raise InvariantViolation(
                f"Invariant 1 violated on bucket rows {bad.tolist()}: "
                f"fewer than {need} zeros"
            )

    def check_invariant_2(self) -> None:
        """A is binary after the track is conceptually processed."""
        if int(self.A.max(initial=0)) > 1:
            rows, cols = np.nonzero(self.A > 1)
            raise InvariantViolation(
                f"Invariant 2 violated: 2s remain at {list(zip(rows.tolist(), cols.tolist()))}"
            )

    def balance_factor(self, bucket: int) -> float:
        """Theorem 4 metric: (parallel reads needed) / (optimal parallel reads).

        Reads needed = max blocks of the bucket on any channel; optimal =
        ⌈total/H'⌉.
        """
        row = self.X[bucket]
        total = int(row.sum())
        if total == 0:
            return 1.0
        optimal = -(-total // self.n_channels)
        return float(row.max()) / optimal

    def max_balance_factor(self) -> float:
        """Worst Theorem-4 factor over non-empty buckets."""
        factors = [
            self.balance_factor(b)
            for b in range(self.n_buckets)
            if self.X[b].sum() > 0
        ]
        return max(factors, default=1.0)
