"""The Balance Sort bookkeeping matrices (Section 4.1).

Three ``S × H'`` matrices steer the load balancer:

* the **histogram matrix** ``X = {x_bh}`` — how many virtual blocks of
  bucket ``b`` sit on virtual hierarchy/disk ``h``;
* the **auxiliary matrix** ``A = {a_bh}`` — ``a_bh = max(0, x_bh − m_b)``,
  where ``m_b`` is the paper-median (⌈H'/2⌉-th smallest) of row ``b`` of
  ``X`` (Algorithm 4, ``ComputeAux``);
* the **location matrix** ``L = {l_bh}`` — where bucket ``b``'s blocks live
  on channel ``h`` (the paper chains blocks by "last location written"; we
  store the chain explicitly).

The invariants the balancer maintains:

* **Invariant 1** — at least ⌈H'/2⌉ entries of every row of ``A`` are 0
  (a consequence of the median), which gives every overloaded block enough
  matching candidates;
* **Invariant 2** — after each track is (conceptually) processed, ``A`` is
  binary, so ``x_bh ≤ m_b + 1`` for all ``h``; by the definition of the
  median this caps any channel at roughly twice the bucket's fair share —
  **Theorem 4**: reading bucket ``b`` takes at most a factor of about 2
  more parallel reads than optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import InvariantViolation, ParameterError
from ..util.order_stats import paper_median_rows

__all__ = ["BalanceMatrices", "compute_aux"]


def compute_aux(histogram: np.ndarray) -> np.ndarray:
    """Algorithm 4 (``ComputeAux``): ``a_bh = max(0, x_bh − m_b)``.

    ``m_b`` is the ⌈H'/2⌉-th smallest entry of row ``b`` (paper footnote 3).
    """
    medians = paper_median_rows(histogram)
    return np.maximum(0, histogram - medians[:, None])


@dataclass
class BalanceMatrices:
    """State of one distribution pass: X, A, and L for S buckets × H' channels."""

    n_buckets: int
    n_channels: int

    def __post_init__(self) -> None:
        if self.n_buckets < 1 or self.n_channels < 1:
            raise ParameterError("need at least one bucket and one channel")
        self.X = np.zeros((self.n_buckets, self.n_channels), dtype=np.int64)
        self.A = np.zeros_like(self.X)
        # L: per (bucket, channel) chain of block addresses, newest last.
        self.L: list[list[list]] = [
            [[] for _ in range(self.n_channels)] for _ in range(self.n_buckets)
        ]
        self._incremental = False
        self._cops = None

    # --------------------------------------------- incremental maintenance

    def enable_compiled(self, factory) -> bool:
        """Attach compiled (C) incremental bookkeeping, if applicable.

        ``factory`` is a :class:`repro._speedups.RoundOps`-style
        constructor.  The compiled object operates **in place** on this
        instance's own ``X``/``A`` arrays, list mirrors, 2-cell index
        sets and factor list, so every Python-side reader sees exactly
        the state the pure path would maintain; only the per-update
        arithmetic moves to C.  Requires :meth:`enable_incremental` (and
        therefore the base class — subclasses with a different auxiliary
        rule never pass that gate).  Idempotent; returns whether
        compiled ops are active.  Any :meth:`_rebuild_incremental`
        (resync after direct ``X`` tampering) detaches the compiled
        object — the caller re-attaches at its next round boundary.
        """
        if not self._incremental:
            return False
        if self._cops is None:
            self._cops = factory(
                self.X, self.A, self._xrows, self._alist,
                self._twos_cells, self._over_two, self._factors, self._rank,
            )
        return True

    def disable_compiled(self) -> None:
        """Detach compiled bookkeeping (updates fall back to pure Python)."""
        self._cops = None

    def enable_incremental(self) -> None:
        """Switch to O(H') per-update maintenance of ``A`` (Section 5).

        The paper's CPU-cost accounting assumes the matrix upkeep is
        *incremental*: each histogram update touches one entry of ``X``,
        so only that row's auxiliary values (and derived views — the 2
        positions and the Theorem-4 balance factors) need recomputing.
        After this call :meth:`add_block` / :meth:`remove_block` maintain
        ``A``, the 2-cell index, and per-bucket balance factors in place;
        :meth:`refresh_aux`, :meth:`channels_with_two`,
        :meth:`bucket_with_two` and :meth:`max_balance_factor` become
        O(changed) instead of O(S·H').  All outputs stay bit-identical to
        the batch :func:`compute_aux` formulation (integer arithmetic,
        same rule per row).

        Mutating ``X`` directly after enabling goes stale until the next
        :meth:`refresh_aux`, which detects the divergence and resyncs from
        ``X`` (so even tampering behaves exactly like the batch mode);
        :class:`~repro.core.balance.BalanceEngine` — the only caller —
        funnels every update through ``add_block``/``remove_block`` and
        never pays the resync.  Subclasses that redefine the
        auxiliary rule (e.g. ``ArgeBalanceMatrices``) must not enable it.
        """
        if type(self) is not BalanceMatrices:
            raise ParameterError(
                "incremental maintenance implements the paper-median rule; "
                f"{type(self).__name__} overrides the auxiliary definition"
            )
        self._rank = (self.n_channels + 1) // 2  # 1-indexed paper-median rank
        self._rebuild_incremental()
        self._incremental = True

    def _rebuild_incremental(self) -> None:
        """(Re)derive all incremental state from ``X`` (batch formulation)."""
        # Fresh arrays/containers invalidate any compiled ops bound to the
        # old ones; the engine re-attaches at its next round boundary.
        self._cops = None
        self.A = compute_aux(self.X)
        self._xrows = [row.tolist() for row in self.X]
        self._alist = [row.tolist() for row in self.A]
        self._twos_cells = {
            (int(b), int(h)) for b, h in zip(*np.nonzero(self.A == 2))
        }
        self._over_two = {
            (int(b), int(h)) for b, h in zip(*np.nonzero(self.A > 2))
        }
        totals = self.X.sum(axis=1)
        maxima = self.X.max(axis=1)
        factors = np.ones(self.n_buckets, dtype=np.float64)
        nz = totals > 0
        factors[nz] = maxima[nz] / (-(-totals[nz] // self.n_channels))
        # Kept as a plain list: read once per round (`max`), updated one
        # scalar at a time — numpy element access would dominate.
        self._factors = factors.tolist()

    def _update_row(self, bucket: int) -> None:
        """Recompute row ``bucket``'s aux/factor after a ±1 entry change."""
        row = self._xrows[bucket]
        alist = self._alist[bucket]  # plain-list mirror: numpy scalar
        arow = self.A[bucket]        # reads dominate these loops otherwise
        if len(row) == 2:
            # H' = 2 (rank 1): the median is the row min, so exactly the
            # larger entry can carry a nonzero aux — unrolled.
            x0, x1 = row
            if x0 <= x1:
                m, mx, total = x0, x1, x0 + x1
            else:
                m, mx, total = x1, x0, x0 + x1
            for h in (0, 1):
                x = row[h]
                a = x - m if x > m else 0
                old = alist[h]
                if old != a:
                    alist[h] = a
                    arow[h] = a
                    cell = (bucket, h)
                    if old == 2:
                        self._twos_cells.discard(cell)
                    elif old > 2:
                        self._over_two.discard(cell)
                    if a == 2:
                        self._twos_cells.add(cell)
                    elif a > 2:
                        self._over_two.add(cell)
            self._factors[bucket] = mx / -(-total // 2) if total else 1.0
            return
        m = sorted(row)[self._rank - 1]
        total = 0
        mx = 0
        for h, x in enumerate(row):
            a = x - m if x > m else 0
            old = alist[h]
            if old != a:
                alist[h] = a
                arow[h] = a
                cell = (bucket, h)
                if old == 2:
                    self._twos_cells.discard(cell)
                elif old > 2:
                    self._over_two.discard(cell)
                if a == 2:
                    self._twos_cells.add(cell)
                elif a > 2:
                    self._over_two.add(cell)
            total += x
            if x > mx:
                mx = x
        self._factors[bucket] = mx / (-(-total // self.n_channels)) if total else 1.0

    # ------------------------------------------------------------ updates

    def add_block(self, bucket: int, channel: int) -> None:
        """Count a (tentative) placement of one block of ``bucket`` on ``channel``."""
        ops = self._cops
        if ops is not None:
            ops.add_block(bucket, channel)
            return
        self.X[bucket, channel] += 1
        if self._incremental:
            self._xrows[bucket][channel] += 1
            self._update_row(bucket)

    def remove_block(self, bucket: int, channel: int) -> None:
        """Withdraw a tentative placement (unprocessed block, or a swap source)."""
        ops = self._cops
        if ops is not None:
            if not ops.remove_block(bucket, channel):
                raise InvariantViolation(
                    f"histogram underflow at bucket {bucket}, channel {channel}"
                )
            return
        if self.X[bucket, channel] <= 0:
            raise InvariantViolation(
                f"histogram underflow at bucket {bucket}, channel {channel}"
            )
        self.X[bucket, channel] -= 1
        if self._incremental:
            self._xrows[bucket][channel] -= 1
            self._update_row(bucket)

    def record_location(self, bucket: int, channel: int, address) -> None:
        """Append a written block's address to the L chain."""
        self.L[bucket][channel].append(address)

    def refresh_aux(self) -> np.ndarray:
        """Recompute ``A`` from ``X`` (Algorithm 4) and validate its range.

        Under :meth:`enable_incremental`, ``A`` is already current, so this
        only validates (the same check, maintained per update).
        """
        if self._incremental:
            ops = self._cops
            if (not ops.synced()) if ops is not None else (
                self.X.tolist() != self._xrows
            ):
                # X was mutated behind the incremental bookkeeping's back
                # (tests/ablations tamper directly).  Resync from X so the
                # outcome — including invariant detection below — is exactly
                # the batch formulation's.  (ops.synced() is the same
                # comparison without materializing X as a list.)
                self._rebuild_incremental()
            if self._over_two:
                raise InvariantViolation(
                    "auxiliary matrix entry exceeds 2 — more than one new block "
                    "per channel per round?"
                )
            return self.A
        self.A = compute_aux(self.X)
        if int(self.A.max(initial=0)) > 2:
            raise InvariantViolation(
                "auxiliary matrix entry exceeds 2 — more than one new block "
                "per channel per round?"
            )
        return self.A

    # --------------------------------------------------------- inspection

    def channels_with_two(self) -> list[int]:
        """Channels whose column of ``A`` contains a 2 (each has exactly one).

        Raises if a channel has 2s in more than one bucket row, which would
        break the paper's uniqueness assumption (Algorithm 6's ``b[h]``).
        """
        if self._incremental:
            ops = self._cops
            if ops is not None:
                cols = ops.channels_with_two()  # None signals a duplicate
                if cols is None:
                    raise InvariantViolation(
                        "a channel holds 2s for two buckets at once"
                    )
                return cols
            cells = sorted(self._twos_cells)
            cols = [h for _, h in cells]
            if len(set(cols)) != len(cols):
                raise InvariantViolation(
                    "a channel holds 2s for two buckets at once"
                )
            return cols
        rows, cols = np.nonzero(self.A == 2)
        if len(set(cols.tolist())) != cols.size:
            raise InvariantViolation("a channel holds 2s for two buckets at once")
        return cols.tolist()

    def bucket_with_two(self, channel: int) -> int:
        """The unique bucket ``b`` with ``a_b,channel == 2``."""
        if self._incremental:
            rows = [b for b, h in self._twos_cells if h == channel]
            if len(rows) != 1:
                raise InvariantViolation(
                    f"expected exactly one 2 on channel {channel}, found {len(rows)}"
                )
            return rows[0]
        rows = np.nonzero(self.A[:, channel] == 2)[0]
        if rows.size != 1:
            raise InvariantViolation(
                f"expected exactly one 2 on channel {channel}, found {rows.size}"
            )
        return int(rows[0])

    def zero_channels_for_bucket(self, bucket: int) -> np.ndarray:
        """Channels ``h'`` with ``a_b,h' == 0`` — legal swap targets."""
        return np.nonzero(self.A[bucket] == 0)[0]

    def bucket_sizes_blocks(self) -> np.ndarray:
        """Blocks per bucket (row sums of X)."""
        return self.X.sum(axis=1)

    # ---------------------------------------------------------- invariants

    def invariant_1_ok(self) -> bool:
        """Quick boolean form of Invariant 1 (≥ ⌈H'/2⌉ zeros per A row).

        Under :meth:`enable_incremental` this walks the maintained rows
        in plain Python (the matrices are S × H' with both factors small
        — scalar loops beat numpy reductions by an order of magnitude on
        the per-round audit path); otherwise it defers to the vectorized
        check.  Callers wanting the offending rows use
        :meth:`check_invariant_1`.
        """
        need = (self.n_channels + 1) // 2
        if self._incremental:
            for alist in self._alist:
                zeros = 0
                for a in alist:
                    if a == 0:
                        zeros += 1
                if zeros < need:
                    return False
            return True
        return bool(((self.A == 0).sum(axis=1) >= need).all())

    def invariant_2_ok(self) -> bool:
        """Quick boolean form of Invariant 2 (A is binary).

        O(1) under :meth:`enable_incremental` — the 2-cell index is
        maintained per update, so binariness is just its emptiness.
        """
        if self._incremental:
            return not self._twos_cells and not self._over_two
        return int(self.A.max(initial=0)) <= 1

    def check_invariant_1(self) -> None:
        """≥ ⌈H'/2⌉ zeros in every row of A."""
        if self._incremental and self.invariant_1_ok():
            return  # same condition, O(S·H') plain-int loop; numpy only
            # runs below to name the offending rows in the error.
        need = (self.n_channels + 1) // 2
        zeros = (self.A == 0).sum(axis=1)
        bad = np.nonzero(zeros < need)[0]
        if bad.size:
            raise InvariantViolation(
                f"Invariant 1 violated on bucket rows {bad.tolist()}: "
                f"fewer than {need} zeros"
            )

    def check_invariant_2(self) -> None:
        """A is binary after the track is conceptually processed."""
        if self._incremental and not self._twos_cells and not self._over_two:
            return  # the maintained 2-cell index is empty iff A is binary
        if int(self.A.max(initial=0)) > 1:
            rows, cols = np.nonzero(self.A > 1)
            raise InvariantViolation(
                f"Invariant 2 violated: 2s remain at {list(zip(rows.tolist(), cols.tolist()))}"
            )

    def balance_factor(self, bucket: int) -> float:
        """Theorem 4 metric: (parallel reads needed) / (optimal parallel reads).

        Reads needed = max blocks of the bucket on any channel; optimal =
        ⌈total/H'⌉.
        """
        row = self.X[bucket]
        total = int(row.sum())
        if total == 0:
            return 1.0
        optimal = -(-total // self.n_channels)
        return float(row.max()) / optimal

    def max_balance_factor(self) -> float:
        """Worst Theorem-4 factor over non-empty buckets.

        Vectorized over all bucket rows at once (bit-identical to the
        per-bucket :meth:`balance_factor` loop: both are one IEEE double
        division per non-empty bucket followed by a max).  Under
        :meth:`enable_incremental` the per-bucket factors are maintained
        on update (empty buckets carry 1.0, which never wins the max —
        every non-empty factor is ≥ 1 because ``max(row) ≥ ⌈total/H'⌉``).
        """
        if self._incremental:
            return max(self._factors)
        totals = self.X.sum(axis=1)
        nonempty = totals > 0
        if not nonempty.any():
            return 1.0
        maxima = self.X.max(axis=1)[nonempty]
        optimal = -(-totals[nonempty] // self.n_channels)
        return float((maxima / optimal).max())
