"""The Balance / Rebalance / Rearrange engine (Algorithms 3, 5, 6).

One engine drives every machine in the paper: it is written against the
storage contract shared by :class:`repro.pdm.striping.VirtualDisks`
(parallel disks, Section 5) and
:class:`repro.hierarchies.parallel.VirtualHierarchies` (parallel memory
hierarchies, Section 4) — ``n_virtual`` channels, ``virtual_block_size``
records per block, ``parallel_write`` / ``parallel_read`` moving at most one
block per channel per step, plus memory-ledger hooks.

Per processing round (one "track" of Algorithm 3):

1. up to ``H'`` queued full virtual blocks are *tentatively* assigned to
   distinct channels in arrival order (at most one new block per channel —
   the property that keeps auxiliary-matrix entries in {0, 1, 2});
2. the histogram ``X`` is updated and ``A`` recomputed (Algorithm 4);
3. channels whose new block drove an entry of ``A`` to 2 go through
   **Rebalance** (Algorithm 5): while at least ⌊H'/2⌋ such channels remain,
   **Rearrange** (Algorithm 6) matches them against channels whose row
   entry is 0 (``Fast-Partial-Match``) and swaps the blocks over;
4. blocks still overloading after Rebalance are *unprocessed*: their
   histogram counts are withdrawn and they conceptually rejoin the input
   (the front of the queue) — after which ``A`` is binary (Invariant 2);
5. the placed blocks are written out: the untouched ones in one parallel
   step, each Rearrange batch in its own parallel step (as in the paper,
   where Rearrange uses separate parallel memory references).

The engine checks Invariants 1 and 2 every round (disable with
``check_invariants=False`` for big benchmark runs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Sequence

import numpy as np

from ..exceptions import InvariantViolation, ParameterError
from ..records import RECORD_DTYPE, composite_keys, concat_records, pad_records
from .kernels import get_backend

# Fixed layout of one in-flight placement inside a round (a plain list —
# one is built per queued block per round, so dict keys would be the
# single largest allocation left in the round loop).
_P_BUCKET, _P_BLOCK, _P_FILL, _P_CHANNEL, _P_SWAPPED, _P_DROPPED = range(6)
from .matching import (
    MatchingInstance,
    MatchResult,
    derandomized_partial_match,
    greedy_match,
    greedy_mincost_match,
    randomized_partial_match,
)
from .matrices import BalanceMatrices

__all__ = ["BalanceEngine", "BlockRef", "BucketRun", "EngineStats", "read_bucket_run"]


class BlockRef(NamedTuple):
    """A stored virtual block plus how many true records it holds.

    ``fill < block size`` only for a pass's final (padded) blocks; carrying
    the fill lets runs be sliced into groups (Algorithm 2) without reading
    anything back.  A ``NamedTuple`` (not a frozen dataclass): one is
    built per placed block, and tuple construction skips the frozen
    per-field ``object.__setattr__`` cost on the round write path.
    """

    address: object
    fill: int


@dataclass
class BucketRun:
    """One bucket's blocks after a distribution pass.

    ``chains[h]`` lists the bucket's :class:`BlockRef`\\ s on channel ``h``
    (the location-matrix chain); ``n_records`` counts true records
    (padding excluded).
    """

    bucket: int
    chains: list
    n_records: int

    @property
    def n_blocks(self) -> int:
        return sum(len(chain) for chain in self.chains)

    @property
    def max_blocks_on_channel(self) -> int:
        return max((len(c) for c in self.chains), default=0)

    def block_refs(self) -> list:
        """All the bucket's blocks as a flat list (chain order)."""
        return [ref for chain in self.chains for ref in chain]


@dataclass
class EngineStats:
    """Balance-engine activity counters (inputs to the CPU-cost accounting)."""

    rounds: int = 0
    blocks_placed: int = 0
    blocks_swapped: int = 0
    blocks_unprocessed: int = 0
    match_calls: int = 0
    match_fallbacks: int = 0
    write_steps: int = 0
    records_fed: int = 0
    pad_records: int = 0


_MATCHERS: dict[str, Callable] = {}


class BalanceEngine:
    """Distribute a record stream into S buckets, balanced across channels.

    Parameters
    ----------
    storage:
        A ``VirtualDisks`` / ``VirtualHierarchies``-style backend.
    pivots:
        ``S−1`` sorted composite keys (see
        :func:`repro.records.composite_keys`); bucket ``i`` receives
        composite keys in ``(pivots[i−1], pivots[i]]`` half-open style via
        ``searchsorted(..., side="right")``.
    matcher:
        ``"derandomized"`` (Theorem 5, the paper's deterministic default),
        ``"randomized"`` (Algorithm 7), ``"greedy"``, or ``"mincost"``
        (Section 6 conjecture); or a callable ``(MatchingInstance,
        BalanceMatrices, rng) -> MatchResult``.
    backend:
        Kernel backend for the hot loops: ``"vectorized"`` (NumPy,
        default), ``"scalar"`` (the reference Python loops), or ``None``
        to follow the process default (see :mod:`repro.core.kernels`).
        Both backends are bit-identical in every observable output.
    """

    def __init__(
        self,
        storage,
        pivots: np.ndarray,
        matcher: str | Callable = "derandomized",
        rng: np.random.Generator | None = None,
        check_invariants: bool = True,
        backend: str | None = None,
    ):
        pivots = np.asarray(pivots, dtype=np.uint64)
        if pivots.size and np.any(pivots[1:] < pivots[:-1]):
            raise ParameterError("pivots must be sorted ascending")
        self.storage = storage
        self.pivots = pivots
        self.n_buckets = int(pivots.size) + 1
        self.n_channels = storage.n_virtual
        self.block_size = storage.virtual_block_size
        self.matrices = BalanceMatrices(self.n_buckets, self.n_channels)
        # Section 5's incremental matrix upkeep: every engine update goes
        # through add_block/remove_block, so A and its derived views are
        # maintained in O(H') per change instead of O(S·H') per refresh.
        # (Ablations that swap in a different matrices class after
        # construction get that class's default batch behaviour.)
        self.matrices.enable_incremental()
        if not callable(matcher) and matcher not in (
            "derandomized", "randomized", "greedy", "mincost",
        ):
            raise ParameterError(f"unknown matcher {matcher!r}")
        self.matcher = matcher
        self.rng = rng or np.random.default_rng(0)
        self.check_invariants = check_invariants
        # Kernel backend name (None = follow the process default at call
        # time, so `kernels.use_backend(...)` contexts apply here too).
        self.kernel_backend = backend
        self.stats = EngineStats()
        # Per-bucket accumulation buffers with monotone write/emit
        # pointers: chunks are slice-copied in, full virtual blocks are
        # emitted as zero-copy views.  Emitted regions are never
        # rewritten (a fresh buffer takes over when the current one
        # fills), so a view stays valid for as long as anyone — the
        # round queue, a deferred I/O plan — holds it.
        self._bufs: list[np.ndarray | None] = [None] * self.n_buckets
        self._fills = [0] * self.n_buckets  # write pointer (plain ints:
        self._emits = [0] * self.n_buckets  # numpy scalars cost more here)
        self._queue: deque = deque()  # (bucket, block) awaiting placement
        self._bucket_records = [0] * self.n_buckets
        self._finished = False
        # Round-structured write fast path (list-native, one slot per
        # round) where the backend offers it; hierarchy backends fall
        # back to the (k, VB) matrix API.
        self._write_round = getattr(storage, "write_round", None)
        # Round observers: callbacks fired after every completed placement
        # round (the first-class replacement for BalanceTracer's old
        # `_round` monkey-patch).  Empty list = zero per-round overhead
        # beyond one truthiness check.
        self._round_observers: list[Callable] = []

    # ----------------------------------------------------------- observers

    def add_round_observer(self, callback: Callable) -> Callable:
        """Register ``callback(engine, info)`` to run after every round.

        ``info`` is a dict with the round's activity totals::

            {"round": int, "placed": int, "swapped": int,
             "unprocessed": int, "match_calls": int,
             "max_balance_factor": float}

        (all cumulative except ``round``).  Observers run in registration
        order after the round's writes complete, so ``engine.matrices``
        reflects the post-round state.  Returns the callback (usable as a
        decorator).  With no observers registered the engine does no
        per-round snapshotting at all.
        """
        self._round_observers.append(callback)
        return callback

    def remove_round_observer(self, callback: Callable) -> None:
        """Unregister a round observer (no-op if absent)."""
        try:
            self._round_observers.remove(callback)
        except ValueError:
            pass

    def attach_obs(self, obs, scope: str = "balance") -> None:
        """Wire an :class:`~repro.obs.Observation` through a round observer.

        Per completed round: a ``balance.round`` trace event (cumulative
        totals + current Theorem-4 balance factor) plus, under
        ``obs.scope(scope)``, counters ``rounds`` / ``swaps`` /
        ``unprocessed`` / ``match_calls``, a per-round swap-count
        histogram, and a ``max_balance_factor`` gauge (its ``max``
        watermark is the worst factor seen anywhere in the pass).
        """
        reg = obs.scope(scope)
        rounds = reg.counter("rounds")
        swaps = reg.counter("swaps")
        unprocessed = reg.counter("unprocessed")
        match_calls = reg.counter("match_calls")
        swap_hist = reg.histogram("swaps.per_round")
        bf = reg.gauge("max_balance_factor")

        channel = obs.tracer.scalar_channel(
            "balance.round",
            ("round", "placed", "swapped", "unprocessed", "match_calls",
             "max_balance_factor"),
        )
        if channel is not None:
            # Columnar fast path: one scalar append per round; counters,
            # the swap histogram, and the gauge are replayed in bulk from
            # the columns when the scope is next read (see
            # MetricsRegistry.add_pending_flush).  This engine's private
            # channel keeps the replay cursor independent of any other
            # engine sharing the scope, and registration order keeps the
            # shared instruments' update order chronological.
            append = channel.append

            def _observe(engine, info):
                append(info["round"], info["placed"], info["swapped"],
                       info["unprocessed"], info["match_calls"],
                       info["max_balance_factor"])

            cols = channel.cols
            swapped_col, unproc_col = cols[2], cols[3]
            match_col, factor_col = cols[4], cols[5]
            state = [0, 0, 0, 0]  # cursor, prev swapped/unprocessed/match

            def _flush():
                n = len(swapped_col)
                i = state[0]
                if i >= n:
                    return
                state[0] = n
                rounds.inc(n - i)
                prev_swapped = state[1]
                diffs = []
                add_diff = diffs.append
                for s in swapped_col[i:n]:
                    add_diff(s - prev_swapped)
                    prev_swapped = s
                swaps.inc(prev_swapped - state[1])
                state[1] = prev_swapped
                swap_hist.observe_bulk(diffs)
                unprocessed.inc(unproc_col[n - 1] - state[2])
                state[2] = unproc_col[n - 1]
                match_calls.inc(match_col[n - 1] - state[3])
                state[3] = match_col[n - 1]
                bf.set_bulk(factor_col[i:n])

            reg.add_pending_flush(_flush)
        else:
            prev = {"swapped": 0, "unprocessed": 0, "match_calls": 0}
            trace_event = obs.tracer.event  # bound: one event per round

            def _observe(engine, info):
                rounds.inc()
                swaps.inc(info["swapped"] - prev["swapped"])
                unprocessed.inc(info["unprocessed"] - prev["unprocessed"])
                match_calls.inc(info["match_calls"] - prev["match_calls"])
                swap_hist.observe(info["swapped"] - prev["swapped"])
                bf.set(info["max_balance_factor"])
                trace_event("balance.round", **info)
                prev.update(
                    swapped=info["swapped"], unprocessed=info["unprocessed"],
                    match_calls=info["match_calls"],
                )

        self.add_round_observer(_observe)

    def _notify_round(self) -> None:
        info = {
            "round": self.stats.rounds,
            "placed": self.stats.blocks_placed,
            "swapped": self.stats.blocks_swapped,
            "unprocessed": self.stats.blocks_unprocessed,
            "match_calls": self.stats.match_calls,
            "max_balance_factor": self.matrices.max_balance_factor(),
        }
        for callback in self._round_observers:
            callback(self, info)

    # ---------------------------------------------------------------- feed

    def bucket_ids(self, records: np.ndarray) -> np.ndarray:
        """Bucket index per record (pure: no engine state touched).

        Exactly the partition rule :meth:`feed` applies — exposed so
        streaming loops can hoist it to gather-window granularity and
        pass the result back via ``feed(..., buckets=...)``.
        """
        return np.searchsorted(self.pivots, composite_keys(records), side="right")

    def feed(self, records: np.ndarray, buckets: np.ndarray | None = None) -> None:
        """Partition records into buckets and enqueue full virtual blocks.

        (Algorithm 3, steps 1–2: partition the track's records and collect
        them into virtual blocks, all elements of a block from one bucket.)

        ``buckets`` optionally supplies the records' precomputed bucket
        ids (``searchsorted(pivots, composite_keys(records), "right")``,
        hoisted to gather-window granularity by the streaming loops —
        see :func:`repro.core.streams.read_run_batches`'s ``record_map``).
        Values must equal what this method would compute; the engine's
        behaviour is bit-identical with or without them.
        """
        if self._finished:
            raise ParameterError("engine already finished")
        if records.size == 0:
            return
        kernels = get_backend(self.kernel_backend)
        self.stats.records_fed += int(records.size)
        if buckets is None:
            buckets = self.bucket_ids(records)
        vb = self.block_size
        if records.size <= 64:
            # Small tracks (the streaming common case: one chunk per
            # parallel read, ≤ H'·VB records): group indices per bucket
            # with a dict instead of argsort + np.unique.  Bit-identical
            # to the kernel path — a stable sort by bucket groups equal
            # buckets in arrival order, which is exactly what the
            # insertion-ordered index lists reproduce.
            group_small = getattr(kernels, "group_small", None)
            if group_small is not None:
                # Compiled backend: same grouping in C.  An int result is
                # the single-bucket case (the chunk IS the track);
                # otherwise one stable gather then zero-copy span views —
                # identical chunks to the pure path's per-bucket indexing.
                grouped = group_small(buckets)
                if type(grouped) is int:
                    pairs = [(grouped, records)]
                else:
                    order, spans = grouped
                    gathered = records[order]
                    pairs = [(b, gathered[s:e]) for b, s, e in spans]
            else:
                groups: dict[int, list[int]] = {}
                for i, b in enumerate(buckets.tolist()):
                    g = groups.get(b)
                    if g is None:
                        groups[b] = [i]
                    else:
                        g.append(i)
                if len(groups) == 1:
                    # One bucket: the chunk IS the track, in arrival order.
                    pairs = [(next(iter(groups)), records)]
                else:
                    pairs = [(b, records[groups[b]]) for b in sorted(groups)]
        else:
            order = np.argsort(buckets, kind="stable")
            pairs = kernels.bucket_chunks(
                records[order], buckets[order], self.n_buckets
            )
        bufs, fills, emits = self._bufs, self._fills, self._emits
        queue_append = self._queue.append
        for b, chunk in pairs:
            n = chunk.shape[0]
            self._bucket_records[b] += n
            buf = bufs[b]
            fill = fills[b]
            if buf is None or fill + n > buf.shape[0]:
                rem = fill - emits[b]
                new = np.empty(max(4 * vb, rem + n + vb), dtype=RECORD_DTYPE)
                if rem:
                    new[:rem] = buf[emits[b] : fill]
                bufs[b] = buf = new
                fill = rem
                emits[b] = 0
            buf[fill : fill + n] = chunk
            fill += n
            fills[b] = fill
            emit = emits[b]
            while emit + vb <= fill:
                queue_append((b, buf[emit : emit + vb], vb))
                emit += vb
            emits[b] = emit

    @property
    def queued_blocks(self) -> int:
        return len(self._queue)

    # -------------------------------------------------------------- rounds

    def run_rounds(self, drain_below: int = 0, drain: bool = False) -> None:
        """Place queued blocks round by round until ≤ ``drain_below`` remain.

        ``drain=False`` keeps the paper's Rebalance batching (2s are left
        unprocessed below the ⌊H'/2⌋ threshold — an amortization of the
        matching cost that needs a steady block supply); ``drain=True``
        lowers the threshold to 1 so every 2 is matched away, which the
        endgame needs for guaranteed progress once fewer than ⌊H'/2⌋ blocks
        remain in flight.  A no-progress guard switches a stuck round to
        drain mode automatically (a handful of tail blocks can otherwise
        bounce as "unprocessed" forever when the queue is nearly empty).
        """
        if not self._queue:
            return
        # Compiled round bookkeeping follows the backend resolved *now*
        # (so `use_backend("compiled")` contexts and REPRO_KERNEL_BACKEND
        # both apply): attach the C ops when the backend offers them,
        # detach when it stopped doing so since the last call.  Either
        # way the matrices keep the identical containers — switching
        # backends mid-run is seamless and bit-identical.
        mat = self.matrices
        ops_factory = getattr(
            get_backend(self.kernel_backend), "round_ops", None
        )
        if ops_factory is not None:
            enable = getattr(mat, "enable_compiled", None)
            if enable is not None:
                enable(ops_factory)
        elif getattr(mat, "_cops", None) is not None:
            mat.disable_compiled()
        while len(self._queue) > drain_below:
            before = (len(self._queue), self.stats.blocks_placed)
            self._round(drain=drain)
            if (len(self._queue), self.stats.blocks_placed) == before:
                self._round(drain=True)

    def _round(self, drain: bool = False) -> None:
        """One track of Algorithm 3 (steps 2–9)."""
        k = min(self.n_channels, len(self._queue))
        if k == 0:
            return
        self.stats.rounds += 1
        # Tentative placement: block j -> channel j (arrival order, at most
        # one new block per channel — the {0,1,2} aux-matrix property).
        # Each placement is a fixed-layout list (see the _P_* indices):
        # ~50k placements per cell make per-placement dicts measurable.
        placements = []
        popleft = self._queue.popleft
        add_block = self.matrices.add_block
        for channel in range(k):
            bucket, block, fill = popleft()
            placements.append([bucket, block, fill, channel, False, False])
            add_block(bucket, channel)
        self.matrices.refresh_aux()
        if self.check_invariants:
            self.matrices.check_invariant_1()

        swap_batches: list[list] = []
        # Rebalance (Algorithm 5): resolve 2s while at least ⌊H'/2⌋ remain
        # (every 2 when draining).  The (channel, bucket) placement index
        # is only built when a 2 exists at all — a channel can legally
        # end up holding two of this round's blocks (its own tentative
        # block plus a swapped-in block of another bucket; they are
        # written in separate parallel steps), hence the compound key.
        threshold = 1 if drain else max(1, self.n_channels // 2)
        twos = self.matrices.channels_with_two()
        by_slot = None
        if twos:
            by_slot = {(p[_P_CHANNEL], p[_P_BUCKET]): p for p in placements}
            while len(twos) >= threshold:
                take = max(1, self.n_channels // 2)
                batch = self._rearrange(twos[:take], by_slot)
                swap_batches.append(batch)
                twos = self.matrices.channels_with_two()

            # Remaining 2s: unprocessed — conceptually written back to
            # the input.
            for h in twos:
                b = self.matrices.bucket_with_two(h)
                p = by_slot.pop((h, b), None)
                if p is None:
                    raise InvariantViolation(
                        f"2 at channel {h} (bucket {b}) not caused by this round's block"
                    )
                self.matrices.remove_block(b, h)
                p[_P_DROPPED] = True
                self._queue.appendleft((b, p[_P_BLOCK], p[_P_FILL]))
                self.stats.blocks_unprocessed += 1
        self.matrices.refresh_aux()
        if self.check_invariants:
            self.matrices.check_invariant_2()

        # Write: untouched blocks in one parallel step, then each Rearrange
        # batch in its own parallel step (separate memory references, as in
        # the paper's Algorithm 6 line 5).
        if by_slot is None:
            # No 2s this round: nothing was swapped or dropped.
            self._write_batch(placements)
        else:
            live = [p for p in placements if not p[_P_DROPPED]]
            self._write_batch([p for p in live if not p[_P_SWAPPED]])
            for batch in swap_batches:
                self._write_batch([p for p in batch if not p[_P_DROPPED]])
        if self._round_observers:
            self._notify_round()

    def _rearrange(self, u_set: Sequence[int], by_slot: dict) -> list:
        """Algorithm 6: match overloaded channels to zero channels and swap."""
        if len(u_set) == 1 and self.n_channels == 2 and self.matcher == "derandomized":
            # H' = 2 closed form: |U| = 1 and the only legal target is the
            # other channel (the 2 sits on u, so a_b,u ≠ 0).  The pairwise-
            # space search is forced to this pair — first sample point,
            # retry ≤ 1 — so the outcome (pairs, stats, matrix updates) is
            # bit-identical to the general machinery.  Guarded on a_b,v == 0
            # (Invariant 1): a violated instance falls through and fails
            # with the general path's diagnostics.
            u = u_set[0]
            v = 1 - u
            mat = self.matrices
            b = mat.bucket_with_two(u)
            # Incremental matrices mirror A in plain lists — read the
            # mirror instead of a numpy scalar (same value by invariant).
            a_bv = (
                mat._alist[b][v]
                if getattr(mat, "_incremental", False)
                else int(mat.A[b, v])
            )
            if a_bv == 0:
                self.stats.match_calls += 1
                p = by_slot.pop((u, b), None)
                if p is None:
                    raise InvariantViolation(
                        f"swap source (channel {u}, bucket {b}) has no block this round"
                    )
                self.matrices.remove_block(b, u)
                self.matrices.add_block(b, v)
                p[_P_CHANNEL] = v
                p[_P_SWAPPED] = True
                self.stats.blocks_swapped += 1
                self.matrices.refresh_aux()
                return [p]
        instance = MatchingInstance.from_matrices(self.matrices, list(u_set))
        if self.check_invariants:
            instance.check_degree_invariant()
        result = self._run_matcher(instance)
        self.stats.match_calls += 1
        if result.used_fallback:
            self.stats.match_fallbacks += 1
        bucket_of = dict(zip(instance.u_channels, instance.buckets))
        batch = []
        for u, v in result.pairs:
            b = bucket_of[u]
            p = by_slot.pop((u, b), None)
            if p is None:
                raise InvariantViolation(
                    f"swap source (channel {u}, bucket {b}) has no block this round"
                )
            self.matrices.remove_block(b, u)
            self.matrices.add_block(b, v)
            p[_P_CHANNEL] = v
            p[_P_SWAPPED] = True
            # Swapped blocks never re-enter by_slot: only tentative blocks
            # can carry a 2 (swaps remove 2s and never create them), so no
            # later lookup targets a swapped block.
            batch.append(p)
            self.stats.blocks_swapped += 1
        self.matrices.refresh_aux()
        return batch

    def _run_matcher(self, instance: MatchingInstance) -> MatchResult:
        if callable(self.matcher):
            return self.matcher(instance, self.matrices, self.rng)
        if self.matcher == "derandomized":
            return derandomized_partial_match(instance, backend=self.kernel_backend)
        if self.matcher == "randomized":
            return randomized_partial_match(
                instance, self.rng, backend=self.kernel_backend
            )
        if self.matcher == "greedy":
            return greedy_match(instance)
        if self.matcher == "mincost":
            return greedy_mincost_match(instance, self.matrices.X)
        raise ParameterError(f"unknown matcher {self.matcher!r}")

    def _write_batch(self, batch: list) -> None:
        if not batch:
            return
        k = len(batch)
        # Distribution output parks out of the compaction zone on hierarchy
        # backends (a no-op on disks): buckets are repositioned to the front
        # before their recursion (see streams.reposition_run).
        if self._write_round is not None:
            # List-native round write: the backend takes the blocks as-is
            # (they are handed over — every queued block is a fresh carve
            # or an immutable view of a gather window, never mutated).
            # checked=False: each batch holds at most one full block per
            # channel by construction (tentative placement assigns
            # distinct channels; swap targets are distinct matched v's).
            addresses = self._write_round(
                [p[_P_CHANNEL] for p in batch],
                [p[_P_BLOCK] for p in batch],
                park=True,
                checked=False,
            )
        else:
            channels = np.fromiter((p[_P_CHANNEL] for p in batch), np.int64, k)
            matrix = np.empty((k, self.block_size), dtype=RECORD_DTYPE)
            for i, p in enumerate(batch):
                matrix[i] = p[_P_BLOCK]
            addresses = self.storage.parallel_write_arr(channels, matrix, park=True)
        record_location = self.matrices.record_location
        for p, addr in zip(batch, addresses):
            record_location(
                p[_P_BUCKET], p[_P_CHANNEL], BlockRef(address=addr, fill=p[_P_FILL])
            )
        self.stats.write_steps += 1
        self.stats.blocks_placed += k

    # --------------------------------------------------------------- flush

    def flush(self) -> list[BucketRun]:
        """Pad partial blocks, place everything, and return the bucket runs."""
        if self._finished:
            raise ParameterError("engine already finished")
        kernels = get_backend(self.kernel_backend)
        vb = self.block_size
        for b in range(self.n_buckets):
            if self._fills[b] > self._emits[b]:
                tail = self._bufs[b][self._emits[b] : self._fills[b]]
                true_n = tail.shape[0]
                padded = pad_records(tail, vb)
                n_pad = padded.shape[0] - true_n
                self.storage.acquire_memory(n_pad)
                self.stats.pad_records += n_pad
                self._bufs[b] = None
                self._fills[b] = self._emits[b] = 0
                for block, fill in kernels.tail_blocks(padded, true_n, vb):
                    self._queue.append((b, block, fill))
        self.run_rounds(drain_below=0, drain=True)
        self._finished = True
        return [
            BucketRun(
                bucket=b,
                chains=[list(chain) for chain in self.matrices.L[b]],
                n_records=int(self._bucket_records[b]),
            )
            for b in range(self.n_buckets)
        ]

    @property
    def bucket_record_counts(self) -> np.ndarray:
        return np.array(self._bucket_records, dtype=np.int64)


def read_bucket_run(storage, run: BucketRun, free: bool = True):
    """Stream a bucket back: ≤1 block per channel per parallel read.

    Yields record arrays (padding stripped, ledger adjusted); the number
    of *charged* parallel reads is ``run.max_blocks_on_channel`` — the
    quantity Theorem 4 bounds at ~2× optimal.  When ``free`` is set the
    blocks are recycled after reading.  Thin wrapper over the unified
    plan/execute reader in :mod:`repro.core.streams` (one round per
    chain depth; physical gathers may be fused under an active I/O
    plan, with identical charges and yields).
    """
    from .streams import read_run_batches  # local import: streams imports us

    yield from read_run_batches(storage, run, free=free)
