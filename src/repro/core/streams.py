"""Run abstractions: how datasets live on a balance-storage backend.

Both Balance Sort variants (disks, Section 5; hierarchies, Section 4) view a
dataset as a collection of *virtual blocks* on the backend's channels, each
tracked as a :class:`~repro.core.balance.BlockRef` (address + true record
count, so padded tails never need reading to be accounted):

* an :class:`OrderedRun` has a defined logical order (block 0's records
  precede block 1's ...) — the shape of the initial input, of sorted
  outputs, and of the sorted groups Algorithm 2 produces.  Blocks are laid
  round-robin across channels, so streaming it costs one parallel step per
  ``H'`` blocks (full bandwidth).
* a :class:`~repro.core.balance.BucketRun` is a bucket's unordered
  per-channel chains — the location-matrix view.  Streaming it takes
  ``max_blocks_on_channel`` parallel reads, the quantity Theorem 4 bounds.

Both go through ``read_run_batches``: a generator of record chunks, each
charged as one parallel read, padding stripped and the memory ledger
adjusted.

Plan/execute split
------------------
Streaming is structured as **plan then execute**: the pure round planner
(:func:`plan_read_rounds`, built on the ``stream_batches`` kernel) turns a
run into its exact sequence of parallel-read rounds without touching
storage, and the executor either performs them round-at-a-time (the
classic path — hierarchy backends, fault/checksum runs) or, when the
backend has an active I/O plan (``storage.io_plan_window > 1``), gathers
whole windows of future rounds in one physical store pass and charges
each logical round at its yield point.  Counters, trace events, ledger
trajectory, and yielded records are bit-identical either way — only the
number of physical store calls changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..records import RECORD_DTYPE, concat_records, pad_records, strip_pad_records
from .balance import BlockRef, BucketRun
from .kernels import get_backend

__all__ = [
    "OrderedRun",
    "as_ordered_run",
    "load_ordered_run",
    "write_ordered_run",
    "plan_read_rounds",
    "read_run_batches",
    "read_run_all",
    "reposition_run",
    "peek_run",
    "concat_runs",
]


@dataclass
class OrderedRun:
    """A dataset with a defined logical block order on a storage backend."""

    blocks: list  # BlockRefs in logical order; address.vdisk is the channel
    n_records: int

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def slice_blocks(self, start: int, stop: int) -> "OrderedRun":
        """A sub-run over blocks [start, stop); record count from the fills."""
        blocks = self.blocks[start:stop]
        return OrderedRun(blocks=blocks, n_records=sum(r.fill for r in blocks))


def as_ordered_run(run) -> OrderedRun:
    """View any run as an OrderedRun (bucket chains flatten in chain order)."""
    if isinstance(run, OrderedRun):
        return run
    if isinstance(run, BucketRun):
        return OrderedRun(blocks=run.block_refs(), n_records=run.n_records)
    raise ParameterError(f"unknown run type {type(run).__name__}")


def _round_robin_matrix(storage, records: np.ndarray, start_channel: int = 0):
    """Split records into a block matrix, channel ``(i + start) mod H'``.

    Returns ``(matrix, channels, fills, n_pad)`` where ``matrix`` is the
    padded input viewed as ``(n_blocks, virtual_block_size)`` — a reshape,
    not a copy — so writers can push whole batches without per-block
    slicing.
    """
    vb = storage.virtual_block_size
    padded = pad_records(records, vb)
    n_blocks = padded.shape[0] // vb
    matrix = padded.reshape(n_blocks, vb)
    channels = (np.arange(n_blocks, dtype=np.int64) + start_channel) % storage.n_virtual
    n = records.shape[0]
    fills = np.minimum(vb, np.maximum(0, n - np.arange(n_blocks) * vb)).tolist()
    return matrix, channels, fills, padded.shape[0] - n


def load_ordered_run(storage, records: np.ndarray) -> OrderedRun:
    """Place input on the backend without cost (the problem's given state)."""
    matrix, channels, fills, _ = _round_robin_matrix(storage, records)
    items = [(int(c), matrix[i]) for i, c in enumerate(channels.tolist())]
    addresses = storage.load_initial(items)
    blocks = [BlockRef(a, f) for a, f in zip(addresses, fills)]
    return OrderedRun(blocks=blocks, n_records=int(records.shape[0]))


def write_ordered_run(
    storage, records: np.ndarray, start_channel: int = 0, park: bool = False
) -> OrderedRun:
    """Write in-memory records out as a round-robin run (charged).

    Issues one parallel write per ``H'`` blocks — each a single batched
    ``parallel_write_arr`` over a view of the padded input, so no
    per-block copies happen above the storage layer.  On a ledgered
    backend the records must already be held in memory (padding is
    acquired here).  ``start_channel`` staggers the round-robin phase —
    runs that will later be merged in lockstep (Greed Sort) must not all
    place their k-th block on the same disk.  ``park`` requests
    out-of-the-front placement on hierarchy backends (sorted outputs;
    see :func:`reposition_run`).
    """
    matrix, channels, fills, n_pad = _round_robin_matrix(storage, records, start_channel)
    storage.acquire_memory(n_pad)
    blocks = []
    hp = storage.n_virtual
    for i in range(0, matrix.shape[0], hp):
        addresses = storage.parallel_write_arr(
            channels[i : i + hp], matrix[i : i + hp], park=park
        )
        blocks.extend(
            BlockRef(a, f) for a, f in zip(addresses, fills[i : i + hp])
        )
    return OrderedRun(blocks=blocks, n_records=int(records.shape[0]))


def plan_read_rounds(storage, run) -> list[list[BlockRef]]:
    """The round planner: a run's exact parallel-read schedule, no I/O.

    Pure bookkeeping over the run's structure — each returned entry is
    one contention-free parallel read round (``≤ 1`` block per channel),
    exactly the rounds the classic streaming loops performed:

    * :class:`OrderedRun` — greedy batching of consecutive blocks until
      a channel repeats (the ``stream_batches`` kernel);
    * :class:`~repro.core.balance.BucketRun` — one round per chain
      depth, the head of every non-exhausted chain (Theorem 4's
      ``max_blocks_on_channel`` rounds).
    """
    if isinstance(run, BucketRun):
        depth = run.max_blocks_on_channel
        return [
            [chain[i] for chain in run.chains if len(chain) > i]
            for i in range(depth)
        ]
    if not isinstance(run, OrderedRun):
        raise ParameterError(f"unknown run type {type(run).__name__}")
    blocks = run.blocks
    if not blocks:
        return []
    channels = [r.address.vdisk for r in blocks]
    bounds = get_backend().stream_batches(channels, storage.n_virtual)
    return [blocks[bounds[i]: bounds[i + 1]] for i in range(len(bounds) - 1)]


def _execute_rounds(storage, rounds, free, record_map=None):
    """Yield ``(refs, merged_records, mapped)`` per planned round.

    With an active I/O plan on the backend (``storage.io_plan_window >
    1``) whole windows of future rounds are gathered in one physical
    store pass and each round is charged (fault hook, ledger, stats, obs
    event — :meth:`~repro.pdm.striping.VirtualDisks.charge_read_round`)
    at its yield point, preserving the logical schedule bit-for-bit.
    Otherwise every round is one classic ``parallel_read_arr`` call.

    ``record_map`` (a pure per-record function over a record array) is
    hoisted to window granularity when the window carries no padding:
    ``mapped`` is then the window result sliced to the round.  Rounds
    without a hoisted result yield ``mapped = None`` and the caller
    applies ``record_map`` itself — by purity the values are identical.
    """
    window = getattr(storage, "io_plan_window", 0)
    if window > 1 and len(rounds) > 1:
        for lo in range(0, len(rounds), window):
            chunk = rounds[lo: lo + window]
            matrix = storage.gather_rounds_arr(
                [[r.address for r in refs] for refs in chunk], free=free
            )
            mapped_full = None
            if record_map is not None and matrix.size:
                fills = sum(r.fill for refs in chunk for r in refs)
                if fills == matrix.size:  # pad-free window
                    mapped_full = record_map(matrix.reshape(-1))
            offset = 0
            vb = matrix.shape[1] if matrix.ndim == 2 else 1
            for refs in chunk:
                k = len(refs)
                storage.charge_read_round(k)
                mapped = (
                    mapped_full[offset * vb: (offset + k) * vb]
                    if mapped_full is not None else None
                )
                yield refs, matrix[offset: offset + k].reshape(-1), mapped
                offset += k
    else:
        for refs in rounds:
            merged = storage.parallel_read_arr(
                [r.address for r in refs], free=free
            )
            yield refs, merged.reshape(-1), None


def read_run_batches(storage, run, free: bool = False, record_map=None):
    """Stream any run back as record chunks, one parallel read per chunk.

    Each yielded chunk corresponds to exactly one charged parallel read
    (physical gathers may be fused across rounds — see
    :func:`plan_read_rounds` / :func:`_execute_rounds`).  Chunks may be
    views of a shared gather buffer: hold them as long as needed, but do
    not mutate them in place.

    ``record_map`` — optionally, a **pure per-record** function mapping a
    record array to an aligned result array (e.g. bucket ids).  When
    given, the generator yields ``(chunk, record_map(chunk))`` pairs,
    computing the map once per fused gather window where possible; the
    values are bit-identical to calling ``record_map(chunk)`` per chunk
    (purity is the caller's contract).
    """
    strict = not isinstance(run, BucketRun)
    rounds = plan_read_rounds(storage, run)
    remaining = run.n_records
    for refs, merged, mapped in _execute_rounds(storage, rounds, free, record_map):
        promised = sum(r.fill for r in refs)
        if promised == merged.shape[0]:
            # Every block in the batch is full (``fill == VB``), so there is
            # no padding to strip — yield the gathered batch as-is.  (Fills
            # are authoritative: padding only ever sits at block tails, and
            # a corrupted fill falls through to the strip + guard below.)
            trimmed = merged
        else:
            trimmed = strip_pad_records(merged)
            n_pad = merged.shape[0] - trimmed.shape[0]
            if strict and trimmed.shape[0] != promised:
                raise ParameterError(
                    f"block fill bookkeeping error: read {trimmed.shape[0]} records, "
                    f"refs promised {promised}"
                )
            if n_pad:
                storage.release_memory(n_pad)
            mapped = None  # padded round: remap on the stripped records
        remaining -= trimmed.shape[0]
        if record_map is None:
            yield trimmed
        else:
            yield trimmed, record_map(trimmed) if mapped is None else mapped
    if strict and remaining != 0:
        raise ParameterError(
            f"run bookkeeping error: {remaining} records unaccounted for"
        )


def read_run_all(storage, run, free: bool = False) -> np.ndarray:
    """Materialize a whole run in memory (base cases; N must fit)."""
    chunks = list(read_run_batches(storage, run, free=free))
    if not chunks:
        return np.empty(0, dtype=RECORD_DTYPE)
    return concat_records(chunks)


def reposition_run(storage, run) -> OrderedRun:
    """Rewrite a run into the lowest free addresses (one read+write stream).

    Section 4.4's bucket repositioning, made operational for every
    hierarchy model: after a distribution pass the bucket's blocks sit at
    high (expensive) addresses; the recursion is only charged its own
    subproblem's footprint if the data first moves to the front.  The freed
    source addresses recycle lowest-first, so the rewritten run occupies
    ``[0, N_b/(H'·VB))`` per channel.  Costs one streamed read plus one
    streamed write — within the constant factor the paper's recurrences
    allow (for P-BT it is the generalized-transposition step of [ACSa]).
    """
    blocks = []
    total = 0
    start = 0
    hp = storage.n_virtual
    pending: list[np.ndarray] = []
    pending_n = 0
    vb = storage.virtual_block_size

    def flush(final=False):
        nonlocal pending, pending_n, start, total
        if pending_n == 0:
            return
        width = hp * vb
        take = pending_n if final else (pending_n // width) * width
        if take == 0:
            return
        data = concat_records(pending) if len(pending) > 1 else pending[0]
        head, tail = data[:take], data[take:]
        written = write_ordered_run(storage, head, start_channel=start)
        blocks.extend(written.blocks)
        start = (start + len(written.blocks)) % hp
        total += head.shape[0]
        pending = [tail] if tail.size else []
        pending_n = int(tail.shape[0]) if tail.size else 0

    for chunk in read_run_batches(storage, run, free=True):
        pending.append(chunk)
        pending_n += chunk.shape[0]
        flush()
    flush(final=True)
    return OrderedRun(blocks=blocks, n_records=total)


def peek_run(storage, run) -> np.ndarray:
    """Materialize a run without I/O charges or ledger effects (validation).

    Works on both run types; an :class:`OrderedRun` comes back in logical
    order, a bucket run in chain order.
    """
    refs = as_ordered_run(run).blocks
    if not refs:
        return np.empty(0, dtype=RECORD_DTYPE)
    return strip_pad_records(concat_records([storage.peek(r.address) for r in refs]))


def concat_runs(runs: list[OrderedRun]) -> OrderedRun:
    """Concatenate sorted runs whose records are in increasing order.

    Padding mid-run (each sub-run's final block) is harmless: readers strip
    padding per block and the BlockRef fills keep the counts exact.
    """
    blocks = []
    total = 0
    for r in runs:
        blocks.extend(r.blocks)
        total += r.n_records
    return OrderedRun(blocks=blocks, n_records=total)
