"""Balance Sort on the parallel disk model (Section 5; Theorem 1).

Structure (the Section 5 modifications to Algorithm 1):

* recursion terminates at ``N ≤ M`` — read everything, sort internally
  (charged to the attached PRAM: Cole's merge sort on an EREW interconnect,
  the Rajasekaran–Reif radix sort on CRCW), write back;
* ``S = (M/B)^{1/4}`` buckets;
* partition elements come from the [ViSa] memoryload-sampling method
  (:func:`repro.core.partition.pdm_partition_elements`);
* the Balance engine reads memoryloads (streamed at full ``DB``-records-
  per-I/O bandwidth) and places virtual blocks on the ``D'`` partially
  striped virtual disks, rebalancing with ``Fast-Partial-Match``;
* each bucket is sorted recursively and appended to the output.

The recursion gives ``T(N) = S·T(N/S) + O(N/DB)`` I/Os, i.e.
``O((N/DB)·log(N/B)/log(M/B))`` — the optimal bound of [AgV] — while the
CPU charges accumulate to ``O((N/P) log N)`` work.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ParameterError
from ..obs import NULL_TRACER
from ..pdm.machine import ParallelDiskMachine
from ..pdm.striping import VirtualDisks, default_virtual_disk_count
from ..pram.primitives import log2_ceil
from ..pram.sorting import cole_merge_sort, rajasekaran_reif_radix
from ..records import RECORD_DTYPE, sort_records
from .balance import BalanceEngine, BucketRun
from .partition import pdm_partition_elements, validate_bucket_sizes
from .streams import (
    OrderedRun,
    concat_runs,
    load_ordered_run,
    read_run_all,
    read_run_batches,
    write_ordered_run,
)

__all__ = ["balance_sort_pdm", "PDMSortResult", "default_bucket_count"]


def default_bucket_count(m: int, b: int) -> int:
    """The paper's ``S = (M/B)^{1/4}``, floored at 3 (recursion progress)."""
    return max(3, round((m / b) ** 0.25))


@dataclass
class PDMSortResult:
    """Output run plus everything the experiments measure."""

    output: OrderedRun
    n_records: int
    io_stats: dict
    cpu: dict
    storage: VirtualDisks | None = None
    recursion_depth: int = 0
    distribution_passes: int = 0
    engine_rounds: int = 0
    blocks_swapped: int = 0
    blocks_unprocessed: int = 0
    match_calls: int = 0
    match_fallbacks: int = 0
    max_balance_factor: float = 1.0
    max_bucket_ratio: float = 0.0  # worst bucket size / (2N/S)

    @property
    def total_ios(self) -> int:
        return self.io_stats["total_ios"]


@dataclass
class _Aggregate:
    depth: int = 0
    passes: int = 0
    rounds: int = 0
    swapped: int = 0
    unprocessed: int = 0
    match_calls: int = 0
    match_fallbacks: int = 0
    balance_factor: float = 1.0
    bucket_ratio: float = 0.0


def balance_sort_pdm(
    machine: ParallelDiskMachine,
    records: np.ndarray | None = None,
    *,
    run: OrderedRun | None = None,
    storage: VirtualDisks | None = None,
    virtual_disks: int | None = None,
    buckets: int | None = None,
    matcher: str = "derandomized",
    internal: str = "cole",
    rng: np.random.Generator | None = None,
    check_invariants: bool = True,
    obs=None,
) -> PDMSortResult:
    """Sort ``records`` (or an already loaded ``run``) on a PDM machine.

    Parameters
    ----------
    machine:
        The :class:`~repro.pdm.machine.ParallelDiskMachine` to run on; its
        I/O statistics and CPU counters are the experiment's measurements.
    matcher:
        Rebalancing matcher (see :class:`~repro.core.balance.BalanceEngine`).
    internal:
        Internal-sort flavour: ``"cole"`` (EREW, [Col], charged model),
        ``"radix"`` (CRCW, [RaR], charged model), or
        ``"radix-operational"`` (CRCW, every radix pass executed on the
        PRAM — :func:`repro.pram.radix.radix_sort`).
    buckets / virtual_disks:
        Override ``S`` and ``D'`` (defaults: ``(M/B)^{1/4}`` and partial
        striping at ``~D^{1/3}``).
    obs:
        Optional :class:`~repro.obs.Observation`.  When given, the machine
        and Balance engine stream metrics/events into it and every phase
        (``partition`` / ``distribute`` / ``recurse`` / ``base-case``)
        becomes a span carrying I/O and CPU attribution (spans are
        *inclusive*: a phase's costs include its nested spans).  When
        ``None`` (default) no instrumentation runs and measured I/O/CPU
        counts are bit-identical to the uninstrumented code path.
    """
    if (records is None) == (run is None):
        raise ParameterError("provide exactly one of records / run")
    if storage is None:
        storage = VirtualDisks(
            machine, virtual_disks or default_virtual_disk_count(machine.D)
        )
    if run is None:
        run = load_ordered_run(storage, records)
    n = run.n_records

    if internal == "cole":
        internal_sort = lambda recs: cole_merge_sort(machine.cpu, recs)
    elif internal == "radix":
        internal_sort = lambda recs: rajasekaran_reif_radix(machine.cpu, recs)
    elif internal == "radix-operational":
        from ..pram.radix import radix_sort

        internal_sort = lambda recs: radix_sort(machine.cpu, recs)
    else:
        raise ParameterError(f"unknown internal sort {internal!r}")

    s = buckets or default_bucket_count(machine.M, machine.B)
    agg = _Aggregate()
    rng = rng or np.random.default_rng(2718)

    tracer = NULL_TRACER
    if obs is not None:
        machine.attach_obs(obs)
        tracer = obs.tracer

    # The whole sort runs under one fused I/O plan: every logical round
    # still charges IOStats / ledger / obs at its usual point (the cost
    # model and trace are bit-identical with plans off), but physical
    # store traffic is batched — reads gathered a window of rounds at a
    # time, writes scattered once per window (see machine.io_plan).  The
    # scope is a no-op under fault injection / checksums or REPRO_IO_PLAN=0.
    with machine.io_plan():
        output = _sort(
            machine, storage, run, n, s, matcher, internal_sort, rng,
            check_invariants, agg, depth=0, obs=obs, tracer=tracer,
        )
    return PDMSortResult(
        output=output,
        n_records=n,
        io_stats=machine.stats.snapshot(),
        cpu=machine.cpu.snapshot(),
        storage=storage,
        recursion_depth=agg.depth,
        distribution_passes=agg.passes,
        engine_rounds=agg.rounds,
        blocks_swapped=agg.swapped,
        blocks_unprocessed=agg.unprocessed,
        match_calls=agg.match_calls,
        match_fallbacks=agg.match_fallbacks,
        max_balance_factor=agg.balance_factor,
        max_bucket_ratio=agg.bucket_ratio,
    )


def _memoryload(machine: ParallelDiskMachine, storage: VirtualDisks, s: int) -> int:
    """Records processed per streaming step, leaving room for the engine.

    Reserves partial-block buffers (S blocks), the in-flight queue
    (2·D' blocks), and one read batch.
    """
    vb = storage.virtual_block_size
    reserve = (s + 2 * storage.n_virtual + 1) * vb
    load = machine.M - reserve
    if load < max(4 * s, machine.D * machine.B):
        raise ParameterError(
            f"machine too small: M={machine.M} cannot hold S={s} partial "
            f"blocks of {vb} records plus a memoryload"
        )
    return load


@contextmanager
def _phase(tracer, machine, name, **attrs):
    """Span a sort phase and attribute the machine-cost deltas to it."""
    stats = machine.stats
    read0 = stats.read_ios
    write0 = stats.write_ios
    work0 = machine.cpu.work
    time0 = machine.cpu.time
    with tracer.span(name, **attrs) as span:
        yield span
        read_ios = stats.read_ios - read0
        write_ios = stats.write_ios - write0
        span.annotate(
            ios=read_ios + write_ios,
            read_ios=read_ios,
            write_ios=write_ios,
            cpu_work=machine.cpu.work - work0,
            cpu_time=machine.cpu.time - time0,
        )


def _sort(machine, storage, run, n, s, matcher, internal_sort, rng,
          check_invariants, agg, depth, obs=None, tracer=NULL_TRACER) -> OrderedRun:
    agg.depth = max(agg.depth, depth)
    vb = storage.virtual_block_size

    if n == 0:
        return OrderedRun(blocks=[], n_records=0)
    # Base case: N ≤ M (minus working room) — one read, internal sort, write.
    if n <= machine.M - (storage.n_virtual + 1) * vb:
        with _phase(tracer, machine, "base-case", n=n, level=depth):
            recs = read_run_all(storage, run, free=True)
            out = internal_sort(recs)
            return write_ordered_run(storage, out)

    memoryload = _memoryload(machine, storage, s)

    # --- partition elements ([ViSa] sampling pass) ----------------------
    with _phase(tracer, machine, "partition", n=n, s=s, level=depth):
        pivots = pdm_partition_elements(
            machine, storage, run, s, memoryload, internal_sort=internal_sort
        )

    # --- distribution pass (Balance, Section 5 flavour) ------------------
    engine = BalanceEngine(
        storage, pivots, matcher=matcher, rng=rng, check_invariants=check_invariants
    )
    if obs is not None:
        engine.attach_obs(obs)
        # Auditors and other engine-level monitors ride the same per-round
        # hook (see Observation.engine_observers / obs.audit.TheoryAuditor).
        for callback in obs.engine_observers:
            engine.add_round_observer(callback)
    agg.passes += 1
    hp = storage.n_virtual
    lg_s = log2_ceil(s)
    with _phase(tracer, machine, "distribute", n=n, level=depth) as dspan:
        # Bucket ids ride the read stream (hoisted to gather-window
        # granularity — bit-identical to per-chunk computation).
        for chunk, buckets in read_run_batches(
            storage, run, free=True, record_map=engine.bucket_ids
        ):
            engine.feed(chunk, buckets=buckets)
            # CPU: partition the chunk among S sorted pivots (binary search).
            machine.cpu.charge(
                work=chunk.shape[0] * lg_s, depth=lg_s, label="partition"
            )
            engine.run_rounds(drain_below=2 * hp)
        bucket_runs = engine.flush()
        # CPU: matrix upkeep (incremental updating, Section 5) and matching.
        machine.cpu.charge(
            work=engine.stats.rounds * hp, depth=engine.stats.rounds, label="matrix-upkeep"
        )
        if engine.stats.match_calls:
            machine.cpu.charge(
                work=engine.stats.match_calls * hp * log2_ceil(hp),
                depth=engine.stats.match_calls * log2_ceil(machine.P),
                label="matching",
            )
        dspan.annotate(
            rounds=engine.stats.rounds,
            swapped=engine.stats.blocks_swapped,
            unprocessed=engine.stats.blocks_unprocessed,
            match_calls=engine.stats.match_calls,
        )

    agg.rounds += engine.stats.rounds
    agg.swapped += engine.stats.blocks_swapped
    agg.unprocessed += engine.stats.blocks_unprocessed
    agg.match_calls += engine.stats.match_calls
    agg.match_fallbacks += engine.stats.match_fallbacks
    agg.balance_factor = max(agg.balance_factor, engine.matrices.max_balance_factor())
    agg.bucket_ratio = max(
        agg.bucket_ratio, validate_bucket_sizes(engine.bucket_record_counts, n, s)
    )

    # --- recurse per bucket and append (Algorithm 1, steps 7–9) ---------
    outputs = []
    with _phase(tracer, machine, "recurse", n=n, level=depth):
        for brun in bucket_runs:
            if brun.n_records == 0:
                continue
            if brun.n_records >= n:
                raise ParameterError(
                    f"bucket {brun.bucket} did not shrink ({brun.n_records}/{n}); "
                    f"S={s} too small for this input"
                )
            outputs.append(
                _sort(machine, storage, brun, brun.n_records, s, matcher,
                      internal_sort, rng, check_invariants, agg, depth + 1,
                      obs=obs, tracer=tracer)
            )
    return concat_runs(outputs)
