"""Alternative auxiliary-matrix definitions (ablations).

Section 4.1 mentions that "recently, an alternative definition of auxiliary
matrix was proposed that has a similar effect of making each bucket balanced
within a factor of 2; the term ``a_bh`` is defined to be 1 when the number
of blocks per bucket is more than twice the desired evenly-balanced number"
[Arg, January 1993, private communication — Lars Arge].

:func:`compute_aux_arge` implements that rule so the E10 ablation can
compare it with the paper's median rule on identical placement traces.  To
slot it into the engine, wrap an engine subclass or compare offline on
histogram snapshots; the ablation benchmark does the latter plus a full
engine run via :class:`ArgeBalanceMatrices`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvariantViolation
from .matrices import BalanceMatrices

__all__ = ["compute_aux_arge", "ArgeBalanceMatrices"]


def compute_aux_arge(histogram: np.ndarray) -> np.ndarray:
    """[Arg] rule: flag entries above twice the even share.

    ``a_bh = 2`` when ``x_bh > 2·⌈(Σ_h x_bh)/H'⌉`` (flagged for rebalancing,
    encoded as 2 so the engine's machinery treats it like the median rule's
    overload marker), ``0`` when at or below the even share, else ``1``.
    """
    hist = np.asarray(histogram)
    totals = hist.sum(axis=1, keepdims=True)
    even = -(-totals // hist.shape[1])  # ceil of the evenly-balanced number
    aux = np.ones_like(hist)
    aux[hist > 2 * even] = 2
    aux[hist <= even] = 0
    return aux


class ArgeBalanceMatrices(BalanceMatrices):
    """Balance matrices using the [Arg] auxiliary rule instead of medians.

    Drop-in replacement consumed by the E10 ablation: the engine's
    rebalancing loop sees the same {0,1,2} alphabet, but 2s now mean "more
    than twice the even share".  The Invariant-1 degree guarantee holds a
    fortiori: at least half the channels are at or below the even share...
    more precisely at least ⌈H'/2⌉ channels are at or below twice the
    average, and every channel at or below the exact even share maps to 0.
    """

    def refresh_aux(self) -> np.ndarray:
        """Recompute ``A`` with the [Arg] rule instead of Algorithm 4."""
        self.A = compute_aux_arge(self.X)
        return self.A

    def check_invariant_2(self) -> None:
        """After a processed track nothing exceeds twice the even share."""
        if int(self.A.max(initial=0)) > 1:
            rows, cols = np.nonzero(self.A > 1)
            raise InvariantViolation(
                f"[Arg] Invariant violated: overloads remain at "
                f"{list(zip(rows.tolist(), cols.tolist()))}"
            )
