"""Partition-element selection.

Two deterministic methods, as in the paper:

* :func:`pdm_partition_elements` — the [ViSa] memoryload-sampling method the
  parallel-disk variant uses (Section 5): stream the input one memoryload at
  a time, sort each load internally, keep every ``t``-th element
  (``t = ⌊memoryload/(4S)⌋``), sort the sample, and take ``S−1`` evenly
  spaced elements.  Guarantee: every bucket receives fewer than
  ``N/S + t·⌈N/memoryload⌉ + t ≤ 1.5·N/S`` records — comfortably inside the
  paper's ``< 2N/S``.
* :func:`hierarchy_partition_elements` — Algorithm 2: split the input into
  ``G`` groups, sort each *recursively* (the caller passes its own sort
  back in), set aside every ``⌊log N⌋``-th element of each sorted group
  into ``C``, sort ``C`` by binary merge sort with hierarchy striping
  (charged), and pick every ``⌊N/((S−1) log N)⌋``-th element.  With
  ``G log N ≤ N/S`` this yields ``0 < N_b < 2N/S`` for every bucket.

Both operate on *composite keys* (key, rid packed), so duplicates in the raw
keys never produce empty or overfull buckets — the paper's distinctness
assumption realized.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..exceptions import ParameterError
from ..records import composite_keys, concat_records, sort_records
from .streams import OrderedRun, as_ordered_run, read_run_all, read_run_batches

__all__ = [
    "pdm_partition_elements",
    "hierarchy_partition_elements",
    "selection_partition_elements",
    "validate_bucket_sizes",
    "paper_floor_log2",
]


def paper_floor_log2(n: int) -> int:
    """``max(1, ⌊log₂ n⌋)`` — the sampling stride unit of Algorithm 2."""
    return max(1, n.bit_length() - 1)


def _evenly_spaced_pivots(sample_sorted: np.ndarray, s: int) -> np.ndarray:
    """``S−1`` pivots at ranks ``⌈j·|C|/S⌉`` of the sorted sample."""
    c = sample_sorted.shape[0]
    if c < s - 1:
        raise ParameterError(f"sample of {c} too small for {s - 1} pivots")
    ranks = np.ceil(np.arange(1, s) * c / s).astype(np.int64) - 1
    return sample_sorted[ranks]


def pdm_partition_elements(
    machine,
    storage,
    run,
    s: int,
    memoryload: int,
    internal_sort: Callable | None = None,
) -> np.ndarray:
    """[ViSa] sampling over memoryloads (Section 5).  One streaming pass.

    Reads the run one memoryload at a time (records leave memory after
    sampling), charging the machine's CPU for each internal sort via
    ``internal_sort`` (default: the charged Cole model on ``machine.cpu``).
    Returns ``S−1`` composite-key pivots.
    """
    from ..pram.sorting import cole_merge_sort

    if s < 2:
        raise ParameterError("need at least 2 buckets")
    if memoryload < 4 * s:
        raise ParameterError(
            f"memoryload {memoryload} too small for S={s} (need ≥ 4S)"
        )
    sorter = internal_sort or (lambda recs: cole_merge_sort(machine.cpu, recs))
    t = max(1, memoryload // (4 * s))
    samples = []
    buffer = []
    buffered = 0

    def drain(chunks: list, size: int) -> None:
        if size == 0:
            return
        load = concat_records(chunks) if len(chunks) > 1 else chunks[0]
        sorted_load = sorter(load)
        ck = composite_keys(sorted_load)
        samples.append(ck[t - 1 :: t].copy())
        storage.release_memory(int(size))  # records leave memory; disk copy remains

    for chunk in read_run_batches(storage, run, free=False):
        buffer.append(chunk)
        buffered += chunk.shape[0]
        if buffered >= memoryload:
            drain(buffer, buffered)
            buffer, buffered = [], 0
    drain(buffer, buffered)

    sample = np.concatenate(samples) if samples else np.empty(0, dtype=np.uint64)
    sample.sort()  # the sample is metadata kept in memory, like X/A/L/E
    return _evenly_spaced_pivots(sample, s)


def hierarchy_partition_elements(
    machine,
    storage,
    run: OrderedRun,
    n: int,
    s: int,
    g: int,
    recursive_sort: Callable,
) -> tuple[np.ndarray, list[OrderedRun]]:
    """Algorithm 2 (``ComputePartitionElements``).

    Splits ``run`` into ``G`` block-aligned groups, recursively sorts each
    with ``recursive_sort(group_run, group_n) -> OrderedRun``, samples every
    ``⌊log N⌋``-th element into ``C``, sorts ``C`` (charged binary merge
    sort with hierarchy striping), and returns ``(pivots, sorted_groups)``
    — the sorted groups are handed to Balance, which is what makes partial
    hierarchy striping possible (Section 4.1).
    """
    if s < 2 or g < 1:
        raise ParameterError(f"need S ≥ 2 and G ≥ 1, got S={s}, G={g}")
    if g * paper_floor_log2(n) > n // s + 1:
        raise ParameterError(
            f"Algorithm 2 requires G·log N ≤ N/S (G={g}, log N="
            f"{paper_floor_log2(n)}, N/S={n // s})"
        )
    vb = storage.virtual_block_size
    run = as_ordered_run(run)
    blocks_per_group = -(-run.n_blocks // g)
    stride = paper_floor_log2(n)

    sorted_groups: list[OrderedRun] = []
    sample_parts = []
    for gi in range(g):
        lo = gi * blocks_per_group
        hi = min(lo + blocks_per_group, run.n_blocks)
        if lo >= hi:
            break
        group = run.slice_blocks(lo, hi)
        sorted_group = recursive_sort(group, group.n_records)
        sorted_groups.append(sorted_group)
        # Step (2): set aside every ⌊log N⌋-th element into C.  The scan is
        # a charged full read of the sorted group.
        offset = 0
        for chunk in read_run_batches(storage, sorted_group, free=False):
            ck = composite_keys(chunk)
            first = (stride - 1 - offset) % stride
            sample_parts.append(ck[first::stride].copy())
            offset = (offset + chunk.shape[0]) % stride
            storage.release_memory(int(chunk.shape[0]))

    sample = np.concatenate(sample_parts) if sample_parts else np.empty(0, dtype=np.uint64)
    # Step (3): sort C by binary merge sort with hierarchy striping (charged).
    _charge_striped_sort(machine, sample.shape[0], storage.n_virtual, vb)
    sample.sort()
    # Step (4): e_j := the ⌊N/((S−1) log N)⌋·j-th smallest element of C.
    pivots = _evenly_spaced_pivots(sample, s)
    return pivots, sorted_groups


def _charge_striped_sort(machine, n: int, hp: int, vb: int) -> None:
    """Charge a binary merge sort of n records with hierarchy striping.

    ``⌈log₂(n/(H'·VB))⌉`` merge passes, each streaming the data once:
    memory side ≈ one scan of the per-hierarchy footprint per pass,
    interconnect side ≈ ``n/H + log H`` merge time per pass.
    """
    if n <= 0:
        return
    per_channel = -(-n // (hp * vb))
    passes = max(1, math.ceil(math.log2(max(2, per_channel * hp))))
    h = getattr(machine, "h", hp)
    scan = machine.cost_fn.scan_cost(0, max(1, per_channel))
    for _ in range(passes):
        machine.parallel_step([scan])
        machine.charge_interconnect(n / h + math.log2(max(2, h)))


def selection_partition_elements(
    machine,
    storage,
    run,
    s: int,
    memoryload: int,
) -> np.ndarray:
    """Pivot selection via deterministic linear-time selection ([BFP]).

    An alternative to the sorting-based sample reduction: the same
    memoryload sampling pass, but the ``S−1`` pivots are then extracted by
    repeated Blum–Floyd–Pratt–Rivest–Tarjan selection instead of sorting
    the whole sample — ``O(S·|C|)`` work instead of ``O(|C| log |C|)``,
    the trade the paper's deterministic toolbox (which cites [BFP]) makes
    available when ``S`` is small.  Produces *identical pivots* to
    :func:`pdm_partition_elements` (both select the same ranks), which the
    E13 ablation verifies; only the CPU charge differs.
    """
    from ..pram.sorting import cole_merge_sort
    from ..util.order_stats import median_of_medians

    if s < 2:
        raise ParameterError("need at least 2 buckets")
    if memoryload < 4 * s:
        raise ParameterError(
            f"memoryload {memoryload} too small for S={s} (need ≥ 4S)"
        )
    t = max(1, memoryload // (4 * s))
    samples = []
    buffer: list[np.ndarray] = []
    buffered = 0

    def drain(chunks, size):
        if size == 0:
            return
        load = concat_records(chunks) if len(chunks) > 1 else chunks[0]
        sorted_load = cole_merge_sort(machine.cpu, load)
        samples.append(composite_keys(sorted_load)[t - 1 :: t].copy())
        storage.release_memory(int(size))

    for chunk in read_run_batches(storage, run, free=False):
        buffer.append(chunk)
        buffered += chunk.shape[0]
        if buffered >= memoryload:
            drain(buffer, buffered)
            buffer, buffered = [], 0
    drain(buffer, buffered)

    sample = np.concatenate(samples) if samples else np.empty(0, dtype=np.uint64)
    c = sample.shape[0]
    if c < s - 1:
        raise ParameterError(f"sample of {c} too small for {s - 1} pivots")
    ranks = np.ceil(np.arange(1, s) * c / s).astype(np.int64)  # 1-indexed
    values = [int(v) for v in sample]
    pivots = np.array(
        [median_of_medians(values, int(r)) for r in ranks], dtype=np.uint64
    )
    # CPU charge: S−1 linear-time selections over the sample.
    machine.cpu.charge(work=int(5 * (s - 1) * c), depth=(s - 1), label="bfprt-select")
    return pivots


def validate_bucket_sizes(counts: np.ndarray, n: int, s: int) -> float:
    """Max bucket size as a fraction of the paper's 2N/S bound (≤ 1 is good)."""
    counts = np.asarray(counts)
    if counts.sum() != n:
        raise ParameterError(f"bucket counts sum to {counts.sum()}, expected {n}")
    bound = 2 * n / s
    return float(counts.max() / bound) if n else 0.0
