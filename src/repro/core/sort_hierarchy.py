"""Balance Sort on parallel memory hierarchies (Section 4; Algorithm 1).

``Sort(N, T)``:

* **base case** ``N ≤ 3H`` — bring the records to the base level ``H`` at a
  time, sort each batch on the interconnect (``T(H)`` each), write back,
  and binary-merge the ≤ 3 sorted lists;
* **recursive case** — ``ComputePartitionElements`` (Algorithm 2: ``G``
  recursively sorted groups, sample every ⌊log N⌋-th element), then
  ``Balance`` distributes the sorted groups' records into ``S`` buckets
  across the ``H' = H^{1/3}`` virtual hierarchies, then each bucket is
  sorted recursively and concatenated.

The cost model: virtual-block reads/writes charge ``max f(address+1)`` per
parallel step (HMM) or the Section 4.4 effective streaming cost (BT), the
interconnect charges ``T(H)`` per base-level sort and per matching call,
and on P-BT each recursion level additionally charges the [ACSa]
generalized-transposition repositioning of the buckets
(``O((N/H)(log log(N/H))⁴)``).

Parameter choices (Section 4.3 shape): ``S ≈ √(N / log N)`` capped so that
``G·log N ≤ N/S`` with ``G = ⌊N/(S·⌊log N⌋)⌋ ≥ 2`` — the constraint under
which Algorithm 2 guarantees ``0 < N_b < 2N/S``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..obs import NULL_TRACER
from ..hierarchies.parallel import (
    EffectiveBTCost,
    ParallelHierarchies,
    VirtualHierarchies,
)
from ..records import sort_records
from .balance import BalanceEngine
from .partition import hierarchy_partition_elements, paper_floor_log2, validate_bucket_sizes
from .streams import (
    OrderedRun,
    concat_runs,
    load_ordered_run,
    read_run_all,
    read_run_batches,
    reposition_run,
    write_ordered_run,
)

__all__ = ["balance_sort_hierarchy", "HierarchySortResult", "choose_s_and_g"]


@dataclass
class HierarchySortResult:
    """Sorted output run plus the model-time measurements of Theorems 2–3."""

    output: OrderedRun
    n_records: int
    storage: VirtualHierarchies | None
    memory_time: float
    interconnect_time: float
    total_time: float
    parallel_steps: int
    recursion_depth: int = 0
    base_case_calls: int = 0
    engine_rounds: int = 0
    blocks_swapped: int = 0
    blocks_unprocessed: int = 0
    match_calls: int = 0
    match_fallbacks: int = 0
    max_balance_factor: float = 1.0
    max_bucket_ratio: float = 0.0


@dataclass
class _Aggregate:
    depth: int = 0
    base_calls: int = 0
    rounds: int = 0
    swapped: int = 0
    unprocessed: int = 0
    match_calls: int = 0
    match_fallbacks: int = 0
    balance_factor: float = 1.0
    bucket_ratio: float = 0.0


def choose_s_and_g(n: int, h: int) -> tuple[int, int]:
    """Pick (S, G) so S ≥ 3, G ≥ 2, and G·⌊log N⌋ ≤ N/S (Algorithm 2's needs)."""
    lg = paper_floor_log2(n)
    s = max(3, math.isqrt(max(1, n // lg)))
    s = min(s, max(3, h))  # the S−1 partition elements live at the base level
    g = n // (s * lg)
    while g < 2 and s > 3:
        s = max(3, s // 2)
        g = n // (s * lg)
    if g < 2:
        g = 2
        s = max(3, n // (2 * lg))
    if g * lg > n // s + 1:
        raise ParameterError(f"could not satisfy G·log N ≤ N/S for N={n}, H={h}")
    return s, g


def balance_sort_hierarchy(
    machine: ParallelHierarchies,
    records: np.ndarray | None = None,
    *,
    run: OrderedRun | None = None,
    storage: VirtualHierarchies | None = None,
    virtual_hierarchies: int | None = None,
    matcher: str = "derandomized",
    rng: np.random.Generator | None = None,
    check_invariants: bool = True,
    obs=None,
) -> HierarchySortResult:
    """Sort on P-HMM or P-BT (chosen by ``machine.model``), Theorems 2–3.

    ``obs`` (optional :class:`~repro.obs.Observation`) instruments the
    machine, the Balance engine, and the phase boundaries (``partition`` —
    Algorithm 2's group run formation + sampling — / ``distribute`` /
    ``recurse`` / ``base-case``), attributing memory and interconnect time
    to each span.  ``None`` (default) leaves every hot path untouched.
    """
    if (records is None) == (run is None):
        raise ParameterError("provide exactly one of records / run")
    if storage is None:
        effective = EffectiveBTCost(machine.cost_fn) if machine.model == "bt" else None
        storage = VirtualHierarchies(
            machine, n_virtual=virtual_hierarchies, effective_cost=effective
        )
    if run is None:
        run = load_ordered_run(storage, records)
    n = run.n_records
    rng = rng or np.random.default_rng(31415)
    agg = _Aggregate()

    tracer = NULL_TRACER
    if obs is not None:
        machine.attach_obs(obs)
        tracer = obs.tracer

    # Uniform plan scope with the PDM sort: a no-op here (hierarchy cost
    # is address-dependent per parallel step, so VirtualHierarchies pins
    # io_plan_window = 0 and every round executes one at a time), but the
    # engine/streams plumbing runs through the same plan-aware code path
    # on both backends.
    with storage.io_plan():
        output = _sort(machine, storage, run, n, matcher, rng, check_invariants,
                       agg, 0, obs=obs, tracer=tracer)
    return HierarchySortResult(
        output=output,
        n_records=n,
        storage=storage,
        memory_time=machine.memory_time,
        interconnect_time=machine.interconnect_time,
        total_time=machine.total_time,
        parallel_steps=machine.parallel_steps,
        recursion_depth=agg.depth,
        base_case_calls=agg.base_calls,
        engine_rounds=agg.rounds,
        blocks_swapped=agg.swapped,
        blocks_unprocessed=agg.unprocessed,
        match_calls=agg.match_calls,
        match_fallbacks=agg.match_fallbacks,
        max_balance_factor=agg.balance_factor,
        max_bucket_ratio=agg.bucket_ratio,
    )


@contextmanager
def _phase(tracer, machine, name, **attrs):
    """Span a sort phase and attribute the model-time deltas to it."""
    mem0 = machine.memory_time
    inter0 = machine.interconnect_time
    steps0 = machine.parallel_steps
    with tracer.span(name, **attrs) as span:
        yield span
        span.annotate(
            memory_time=round(machine.memory_time - mem0, 6),
            interconnect_time=round(machine.interconnect_time - inter0, 6),
            parallel_steps=machine.parallel_steps - steps0,
        )


def _sort(machine, storage, run, n, matcher, rng, check_invariants, agg, depth,
          obs=None, tracer=NULL_TRACER) -> OrderedRun:
    agg.depth = max(agg.depth, depth)
    if n == 0:
        return OrderedRun(blocks=[], n_records=0)
    h = machine.h
    if n <= 3 * h:
        with _phase(tracer, machine, "base-case", n=n, level=depth):
            return _base_case(machine, storage, run, n, agg)

    s, g = choose_s_and_g(n, h)

    # --- Algorithm 2: recursively sorted groups + partition elements -----
    # (Run formation: the G groups are each recursively sorted before the
    # every-⌊log N⌋-th-element sample is taken.)
    with _phase(tracer, machine, "partition", n=n, s=s, g=g, level=depth):
        pivots, sorted_groups = hierarchy_partition_elements(
            machine, storage, run, n, s, g,
            recursive_sort=lambda group, m: _sort(
                machine, storage, group, m, matcher, rng, check_invariants, agg,
                depth + 1, obs=obs, tracer=tracer,
            ),
        )

    # --- Balance: distribute the G sorted runs into S buckets ------------
    engine = BalanceEngine(
        storage, pivots, matcher=matcher, rng=rng, check_invariants=check_invariants
    )
    if obs is not None:
        engine.attach_obs(obs)
        # Auditors and other engine-level monitors ride the same per-round
        # hook (see Observation.engine_observers / obs.audit.TheoryAuditor).
        for callback in obs.engine_observers:
            engine.add_round_observer(callback)
    hp = storage.n_virtual
    with _phase(tracer, machine, "distribute", n=n, level=depth) as dspan:
        for group in sorted_groups:
            for chunk, buckets in read_run_batches(
                storage, group, free=True, record_map=engine.bucket_ids
            ):
                engine.feed(chunk, buckets=buckets)
                # Partitioning a track among the S−1 sorted partition elements.
                machine.charge_interconnect(
                    chunk.shape[0] / h * math.log2(max(2, s)) + math.log2(max(2, s))
                )
                engine.run_rounds(drain_below=2 * hp)
        bucket_runs = engine.flush()
        machine.charge_interconnect(engine.stats.match_calls * machine.sort_time())
        machine.charge_interconnect(engine.stats.rounds)  # X/A incremental upkeep
        dspan.annotate(
            rounds=engine.stats.rounds,
            swapped=engine.stats.blocks_swapped,
            unprocessed=engine.stats.blocks_unprocessed,
            match_calls=engine.stats.match_calls,
        )

    agg.rounds += engine.stats.rounds
    agg.swapped += engine.stats.blocks_swapped
    agg.unprocessed += engine.stats.blocks_unprocessed
    agg.match_calls += engine.stats.match_calls
    agg.match_fallbacks += engine.stats.match_fallbacks
    agg.balance_factor = max(agg.balance_factor, engine.matrices.max_balance_factor())
    agg.bucket_ratio = max(
        agg.bucket_ratio, validate_bucket_sizes(engine.bucket_record_counts, n, s)
    )

    # --- recurse per bucket, concatenate (Algorithm 1, steps 7–9) --------
    # Each bucket is first *repositioned* into the (now free) front of the
    # address space — operationally realizing the Section 4.4 repositioning
    # step (the [ACSa] generalized transposition on P-BT) and the standard
    # HMM working-set discipline: the recursion's access costs must scale
    # with the subproblem, not with the parent's footprint.
    outputs = []
    with _phase(tracer, machine, "recurse", n=n, level=depth):
        for brun in bucket_runs:
            if brun.n_records == 0:
                continue
            if brun.n_records >= n:
                raise ParameterError(
                    f"bucket {brun.bucket} did not shrink ({brun.n_records}/{n})"
                )
            compacted = reposition_run(storage, brun)
            outputs.append(
                _sort(machine, storage, compacted, compacted.n_records, matcher, rng,
                      check_invariants, agg, depth + 1, obs=obs, tracer=tracer)
            )
    return concat_runs(outputs)


def _base_case(machine, storage, run, n, agg) -> OrderedRun:
    """N ≤ 3H: batch-sort at the base level and binary-merge ≤3 lists."""
    agg.base_calls += 1
    recs = read_run_all(storage, run, free=True)
    batches = -(-n // machine.h)  # ⌈N/H⌉ interconnect sorts of H records
    machine.charge_base_sort(rounds=batches)
    if batches > 1:
        # Binary merge of the ≤3 sorted lists: ≤2 merge sweeps, each a scan
        # at the base plus a log-H combine.
        machine.charge_interconnect(2 * (n / machine.h + math.log2(max(2, machine.h))))
    out = sort_records(recs)
    return write_ordered_run(storage, out, park=True)
