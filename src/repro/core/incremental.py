"""Incremental histogram/auxiliary maintenance (Section 5's technique).

The CPU-optimality argument of Section 5 bounds the matrix upkeep using
"incremental updating": recomputing ``A = max(0, X − median)`` from scratch
costs ``O(S·H')`` per track, but each track changes only ``O(H')`` entries
of ``X`` by ±1, and a row's paper-median moves by at most one rank per
update — so the auxiliary row can be maintained in ``O(1)`` amortized work
per histogram update.

:class:`IncrementalAux` implements exactly that: per row it keeps a count
array over the (small) value range of the row's entries plus the current
median value and its rank position, updating both on each ±1 change.  The
engine's batch :func:`~repro.core.matrices.compute_aux` stays the source of
truth; the property tests drive both through random update streams and
assert bit-identical auxiliary matrices — demonstrating that the charged
``O(H')``-per-round upkeep cost in ``sort_pdm`` is achievable, not just
asserted.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["IncrementalAux"]


class _RowMedian:
    """Paper-median (⌈n/2⌉-th smallest) of a row under ±1 entry updates.

    Maintains ``counts[v]`` = number of entries equal to ``v`` and the
    current median value; an update changes one entry by ±1, which shifts
    the median by at most one value step — found by scanning from the old
    median, O(1) amortized because values move by single steps.
    """

    def __init__(self, n_entries: int):
        self.n = n_entries
        self.rank = (n_entries + 1) // 2  # 1-indexed target rank
        self.counts = {0: n_entries}
        self.median = 0

    def _count_le(self, v: int) -> int:
        return sum(c for val, c in self.counts.items() if val <= v)

    def update(self, old: int, new: int) -> int:
        """Apply one entry change ``old -> new`` (|new-old| == 1); return median."""
        if abs(new - old) != 1:
            raise ParameterError("incremental updates move entries by exactly 1")
        self.counts[old] -= 1
        if not self.counts[old]:
            del self.counts[old]
        self.counts[new] = self.counts.get(new, 0) + 1
        # The median can move at most one step; verify/correct locally.
        m = self.median
        le_m = self._count_le(m)
        lt_m = le_m - self.counts.get(m, 0)
        if le_m < self.rank:
            # too few at or below m: median moved up to the next occupied value
            m = min(v for v in self.counts if v > m)
        elif lt_m >= self.rank:
            # rank falls strictly below m: median moved down
            m = max(v for v in self.counts if v < m)
        self.median = m
        return m


class IncrementalAux:
    """Maintain ``X`` and ``A`` under single-block updates, O(1) amortized each.

    Mirrors :class:`~repro.core.matrices.BalanceMatrices`'s derived state:
    after any sequence of ``add`` / ``remove`` calls, :attr:`X` and
    :attr:`A` equal what the batch ``compute_aux`` would produce.
    """

    def __init__(self, n_buckets: int, n_channels: int):
        if n_buckets < 1 or n_channels < 1:
            raise ParameterError("need at least one bucket and one channel")
        self.n_buckets = n_buckets
        self.n_channels = n_channels
        self.X = np.zeros((n_buckets, n_channels), dtype=np.int64)
        self.A = np.zeros_like(self.X)
        self._medians = [_RowMedian(n_channels) for _ in range(n_buckets)]
        #: total incremental work units performed (for the CPU-claim check)
        self.work = 0

    def add(self, bucket: int, channel: int) -> None:
        """Count one block placed: ``x_bh += 1``; refresh the affected row."""
        self._apply(bucket, channel, +1)

    def remove(self, bucket: int, channel: int) -> None:
        """Withdraw one block: ``x_bh -= 1``."""
        if self.X[bucket, channel] <= 0:
            raise ParameterError("histogram underflow")
        self._apply(bucket, channel, -1)

    def _apply(self, bucket: int, channel: int, delta: int) -> None:
        old = int(self.X[bucket, channel])
        new = old + delta
        self.X[bucket, channel] = new
        old_m = self._medians[bucket].median
        new_m = self._medians[bucket].update(old, new)
        # Row A entries depend on the median: when it moved, every entry of
        # the row shifts by the same ±1, which max(0, ·) clips — still O(H')
        # only when the median moves (amortized O(1): the median moves at
        # most once per unit of row change).
        if new_m != old_m:
            self.A[bucket] = np.maximum(0, self.X[bucket] - new_m)
            self.work += self.n_channels
        else:
            self.A[bucket, channel] = max(0, new - new_m)
            self.work += 1
