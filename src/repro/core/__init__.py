"""Balance Sort — the paper's contribution.

* :mod:`~repro.core.matrices` — histogram ``X``, auxiliary ``A`` (Algorithm
  4), location ``L``; Invariants 1 & 2; the Theorem 4 balance bound.
* :mod:`~repro.core.matching` — ``Fast-Partial-Match`` (Algorithm 7),
  randomized and derandomized (Theorem 5), plus the sequential greedy
  reference matcher.
* :mod:`~repro.core.balance` — ``Balance`` / ``Rebalance`` / ``Rearrange``
  (Algorithms 3, 5, 6) as one engine generic over the storage backend.
* :mod:`~repro.core.partition` — partition-element selection (Algorithm 2
  for hierarchies; the [ViSa] memoryload sampling of Section 5 for disks).
* :mod:`~repro.core.sort_pdm` — Balance Sort on the parallel disk model
  (Section 5, Theorem 1).
* :mod:`~repro.core.sort_hierarchy` — Algorithm 1 on parallel memory
  hierarchies (Section 4, Theorems 2–3).
* :mod:`~repro.core.aux_variants` — the [Arg] alternative auxiliary-matrix
  rule (Section 4.1 ablation).
* :mod:`~repro.core.kernels` — selectable scalar/vectorized compute
  kernels for the engine's hot loops (bit-identical backends).
"""

from .incremental import IncrementalAux
from .kernels import get_backend, set_default_backend, use_backend
from .matrices import BalanceMatrices
from .matching import (
    MatchingInstance,
    derandomized_partial_match,
    greedy_match,
    randomized_partial_match,
)
from .balance import BalanceEngine, BucketRun
from .partition import (
    hierarchy_partition_elements,
    pdm_partition_elements,
    validate_bucket_sizes,
)
from .sort_pdm import balance_sort_pdm
from .sort_hierarchy import balance_sort_hierarchy

__all__ = [
    "BalanceMatrices",
    "IncrementalAux",
    "MatchingInstance",
    "greedy_match",
    "randomized_partial_match",
    "derandomized_partial_match",
    "BalanceEngine",
    "BucketRun",
    "hierarchy_partition_elements",
    "pdm_partition_elements",
    "validate_bucket_sizes",
    "balance_sort_pdm",
    "balance_sort_hierarchy",
    "get_backend",
    "set_default_backend",
    "use_backend",
]
