"""Disk layout helpers: striped files and extents.

A :class:`StripedFile` is a logical record array laid out round-robin over
the D disks — logical block ``i`` on disk ``i mod D`` — the conventional
layout for inputs and sorted outputs.  Reading or writing one *stripe*
(D consecutive logical blocks at the same slot on every disk) is a single
parallel I/O, which is how every algorithm in this package streams
contiguous data at full bandwidth.

Partial final blocks are padded with sentinel records (key and rid both
``2**64 - 1``); the file knows its logical length and trims the padding on
read, keeping the machine's memory ledger balanced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import AddressError, ParameterError
from ..records import PAD_KEY, RECORD_DTYPE, concat_records, pad_records, strip_pad_records
from .machine import BlockAddress, ParallelDiskMachine

__all__ = ["PAD_KEY", "Extent", "StripedFile", "pad_to_block", "strip_padding"]

# Backwards-compatible aliases: padding lives in repro.records because both
# the disk and hierarchy backends use it.
pad_to_block = pad_records
strip_padding = strip_pad_records


@dataclass(frozen=True)
class Extent:
    """A contiguous range of slots present on every disk: [start, start+slots)."""

    start: int
    slots: int

    @property
    def end(self) -> int:
        return self.start + self.slots


class StripedFile:
    """A logical record array striped block-by-block across all D disks.

    Logical block ``i`` lives at ``BlockAddress(disk=i % D, slot=start + i // D)``.
    """

    def __init__(self, machine: ParallelDiskMachine, length: int, start_slot: int):
        if length < 0:
            raise ParameterError("file length must be non-negative")
        self.machine = machine
        self.length = int(length)
        self.start_slot = int(start_slot)

    # ------------------------------------------------------------- shape

    @property
    def n_blocks(self) -> int:
        """Number of logical blocks (ceil(length / B))."""
        return math.ceil(self.length / self.machine.B) if self.length else 0

    @property
    def n_stripes(self) -> int:
        """Number of stripes = parallel I/Os to stream the whole file."""
        return math.ceil(self.n_blocks / self.machine.D) if self.n_blocks else 0

    @property
    def slots_used(self) -> int:
        return math.ceil(self.n_blocks / self.machine.D) if self.n_blocks else 0

    def block_address(self, logical_block: int) -> BlockAddress:
        """Physical address of logical block ``i``."""
        if not 0 <= logical_block < self.n_blocks:
            raise AddressError(
                f"logical block {logical_block} out of range [0, {self.n_blocks})"
            )
        d = self.machine.D
        return BlockAddress(disk=logical_block % d, slot=self.start_slot + logical_block // d)

    def _stripe_blocks(self, stripe: int) -> list[int]:
        lo = stripe * self.machine.D
        hi = min(lo + self.machine.D, self.n_blocks)
        if lo >= hi:
            raise AddressError(f"stripe {stripe} out of range [0, {self.n_stripes})")
        return list(range(lo, hi))

    def _block_record_count(self, logical_block: int) -> int:
        b = self.machine.B
        lo = logical_block * b
        return min(b, self.length - lo)

    # --------------------------------------------------------------- I/O

    def load_initial(self, records: np.ndarray) -> None:
        """Place the input on disk without charging I/Os.

        External sorting starts with the data already resident on the disks
        (Section 1); initial placement is part of the problem statement, not
        of the algorithm's cost.
        """
        if records.shape[0] != self.length:
            raise ParameterError(
                f"file was sized for {self.length} records, got {records.shape[0]}"
            )
        if not self.length:
            return
        b, d = self.machine.B, self.machine.D
        padded = pad_to_block(records, b)
        logical = np.arange(self.n_blocks, dtype=np.int64)
        self.machine.load_blocks_arr(
            logical % d,
            self.start_slot + logical // d,
            padded.reshape(self.n_blocks, b),
        )

    def _stripe_addr_arrays(self, stripe: int) -> tuple[np.ndarray, np.ndarray]:
        blocks = np.array(self._stripe_blocks(stripe), dtype=np.int64)
        d = self.machine.D
        return blocks % d, self.start_slot + blocks // d

    def read_stripe(self, stripe: int) -> np.ndarray:
        """One parallel I/O: read the (≤ D) blocks of one stripe, trimmed.

        The file knows its logical length, so the final stripe's padding
        is trimmed by count (a view of the freshly gathered batch — no
        pad scan, no extra copy) and returned to the memory ledger.
        """
        blocks = self._stripe_blocks(stripe)
        disks, slots = self._stripe_addr_arrays(stripe)
        flat = self.machine.read_blocks_arr(disks, slots).reshape(-1)
        n_real = sum(self._block_record_count(i) for i in blocks)
        self.machine.mem_release(flat.shape[0] - n_real)
        return flat[:n_real]

    def write_stripe(self, stripe: int, records: np.ndarray) -> None:
        """One parallel I/O: write one stripe's blocks (padded if final)."""
        blocks = self._stripe_blocks(stripe)
        b = self.machine.B
        expected = sum(self._block_record_count(i) for i in blocks)
        if records.shape[0] != expected:
            raise ParameterError(
                f"stripe {stripe} holds {expected} records, got {records.shape[0]}"
            )
        padded = pad_to_block(records, b)
        self.machine.mem_acquire(padded.shape[0] - records.shape[0])
        disks, slots = self._stripe_addr_arrays(stripe)
        self.machine.write_blocks_arr(disks, slots, padded.reshape(len(blocks), b))

    def read_all(self) -> np.ndarray:
        """Stream the whole file (n_stripes parallel I/Os)."""
        if self.length == 0:
            return np.empty(0, dtype=RECORD_DTYPE)
        parts = [self.read_stripe(t) for t in range(self.n_stripes)]
        return concat_records(parts)

    def write_all(self, records: np.ndarray) -> None:
        """Stream records into the file (n_stripes parallel I/Os)."""
        if records.shape[0] != self.length:
            raise ParameterError(
                f"file was sized for {self.length} records, got {records.shape[0]}"
            )
        b, d = self.machine.B, self.machine.D
        per_stripe = b * d
        for t in range(self.n_stripes):
            self.write_stripe(t, records[t * per_stripe : min((t + 1) * per_stripe, self.length)])

    def free(self) -> None:
        """Drop all the file's blocks from the disks (one batched call)."""
        if not self.n_blocks:
            return
        logical = np.arange(self.n_blocks, dtype=np.int64)
        d = self.machine.D
        self.machine.free_blocks_arr(logical % d, self.start_slot + logical // d)
