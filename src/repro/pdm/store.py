"""Block storage backends for the parallel disk machine.

The paper's cost model counts parallel I/Os and internal operations —
*how* the simulator keeps blocks on its pretend disks is free.  This
module therefore provides two interchangeable storage substrates behind
one small interface:

:class:`ArenaBlockStore` (the default)
    A slab allocator: all blocks of all disks live in **one contiguous
    ``(capacity, B)`` record array** that grows geometrically, with a
    per-disk ``(D, slot_capacity)`` row map (``-1`` = unwritten) and a
    free-row stack so :meth:`free` recycles arena rows.  A parallel I/O
    over ``k`` blocks is a single fancy-indexed gather/scatter on the
    slab instead of ``k`` Python dict lookups and ``k`` per-block
    copies.  The slab is shared across disks precisely because one
    parallel I/O touches at most one block per *distinct* disk — a
    per-disk slab would force ``k`` separate gathers and surrender the
    batching win.

:class:`DictBlockStore` (``REPRO_PDM_STORE=dict``)
    The original dict-of-dicts layout, kept as the bit-for-bit reference
    backend for the differential suite and for debugging.

Copy discipline (see ``docs/performance.md``):

* ``read_batch`` always returns a **freshly gathered** ``(k, B)``
  matrix — never views into the arena — so callers may hold read
  buffers across later writes and frees without aliasing hazards.
* ``write_batch`` always copies *into* the store (a scatter for the
  arena, per-row ``.copy()`` for the dict backend), so callers may
  pass views of their own buffers.
* ``peek`` returns a **read-only view** of the stored block under the
  arena backend (zero-copy; peeks are for tests/validators which only
  inspect).  Set ``REPRO_PDM_SAFE_COPIES=1`` to restore defensive
  copies everywhere while debugging.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from ..exceptions import AddressError, BlockCorruptionError, ParameterError
from ..records import RECORD_DTYPE

__all__ = [
    "ArenaBlockStore",
    "DictBlockStore",
    "STORE_BACKENDS",
    "make_store",
    "safe_copies_enabled",
]

_SLOT_GROWTH_MIN = 64
_ROW_GROWTH_MIN = 64


def safe_copies_enabled() -> bool:
    """True when ``REPRO_PDM_SAFE_COPIES`` asks for defensive copies."""
    return os.environ.get("REPRO_PDM_SAFE_COPIES", "0") not in ("", "0")


def _unwritten(kind: str, disk: int, slot: int) -> AddressError:
    # Mirrors the legacy message built from BlockAddress.__repr__.
    return AddressError(
        f"{kind} of unwritten block BlockAddress(disk={int(disk)}, slot={int(slot)})"
    )


def _block_sum(block: np.ndarray) -> int:
    """CRC-32 of one block's raw bytes (cheap; checksums are opt-in)."""
    return zlib.crc32(np.ascontiguousarray(block).view(np.uint8).tobytes())


def _corrupted(kind: str, disk: int, slot: int) -> BlockCorruptionError:
    return BlockCorruptionError(
        f"checksum mismatch on {kind} of "
        f"BlockAddress(disk={int(disk)}, slot={int(slot)})"
    )


class ArenaBlockStore:
    """Slab-allocated block store: one shared ``(capacity, B)`` arena.

    ``_rows[d, s]`` holds the arena row of block ``(disk=d, slot=s)`` or
    ``-1`` when unwritten.  Freed rows go on ``_free_rows`` and are
    recycled before the arena grows, so long runs with block churn keep
    a compact working set.
    """

    name = "arena"

    def __init__(
        self,
        n_disks: int,
        block: int,
        safe_copies: bool | None = None,
        checksums: bool = False,
    ):
        self.D = int(n_disks)
        self.B = int(block)
        self.safe_copies = (
            safe_copies_enabled() if safe_copies is None else bool(safe_copies)
        )
        #: Opt-in per-block CRC-32s, keyed ``(disk, slot)``.  ``None`` when
        #: disabled so the hot paths pay a single attribute test.
        self._sums: dict[tuple[int, int], int] | None = (
            {} if checksums else None
        )
        self._arena = np.empty((0, self.B), dtype=RECORD_DTYPE)
        self._rows = np.full((self.D, 0), -1, dtype=np.int64)
        self._free_rows: list[int] = []
        self._next_row = 0
        # Occupancy gauges (telemetry only — never read by sort logic, so
        # they can stay always-on without touching payload purity).
        self._resident = 0
        self.high_water_blocks = 0
        self.grow_events = 0

    @property
    def checksums(self) -> bool:
        """True when per-block integrity checksums are being kept."""
        return self._sums is not None

    def _verify(self, kind: str, disk: int, slot: int, block: np.ndarray) -> None:
        expected = self._sums.get((int(disk), int(slot)))  # type: ignore[union-attr]
        if expected is not None and _block_sum(block) != expected:
            raise _corrupted(kind, disk, slot)

    def corrupt_block(self, disk: int, slot: int, bit_seed: int) -> None:
        """Flip one bit of a stored block **without** updating its checksum.

        The fault injector's ``store.write``/``corrupt`` effect: the damage
        is invisible until a checksum-verified read or peek touches the
        block, at which point :class:`BlockCorruptionError` fires.
        """
        if not self.has(disk, slot):
            raise _unwritten("corrupt", disk, slot)
        row = int(self._rows[disk, slot])
        flat = self._arena[row : row + 1].view(np.uint8).reshape(-1)
        bit = int(bit_seed) % (flat.size * 8)
        flat[bit // 8] ^= np.uint8(1 << (bit % 8))

    # ------------------------------------------------------------- growth

    def _ensure_slots(self, max_slot: int) -> None:
        cap = self._rows.shape[1]
        if max_slot < cap:
            return
        new_cap = max(max_slot + 1, cap * 2, _SLOT_GROWTH_MIN)
        grown = np.full((self.D, new_cap), -1, dtype=np.int64)
        grown[:, :cap] = self._rows
        self._rows = grown

    def _ensure_rows(self, n_new: int) -> None:
        need = self._next_row + n_new
        cap = self._arena.shape[0]
        if need <= cap:
            return
        new_cap = max(need, cap * 2, _ROW_GROWTH_MIN)
        grown = np.empty((new_cap, self.B), dtype=RECORD_DTYPE)
        grown[:cap] = self._arena
        self._arena = grown
        self.grow_events += 1

    def _alloc_rows(self, k: int) -> np.ndarray:
        """Hand out ``k`` arena rows, recycling freed rows first."""
        free = self._free_rows
        take = min(k, len(free))
        if take:
            recycled = np.array(free[len(free) - take :], dtype=np.int64)
            del free[len(free) - take :]
            if take == k:
                return recycled
        fresh_n = k - take
        self._ensure_rows(fresh_n)
        fresh = np.arange(self._next_row, self._next_row + fresh_n, dtype=np.int64)
        self._next_row += fresh_n
        if take:
            return np.concatenate([recycled, fresh])
        return fresh

    # ---------------------------------------------------------------- I/O

    def read_batch(
        self, disks: np.ndarray, slots: np.ndarray, free: bool = False
    ) -> np.ndarray:
        """Gather ``k`` blocks into a fresh ``(k, B)`` matrix (one fancy index).

        ``free=True`` additionally releases the blocks — identical to a
        follow-up :meth:`free_batch` on the same addresses, but the row
        lookup is shared (the streaming consume pattern reads each block
        exactly once and drops it).

        With checksums enabled, every gathered block is verified *before*
        any release happens, so a fused read-and-free that detects
        corruption raises :class:`BlockCorruptionError` with **no partial
        effects** — the corrupt batch stays fully resident on both
        backends.
        """
        try:
            rows = self._rows[disks, slots]
        except IndexError:
            # A slot beyond everything ever written: unwritten by definition.
            cap = self._rows.shape[1]
            i = int(np.argmax(slots >= cap))
            raise _unwritten("read", disks[i], slots[i]) from None
        if rows.min() < 0:
            i = int(np.argmax(rows < 0))
            raise _unwritten("read", disks[i], slots[i])
        out = self._arena[rows]  # fancy index => fresh copy, never a view
        if self._sums is not None:
            for i, (d, s) in enumerate(zip(disks.tolist(), slots.tolist())):
                self._verify("read", d, s, out[i])
        if free:
            self._free_rows.extend(rows.tolist())
            self._rows[disks, slots] = -1
            self._resident -= rows.size
            if self._sums is not None:
                for d, s in zip(disks.tolist(), slots.tolist()):
                    self._sums.pop((d, s), None)
        return out

    def write_batch(self, disks: np.ndarray, slots: np.ndarray, data: np.ndarray) -> None:
        """Scatter a ``(k, B)`` matrix into the arena (one fancy index).

        Fused I/O-plan flushes arrive here with whole windows of rounds in
        one batch; when no freed rows are waiting to be recycled the
        allocation is a contiguous run, and the scatter collapses to a
        straight slice copy.
        """
        self._ensure_slots(max(slots.tolist()))
        rows = self._rows[disks, slots]
        if rows.max() < 0:
            # Dominant pattern: slots are bump-allocated per write, so whole
            # batches of fresh addresses arrive together — skip the mask.
            k = rows.size
            if not self._free_rows:
                self._ensure_rows(k)
                start = self._next_row
                self._next_row = start + k
                self._rows[disks, slots] = np.arange(
                    start, start + k, dtype=np.int64
                )
                self._arena[start : start + k] = data
                self._resident += k
                if self._resident > self.high_water_blocks:
                    self.high_water_blocks = self._resident
                if self._sums is not None:
                    for i, (d, s) in enumerate(zip(disks.tolist(), slots.tolist())):
                        self._sums[(d, s)] = _block_sum(data[i])
                return
            rows = self._alloc_rows(k)
            self._rows[disks, slots] = rows
            self._resident += k
        else:
            missing = rows < 0
            n_missing = int(np.count_nonzero(missing))
            if n_missing:
                rows[missing] = self._alloc_rows(n_missing)
                self._rows[disks, slots] = rows
                self._resident += n_missing
        if self._resident > self.high_water_blocks:
            self.high_water_blocks = self._resident
        self._arena[rows] = data
        if self._sums is not None:
            for i, (d, s) in enumerate(zip(disks.tolist(), slots.tolist())):
                self._sums[(d, s)] = _block_sum(data[i])

    # --------------------------------------------------------- lifecycle

    def has(self, disk: int, slot: int) -> bool:
        """True when a block is resident at ``(disk, slot)``."""
        return (
            0 <= disk < self.D
            and 0 <= slot < self._rows.shape[1]
            and self._rows[disk, slot] >= 0
        )

    def peek(self, disk: int, slot: int) -> np.ndarray:
        """Read-only zero-copy view of a stored block (copy when safe mode)."""
        if not self.has(disk, slot):
            raise _unwritten("peek", disk, slot)
        block = self._arena[int(self._rows[disk, slot])]
        if self._sums is not None:
            self._verify("peek", disk, slot, block)
        if self.safe_copies:
            return block.copy()
        view = block.view()
        view.flags.writeable = False  # copy-on-write discipline: writers go
        return view  # through the machine, never through a peek

    def free(self, disk: int, slot: int) -> None:
        """Release one block's arena row back to the free stack (no-op if absent)."""
        if 0 <= slot < self._rows.shape[1]:
            row = int(self._rows[disk, slot])
            if row >= 0:
                self._rows[disk, slot] = -1
                self._free_rows.append(row)
                self._resident -= 1
                if self._sums is not None:
                    self._sums.pop((int(disk), int(slot)), None)

    def free_batch(self, disks: np.ndarray, slots: np.ndarray) -> None:
        """Release many blocks at once (vectorized; absent addresses are no-ops)."""
        if self._sums is not None:
            for d, s in zip(disks.tolist(), slots.tolist()):
                self._sums.pop((d, s), None)
        cap = self._rows.shape[1]
        k = disks.size
        if k <= 8:
            # Small batches (k ≤ H' in practice): a scalar loop with the
            # same no-op-on-absent / duplicate-safe semantics beats the
            # masking machinery below.  Processing in order makes double
            # frees naturally idempotent (first hit clears the row map).
            rows_map = self._rows
            free = self._free_rows
            for d, s in zip(disks.tolist(), slots.tolist()):
                if 0 <= s < cap:
                    r = int(rows_map[d, s])
                    if r >= 0:
                        free.append(r)
                        rows_map[d, s] = -1
                        self._resident -= 1
            return
        inside = slots < cap
        if not inside.all():
            disks, slots = disks[inside], slots[inside]
        k = disks.size
        if k == 0:
            return
        # Deduplicate (double-freeing one slot in a batch must stay a no-op,
        # exactly like the legacy ``dict.pop(slot, None)`` semantics).  The
        # cheap set-cardinality probe skips the dedup machinery on the
        # overwhelmingly common all-distinct batch.
        pairs = list(zip(disks.tolist(), slots.tolist()))
        if len(set(pairs)) != k:
            seen: set[tuple[int, int]] = set()
            keep = []
            for i, p in enumerate(pairs):
                if p not in seen:
                    seen.add(p)
                    keep.append(i)
            disks, slots = disks[keep], slots[keep]
        rows = self._rows[disks, slots]
        live = rows >= 0
        if live.all():
            self._free_rows.extend(rows.tolist())
            self._rows[disks, slots] = -1
            self._resident -= rows.size
        elif live.any():
            self._free_rows.extend(rows[live].tolist())
            self._rows[disks[live], slots[live]] = -1
            self._resident -= int(np.count_nonzero(live))

    # -------------------------------------------------------------- misc

    def max_slot(self, disk: int) -> int:
        """Largest written slot index on ``disk`` (or -1 when empty)."""
        written = np.flatnonzero(self._rows[disk] >= 0)
        return int(written[-1]) if written.size else -1

    def n_blocks(self) -> int:
        """Blocks currently resident (across all disks)."""
        return int(np.count_nonzero(self._rows >= 0))

    def mem_snapshot(self) -> dict:
        """Occupancy / high-water gauges (telemetry only, never payloads).

        ``resident_blocks`` is an O(1) counter kept in lockstep with the
        row map (the differential suite pins it against :meth:`n_blocks`);
        ``high_water_blocks`` is its lifetime maximum; ``grow_events``
        counts actual slab reallocations (geometric growth means O(log)
        of the peak footprint).
        """
        return {
            "backend": self.name,
            "slab_rows": int(self._arena.shape[0]),
            "slab_bytes": int(self._arena.nbytes),
            "resident_blocks": int(self._resident),
            "high_water_blocks": int(self.high_water_blocks),
            "free_rows": len(self._free_rows),
            "grow_events": int(self.grow_events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArenaBlockStore(D={self.D}, B={self.B}, blocks={self.n_blocks()}, "
            f"arena_rows={self._arena.shape[0]}, free_rows={len(self._free_rows)})"
        )


class DictBlockStore:
    """The legacy dict-of-dicts layout — the reference backend.

    Selected with ``REPRO_PDM_STORE=dict`` (or ``store="dict"`` on the
    machine).  Every behaviour is bit-identical to the arena backend —
    the differential suite pins this — it is simply slower.
    """

    name = "dict"

    def __init__(
        self,
        n_disks: int,
        block: int,
        safe_copies: bool | None = None,
        checksums: bool = False,
    ):
        self.D = int(n_disks)
        self.B = int(block)
        self.safe_copies = (
            safe_copies_enabled() if safe_copies is None else bool(safe_copies)
        )
        #: Opt-in per-block CRC-32s, keyed ``(disk, slot)`` (mirrors arena).
        self._sums: dict[tuple[int, int], int] | None = (
            {} if checksums else None
        )
        self._disks: list[dict[int, np.ndarray]] = [dict() for _ in range(self.D)]
        # Occupancy gauges mirroring the arena backend (grow_events stays
        # 0 here: dicts have no slab to reallocate).
        self._resident = 0
        self.high_water_blocks = 0
        self.grow_events = 0

    @property
    def checksums(self) -> bool:
        """True when per-block integrity checksums are being kept."""
        return self._sums is not None

    def _verify(self, kind: str, disk: int, slot: int, block: np.ndarray) -> None:
        expected = self._sums.get((int(disk), int(slot)))  # type: ignore[union-attr]
        if expected is not None and _block_sum(block) != expected:
            raise _corrupted(kind, disk, slot)

    def corrupt_block(self, disk: int, slot: int, bit_seed: int) -> None:
        """Flip one bit of a stored block **without** updating its checksum."""
        store = self._disks[disk]
        if slot not in store:
            raise _unwritten("corrupt", disk, slot)
        flat = store[slot].view(np.uint8).reshape(-1)
        bit = int(bit_seed) % (flat.size * 8)
        flat[bit // 8] ^= np.uint8(1 << (bit % 8))

    # ---------------------------------------------------------------- I/O

    def read_batch(
        self, disks: np.ndarray, slots: np.ndarray, free: bool = False
    ) -> np.ndarray:
        """Assemble ``k`` blocks into a fresh ``(k, B)`` matrix (per-block loop).

        ``free=True`` pops each block after copying it out (the fused
        read-and-drop the arena backend mirrors).  With checksums on, the
        whole batch is gathered and verified **before** anything is
        dropped, so corruption detection has no partial effects — exactly
        like the arena backend.
        """
        out = np.empty((disks.size, self.B), dtype=RECORD_DTYPE)
        if self._sums is None:
            for i, (d, s) in enumerate(zip(disks.tolist(), slots.tolist())):
                store = self._disks[d]
                if s not in store:
                    raise _unwritten("read", d, s)
                out[i] = store[s]
                if free:
                    del store[s]
                    self._resident -= 1
            return out
        pairs = list(zip(disks.tolist(), slots.tolist()))
        for i, (d, s) in enumerate(pairs):
            store = self._disks[d]
            if s not in store:
                raise _unwritten("read", d, s)
            out[i] = store[s]
        for i, (d, s) in enumerate(pairs):
            self._verify("read", d, s, out[i])
        if free:
            for d, s in pairs:
                if self._disks[d].pop(s, None) is not None:
                    self._resident -= 1
                self._sums.pop((d, s), None)
        return out

    def write_batch(self, disks: np.ndarray, slots: np.ndarray, data: np.ndarray) -> None:
        """Store each row of a ``(k, B)`` matrix as its own defensive copy."""
        for i, (d, s) in enumerate(zip(disks.tolist(), slots.tolist())):
            store = self._disks[d]
            if s not in store:
                self._resident += 1
            store[s] = np.array(data[i], dtype=RECORD_DTYPE)
            if self._sums is not None:
                self._sums[(d, s)] = _block_sum(data[i])
        if self._resident > self.high_water_blocks:
            self.high_water_blocks = self._resident

    # --------------------------------------------------------- lifecycle

    def has(self, disk: int, slot: int) -> bool:
        """True when a block is resident at ``(disk, slot)``."""
        return 0 <= disk < self.D and slot in self._disks[disk]

    def peek(self, disk: int, slot: int) -> np.ndarray:
        """Defensive copy of a stored block (this backend always copies)."""
        store = self._disks[disk]
        if slot not in store:
            raise _unwritten("peek", disk, slot)
        if self._sums is not None:
            self._verify("peek", disk, slot, store[slot])
        return store[slot].copy()

    def free(self, disk: int, slot: int) -> None:
        """Drop one block (no-op when absent, like ``dict.pop(slot, None)``)."""
        if self._disks[disk].pop(slot, None) is not None:
            self._resident -= 1
        if self._sums is not None:
            self._sums.pop((int(disk), int(slot)), None)

    def free_batch(self, disks: np.ndarray, slots: np.ndarray) -> None:
        """Drop many blocks (no-ops for absent addresses)."""
        for d, s in zip(disks.tolist(), slots.tolist()):
            if self._disks[d].pop(s, None) is not None:
                self._resident -= 1
            if self._sums is not None:
                self._sums.pop((d, s), None)

    # -------------------------------------------------------------- misc

    def max_slot(self, disk: int) -> int:
        """Largest written slot index on ``disk`` (or -1 when empty)."""
        return max(self._disks[disk].keys(), default=-1)

    def n_blocks(self) -> int:
        """Blocks currently resident (across all disks)."""
        return sum(len(store) for store in self._disks)

    def mem_snapshot(self) -> dict:
        """Occupancy / high-water gauges (same shape as the arena backend).

        There is no slab here, so ``slab_rows``/``slab_bytes`` report the
        resident footprint itself (dicts allocate exactly what they hold).
        """
        itemsize = RECORD_DTYPE.itemsize
        return {
            "backend": self.name,
            "slab_rows": int(self._resident),
            "slab_bytes": int(self._resident) * self.B * itemsize,
            "resident_blocks": int(self._resident),
            "high_water_blocks": int(self.high_water_blocks),
            "free_rows": 0,
            "grow_events": 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DictBlockStore(D={self.D}, B={self.B}, blocks={self.n_blocks()})"


STORE_BACKENDS = {
    "arena": ArenaBlockStore,
    "dict": DictBlockStore,
}


def make_store(
    name: str | None,
    n_disks: int,
    block: int,
    safe_copies: bool | None = None,
    checksums: bool = False,
):
    """Build the storage backend ``name`` (or ``$REPRO_PDM_STORE``, or arena)."""
    if name is None:
        name = os.environ.get("REPRO_PDM_STORE", "arena")
    try:
        cls = STORE_BACKENDS[name]
    except KeyError:
        raise ParameterError(
            f"unknown block store backend {name!r} "
            f"(expected one of {sorted(STORE_BACKENDS)})"
        ) from None
    return cls(n_disks, block, safe_copies=safe_copies, checksums=checksums)
