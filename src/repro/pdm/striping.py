"""Disk striping and partial striping.

*Full striping* (Section 1) synchronizes all D disks so they behave as one
disk with block size ``B' = DB`` — the deterministic-but-suboptimal
technique the striped-merge-sort baseline uses.

*Partial striping* (Section 4.1 / Section 5) groups the ``D`` physical
disks into ``D'`` *virtual disks* of ``D/D'`` disks each, giving virtual
blocks of ``B·D/D'`` records.  Balance Sort needs the number of independent
units small enough for its matching machinery (the paper uses
``H' = H^{1/3}``) while keeping full hardware parallelism within each unit.

:class:`VirtualDisks` exposes exactly the two operations Balance Sort
needs, each costing one parallel I/O on the underlying machine (contention
rules still enforced there):

* write at most one virtual block to each of a set of distinct virtual
  disks;
* read at most one virtual block from each of a set of distinct virtual
  disks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import DiskContentionError, ParameterError
from .machine import BlockAddress, ParallelDiskMachine

__all__ = ["VirtualBlockAddress", "VirtualDisks", "fully_striped_view", "default_virtual_disk_count"]


def default_virtual_disk_count(d: int) -> int:
    """The paper's partial-striping choice: ``D' = ⌊D^{1/3}⌋``-style.

    We take the largest divisor of ``D`` not exceeding ``ceil(D^{1/3})``
    when ``D`` has one; the cube-root scale is what makes the derandomized
    matching affordable (``H = (H')³`` processors run the ``(H')²`` copies).
    """
    if d < 1:
        raise ParameterError("D must be positive")
    target = max(1, round(d ** (1.0 / 3.0)))
    for candidate in range(min(target, d), 0, -1):
        if d % candidate == 0:
            return candidate
    return 1


@dataclass(frozen=True)
class VirtualBlockAddress:
    """Address of one virtual block: virtual disk and physical slot."""

    vdisk: int
    slot: int


class VirtualDisks:
    """Partial-striping view: D physical disks as D' virtual disks."""

    def __init__(self, machine: ParallelDiskMachine, n_virtual: int):
        if n_virtual < 1 or machine.D % n_virtual != 0:
            raise ParameterError(
                f"D={machine.D} must be divisible by D'={n_virtual}"
            )
        self.machine = machine
        self.n_virtual = int(n_virtual)
        self.group = machine.D // self.n_virtual

    @property
    def virtual_block_size(self) -> int:
        """Records per virtual block: B · (D / D')."""
        return self.machine.B * self.group

    def _physical(self, addr: VirtualBlockAddress) -> list[BlockAddress]:
        base = addr.vdisk * self.group
        return [BlockAddress(disk=base + j, slot=addr.slot) for j in range(self.group)]

    def parallel_write(
        self, items: Sequence[tuple[int, np.ndarray]], park: bool = False
    ) -> list[VirtualBlockAddress]:
        """Write ≤1 virtual block per virtual disk — one parallel I/O.

        ``items`` is a sequence of ``(vdisk, data)`` with ``data`` exactly
        one virtual block of records.  Returns the address of each written
        block (slots are bump-allocated per write so blocks never collide).
        ``park`` is accepted for interface parity with the hierarchy
        backend and ignored: disk I/O cost is address-independent.
        """
        if not items:
            return []
        vdisks = [v for v, _ in items]
        if len(set(vdisks)) != len(vdisks):
            raise DiskContentionError("two virtual blocks addressed to one virtual disk")
        vb = self.virtual_block_size
        b = self.machine.B
        slot = self.machine.allocate_slots(1)
        addresses = []
        writes = []
        for v, data in items:
            if not 0 <= v < self.n_virtual:
                raise ParameterError(f"virtual disk {v} out of range [0, {self.n_virtual})")
            if data.shape[0] != vb:
                raise ParameterError(
                    f"virtual block must hold {vb} records, got {data.shape[0]}"
                )
            addr = VirtualBlockAddress(vdisk=v, slot=slot)
            addresses.append(addr)
            for j, phys in enumerate(self._physical(addr)):
                writes.append((phys, data[j * b : (j + 1) * b]))
        self.machine.write_blocks(writes)
        return addresses

    def parallel_read(self, addresses: Sequence[VirtualBlockAddress]) -> list[np.ndarray]:
        """Read ≤1 virtual block per virtual disk — one parallel I/O."""
        if not addresses:
            return []
        vdisks = [a.vdisk for a in addresses]
        if len(set(vdisks)) != len(vdisks):
            raise DiskContentionError("two virtual blocks read from one virtual disk")
        phys: list[BlockAddress] = []
        for addr in addresses:
            phys.extend(self._physical(addr))
        blocks = self.machine.read_blocks(phys)
        vb_blocks = []
        for i in range(len(addresses)):
            vb_blocks.append(np.concatenate(blocks[i * self.group : (i + 1) * self.group]))
        return vb_blocks

    def peek(self, address: VirtualBlockAddress) -> np.ndarray:
        """Inspect a virtual block without an I/O (tests/validators only)."""
        return np.concatenate(
            [self.machine.peek_block(phys) for phys in self._physical(address)]
        )

    def free(self, addresses: Sequence[VirtualBlockAddress]) -> None:
        """Drop virtual blocks from the disks (no I/O cost)."""
        for addr in addresses:
            for phys in self._physical(addr):
                self.machine.free_block(phys)

    def load_initial(self, blocks: Sequence[tuple[int, np.ndarray]]) -> list[VirtualBlockAddress]:
        """Place input blocks on the disks without charging I/Os.

        External sorting starts with the data resident on disk (Section 1);
        the initial layout is part of the problem statement, not the
        algorithm's cost.
        """
        vb = self.virtual_block_size
        b = self.machine.B
        addresses = []
        for v, data in blocks:
            if data.shape[0] != vb:
                raise ParameterError(
                    f"virtual block must hold {vb} records, got {data.shape[0]}"
                )
            addr = VirtualBlockAddress(vdisk=v, slot=self.machine.allocate_slots(1))
            for j, phys in enumerate(self._physical(addr)):
                self.machine._disks[phys.disk][phys.slot] = data[j * b : (j + 1) * b].copy()
            addresses.append(addr)
        return addresses

    # Memory-ledger hooks used by the backend-agnostic Balance engine when
    # it materializes padding records (hierarchies have no ledger).
    def acquire_memory(self, n_records: int) -> None:
        """Claim internal memory on the underlying machine's ledger."""
        self.machine.mem_acquire(n_records)

    def release_memory(self, n_records: int) -> None:
        """Return internal memory to the underlying machine's ledger."""
        self.machine.mem_release(n_records)


def fully_striped_view(machine: ParallelDiskMachine) -> VirtualDisks:
    """All D disks as a single logical disk with block size B' = DB."""
    return VirtualDisks(machine, n_virtual=1)
