"""Disk striping and partial striping.

*Full striping* (Section 1) synchronizes all D disks so they behave as one
disk with block size ``B' = DB`` — the deterministic-but-suboptimal
technique the striped-merge-sort baseline uses.

*Partial striping* (Section 4.1 / Section 5) groups the ``D`` physical
disks into ``D'`` *virtual disks* of ``D/D'`` disks each, giving virtual
blocks of ``B·D/D'`` records.  Balance Sort needs the number of independent
units small enough for its matching machinery (the paper uses
``H' = H^{1/3}``) while keeping full hardware parallelism within each unit.

:class:`VirtualDisks` exposes exactly the two operations Balance Sort
needs, each costing one parallel I/O on the underlying machine (contention
rules still enforced there):

* write at most one virtual block to each of a set of distinct virtual
  disks;
* read at most one virtual block from each of a set of distinct virtual
  disks.

Both come in two flavours: the classic list-of-arrays API, and the
batched ``*_arr`` fast path that expands virtual addresses to physical
``(disk, slot)`` index arrays with two vectorized expressions and moves
one ``(k, virtual_block_size)`` record matrix per parallel I/O (see
``docs/performance.md``).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from ..exceptions import DiskContentionError, ParameterError
from ..records import RECORD_DTYPE
from .machine import ParallelDiskMachine

__all__ = ["VirtualBlockAddress", "VirtualDisks", "fully_striped_view", "default_virtual_disk_count"]


def default_virtual_disk_count(d: int) -> int:
    """The paper's partial-striping choice: ``D' = ⌊D^{1/3}⌋``-style.

    We take the largest divisor of ``D`` not exceeding ``ceil(D^{1/3})``
    when ``D`` has one; the cube-root scale is what makes the derandomized
    matching affordable (``H = (H')³`` processors run the ``(H')²`` copies).
    """
    if d < 1:
        raise ParameterError("D must be positive")
    target = max(1, round(d ** (1.0 / 3.0)))
    for candidate in range(min(target, d), 0, -1):
        if d % candidate == 0:
            return candidate
    return 1


class VirtualBlockAddress(NamedTuple):
    """Address of one virtual block: virtual disk and physical slot.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per
    written virtual block (tens of thousands per grid cell), and tuple
    construction skips the frozen ``object.__setattr__`` per field while
    keeping immutability, equality, and hashing.
    """

    vdisk: int
    slot: int


class VirtualDisks:
    """Partial-striping view: D physical disks as D' virtual disks."""

    def __init__(self, machine: ParallelDiskMachine, n_virtual: int):
        if n_virtual < 1 or machine.D % n_virtual != 0:
            raise ParameterError(
                f"D={machine.D} must be divisible by D'={n_virtual}"
            )
        self.machine = machine
        self.n_virtual = int(n_virtual)
        self.group = machine.D // self.n_virtual
        # Cached per-group disk offsets for the vectorized expansion.
        self._offsets = np.arange(self.group, dtype=np.int64)
        # Physical-disk expansions keyed by the virtual-disk tuple.  The key
        # space is tiny (H'! orderings at most, H' = D^(1/3)-ish), while the
        # expansion itself runs once per parallel I/O — caching it removes
        # two array constructions from every I/O.  Consumers only *read*
        # the cached arrays (fancy-index sources), never mutate them.
        self._pdisk_cache: dict[tuple, np.ndarray] = {}
        # Plain-list twin for the round-structured write path: physical
        # disks owned by each virtual disk, ready to splice per round.
        self._pdisk_rows = [
            list(range(c * self.group, (c + 1) * self.group))
            for c in range(self.n_virtual)
        ]

    @property
    def virtual_block_size(self) -> int:
        """Records per virtual block: B · (D / D')."""
        return self.machine.B * self.group

    # --------------------------------------------------- address expansion

    def _expand(self, vdisks: np.ndarray, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Virtual ``(vdisk, slot)`` arrays → physical ``(disk, slot)`` arrays.

        Virtual disk ``v`` owns physical disks ``[v·g, (v+1)·g)``; every
        physical block of a virtual block shares the virtual slot.
        """
        g = self.group
        if g == 1:
            return vdisks, slots
        return self._expand_disks(vdisks), np.repeat(slots, g)

    def _expand_disks(self, vdisks: np.ndarray) -> np.ndarray:
        """Memoized virtual→physical disk expansion (``group > 1`` only)."""
        key = tuple(vdisks.tolist())
        pdisks = self._pdisk_cache.get(key)
        if pdisks is None:
            pdisks = (vdisks[:, None] * self.group + self._offsets).ravel()
            self._pdisk_cache[key] = pdisks
        return pdisks

    def _check_vdisks(self, vdisks: np.ndarray, verb: str) -> None:
        # Tiny batches (k ≤ H'): a Python set/min/max beats numpy reductions.
        listed = vdisks.tolist()
        k = len(listed)
        if k > 1 and len(set(listed)) != k:
            raise DiskContentionError(
                f"two virtual blocks {verb} one virtual disk"
            )
        if k and (min(listed) < 0 or max(listed) >= self.n_virtual):
            bad = next(v for v in listed if not 0 <= v < self.n_virtual)
            raise ParameterError(
                f"virtual disk {bad} out of range [0, {self.n_virtual})"
            )

    @staticmethod
    def _addr_arrays(addresses: Sequence[VirtualBlockAddress]) -> tuple[np.ndarray, np.ndarray]:
        k = len(addresses)
        vdisks = np.fromiter((a.vdisk for a in addresses), np.int64, k)
        slots = np.fromiter((a.slot for a in addresses), np.int64, k)
        return vdisks, slots

    # ------------------------------------------------------ batched fast path

    def parallel_write_arr(
        self, vdisks: np.ndarray, data: np.ndarray, park: bool = False
    ) -> list[VirtualBlockAddress]:
        """Write ≤1 virtual block per virtual disk — one parallel I/O.

        ``data`` is one ``(k, virtual_block_size)`` record matrix; row
        ``i`` lands on virtual disk ``vdisks[i]``.  Rows may be views of
        caller buffers (the store scatters a copy).  Returns the address
        of each written block (slots are bump-allocated per write so
        blocks never collide).  ``park`` is accepted for interface
        parity with the hierarchy backend and ignored: disk I/O cost is
        address-independent.
        """
        vdisks = np.asarray(vdisks, dtype=np.int64)
        k = vdisks.size
        if k == 0:
            return []
        self._check_vdisks(vdisks, "addressed to")
        vb = self.virtual_block_size
        if data.shape != (k, vb):
            raise ParameterError(
                f"virtual block must hold {vb} records, got {data.shape[1] if data.ndim == 2 else data.shape[0]}"
            )
        slot = self.machine.allocate_slots(1)
        g = self.group
        # All k blocks share the freshly allocated slot, so the physical
        # slot array is a single np.full — no per-write expansion needed.
        pdisks = vdisks if g == 1 else self._expand_disks(vdisks)
        pslots = np.full(k * g, slot, dtype=np.int64)
        # checked=False: _check_vdisks guaranteed distinct in-range virtual
        # disks (hence distinct in-range physical disks) and the slot came
        # from the machine's own bump allocator.
        self.machine.write_blocks_arr(
            pdisks, pslots, data.reshape(-1, self.machine.B), checked=False
        )
        return [VirtualBlockAddress(vdisk=int(v), slot=slot) for v in vdisks.tolist()]

    def write_round(
        self, channels: Sequence[int], blocks: Sequence[np.ndarray],
        park: bool = False, checked: bool = True,
    ) -> list[VirtualBlockAddress]:
        """Write one block per listed virtual disk — one parallel I/O.

        The list-native twin of :meth:`parallel_write_arr` for
        round-structured writers (the Balance engine's per-round
        batches): ``channels`` is a plain int list, ``blocks[i]`` the
        full virtual block bound for ``channels[i]``.  Charges, ledger
        and obs effects are identical; the per-call numpy address
        assembly is replaced by Python smalls (stripe widths are ≤ H').
        Blocks are handed over — the caller must not mutate them after
        this call.  ``park`` is accepted for interface parity and
        ignored (disk cost is address-independent).  ``checked=False``
        skips the contention/range/shape validation for callers that
        enforce all three structurally (the Balance engine assigns at
        most one full block per channel per batch) — same convention as
        :meth:`parallel_write_arr`.
        """
        k = len(channels)
        if k == 0:
            return []
        if checked:
            if k > 1 and len(set(channels)) != k:
                raise DiskContentionError(
                    "two virtual blocks addressed to one virtual disk"
                )
            n_virtual = self.n_virtual
            if min(channels) < 0 or max(channels) >= n_virtual:
                bad = next(v for v in channels if not 0 <= v < n_virtual)
                raise ParameterError(
                    f"virtual disk {bad} out of range [0, {n_virtual})"
                )
            vb = self.virtual_block_size
            for block in blocks:
                if block.shape[0] != vb:
                    raise ParameterError(
                        f"virtual block must hold {vb} records, got {block.shape[0]}"
                    )
        slot = self.machine.allocate_slots(1)
        g = self.group
        if g == 1:
            pdisks = list(channels)
        else:
            rows = self._pdisk_rows
            pdisks = []
            for c in channels:
                pdisks += rows[c]
        self.machine.write_round_blocks(pdisks, slot, list(blocks))
        return [VirtualBlockAddress(vdisk=c, slot=slot) for c in channels]

    def parallel_read_arr(
        self, addresses: Sequence[VirtualBlockAddress], free: bool = False
    ) -> np.ndarray:
        """Read ≤1 virtual block per virtual disk — one parallel I/O.

        Returns a freshly gathered ``(k, virtual_block_size)`` record
        matrix (row ``i`` is the block at ``addresses[i]``); never views
        into the store, so the caller may hold it indefinitely.
        ``free=True`` drops the blocks right after the gather (one fused
        store pass — the streaming consume pattern; no extra I/O charge,
        exactly like a follow-up :meth:`free_arr`).
        """
        if not addresses:
            return np.empty((0, self.virtual_block_size), dtype=RECORD_DTYPE)
        vdisks, slots = self._addr_arrays(addresses)
        self._check_vdisks(vdisks, "read from")
        pdisks, pslots = self._expand(vdisks, slots)
        # checked=False: distinct in-range vdisks imply distinct in-range
        # physical disks; the machine still guards negative slots.
        matrix = self.machine.read_blocks_arr(pdisks, pslots, free=free, checked=False)
        return matrix.reshape(len(addresses), self.virtual_block_size)

    def free_arr(self, addresses: Sequence[VirtualBlockAddress]) -> None:
        """Drop virtual blocks from the disks (no I/O cost) — one batch."""
        if not addresses:
            return
        pdisks, pslots = self._expand(*self._addr_arrays(addresses))
        self.machine.free_blocks_arr(pdisks, pslots)

    # ------------------------------------------------------------ I/O plans

    @property
    def io_plan_window(self) -> int:
        """Rounds the machine's active I/O plan may fuse (0 = none).

        Planned readers (:func:`repro.core.streams.read_run_batches`)
        consult this to decide between windowed gather execution and the
        classic round-at-a-time path.
        """
        return self.machine.io_plan_window

    def io_plan(self, window: int | None = None):
        """Open a fused-execution scope on the underlying machine.

        See :meth:`repro.pdm.machine.ParallelDiskMachine.io_plan` — all
        logical charges stay per round; only physical store traffic is
        batched.
        """
        return self.machine.io_plan(window)

    def gather_rounds_arr(
        self, round_addresses: Sequence[Sequence[VirtualBlockAddress]],
        free: bool = False,
    ) -> np.ndarray:
        """Physically gather several future read rounds in one store pass.

        ``round_addresses`` lists each planned round's virtual-block
        addresses; every round is validated against the one-block-per-
        virtual-disk rule *individually* (contention is a per-logical-
        round rule).  Returns the fused ``(total_blocks,
        virtual_block_size)`` record matrix, rounds concatenated in plan
        order.  **No logical charges happen here** — the caller charges
        each round via :meth:`charge_read_round` at the point the
        unfused schedule would have issued it.
        """
        # Addresses accumulate as flat Python lists (per-round numpy
        # construction costs more than the fused store pass for the tiny
        # ≤ H' stripe widths); the per-round contention check stays —
        # it is a per-logical-round rule.
        n_virtual = self.n_virtual
        all_vdisks: list[int] = []
        all_slots: list[int] = []
        for addresses in round_addresses:
            vdisks = [a.vdisk for a in addresses]
            k = len(vdisks)
            if k > 1 and len(set(vdisks)) != k:
                raise DiskContentionError(
                    "two virtual blocks read from one virtual disk"
                )
            if k and (min(vdisks) < 0 or max(vdisks) >= n_virtual):
                bad = next(v for v in vdisks if not 0 <= v < n_virtual)
                raise ParameterError(
                    f"virtual disk {bad} out of range [0, {n_virtual})"
                )
            all_vdisks.extend(vdisks)
            all_slots.extend(a.slot for a in addresses)
        total = len(all_vdisks)
        if total == 0:
            return np.empty((0, self.virtual_block_size), dtype=RECORD_DTYPE)
        vdisks = np.array(all_vdisks, dtype=np.int64)
        slots = np.array(all_slots, dtype=np.int64)
        g = self.group
        if g == 1:
            pdisks, pslots = vdisks, slots
        else:
            # Direct expansion (the per-round memo cache is keyed by tiny
            # per-I/O tuples; fused multi-round keys would only bloat it).
            pdisks = (vdisks[:, None] * g + self._offsets).ravel()
            pslots = np.repeat(slots, g)
        matrix = self.machine.gather_blocks_arr(pdisks, pslots, free=free)
        return matrix.reshape(total, self.virtual_block_size)

    def charge_read_round(self, n_blocks: int) -> None:
        """Charge one logical parallel read of ``n_blocks`` virtual blocks."""
        self.machine.charge_read_io(n_blocks * self.group)

    # --------------------------------------------------------- classic API

    def parallel_write(
        self, items: Sequence[tuple[int, np.ndarray]], park: bool = False
    ) -> list[VirtualBlockAddress]:
        """Write ≤1 virtual block per virtual disk — one parallel I/O.

        ``items`` is a sequence of ``(vdisk, data)`` with ``data`` exactly
        one virtual block of records.  Thin shim over
        :meth:`parallel_write_arr`.
        """
        if not items:
            return []
        vb = self.virtual_block_size
        k = len(items)
        vdisks = np.fromiter((v for v, _ in items), np.int64, k)
        matrix = np.empty((k, vb), dtype=RECORD_DTYPE)
        for i, (_, data) in enumerate(items):
            if data.shape[0] != vb:
                raise ParameterError(
                    f"virtual block must hold {vb} records, got {data.shape[0]}"
                )
            matrix[i] = data
        return self.parallel_write_arr(vdisks, matrix, park=park)

    def parallel_read(self, addresses: Sequence[VirtualBlockAddress]) -> list[np.ndarray]:
        """Read ≤1 virtual block per virtual disk — one parallel I/O.

        Thin shim over :meth:`parallel_read_arr`; the returned blocks
        are rows of the fresh batch matrix (safe to hold and mutate).
        """
        matrix = self.parallel_read_arr(addresses)
        return list(matrix)

    def peek(self, address: VirtualBlockAddress) -> np.ndarray:
        """Inspect a virtual block without an I/O (tests/validators only)."""
        from .machine import BlockAddress

        g, b = self.group, self.machine.B
        out = np.empty(self.virtual_block_size, dtype=RECORD_DTYPE)
        base = address.vdisk * g
        for j in range(g):
            out[j * b : (j + 1) * b] = self.machine.peek_block(
                BlockAddress(disk=base + j, slot=address.slot)
            )
        return out

    def free(self, addresses: Sequence[VirtualBlockAddress]) -> None:
        """Drop virtual blocks from the disks (no I/O cost)."""
        self.free_arr(list(addresses))

    def load_initial(self, blocks: Sequence[tuple[int, np.ndarray]]) -> list[VirtualBlockAddress]:
        """Place input blocks on the disks without charging I/Os.

        External sorting starts with the data resident on disk (Section 1);
        the initial layout is part of the problem statement, not the
        algorithm's cost.
        """
        if not blocks:
            return []
        vb = self.virtual_block_size
        k = len(blocks)
        matrix = np.empty((k, vb), dtype=RECORD_DTYPE)
        vdisks = np.empty(k, dtype=np.int64)
        slots = np.empty(k, dtype=np.int64)
        addresses = []
        for i, (v, data) in enumerate(blocks):
            if data.shape[0] != vb:
                raise ParameterError(
                    f"virtual block must hold {vb} records, got {data.shape[0]}"
                )
            matrix[i] = data
            vdisks[i] = v
            slots[i] = self.machine.allocate_slots(1)
            addresses.append(VirtualBlockAddress(vdisk=int(v), slot=int(slots[i])))
        pdisks, pslots = self._expand(vdisks, slots)
        self.machine.load_blocks_arr(pdisks, pslots, matrix.reshape(-1, self.machine.B))
        return addresses

    # Memory-ledger hooks used by the backend-agnostic Balance engine when
    # it materializes padding records (hierarchies have no ledger).
    def acquire_memory(self, n_records: int) -> None:
        """Claim internal memory on the underlying machine's ledger."""
        self.machine.mem_acquire(n_records)

    def release_memory(self, n_records: int) -> None:
        """Return internal memory to the underlying machine's ledger."""
        self.machine.mem_release(n_records)


def fully_striped_view(machine: ParallelDiskMachine) -> VirtualDisks:
    """All D disks as a single logical disk with block size B' = DB."""
    return VirtualDisks(machine, n_virtual=1)
