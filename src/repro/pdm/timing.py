"""Wall-clock estimation for I/O traces: the blocking argument, quantified.

The introduction motivates blocked transfer with "the seek time is usually
much longer than the time needed to transfer a record of data once the disk
read/write head is in place."  The theorems count parallel I/Os; this
module converts a counted trace into estimated seconds under a positional
disk model, so examples can show what an I/O-count difference *means* on
hardware — both on 1993-era drives (the paper's context: ~12 ms seeks,
~4 MB/s transfer) and on a modern NVMe-ish profile where the fixed cost per
operation is ~100 µs.

An I/O's time is ``seek + rotational latency + B·record_bytes/transfer_rate``
per participating disk; disks work in parallel, so a parallel I/O costs the
*maximum* over its disks — which for equal block sizes is the same constant,
making total time ``(fixed + transfer(B)) · #I/Os``.  The model therefore
exposes exactly the trade the paper's parameters encode: larger ``B``
amortizes the fixed cost, more disks amortize nothing per I/O but multiply
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError
from .machine import IOStats

__all__ = ["DiskTimingModel", "DISK_1993", "DISK_MODERN_HDD", "DISK_NVME"]


@dataclass(frozen=True)
class DiskTimingModel:
    """Positional disk timing: fixed positioning cost plus streaming rate.

    Parameters
    ----------
    seek_ms:
        Average head seek time per I/O.
    rotational_ms:
        Average rotational latency (half a revolution).
    transfer_mb_per_s:
        Sustained media transfer rate.
    record_bytes:
        Size of one record (the simulators count records, not bytes).
    """

    name: str
    seek_ms: float
    rotational_ms: float
    transfer_mb_per_s: float
    record_bytes: int = 128

    def __post_init__(self):
        if min(self.seek_ms, self.rotational_ms) < 0 or self.transfer_mb_per_s <= 0:
            raise ParameterError("timing parameters must be positive")
        if self.record_bytes <= 0:
            raise ParameterError("record_bytes must be positive")

    @property
    def fixed_ms(self) -> float:
        """Positioning cost paid once per I/O regardless of block size."""
        return self.seek_ms + self.rotational_ms

    def transfer_ms(self, records: int) -> float:
        """Streaming time for ``records`` once the head is positioned."""
        return records * self.record_bytes / (self.transfer_mb_per_s * 1e6) * 1e3

    def io_ms(self, block_records: int) -> float:
        """Time of one parallel I/O moving one ``B``-record block per disk."""
        return self.fixed_ms + self.transfer_ms(block_records)

    def estimate_seconds(self, stats: IOStats, block_records: int) -> float:
        """Estimated wall-clock of a counted trace (parallel disks)."""
        return stats.total_ios * self.io_ms(block_records) / 1e3

    def blocking_advantage(self, block_records: int) -> float:
        """Speedup of a B-record block over B unblocked record transfers.

        The Section 1 motivation in one number: ``B·io(1) / io(B)``.
        """
        return block_records * self.io_ms(1) / self.io_ms(block_records)


#: A period-typical drive (~1993): 12 ms seeks, 5400 rpm, ~4 MB/s media rate.
DISK_1993 = DiskTimingModel(
    name="1993 HDD", seek_ms=12.0, rotational_ms=5.6, transfer_mb_per_s=4.0
)

#: A modern 7200 rpm nearline drive.
DISK_MODERN_HDD = DiskTimingModel(
    name="modern HDD", seek_ms=8.0, rotational_ms=4.2, transfer_mb_per_s=250.0
)

#: An NVMe-flash profile: no seeks, ~100 µs per operation, GB/s streaming.
DISK_NVME = DiskTimingModel(
    name="NVMe", seek_ms=0.08, rotational_ms=0.0, transfer_mb_per_s=3000.0
)
