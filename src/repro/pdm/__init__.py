"""Parallel Disk Model substrate (Vitter–Shriver D-disk model, Figure 2).

``N`` records live on ``D`` physically distinct disks; in one I/O operation
each disk can transfer one block of ``B`` contiguous records, so up to ``D``
blocks move per I/O *only if no two of them touch the same disk* — the rule
that makes deterministic distribution sort hard and that
:class:`~repro.pdm.machine.ParallelDiskMachine` enforces on every
operation.  Internal memory holds ``M`` records (``1 ≤ DB ≤ M/2``),
enforced through the machine's memory ledger.  Internal computation is
metered by an attached :class:`~repro.pram.machine.PRAM` with ``P`` CPUs
(Figure 2b).
"""

from .machine import ParallelDiskMachine, IOStats, BlockAddress
from .layout import StripedFile, Extent
from .striping import VirtualDisks, fully_striped_view
from .timing import DISK_1993, DISK_MODERN_HDD, DISK_NVME, DiskTimingModel

__all__ = [
    "ParallelDiskMachine",
    "IOStats",
    "BlockAddress",
    "StripedFile",
    "Extent",
    "VirtualDisks",
    "fully_striped_view",
    "DiskTimingModel",
    "DISK_1993",
    "DISK_MODERN_HDD",
    "DISK_NVME",
]
